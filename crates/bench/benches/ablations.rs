//! Ablation benchmarks for the design choices DESIGN.md calls out.
//!
//! Each ablation runs one contrasting pair/family of configurations on a
//! workload chosen to expose the mechanism, prints the metric comparison
//! (the interesting output), and times the runs so regressions in
//! simulator cost also surface.
//!
//! Ablations:
//! 1. **NC allocation policy** — victim vs relaxed inclusion vs full
//!    inclusion, at equal size (why the paper breaks inclusion).
//! 2. **MESIR clean-victim capture** — `vb` vs the same NC under plain
//!    MESI (why the paper extends the bus protocol).
//! 3. **Victim-NC indexing** — block vs page bits (the `vp` trade-off).
//! 4. **Relocation counter placement** — directory (R-NUMA) vs victim
//!    sets (`vxp`), counting relocations and stall.
//! 5. **Threshold policy** — fixed 8/32/128 vs adaptive (thrashing
//!    control).
//! 6. **Dirty-shared `O` state** — MESIR vs MOESI-R (the paper's
//!    "very little benefit" claim).
//! 7. **vxp invalidation decrement** — the paper's optional counter
//!    correction on late invalidations.
//! 8. **Directory scalability** — `vxp` under a full-map vs a Dir-4-B
//!    limited-pointer directory (the paper's claim that victim-set
//!    counters, unlike R-NUMA's, survive non-full-map directories).

use std::hint::black_box;

use dsm_bench::tinybench::Tiny;
use dsm_core::runner::run_trace;
use dsm_core::{NcSpec, PcSize, Report, SystemSpec, ThresholdPolicy};
use dsm_trace::{Scale, SharedTrace, WorkloadKind};
use dsm_types::{Geometry, Topology};

const SCALE: f64 = 0.1;

struct Ablation {
    name: &'static str,
    kind: WorkloadKind,
    /// Trace scale; relocation-threshold dynamics need denser traces.
    scale: f64,
    specs: Vec<SystemSpec>,
}

fn ablations() -> Vec<Ablation> {
    let mut inclusion_full_sram = SystemSpec::ncd();
    // Same 16-KB size and SRAM speed as `nc`/`vb`, but full inclusion:
    // isolates the allocation/inclusion policy from size and technology.
    inclusion_full_sram.nc = NcSpec::DramInclusion {
        bytes: 16 * 1024,
        ways: 4,
    };
    inclusion_full_sram.name = "full-incl".into();

    vec![
        Ablation {
            name: "nc_allocation_policy",
            kind: WorkloadKind::Radix,
            scale: SCALE,
            specs: vec![SystemSpec::vb(), SystemSpec::nc(), inclusion_full_sram],
        },
        Ablation {
            name: "mesir_clean_capture",
            kind: WorkloadKind::Barnes,
            scale: SCALE,
            specs: vec![SystemSpec::vb(), SystemSpec::vb().without_mesir_capture()],
        },
        Ablation {
            name: "victim_indexing",
            kind: WorkloadKind::Fmm,
            scale: SCALE,
            specs: vec![SystemSpec::vb(), SystemSpec::vp()],
        },
        Ablation {
            name: "counter_placement",
            kind: WorkloadKind::Barnes,
            scale: SCALE,
            specs: vec![
                SystemSpec::vpp(PcSize::DataFraction(5)),
                SystemSpec::vxp(PcSize::DataFraction(5), 32),
            ],
        },
        Ablation {
            name: "threshold_policy",
            kind: WorkloadKind::Radix,
            // Denser trace: threshold dynamics vanish under decimation.
            scale: 0.4,
            specs: [8u32, 32, 128]
                .iter()
                .map(|&t| {
                    let mut s = SystemSpec::ncp(PcSize::DataFraction(9))
                        .with_threshold(ThresholdPolicy::Fixed(t));
                    s.name = format!("ncp9-t{t}");
                    s
                })
                .chain(std::iter::once({
                    let mut s = SystemSpec::ncp(PcSize::DataFraction(9));
                    s.name = "ncp9-adapt".into();
                    s
                }))
                .collect(),
        },
        Ablation {
            name: "dirty_shared_o_state",
            // Barnes' contended tree-top cells are written by every
            // processor (remote for 7 of 8 clusters) and then read by
            // in-cluster peers: exactly the remote M -> S downgrades whose
            // write-backs the O state avoids.
            kind: WorkloadKind::Barnes,
            scale: SCALE,
            specs: vec![SystemSpec::vb(), SystemSpec::vb().with_dirty_shared()],
        },
        Ablation {
            name: "directory_scalability",
            kind: WorkloadKind::Barnes,
            scale: SCALE,
            specs: vec![
                SystemSpec::vxp(PcSize::DataFraction(5), 32),
                SystemSpec::vxp(PcSize::DataFraction(5), 32).with_limited_directory(4),
            ],
        },
        Ablation {
            name: "vxp_invalidation_decrement",
            kind: WorkloadKind::Barnes,
            scale: SCALE,
            specs: vec![
                SystemSpec::vxp(PcSize::DataFraction(5), 32),
                SystemSpec::vxp(PcSize::DataFraction(5), 32).with_invalidation_decrement(),
            ],
        },
    ]
}

fn print_comparison(ab: &Ablation, reports: &[Report]) {
    println!(
        "[ablation: {} on {} @ scale {}]",
        ab.name, ab.kind, ab.scale
    );
    println!(
        "  {:<16} {:>9} {:>9} {:>12} {:>9} {:>8} {:>9} {:>9}",
        "config", "read-m%", "write-m%", "stall", "traffic", "reloc", "wb", "absorbed"
    );
    for r in reports {
        println!(
            "  {:<16} {:>9.3} {:>9.3} {:>12} {:>9} {:>8} {:>9} {:>9}",
            r.system,
            r.read_miss_ratio * 100.0,
            r.write_miss_ratio * 100.0,
            r.remote_read_stall,
            r.remote_traffic,
            r.metrics.relocations,
            r.metrics.remote_writebacks,
            r.metrics.absorbed_downgrades
        );
    }
    println!();
}

fn run_all(specs: &[SystemSpec], data_bytes: u64, trace: &SharedTrace) -> Vec<Report> {
    specs
        .iter()
        .map(|s| run_trace(s, "ablation", data_bytes, trace).unwrap())
        .collect()
}

fn main() {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let mut t = Tiny::from_args();
    t.group("ablations");
    for ab in ablations() {
        let w = ab.kind.paper_instance();
        let refs = w.generate(&topo, Scale::new(ab.scale).unwrap());
        let trace = SharedTrace::from_refs(topo, geo, &refs);
        let reports = run_all(&ab.specs, w.shared_bytes(), &trace);
        print_comparison(&ab, &reports);
        t.bench(ab.name, || {
            black_box(run_all(&ab.specs, w.shared_bytes(), &trace));
        });
    }
}
