//! End-to-end figure regeneration as benchmarks.
//!
//! Each benchmark runs one paper figure on one representative workload at
//! a reduced trace scale, timing the complete experiment (trace replay on
//! every system configuration of the figure). Before timing, each figure
//! also prints its (reduced-scale) table once, so `cargo bench` output
//! doubles as a quick reproduction check. For publication-shaped numbers
//! use the release binaries (`--bin fig3` ... `--bin fig11`,
//! `--bin reproduce`) at full scale.

use std::hint::black_box;

use dsm_bench::figures::{fig10, fig11, fig3, fig4, fig5, fig6, fig7, fig8, fig9};
use dsm_bench::tinybench::Tiny;
use dsm_bench::{FigureTable, TraceSet};
use dsm_trace::{Scale, WorkloadKind};
use dsm_types::DsmError;

const BENCH_SCALE: f64 = 0.1;

fn bench_figure(
    t: &mut Tiny,
    name: &str,
    kind: WorkloadKind,
    runner: fn(&mut TraceSet, &[WorkloadKind]) -> Result<FigureTable, DsmError>,
) {
    // Print the single-workload table once for eyeballing.
    let mut ts = TraceSet::new(Scale::new(BENCH_SCALE).unwrap());
    let table = runner(&mut ts, &[kind]).expect("figure run");
    println!(
        "[{name} @ scale {BENCH_SCALE}, {kind} only]\n{}",
        table.render()
    );

    t.bench(name, || {
        let mut ts = TraceSet::new(Scale::new(BENCH_SCALE).unwrap());
        black_box(runner(&mut ts, &[kind]).expect("figure run"));
    });
}

fn main() {
    let mut t = Tiny::from_args();
    t.group("figures");
    bench_figure(&mut t, "fig3_lu", WorkloadKind::Lu, fig3::run);
    bench_figure(&mut t, "fig4_radix", WorkloadKind::Radix, fig4::run);
    bench_figure(&mut t, "fig5_fmm", WorkloadKind::Fmm, fig5::run);
    bench_figure(&mut t, "fig6_radix", WorkloadKind::Radix, fig6::run);
    bench_figure(&mut t, "fig7_fmm", WorkloadKind::Fmm, fig7::run);
    bench_figure(&mut t, "fig8_ocean", WorkloadKind::Ocean, fig8::run);
    bench_figure(&mut t, "fig9_lu", WorkloadKind::Lu, fig9::run);
    bench_figure(&mut t, "fig10_radix", WorkloadKind::Radix, fig10::run);
    bench_figure(&mut t, "fig11_barnes", WorkloadKind::Barnes, fig11::run);
}
