//! End-to-end figure regeneration as Criterion benchmarks.
//!
//! Each benchmark runs one paper figure on one representative workload at
//! a reduced trace scale, timing the complete experiment (trace replay on
//! every system configuration of the figure). Before timing, each figure
//! also prints its (reduced-scale) table once, so `cargo bench` output
//! doubles as a quick reproduction check. For publication-shaped numbers
//! use the release binaries (`--bin fig3` ... `--bin fig11`,
//! `--bin reproduce`) at full scale.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use dsm_bench::figures::{fig10, fig11, fig3, fig4, fig5, fig6, fig7, fig8, fig9};
use dsm_bench::{FigureTable, TraceSet};
use dsm_trace::{Scale, WorkloadKind};

const BENCH_SCALE: f64 = 0.1;

fn bench_figure(
    c: &mut Criterion,
    name: &str,
    kind: WorkloadKind,
    runner: fn(&mut TraceSet, &[WorkloadKind]) -> FigureTable,
) {
    // Print the single-workload table once for eyeballing.
    let mut ts = TraceSet::new(Scale::new(BENCH_SCALE).unwrap());
    let table = runner(&mut ts, &[kind]);
    println!("[{name} @ scale {BENCH_SCALE}, {kind} only]\n{}", table.render());

    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function(name, |b| {
        b.iter(|| {
            let mut ts = TraceSet::new(Scale::new(BENCH_SCALE).unwrap());
            black_box(runner(&mut ts, &[kind]))
        });
    });
    g.finish();
}

fn figures(c: &mut Criterion) {
    bench_figure(c, "fig3_lu", WorkloadKind::Lu, fig3::run);
    bench_figure(c, "fig4_radix", WorkloadKind::Radix, fig4::run);
    bench_figure(c, "fig5_fmm", WorkloadKind::Fmm, fig5::run);
    bench_figure(c, "fig6_radix", WorkloadKind::Radix, fig6::run);
    bench_figure(c, "fig7_fmm", WorkloadKind::Fmm, fig7::run);
    bench_figure(c, "fig8_ocean", WorkloadKind::Ocean, fig8::run);
    bench_figure(c, "fig9_lu", WorkloadKind::Lu, fig9::run);
    bench_figure(c, "fig10_radix", WorkloadKind::Radix, fig10::run);
    bench_figure(c, "fig11_barnes", WorkloadKind::Barnes, fig11::run);
}

criterion_group!(benches, figures);
criterion_main!(benches);
