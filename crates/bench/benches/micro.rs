//! Micro-benchmarks of the simulator substrates: per-operation costs of
//! the structures every simulated reference exercises.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use std::hint::black_box;

use dsm_cache::{CacheShape, CacheState, ProcCache, SetAssoc};
use dsm_core::{runner::run_trace, SystemSpec};
use dsm_directory::FullMapDirectory;
use dsm_protocol::BusCluster;
use dsm_trace::{Scale, WorkloadKind};
use dsm_types::{BlockAddr, ClusterId, Geometry, LocalProcId, Topology};

fn bench_set_assoc(c: &mut Criterion) {
    let shape = CacheShape::new(16 * 1024, 64, 4).unwrap();
    let mut g = c.benchmark_group("set_assoc");
    g.bench_function("insert_evict", |b| {
        let mut arr: SetAssoc<u64> = SetAssoc::new(shape);
        let mut i = 0u64;
        b.iter(|| {
            let set = (i % 64) as usize;
            black_box(arr.insert(set, i, i));
            i += 1;
        });
    });
    g.bench_function("hit_lookup", |b| {
        let mut arr: SetAssoc<u64> = SetAssoc::new(shape);
        for t in 0..256u64 {
            arr.insert((t % 64) as usize, t, t);
        }
        let mut i = 0u64;
        b.iter(|| {
            let t = i % 256;
            black_box(arr.get((t % 64) as usize, t));
            i += 1;
        });
    });
    g.finish();
}

fn bench_proc_cache(c: &mut Criterion) {
    let shape = CacheShape::new(16 * 1024, 64, 2).unwrap();
    c.bench_function("proc_cache/fill_touch_invalidate", |b| {
        let mut cache = ProcCache::new(shape);
        let mut i = 0u64;
        b.iter(|| {
            let blk = BlockAddr(i % 512);
            cache.fill(blk, CacheState::Shared);
            black_box(cache.touch(blk));
            if i.is_multiple_of(3) {
                cache.invalidate(blk);
            }
            i += 1;
        });
    });
}

fn bench_bus(c: &mut Criterion) {
    let shape = CacheShape::new(16 * 1024, 64, 2).unwrap();
    c.bench_function("bus/peer_supply_cycle", |b| {
        let mut bus = BusCluster::new(4, shape);
        let mut i = 0u64;
        b.iter(|| {
            let blk = BlockAddr(i % 256);
            bus.fill(LocalProcId(0), blk, CacheState::RemoteMaster);
            if let Some((s, _)) = bus.find_supplier(LocalProcId(1), blk) {
                black_box(bus.peer_read_supply(LocalProcId(1), s, blk));
            }
            bus.invalidate_all(blk);
            i += 1;
        });
    });
}

fn bench_directory(c: &mut Criterion) {
    c.bench_function("directory/read_write_cycle", |b| {
        let mut dir = FullMapDirectory::new(8);
        let mut i = 0u64;
        b.iter(|| {
            let blk = BlockAddr(i % 4096);
            black_box(dir.read(blk, ClusterId((i % 8) as u16)));
            if i.is_multiple_of(4) {
                black_box(dir.write(blk, ClusterId(((i + 1) % 8) as u16)));
            }
            i += 1;
        });
    });
}

fn bench_trace_generation(c: &mut Criterion) {
    let topo = Topology::paper_default();
    let mut g = c.benchmark_group("trace_gen");
    g.sample_size(10);
    for kind in [WorkloadKind::Fft, WorkloadKind::Radix, WorkloadKind::Barnes] {
        let w = kind.dev_instance();
        g.bench_function(w.name(), |b| {
            b.iter(|| black_box(w.generate(&topo, Scale::new(0.2).unwrap())));
        });
    }
    g.finish();
}

fn bench_simulation_throughput(c: &mut Criterion) {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let w = WorkloadKind::Lu.dev_instance();
    let trace = w.generate(&topo, Scale::new(0.3).unwrap());
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    g.throughput(Throughput::Elements(trace.len() as u64));
    for spec in [SystemSpec::base(), SystemSpec::vb(), SystemSpec::ncd()] {
        g.bench_function(&spec.name, |b| {
            b.iter_batched(
                || trace.clone(),
                |t| black_box(run_trace(&spec, "lu", w.shared_bytes(), &t, topo, geo).unwrap()),
                BatchSize::LargeInput,
            );
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_set_assoc,
    bench_proc_cache,
    bench_bus,
    bench_directory,
    bench_trace_generation,
    bench_simulation_throughput
);
criterion_main!(benches);
