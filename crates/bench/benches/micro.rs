//! Micro-benchmarks of the simulator substrates: per-operation costs of
//! the structures every simulated reference exercises.

use std::hint::black_box;

use dsm_bench::tinybench::Tiny;
use dsm_cache::{CacheShape, CacheState, ProcCache, SetAssoc};
use dsm_core::{runner::run_trace, SystemSpec};
use dsm_directory::FullMapDirectory;
use dsm_protocol::BusCluster;
use dsm_trace::{Scale, SharedTrace, WorkloadKind};
use dsm_types::{BlockAddr, ClusterId, Geometry, LocalProcId, Topology};

fn bench_set_assoc(t: &mut Tiny) {
    let shape = CacheShape::new(16 * 1024, 64, 4).unwrap();
    t.group("set_assoc");
    {
        let mut arr: SetAssoc<u64> = SetAssoc::new(shape);
        let mut i = 0u64;
        t.bench("insert_evict", || {
            let set = (i % 64) as usize;
            black_box(arr.insert(set, i, i));
            i += 1;
        });
    }
    {
        let mut arr: SetAssoc<u64> = SetAssoc::new(shape);
        for v in 0..256u64 {
            arr.insert((v % 64) as usize, v, v);
        }
        let mut i = 0u64;
        t.bench("hit_lookup", || {
            let v = i % 256;
            black_box(arr.get((v % 64) as usize, v));
            i += 1;
        });
    }
}

fn bench_proc_cache(t: &mut Tiny) {
    let shape = CacheShape::new(16 * 1024, 64, 2).unwrap();
    t.group("proc_cache");
    let mut cache = ProcCache::new(shape);
    let mut i = 0u64;
    t.bench("fill_touch_invalidate", || {
        let blk = BlockAddr(i % 512);
        cache.fill(blk, CacheState::Shared);
        black_box(cache.touch(blk));
        if i.is_multiple_of(3) {
            cache.invalidate(blk);
        }
        i += 1;
    });
}

fn bench_bus(t: &mut Tiny) {
    let shape = CacheShape::new(16 * 1024, 64, 2).unwrap();
    t.group("bus");
    let mut bus = BusCluster::new(4, shape);
    let mut i = 0u64;
    t.bench("peer_supply_cycle", || {
        let blk = BlockAddr(i % 256);
        bus.fill(LocalProcId(0), blk, CacheState::RemoteMaster);
        if let Some((s, _)) = bus.find_supplier(LocalProcId(1), blk) {
            black_box(bus.peer_read_supply(LocalProcId(1), s, blk));
        }
        bus.invalidate_all(blk);
        i += 1;
    });
}

fn bench_directory(t: &mut Tiny) {
    t.group("directory");
    let mut dir = FullMapDirectory::new(8);
    let mut i = 0u64;
    t.bench("read_write_cycle", || {
        let blk = BlockAddr(i % 4096);
        black_box(dir.read(blk, ClusterId((i % 8) as u16)));
        if i.is_multiple_of(4) {
            black_box(dir.write(blk, ClusterId(((i + 1) % 8) as u16)));
        }
        i += 1;
    });
}

fn bench_trace_generation(t: &mut Tiny) {
    let topo = Topology::paper_default();
    t.group("trace_gen");
    for kind in [WorkloadKind::Fft, WorkloadKind::Radix, WorkloadKind::Barnes] {
        let w = kind.dev_instance();
        t.bench(w.name(), || {
            black_box(w.generate(&topo, Scale::new(0.2).unwrap()));
        });
    }
}

fn bench_simulation_throughput(t: &mut Tiny) {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let w = WorkloadKind::Lu.dev_instance();
    let refs = w.generate(&topo, Scale::new(0.3).unwrap());
    let trace = SharedTrace::from_refs(topo, geo, &refs);
    t.group("sim_throughput");
    for spec in [SystemSpec::base(), SystemSpec::vb(), SystemSpec::ncd()] {
        t.bench_elements(&spec.name.clone(), trace.len() as u64, || {
            black_box(run_trace(&spec, "lu", w.shared_bytes(), &trace).unwrap());
        });
    }
}

fn main() {
    let mut t = Tiny::from_args();
    bench_set_assoc(&mut t);
    bench_proc_cache(&mut t);
    bench_bus(&mut t);
    bench_directory(&mut t);
    bench_trace_generation(&mut t);
    bench_simulation_throughput(&mut t);
}
