//! Chaos harness: sweeps deterministic fault-injection plans over the
//! sharded replay runtime and asserts the supervised-recovery contract
//! of `dsm_core::fault` — every plan must end in byte-identical output
//! (absorbed or degraded-to-oracle) or a structured [`DsmError`] with a
//! documented exit code. Never a hang, a torn file, or silent drift.
//!
//! Usage:
//!
//! ```text
//! chaos [--seeds <n,n,...>] [--sha <hex>] [--reproduce <path>] [--golden <dir>]
//! ```
//!
//! Two layers run:
//!
//! 1. **In-process scenarios** — a fixed directed matrix (every
//!    [`FaultSite`], both shard engines) plus one [`FaultPlan::derive`]d
//!    plan per `--seeds` entry (default `1..=8`) and, with `--sha`, one
//!    plan derived from the commit hash so every CI run probes a fresh
//!    coordinate. Shard-site plans replay a multi-component trace
//!    (components engine) and a single-component trace (rounds engine)
//!    at two workers and compare the merged machine state against the
//!    single-threaded oracle field by field; I/O-site plans exercise
//!    the sweep journal, `write_json_atomic`, and the mmap loader.
//! 2. **End-to-end subprocess scenarios** (with `--reproduce` and
//!    `--golden`) — `reproduce --workloads fft --shard-workers 2` runs
//!    under `DSM_FAULT_PLAN` worker-panic and mailbox-stall plans (the
//!    acceptance scenarios: supervised degradation must be visible in
//!    the shard report and the dataset byte-identical to `ci/golden/`),
//!    then under `--fault-seed` sweeps where any exit is legal as long
//!    as it is 0-with-identical-bytes or a documented error code with
//!    no torn dataset. A polling deadline converts a wedged child into
//!    [`DsmError::stalled`] (exit 4) instead of a hung CI job.
//!
//! Expected-panic noise: injected worker panics unwind through the
//! default panic hook, so "injected worker panic at ..." backtrace
//! lines on stderr are part of normal operation here.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode, Stdio};
use std::time::{Duration, Instant};

use dsm_bench::SweepJournal;
use dsm_core::fault::{install, FaultPlan, FaultSite};
use dsm_core::obs::{write_json_atomic, Json};
use dsm_core::{Metrics, Report, ShardEngine, ShardTuning, System, SystemSpec};
use dsm_trace::rng::TraceRng;
use dsm_trace::{codec, SharedTrace};
use dsm_types::{Addr, ClusterId, DsmError, Geometry, MemRef, ProcId, Topology};

const USAGE: &str = "chaos [--seeds <n,n,...>] [--sha <hex>] [--reproduce <path>] [--golden <dir>]";

/// Default seed sweep when `--seeds` is absent: small, fixed, and
/// documented in the CI job so failures reproduce locally verbatim.
const DEFAULT_SEEDS: [u64; 8] = [1, 2, 3, 4, 5, 6, 7, 8];

/// Wall-clock ceiling per `reproduce` child. A healthy degraded run is
/// tens of seconds at scale 0.05; a child that outlives this is wedged
/// and becomes a structured `stalled` error instead of a hung job.
const CHILD_DEADLINE: Duration = Duration::from_secs(480);

/// How many of the sweep seeds also run end-to-end (each costs a full
/// fft reproduce); the rest stay in-process. The SHA-derived seed, when
/// present, always runs end-to-end.
const E2E_SEEDS: usize = 2;

struct Args {
    seeds: Vec<u64>,
    sha_seed: Option<u64>,
    reproduce: Option<PathBuf>,
    golden: Option<PathBuf>,
}

fn parse_args() -> Result<Args, DsmError> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        seeds: DEFAULT_SEEDS.to_vec(),
        sha_seed: None,
        reproduce: None,
        golden: None,
    };
    let mut i = 0;
    while i < argv.len() {
        let need = |what: &str| -> Result<&str, DsmError> {
            argv.get(i + 1)
                .map(String::as_str)
                .ok_or_else(|| DsmError::usage(format!("{} requires {what}\n{USAGE}", argv[i])))
        };
        match argv[i].as_str() {
            "--seeds" => {
                let list = need("a comma-separated seed list")?;
                args.seeds = list
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<u64>()
                            .map_err(|_| DsmError::usage(format!("bad seed '{s}' in --seeds")))
                    })
                    .collect::<Result<_, _>>()?;
                i += 2;
            }
            "--sha" => {
                let hex = need("a hex commit hash")?;
                let prefix: String = hex.chars().take(16).collect();
                let seed = u64::from_str_radix(&prefix, 16)
                    .map_err(|_| DsmError::usage(format!("--sha wants hex, got '{hex}'")))?;
                args.sha_seed = Some(seed);
                i += 2;
            }
            "--reproduce" => {
                args.reproduce = Some(PathBuf::from(need("a path to the reproduce binary")?));
                i += 2;
            }
            "--golden" => {
                args.golden = Some(PathBuf::from(need("a golden directory")?));
                i += 2;
            }
            other => {
                return Err(DsmError::usage(format!("unknown flag '{other}'\n{USAGE}")));
            }
        }
    }
    Ok(args)
}

/// Small machine for the in-process scenarios: 4 clusters x 2 procs —
/// enough for real inter-cluster coherence, fast enough to replay a few
/// dozen times per chaos run.
fn topo() -> Result<Topology, DsmError> {
    Topology::new(4, 2).map_err(|e| DsmError::internal(format!("chaos topology: {e}")))
}

/// A conflict-heavy random trace whose clusters split into `groups`
/// disjoint sharing components (cluster c belongs to group c % groups,
/// each group owns a private 1 MiB window). `groups == 1` shares one
/// window machine-wide, forcing the rounds engine; `groups >= 2` gives
/// the components engine real shards.
fn chaos_trace(seed: u64, refs: usize, groups: u64) -> Result<SharedTrace, DsmError> {
    let topo = topo()?;
    let geo = Geometry::paper_default();
    let per_cluster = u64::from(topo.procs_per_cluster());
    let mut rng = TraceRng::for_workload("chaos", seed);
    let mut out = Vec::with_capacity(refs);
    for _ in 0..refs {
        let proc = rng.below(u64::from(topo.total_procs()));
        let group = (proc / per_cluster) % groups;
        let addr = Addr(group * (1 << 20) + (rng.below(1 << 16) & !3));
        let r = if rng.chance(0.3) {
            MemRef::write(ProcId(proc as u16), addr)
        } else {
            MemRef::read(ProcId(proc as u16), addr)
        };
        out.push(r);
    }
    Ok(SharedTrace::from_refs(topo, geo, &out))
}

/// Aggressive tuning so a few thousand references still produce many
/// chunks, several rounds, and a watchdog that trips in milliseconds.
fn chaos_tuning() -> ShardTuning {
    ShardTuning {
        chunk_refs: 64,
        mailbox_capacity: 4,
        min_parallel_refs: 1,
        watchdog_ms: 250,
    }
}

fn new_system(spec: &SystemSpec, trace: &SharedTrace) -> Result<System, DsmError> {
    System::new(spec.clone(), *trace.topology(), *trace.geometry(), 1 << 20)
        .map_err(|e| DsmError::internal(format!("chaos system: {e}")))
}

/// Field-by-field identity against the oracle — the in-process stand-in
/// for byte-identical reproduce output (the dataset is a pure function
/// of these counters).
fn assert_identical(oracle: &System, sys: &System, label: &str) -> Result<(), DsmError> {
    if oracle.metrics() != sys.metrics() {
        return Err(DsmError::internal(format!(
            "{label}: aggregate metrics diverged from the oracle"
        )));
    }
    for c in 0..oracle.topology().clusters() {
        if oracle.cluster_counts(ClusterId(c)) != sys.cluster_counts(ClusterId(c)) {
            return Err(DsmError::internal(format!(
                "{label}: cluster {c} counters diverged from the oracle"
            )));
        }
    }
    Ok(())
}

/// One supervised sharded replay under `plan`, checked against `oracle`.
/// The verdict line records whether the plan was absorbed (`degraded=
/// none`) or supervised into the oracle path — both are legal; drift,
/// invariant violations, or a wrong engine are not.
fn run_shard_scenario(
    plan: FaultPlan,
    spec: &SystemSpec,
    trace: &SharedTrace,
    oracle: &System,
    want_engine: ShardEngine,
    label: &str,
) -> Result<(), DsmError> {
    let mut sys = new_system(spec, trace)?;
    install(Some(plan));
    sys.run_sharded_with(trace, 2, chaos_tuning());
    install(None);
    let report = sys
        .shard_report()
        .ok_or_else(|| DsmError::internal(format!("{label}: no shard report")))?;
    if report.engine != want_engine {
        return Err(DsmError::internal(format!(
            "{label}: engaged {:?}, wanted {want_engine:?}",
            report.engine
        )));
    }
    assert_identical(oracle, &sys, label)?;
    sys.check_invariants()
        .map_err(|e| DsmError::internal(format!("{label}: merged state invalid: {e}")))?;
    println!(
        "chaos: {label} plan={} engine={:?} degraded={} .. ok",
        plan.spec(),
        report.engine,
        report.degraded.map_or("none", |f| f.label()),
    );
    Ok(())
}

fn sample_report(label: &str) -> Report {
    let mut r = Report {
        system: label.to_owned(),
        workload: "chaos".to_owned(),
        data_bytes: 1 << 20,
        refs: 4096,
        metrics: Metrics::default(),
        read_miss_ratio: 0.125,
        write_miss_ratio: 0.0625,
        relocation_overhead: 0.0,
        remote_read_stall: 1024,
        remote_traffic: 256,
        directory_bits_per_block: 32,
        wall_s: 0.0,
    };
    r.metrics.shared_refs = 4096;
    r
}

/// Journal-I/O contract: up to two consecutive transient failures per
/// append are absorbed by the retry budget; at three or more the
/// journal disables itself, *counts* every lost point, and never tears
/// a line. The run itself keeps going either way.
fn run_journal_scenario(plan: FaultPlan, tmp: &Path, label: &str) -> Result<(), DsmError> {
    const APPENDS: u64 = 4;
    let path = tmp.join(format!("journal-{}.jsonl", plan.io_failures));
    let _ = fs::remove_file(&path);
    let journal = SweepJournal::create(&path)?;
    journal.set_scope("chaos");
    install(Some(plan));
    for i in 0..APPENDS {
        let point = format!("p{i}");
        journal.record_ok(&point, &sample_report(&point), 0.0);
    }
    install(None);
    let disabled = journal.disabled_points();
    let want = if plan.io_failures <= 2 { 0 } else { APPENDS };
    if disabled != want {
        return Err(DsmError::internal(format!(
            "{label}: {disabled} disabled journal point(s), wanted {want}"
        )));
    }
    let bytes =
        fs::read(&path).map_err(|e| DsmError::internal(format!("{label}: read journal: {e}")))?;
    if !bytes.is_empty() && bytes.last() != Some(&b'\n') {
        return Err(DsmError::internal(format!(
            "{label}: journal ends mid-line (torn write)"
        )));
    }
    println!(
        "chaos: {label} plan={} disabled_points={disabled} .. ok",
        plan.spec()
    );
    Ok(())
}

/// Atomic-write contract: absorbed within the retry budget, otherwise a
/// structured exit-4 error with the previous file contents intact — an
/// injected failure must never leave a torn or half-new file.
fn run_atomic_scenario(plan: FaultPlan, tmp: &Path, label: &str) -> Result<(), DsmError> {
    let path = tmp.join(format!("atomic-{}.json", plan.io_failures));
    let before = Json::obj().set("generation", 1u64);
    let after = Json::obj().set("generation", 2u64);
    write_json_atomic(&path, &before)?;
    let baseline =
        fs::read(&path).map_err(|e| DsmError::internal(format!("{label}: read baseline: {e}")))?;
    install(Some(plan));
    let outcome = write_json_atomic(&path, &after);
    install(None);
    let now =
        fs::read(&path).map_err(|e| DsmError::internal(format!("{label}: read outcome: {e}")))?;
    match outcome {
        Ok(()) => {
            if plan.io_failures > 2 {
                return Err(DsmError::internal(format!(
                    "{label}: {} injected failures absorbed beyond the retry budget",
                    plan.io_failures
                )));
            }
            if now == baseline {
                return Err(DsmError::internal(format!(
                    "{label}: write reported success but the file did not change"
                )));
            }
            println!("chaos: {label} plan={} absorbed .. ok", plan.spec());
        }
        Err(e) => {
            if plan.io_failures <= 2 {
                return Err(DsmError::internal(format!(
                    "{label}: failed inside the retry budget: {e}"
                )));
            }
            if e.exit_code() != 4 {
                return Err(DsmError::internal(format!(
                    "{label}: exit code {} for an internal I/O error, want 4",
                    e.exit_code()
                )));
            }
            if now != baseline {
                return Err(DsmError::internal(format!(
                    "{label}: failed write altered the target file (torn state)"
                )));
            }
            println!(
                "chaos: {label} plan={} structured error (exit 4), file intact .. ok",
                plan.spec()
            );
        }
    }
    Ok(())
}

/// Mmap-truncation contract: a mapping whose backing file has shrunk is
/// refused at revalidation with a clean error (the alternative is a
/// SIGBUS mid-replay); with the plan cleared the same file loads fine.
fn run_mmap_scenario(plan: FaultPlan, tmp: &Path, label: &str) -> Result<(), DsmError> {
    let path = tmp.join("chaos.dsmt");
    if !path.exists() {
        let trace = chaos_trace(11, 512, 2)?;
        let file = fs::File::create(&path)
            .map_err(|e| DsmError::internal(format!("{label}: create trace file: {e}")))?;
        codec::write_shared(std::io::BufWriter::new(file), &trace)
            .map_err(|e| DsmError::internal(format!("{label}: encode trace: {e}")))?;
    }
    install(Some(plan));
    let refused = codec::open_shared_mapped(&path);
    install(None);
    if refused.is_ok() {
        return Err(DsmError::internal(format!(
            "{label}: truncated mapping was accepted"
        )));
    }
    codec::open_shared_mapped(&path)
        .map_err(|e| DsmError::internal(format!("{label}: clean reload failed: {e}")))?;
    println!(
        "chaos: {label} plan={} load refused cleanly, clean reload ok .. ok",
        plan.spec()
    );
    Ok(())
}

/// Dispatch one plan to the scenarios its site can reach. Shard sites
/// run through both engines; I/O sites hit their subsystem directly.
fn run_plan(plan: FaultPlan, label: &str, fixtures: &Fixtures, tmp: &Path) -> Result<(), DsmError> {
    match plan.site {
        FaultSite::WorkerPanic | FaultSite::MailboxSendFail | FaultSite::MailboxStall => {
            run_shard_scenario(
                plan,
                &fixtures.spec,
                &fixtures.components_trace,
                &fixtures.components_oracle,
                ShardEngine::Components,
                &format!("{label}/components"),
            )?;
            run_shard_scenario(
                plan,
                &fixtures.spec,
                &fixtures.rounds_trace,
                &fixtures.rounds_oracle,
                ShardEngine::Rounds,
                &format!("{label}/rounds"),
            )
        }
        FaultSite::JournalIo => run_journal_scenario(plan, tmp, label),
        FaultSite::AtomicWriteIo => run_atomic_scenario(plan, tmp, label),
        FaultSite::MmapTruncate => run_mmap_scenario(plan, tmp, label),
    }
}

/// Shared in-process state: one spec, one trace per engine, and the
/// oracle state each sharded run must reproduce exactly.
struct Fixtures {
    spec: SystemSpec,
    components_trace: SharedTrace,
    components_oracle: System,
    rounds_trace: SharedTrace,
    rounds_oracle: System,
}

impl Fixtures {
    fn build() -> Result<Fixtures, DsmError> {
        let spec = SystemSpec::vb();
        let components_trace = chaos_trace(3, 6000, 2)?;
        let rounds_trace = chaos_trace(7, 6000, 1)?;
        let mut components_oracle = new_system(&spec, &components_trace)?;
        components_oracle.run_shared(&components_trace);
        let mut rounds_oracle = new_system(&spec, &rounds_trace)?;
        rounds_oracle.run_shared(&rounds_trace);
        Ok(Fixtures {
            spec,
            components_trace,
            components_oracle,
            rounds_trace,
            rounds_oracle,
        })
    }
}

/// The directed in-process matrix: every site, both engine-visible
/// coordinate shapes, an absorbed (sub-watchdog) stall, and both sides
/// of the I/O retry budget.
const DIRECTED_SPECS: [&str; 10] = [
    "worker-panic@r0.p0.s0",
    "worker-panic@r1.p0.s1",
    "mailbox-send-fail@r1.p0.s0",
    "mailbox-stall@r0.p0.s0:50",
    "mailbox-stall@r1.p0.s0",
    "journal-io:2",
    "journal-io:5",
    "atomic-write-io:2",
    "atomic-write-io:4",
    "mmap-truncate",
];

/// Run `reproduce` with `envs` and assert it exits within the deadline;
/// a child that overruns is killed and reported as exit-4 `stalled`.
fn run_reproduce(
    reproduce: &Path,
    out_dir: &Path,
    extra_args: &[&str],
    envs: &[(&str, String)],
    label: &str,
) -> Result<(std::process::ExitStatus, String), DsmError> {
    fs::create_dir_all(out_dir)
        .map_err(|e| DsmError::internal(format!("{label}: create out dir: {e}")))?;
    let stdout_path = out_dir.join("stdout.txt");
    let stderr_path = out_dir.join("stderr.txt");
    let stdout = fs::File::create(&stdout_path)
        .map_err(|e| DsmError::internal(format!("{label}: create stdout capture: {e}")))?;
    let stderr = fs::File::create(&stderr_path)
        .map_err(|e| DsmError::internal(format!("{label}: create stderr capture: {e}")))?;
    let mut cmd = Command::new(reproduce);
    cmd.args([
        "--scale",
        "0.05",
        "--workloads",
        "fft",
        "--shard-workers",
        "2",
        "--jobs",
        "1",
    ]);
    cmd.args(extra_args);
    cmd.args(["--out"]).arg(out_dir);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.stdin(Stdio::null());
    cmd.stdout(Stdio::from(stdout));
    cmd.stderr(Stdio::from(stderr));
    let mut child = cmd
        .spawn()
        .map_err(|e| DsmError::internal(format!("{label}: spawn {}: {e}", reproduce.display())))?;
    let start = Instant::now();
    let status = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) => {
                if start.elapsed() > CHILD_DEADLINE {
                    let _ = child.kill();
                    let _ = child.wait();
                    return Err(DsmError::stalled(format!(
                        "{label}: reproduce exceeded the {}s chaos deadline",
                        CHILD_DEADLINE.as_secs()
                    )));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            Err(e) => {
                return Err(DsmError::internal(format!("{label}: wait: {e}")));
            }
        }
    };
    let child_stderr = fs::read_to_string(&stderr_path).unwrap_or_default();
    Ok((status, child_stderr))
}

fn diff_against_golden(out_dir: &Path, golden: &Path, label: &str) -> Result<(), DsmError> {
    let pairs = [
        ("reproduce_full.json", "reproduce_full.scale0.05.fft.json"),
        ("stdout.txt", "reproduce_stdout.scale0.05.fft.txt"),
    ];
    for (produced, expected) in pairs {
        let got = fs::read(out_dir.join(produced))
            .map_err(|e| DsmError::internal(format!("{label}: read {produced}: {e}")))?;
        let want = fs::read(golden.join(expected))
            .map_err(|e| DsmError::internal(format!("{label}: read golden {expected}: {e}")))?;
        if got != want {
            return Err(DsmError::internal(format!(
                "{label}: {produced} diverged from ci/golden/{expected} ({} vs {} bytes)",
                got.len(),
                want.len()
            )));
        }
    }
    Ok(())
}

fn tail(text: &str, lines: usize) -> String {
    let all: Vec<&str> = text.lines().collect();
    let start = all.len().saturating_sub(lines);
    all[start..].join("\n")
}

/// The acceptance scenarios: a worker panic and a mailbox stall injected
/// into a real 2-worker rounds-engine reproduce must exit 0, report the
/// degradation in the shard plan line, and match the goldens bit for bit.
fn e2e_supervised(reproduce: &Path, golden: &Path, tmp: &Path) -> Result<(), DsmError> {
    let cases = [
        ("worker-panic@r1.p0.s0", "degraded=worker-panic"),
        ("mailbox-stall@r1.p0.s0", "degraded=mailbox-stall"),
    ];
    for (spec, marker) in cases {
        let label = format!("e2e/{spec}");
        let out_dir = tmp.join(format!("e2e-{}", spec.replace(['@', '.', ':'], "-")));
        let envs = [
            ("DSM_FAULT_PLAN", spec.to_owned()),
            ("DSM_SHARD_WATCHDOG_MS", "500".to_owned()),
        ];
        let (status, stderr) = run_reproduce(reproduce, &out_dir, &[], &envs, &label)?;
        if !status.success() {
            return Err(DsmError::internal(format!(
                "{label}: reproduce failed ({status}); stderr tail:\n{}",
                tail(&stderr, 15)
            )));
        }
        if !stderr.contains(marker) {
            return Err(DsmError::internal(format!(
                "{label}: no '{marker}' in any shard plan line; stderr tail:\n{}",
                tail(&stderr, 15)
            )));
        }
        diff_against_golden(&out_dir, golden, &label)?;
        println!("chaos: {label} degraded to oracle, byte-identical to goldens .. ok");
    }
    Ok(())
}

/// Seed sweep end to end: whatever site the seed lands on, the run must
/// either succeed with byte-identical output or die with a documented
/// exit code and no torn dataset — and always within the deadline.
fn e2e_seed(reproduce: &Path, golden: &Path, tmp: &Path, seed: u64) -> Result<(), DsmError> {
    let plan = FaultPlan::derive(seed);
    let label = format!("e2e/seed-{seed}");
    let out_dir = tmp.join(format!("e2e-seed-{seed}"));
    let seed_arg = seed.to_string();
    let envs = [("DSM_SHARD_WATCHDOG_MS", "500".to_owned())];
    let (status, stderr) = run_reproduce(
        reproduce,
        &out_dir,
        &["--fault-seed", &seed_arg],
        &envs,
        &label,
    )?;
    if status.success() {
        diff_against_golden(&out_dir, golden, &label)?;
        println!(
            "chaos: {label} plan={} exit 0, byte-identical .. ok",
            plan.spec()
        );
        return Ok(());
    }
    let code = status.code().ok_or_else(|| {
        DsmError::internal(format!(
            "{label}: reproduce killed by a signal; stderr tail:\n{}",
            tail(&stderr, 15)
        ))
    })?;
    if !matches!(code, 2..=4) {
        return Err(DsmError::internal(format!(
            "{label}: undocumented exit code {code}; stderr tail:\n{}",
            tail(&stderr, 15)
        )));
    }
    // A failed run may leave no dataset, but never a torn one: if the
    // file exists it must be a complete, golden-identical artifact.
    if out_dir.join("reproduce_full.json").exists() {
        let got = fs::read(out_dir.join("reproduce_full.json"))
            .map_err(|e| DsmError::internal(format!("{label}: read dataset: {e}")))?;
        let want = fs::read(golden.join("reproduce_full.scale0.05.fft.json"))
            .map_err(|e| DsmError::internal(format!("{label}: read golden: {e}")))?;
        if got != want {
            return Err(DsmError::internal(format!(
                "{label}: exit {code} left a torn dataset behind"
            )));
        }
    }
    println!(
        "chaos: {label} plan={} structured error (exit {code}), no torn output .. ok",
        plan.spec()
    );
    Ok(())
}

fn run() -> Result<(), DsmError> {
    let args = parse_args()?;
    let tmp = std::env::temp_dir().join(format!("dsm-chaos-{}", std::process::id()));
    fs::create_dir_all(&tmp)
        .map_err(|e| DsmError::internal(format!("create {}: {e}", tmp.display())))?;

    let mut sweep_summary = String::new();
    let fixtures = Fixtures::build()?;

    for spec in DIRECTED_SPECS {
        let plan =
            FaultPlan::from_spec(spec).map_err(|e| DsmError::internal(format!("{spec}: {e}")))?;
        run_plan(plan, &format!("directed/{spec}"), &fixtures, &tmp)?;
    }

    let mut seeds = args.seeds.clone();
    if let Some(sha) = args.sha_seed {
        seeds.push(sha);
    }
    for &seed in &seeds {
        let plan = FaultPlan::derive(seed);
        run_plan(plan, &format!("seed-{seed}"), &fixtures, &tmp)?;
        let _ = write!(sweep_summary, " {seed}:{}", plan.site.label());
    }
    println!("chaos: in-process sweep complete:{sweep_summary}");

    match (&args.reproduce, &args.golden) {
        (Some(reproduce), Some(golden)) => {
            e2e_supervised(reproduce, golden, &tmp)?;
            for &seed in args.seeds.iter().take(E2E_SEEDS) {
                e2e_seed(reproduce, golden, &tmp, seed)?;
            }
            if let Some(sha) = args.sha_seed {
                e2e_seed(reproduce, golden, &tmp, sha)?;
            }
        }
        (None, None) => {
            println!("chaos: skipping end-to-end scenarios (no --reproduce/--golden)");
        }
        _ => {
            return Err(DsmError::usage(format!(
                "--reproduce and --golden go together\n{USAGE}"
            )));
        }
    }

    let _ = fs::remove_dir_all(&tmp);
    println!("chaos: all scenarios held the recovery contract");
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
