//! Regenerates Figure 10 of the paper. `--scale <f>` shortens traces.

use dsm_bench::figures::{all_workloads, fig10};
use dsm_bench::{parse_scale_arg, TraceSet};

fn main() {
    let scale = parse_scale_arg();
    let mut ts = TraceSet::new(scale);
    let table = fig10::run(&mut ts, &all_workloads());
    println!("{}", table.render());
}
