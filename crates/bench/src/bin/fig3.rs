//! Regenerates Figure 3 of the paper. `--scale <f>` shortens
//! traces; `--jobs <n>` sizes the sweep worker pool.

use dsm_bench::figures::{all_workloads, fig3};
use std::process::ExitCode;

use dsm_bench::harness::report_failure;
use dsm_bench::{parse_run_args, TraceSet};

fn main() -> ExitCode {
    let args = parse_run_args("fig3 [--scale <f>] [--jobs <n>]");
    let mut ts = TraceSet::from_args(&args);
    let table = match fig3::run(&mut ts, &all_workloads()) {
        Ok(t) => t,
        Err(e) => return report_failure(&e),
    };
    println!("{}", table.render());
    ExitCode::SUCCESS
}
