//! Regenerates Figure 5 of the paper. `--scale <f>` shortens traces.

use dsm_bench::figures::{all_workloads, fig5};
use dsm_bench::{parse_scale_arg, TraceSet};

fn main() {
    let scale = parse_scale_arg();
    let mut ts = TraceSet::new(scale);
    let table = fig5::run(&mut ts, &all_workloads());
    println!("{}", table.render());
}
