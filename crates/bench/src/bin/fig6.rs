//! Regenerates Figure 6 of the paper (fixed vs adaptive relocation
//! threshold), plus a supplementary run with a tighter (1/16) page cache
//! where the synthetic traces actually thrash. `--scale <f>` shortens
//! traces.

use dsm_bench::figures::{all_workloads, fig6};
use dsm_bench::{parse_scale_arg, TraceSet};

fn main() {
    let scale = parse_scale_arg();
    let mut ts = TraceSet::new(scale);
    println!("{}", fig6::run(&mut ts, &all_workloads()).render());
    let mut ts = TraceSet::new(scale);
    println!("{}", fig6::run_tight(&mut ts, &all_workloads()).render());
}
