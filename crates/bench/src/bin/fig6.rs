//! Regenerates Figure 6 of the paper (fixed vs adaptive relocation
//! threshold), plus a supplementary run with a tighter (1/16) page cache
//! where the synthetic traces actually thrash. `--scale <f>` shortens
//! traces; `--jobs <n>` sizes the sweep worker pool.

use std::process::ExitCode;

use dsm_bench::figures::{all_workloads, fig6};
use dsm_bench::harness::report_failure;
use dsm_bench::{parse_run_args, TraceSet};

fn main() -> ExitCode {
    let args = parse_run_args("fig6 [--scale <f>] [--jobs <n>]");
    let mut ts = TraceSet::from_args(&args);
    match fig6::run(&mut ts, &all_workloads()) {
        Ok(t) => println!("{}", t.render()),
        Err(e) => return report_failure(&e),
    }
    let mut ts = TraceSet::from_args(&args);
    match fig6::run_tight(&mut ts, &all_workloads()) {
        Ok(t) => println!("{}", t.render()),
        Err(e) => return report_failure(&e),
    }
    ExitCode::SUCCESS
}
