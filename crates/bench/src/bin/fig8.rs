//! Regenerates Figure 8 of the paper. `--scale <f>` shortens traces.

use dsm_bench::figures::{all_workloads, fig8};
use dsm_bench::{parse_scale_arg, TraceSet};

fn main() {
    let scale = parse_scale_arg();
    let mut ts = TraceSet::new(scale);
    let table = fig8::run(&mut ts, &all_workloads());
    println!("{}", table.render());
}
