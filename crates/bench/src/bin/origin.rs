//! Supplementary experiment: SGI-Origin-style page migration/replication
//! vs network caches, including the paper's concluding hypothesis
//! (`origin+vb`). `--scale <f>` shortens traces; `--jobs <n>` sizes the
//! sweep worker pool.

use dsm_bench::figures::{all_workloads, origin};
use dsm_bench::{parse_run_args, TraceSet};

fn main() {
    let args = parse_run_args("origin [--scale <f>] [--jobs <n>]");
    let mut ts = TraceSet::with_jobs(args.scale, args.jobs);
    println!("{}", origin::run(&mut ts, &all_workloads()).render());
}
