//! Supplementary experiment: SGI-Origin-style page migration/replication
//! vs network caches, including the paper's concluding hypothesis
//! (`origin+vb`). `--scale <f>` shortens traces; `--jobs <n>` sizes the
//! sweep worker pool.

use std::process::ExitCode;

use dsm_bench::figures::{all_workloads, origin};
use dsm_bench::harness::report_failure;
use dsm_bench::{parse_run_args, TraceSet};

fn main() -> ExitCode {
    let args = parse_run_args("origin [--scale <f>] [--jobs <n>]");
    let mut ts = TraceSet::from_args(&args);
    match origin::run(&mut ts, &all_workloads()) {
        Ok(t) => {
            println!("{}", t.render());
            ExitCode::SUCCESS
        }
        Err(e) => report_failure(&e),
    }
}
