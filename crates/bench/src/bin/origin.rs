//! Supplementary experiment: SGI-Origin-style page migration/replication
//! vs network caches, including the paper's concluding hypothesis
//! (`origin+vb`). `--scale <f>` shortens traces.

use dsm_bench::figures::{all_workloads, origin};
use dsm_bench::{parse_scale_arg, TraceSet};

fn main() {
    let scale = parse_scale_arg();
    let mut ts = TraceSet::new(scale);
    println!("{}", origin::run(&mut ts, &all_workloads()).render());
}
