//! Deep-profiles one workload: replays it on selected system
//! configurations under full phase instrumentation and prints, per
//! configuration, the per-phase cost table (events, estimated cycles per
//! Eq. 1's latency terms, and each phase's share of total cost), the
//! end-of-run occupancy snapshot, and a reconciliation footer proving the
//! counters sum exactly to the final report's aggregates.
//!
//! Usage:
//!
//! ```text
//! profile [--workload <name>] [--systems <csv>] [--batch <refs>]
//!         [--out <file>] [--chrome-trace <file>] [--scale <f>] [--jobs <n>]
//! ```
//!
//! Defaults replay Radix on `base`, `vb16` and `vpp5` — the throughput
//! anomaly triple (see EXPERIMENTS.md): radix is the one workload whose
//! victim-path configurations simulate *slower* than the baseline, and
//! this binary's phase table is how that was diagnosed. `--systems`
//! accepts the `simulate` family names (`base`, `nc`, `vb`, `vp`, `ncd`,
//! `ncs`, `inf-dram`, `ncp`, `vbp`, `vpp`, `vxp`, `origin`, `origin-vb`).
//!
//! The replay is chunked (`--batch`, default 65536 refs) so the span
//! trace written by `--chrome-trace` shows per-batch progress under each
//! configuration's replay span; `--out <file>` writes the full profile
//! as `dsm-profile/v1` JSON. `--jobs` is accepted (it is a common flag)
//! but ignored: profiling replays serially so per-batch spans and
//! counters stay attributable.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use dsm_bench::harness::{parse_argv, report_failure, usage_exit, RunArgs};
use dsm_core::obs::span::SpanTracer;
use dsm_core::obs::{write_json_atomic, Json};
use dsm_core::runner::report_of;
use dsm_core::{PcSize, PhaseProfiler, System, SystemSpec};
use dsm_trace::{SharedTrace, WorkloadKind};
use dsm_types::{DsmError, Geometry, Topology};

const USAGE: &str = "profile [--workload <name>] [--systems <csv>] [--batch <refs>] [--out <file>] [--chrome-trace <file>] [--scale <f>] [--jobs <n>]";

struct Flags {
    run: RunArgs,
    workload: WorkloadKind,
    specs: Vec<SystemSpec>,
    batch: usize,
    out: Option<PathBuf>,
    chrome_trace: Option<PathBuf>,
}

/// Maps a `simulate` system-family token to its paper configuration
/// (page caches at 5% of the data set, `vxp` threshold 32 — the values
/// the figures use).
fn spec_of(token: &str) -> Result<SystemSpec, String> {
    Ok(match token {
        "base" => SystemSpec::base(),
        "nc" => SystemSpec::nc(),
        "vb" => SystemSpec::vb(),
        "vp" => SystemSpec::vp(),
        "ncd" => SystemSpec::ncd(),
        "ncs" => SystemSpec::ncs(),
        "inf-dram" => SystemSpec::infinite_dram(),
        "ncp" => SystemSpec::ncp(PcSize::DataFraction(5)),
        "vbp" => SystemSpec::vbp(PcSize::DataFraction(5)),
        "vpp" => SystemSpec::vpp(PcSize::DataFraction(5)),
        "vxp" => SystemSpec::vxp(PcSize::DataFraction(5), 32),
        "origin" => SystemSpec::origin(),
        "origin-vb" => SystemSpec::origin_vb(),
        other => {
            return Err(format!(
                "unknown system '{other}' (known: base, nc, vb, vp, ncd, ncs, \
                 inf-dram, ncp, vbp, vpp, vxp, origin, origin-vb)"
            ))
        }
    })
}

fn parse_flags() -> Flags {
    let mut workload = WorkloadKind::Radix;
    let mut specs: Option<Vec<SystemSpec>> = None;
    let mut batch = 65536usize;
    let mut out = None;
    let mut chrome_trace = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let run = parse_argv(&argv, |args, i| match args[i].as_str() {
        "--workload" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--workload requires a value".to_owned())?;
            workload = WorkloadKind::all()
                .into_iter()
                .find(|k| k.display_name().eq_ignore_ascii_case(v.trim()))
                .ok_or_else(|| format!("unknown workload '{v}'"))?;
            Ok(2)
        }
        "--systems" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--systems requires a value".to_owned())?;
            specs = Some(
                v.split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| spec_of(s.trim()))
                    .collect::<Result<Vec<_>, _>>()?,
            );
            Ok(2)
        }
        "--batch" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--batch requires a value".to_owned())?;
            batch = v.parse().map_err(|_| format!("bad batch size '{v}'"))?;
            if batch == 0 {
                return Err("--batch must be positive".to_owned());
            }
            Ok(2)
        }
        "--out" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--out requires a value".to_owned())?;
            out = Some(PathBuf::from(v));
            Ok(2)
        }
        "--chrome-trace" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--chrome-trace requires a value".to_owned())?;
            chrome_trace = Some(PathBuf::from(v));
            Ok(2)
        }
        _ => Ok(0),
    })
    .unwrap_or_else(|msg| usage_exit(USAGE, &msg));
    Flags {
        run,
        workload,
        specs: specs.unwrap_or_else(|| {
            vec![
                SystemSpec::base(),
                SystemSpec::vb(),
                SystemSpec::vpp(PcSize::DataFraction(5)),
            ]
        }),
        batch,
        out,
        chrome_trace,
    }
}

fn run(flags: &Flags) -> Result<(), DsmError> {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    let kind = flags.workload;
    let wl = kind.display_name().to_lowercase();
    let tracer = SpanTracer::new();
    let lane = tracer.lane("main");

    eprintln!(
        "profile: generating {wl} trace at scale {} ...",
        flags.run.scale.factor()
    );
    let w = kind.paper_instance();
    let data_bytes = w.shared_bytes();
    let trace = {
        let mut span = tracer.span(lane, format!("trace load: {kind}"));
        let refs = w.generate(&topo, flags.run.scale);
        span.arg("refs", refs.len() as u64);
        SharedTrace::from_refs(topo, geo, &refs)
    };

    let mut runs: Vec<Json> = Vec::new();
    for spec in &flags.specs {
        let mut replay_span = tracer.span(lane, format!("replay: {}/{kind}", spec.name));
        let profiler = PhaseProfiler::for_spec(spec);
        let mut system = System::with_probe(spec.clone(), topo, geo, data_bytes, profiler)
            .map_err(|e| DsmError::bad_input(format!("{}/{wl}: {e}", spec.name)))?;
        let t0 = Instant::now();
        let mut i = 0usize;
        while i < trace.len() {
            let end = (i + flags.batch).min(trace.len());
            let mut bspan = tracer.span(lane, "replay batch");
            for j in i..end {
                system.process(trace.get(j));
            }
            bspan.arg("refs", (end - i) as u64);
            i = end;
        }
        system.finish();
        let wall_s = t0.elapsed().as_secs_f64();
        let mut report = report_of(&system, &wl, data_bytes, trace.len() as u64);
        report.wall_s = wall_s;
        let occupancy = system.occupancy();
        let (profiler, _) = system.into_probe();
        let counters = profiler.into_counters();
        replay_span.arg("refs", report.refs);
        drop(replay_span);

        // The tentpole's exactness guarantee: the six primary phases
        // partition every shared reference; a mismatch is a profiler bug,
        // not a rounding error.
        let primary = counters.primary_events();
        let services = report.metrics.primary_services();
        let shared = report.metrics.shared_refs;
        println!(
            "## {}/{} — {} refs, {:.2}s ({:.1} Mrefs/s)\n",
            spec.name,
            kind.display_name(),
            report.refs,
            wall_s,
            report.refs as f64 / wall_s.max(1e-9) / 1e6
        );
        println!("{}", counters.render_table(report.refs));
        println!(
            "reconciliation: primary phase events {primary} == primary services {services} \
             == shared refs {shared}: {}",
            if primary == services && services == shared {
                "OK"
            } else {
                "MISMATCH"
            }
        );
        println!(
            "occupancy: {} directory-tracked blocks, {} bus transactions across {} clusters\n",
            occupancy.directory_tracked_blocks,
            occupancy
                .clusters
                .iter()
                .map(|c| c.bus_transactions)
                .sum::<u64>(),
            occupancy.clusters.len()
        );
        if primary != services || services != shared {
            return Err(DsmError::invariant(format!(
                "{}/{wl}: phase counters do not reconcile: primary phase events {primary}, \
                 primary services {services}, shared refs {shared}",
                spec.name
            )));
        }
        runs.push(
            Json::obj()
                .set("system", spec.name.as_str())
                .set("refs", report.refs)
                .set("wall_s", wall_s)
                .set("report", report.to_json())
                .set("phases", counters.to_json())
                .set("occupancy", occupancy.to_json()),
        );
    }

    if let Some(path) = &flags.out {
        let json = Json::obj()
            .set("schema", "dsm-profile/v1")
            .set("workload", wl.as_str())
            .set("scale", flags.run.scale.factor())
            .set("batch", flags.batch as u64)
            .set("runs", runs);
        write_json_atomic(path, &json)?;
        eprintln!("profile: wrote {}", path.display());
    }
    if let Some(path) = &flags.chrome_trace {
        tracer.write(path)?;
        eprintln!("profile: wrote {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let flags = parse_flags();
    match run(&flags) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => report_failure(&e),
    }
}
