//! Runs every experiment of the paper — Tables 1-3 and Figures 3-11 —
//! and prints each table, plus a Markdown digest suitable for
//! EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! reproduce [--scale <f>] [--markdown] [--out <dir>]
//! reproduce --epoch <refs> [--trace-events] [--scale <f>] [--out <dir>]
//! ```
//!
//! The first form reproduces the figures; with `--out` it also writes the
//! full machine-readable dataset to `<dir>/reproduce_full.json`.
//!
//! The second form runs the *instrumented* reproduction instead: each
//! workload runs on the key system configurations (`base`, `vb`, `ncd`,
//! `vxp`) with the observability probe attached, and one JSON run report
//! per (workload, system) pair — figures of merit, event counts, the
//! per-epoch time series with per-cluster breakdowns, hottest pages and
//! the relocation timeline — lands under `<dir>` (default `results/`).
//! `--trace-events` additionally streams every structured event to
//! `<dir>/<workload>_<system>.events.jsonl`.

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};

use dsm_bench::figures::{
    all_workloads, fig10, fig11, fig3, fig4, fig5, fig6, fig7, fig8, fig9, origin, tables,
};
use dsm_bench::{parse_scale_arg, FigureTable, TraceSet};
use dsm_core::obs::{Json, JsonlSink, StatsSink};
use dsm_core::{PcSize, SystemSpec, Tee};

struct Flags {
    markdown: bool,
    epoch: Option<u64>,
    trace_events: bool,
    out: Option<PathBuf>,
}

fn parse_flags() -> Flags {
    let mut f = Flags {
        markdown: false,
        epoch: None,
        trace_events: false,
        out: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--markdown" => f.markdown = true,
            "--trace-events" => f.trace_events = true,
            "--epoch" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| panic!("--epoch requires a value"));
                let w: u64 = v.parse().unwrap_or_else(|_| panic!("bad epoch '{v}'"));
                assert!(w > 0, "--epoch must be positive");
                f.epoch = Some(w);
            }
            "--out" => {
                let v = args
                    .next()
                    .unwrap_or_else(|| panic!("--out requires a value"));
                f.out = Some(PathBuf::from(v));
            }
            "--scale" => {
                args.next(); // parsed by parse_scale_arg
            }
            other => panic!("unknown flag '{other}'"),
        }
    }
    f
}

/// Makes a spec name filesystem-friendly (`vxp5(t32)` -> `vxp5-t32`).
fn file_stem(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    while out.contains("--") {
        out = out.replace("--", "-");
    }
    out.trim_matches('-').to_owned()
}

fn write_json(path: &Path, json: &Json) {
    let mut f = BufWriter::new(
        File::create(path).unwrap_or_else(|e| panic!("cannot create {}: {e}", path.display())),
    );
    writeln!(f, "{}", json.render())
        .and_then(|()| f.flush())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
}

/// The instrumented reproduction: probed runs of every workload on the
/// key configurations, exported as JSON run reports.
fn run_instrumented(flags: &Flags) {
    let scale = parse_scale_arg();
    let out = flags
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&out)
        .unwrap_or_else(|e| panic!("cannot create {}: {e}", out.display()));
    let specs = [
        SystemSpec::base(),
        SystemSpec::vb(),
        SystemSpec::ncd(),
        SystemSpec::vxp(PcSize::DataFraction(5), 32),
    ];
    let mut index: Vec<Json> = Vec::new();
    for &kind in &all_workloads() {
        let mut ts = TraceSet::new(scale);
        let wl = kind.display_name().to_lowercase();
        for spec in &specs {
            eprintln!("reproduce: instrumented {wl}/{} ...", spec.name);
            let stem = format!("{wl}_{}", file_stem(&spec.name));
            let (report, sink) = if flags.trace_events {
                let ev_path = out.join(format!("{stem}.events.jsonl"));
                let file = BufWriter::new(
                    File::create(&ev_path)
                        .unwrap_or_else(|e| panic!("cannot create {}: {e}", ev_path.display())),
                );
                let probe = Tee(StatsSink::new(), JsonlSink::new(file));
                let (report, Tee(sink, jsonl)) = ts.run_probed(spec, kind, probe, flags.epoch);
                let lines = jsonl.lines();
                jsonl
                    .finish()
                    .unwrap_or_else(|e| panic!("event log {}: {e}", ev_path.display()))
                    .flush()
                    .unwrap_or_else(|e| panic!("event log {}: {e}", ev_path.display()));
                eprintln!("reproduce:   {} events -> {}", lines, ev_path.display());
                (report, sink)
            } else {
                ts.run_probed(spec, kind, StatsSink::new(), flags.epoch)
            };
            let path = out.join(format!("{stem}.json"));
            let json = Json::obj()
                .set("scale", scale.factor())
                .set(
                    "epoch_window",
                    match flags.epoch {
                        Some(w) => Json::U64(w),
                        None => Json::Null,
                    },
                )
                .set("report", report.to_json())
                .set("observability", sink.to_json(10));
            write_json(&path, &json);
            index.push(
                Json::obj()
                    .set("file", path.file_name().unwrap().to_string_lossy().as_ref())
                    .set("workload", wl.as_str())
                    .set("system", spec.name.as_str())
                    .set("refs", report.refs)
                    .set("read_miss_ratio", report.read_miss_ratio)
                    .set("relocation_overhead", report.relocation_overhead),
            );
        }
    }
    let count = index.len();
    write_json(&out.join("index.json"), &Json::obj().set("runs", index));
    eprintln!("reproduce: wrote {count} run reports to {}", out.display());
}

fn main() {
    let flags = parse_flags();
    if flags.epoch.is_some() || flags.trace_events {
        run_instrumented(&flags);
        return;
    }

    let scale = parse_scale_arg();
    eprintln!("reproduce: scale factor {}", scale.factor());

    println!("{}", tables::table1());
    println!("{}", tables::table2());
    println!("{}", tables::table3());

    let kinds = all_workloads();
    type Runner = fn(&mut TraceSet, &[dsm_trace::WorkloadKind]) -> FigureTable;
    let figures: Vec<(&str, Runner)> = vec![
        ("fig3", fig3::run as Runner),
        ("fig4", fig4::run as Runner),
        ("fig5", fig5::run as Runner),
        ("fig6", fig6::run as Runner),
        ("fig6-tight (supplementary)", fig6::run_tight as Runner),
        ("fig7", fig7::run as Runner),
        ("fig8", fig8::run as Runner),
        ("fig9", fig9::run as Runner),
        ("fig10", fig10::run as Runner),
        ("fig11", fig11::run as Runner),
        ("origin (supplementary)", origin::run as Runner),
    ];

    let mut exported: Vec<Json> = Vec::new();
    for (name, runner) in figures {
        eprintln!("reproduce: running {name} ...");
        let t0 = std::time::Instant::now();
        // A fresh trace set per figure keeps peak memory to one trace.
        let mut ts = TraceSet::new(scale);
        let table = runner(&mut ts, &kinds);
        eprintln!(
            "reproduce: {name} done in {:.1}s",
            t0.elapsed().as_secs_f64()
        );
        if flags.markdown {
            println!("## {}\n\n{}", table.caption, table.render_markdown());
        } else {
            println!("{}", table.render());
        }
        if flags.out.is_some() {
            exported.push(table.to_json().set("figure", name));
        }
    }

    if let Some(out) = &flags.out {
        std::fs::create_dir_all(out)
            .unwrap_or_else(|e| panic!("cannot create {}: {e}", out.display()));
        let path = out.join("reproduce_full.json");
        let json = Json::obj()
            .set("scale", scale.factor())
            .set("figures", exported);
        write_json(&path, &json);
        eprintln!("reproduce: wrote {}", path.display());
    }
}
