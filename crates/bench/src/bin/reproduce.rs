//! Runs every experiment of the paper — Tables 1-3 and Figures 3-11 —
//! and prints each table, plus a Markdown digest suitable for
//! EXPERIMENTS.md.
//!
//! Usage: `cargo run -p dsm-bench --release --bin reproduce [--scale <f>]
//! [--markdown]`.

use dsm_bench::figures::{
    all_workloads, fig10, fig11, fig3, fig4, fig5, fig6, fig7, fig8, fig9, origin, tables,
};
use dsm_bench::{parse_scale_arg, FigureTable, TraceSet};

fn main() {
    let scale = parse_scale_arg();
    let markdown = std::env::args().any(|a| a == "--markdown");
    eprintln!("reproduce: scale factor {}", scale.factor());

    println!("{}", tables::table1());
    println!("{}", tables::table2());
    println!("{}", tables::table3());

    let kinds = all_workloads();
    type Runner = fn(&mut TraceSet, &[dsm_trace::WorkloadKind]) -> FigureTable;
    let figures: Vec<(&str, Runner)> = vec![
        ("fig3", fig3::run as Runner),
        ("fig4", fig4::run as Runner),
        ("fig5", fig5::run as Runner),
        ("fig6", fig6::run as Runner),
        ("fig6-tight (supplementary)", fig6::run_tight as Runner),
        ("fig7", fig7::run as Runner),
        ("fig8", fig8::run as Runner),
        ("fig9", fig9::run as Runner),
        ("fig10", fig10::run as Runner),
        ("fig11", fig11::run as Runner),
        ("origin (supplementary)", origin::run as Runner),
    ];

    for (name, runner) in figures {
        eprintln!("reproduce: running {name} ...");
        let t0 = std::time::Instant::now();
        // A fresh trace set per figure keeps peak memory to one trace.
        let mut ts = TraceSet::new(scale);
        let table = runner(&mut ts, &kinds);
        eprintln!("reproduce: {name} done in {:.1}s", t0.elapsed().as_secs_f64());
        if markdown {
            println!("## {}\n\n{}", table.caption, table.render_markdown());
        } else {
            println!("{}", table.render());
        }
    }
}
