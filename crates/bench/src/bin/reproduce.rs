//! Runs every experiment of the paper — Tables 1-3 and Figures 3-11 —
//! and prints each table, plus a Markdown digest suitable for
//! EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! reproduce [--scale <f>] [--jobs <n>] [--shard-workers <n>]
//!           [--markdown] [--out <dir>]
//!           [--journal <file> | --resume <file>]
//!           [--figures <csv>] [--workloads <csv>]
//!           [--progress] [--phase-stats] [--chrome-trace <file>]
//! reproduce --epoch <refs> [--trace-events] [--scale <f>] [--out <dir>]
//! ```
//!
//! The first form reproduces the figures; with `--out` it also writes the
//! full machine-readable dataset to `<dir>/reproduce_full.json` plus the
//! wall-clock timings to `<dir>/timings.json`. The dataset file carries
//! no timestamps or wall times, so two runs at the same scale are
//! byte-identical regardless of `--jobs` — the determinism CI job diffs
//! exactly that file (and stdout).
//!
//! Telemetry (all off by default; none of it perturbs the simulation or
//! the diffable dataset): `--progress` streams one line per completed
//! sweep point to stderr with Mrefs/s and an ETA; `--phase-stats` runs
//! every point under the phase profiler and folds per-point phase-counter
//! rollups into `timings.json`; `--chrome-trace <file>` records
//! hierarchical spans (figure → trace load → sweep point, one lane per
//! sweep worker) and writes a chrome://tracing JSON trace.
//!
//! `--journal <file>` appends every completed sweep point to an fsynced
//! JSONL journal as it finishes; if the run is killed, `--resume <file>`
//! reloads the journal, skips the completed points, and merges their
//! recorded reports with the freshly computed remainder — producing the
//! same bytes an uninterrupted run would have. `--figures` /
//! `--workloads` restrict the run to a comma-separated subset (figure
//! keys: fig3..fig11, fig6-tight, origin).
//!
//! Every figure executes through the parallel sweep engine
//! (`dsm_bench::sweep`) on `--jobs <n>` workers (default: all hardware
//! threads; env `DSM_JOBS`); `--jobs 1` is the exact legacy serial path.
//! `--shard-workers <n>` (env `DSM_SHARD_WORKERS`) additionally replays
//! each point through the sharded engine on up to `n` threads — metric-
//! and byte-identical to the oracle for any value, with the sweep worker
//! count shrunk to `jobs/n` so the two levels share one thread budget.
//! A figure whose sweep points fail does not abort the rest: remaining
//! figures still run, the failure summaries (with one-line `simulate`
//! repro invocations) are printed at the end, no dataset is written, and
//! the process exits with the first failure's code.
//!
//! The second form runs the *instrumented* reproduction instead: each
//! workload runs on the key system configurations (`base`, `vb`, `ncd`,
//! `vxp`) with the observability probe attached, and one JSON run report
//! per (workload, system) pair — figures of merit, event counts, the
//! per-epoch time series with per-cluster breakdowns, hottest pages and
//! the relocation timeline — lands under `<dir>` (default `results/`).
//! `--trace-events` additionally streams every structured event to
//! `<dir>/<workload>_<system>.events.jsonl`.

use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use dsm_bench::figures::{
    all_workloads, fig10, fig11, fig3, fig4, fig5, fig6, fig7, fig8, fig9, origin, tables,
};
use dsm_bench::harness::{parse_argv, usage_exit, RunArgs};
use dsm_bench::{FigureTable, SweepJournal, TraceSet};
use dsm_core::obs::span::SpanTracer;
use dsm_core::obs::{write_json_atomic, Json, JsonlSink, StatsSink};
use dsm_core::{PcSize, PhaseCounters, SystemSpec, Tee};
use dsm_trace::WorkloadKind;
use dsm_types::DsmError;

const USAGE: &str = "reproduce [--scale <f>] [--jobs <n>] [--shard-workers <n>] [--markdown] [--out <dir>] [--journal <file> | --resume <file>] [--figures <csv>] [--workloads <csv>] [--progress] [--phase-stats] [--chrome-trace <file>]\n       reproduce --epoch <refs> [--trace-events] [--scale <f>] [--out <dir>]";

struct Flags {
    run: RunArgs,
    markdown: bool,
    epoch: Option<u64>,
    trace_events: bool,
    out: Option<PathBuf>,
    journal: Option<PathBuf>,
    resume: Option<PathBuf>,
    figures: Option<Vec<String>>,
    workloads: Option<Vec<WorkloadKind>>,
    progress: bool,
    phase_stats: bool,
    chrome_trace: Option<PathBuf>,
}

fn parse_workload_csv(csv: &str) -> Result<Vec<WorkloadKind>, String> {
    csv.split(',')
        .filter(|s| !s.trim().is_empty())
        .map(|name| {
            WorkloadKind::all()
                .into_iter()
                .find(|k| k.display_name().eq_ignore_ascii_case(name.trim()))
                .ok_or_else(|| format!("unknown workload '{}'", name.trim()))
        })
        .collect()
}

fn parse_flags() -> Flags {
    let mut markdown = false;
    let mut epoch = None;
    let mut trace_events = false;
    let mut out = None;
    let mut journal = None;
    let mut resume = None;
    let mut figures = None;
    let mut workloads = None;
    let mut progress = false;
    let mut phase_stats = false;
    let mut chrome_trace = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let run = parse_argv(&argv, |args, i| match args[i].as_str() {
        "--markdown" => {
            markdown = true;
            Ok(1)
        }
        "--trace-events" => {
            trace_events = true;
            Ok(1)
        }
        "--epoch" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--epoch requires a value".to_owned())?;
            let w: u64 = v.parse().map_err(|_| format!("bad epoch '{v}'"))?;
            if w == 0 {
                return Err("--epoch must be positive".to_owned());
            }
            epoch = Some(w);
            Ok(2)
        }
        "--out" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--out requires a value".to_owned())?;
            out = Some(PathBuf::from(v));
            Ok(2)
        }
        "--journal" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--journal requires a value".to_owned())?;
            journal = Some(PathBuf::from(v));
            Ok(2)
        }
        "--resume" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--resume requires a value".to_owned())?;
            resume = Some(PathBuf::from(v));
            Ok(2)
        }
        "--figures" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--figures requires a value".to_owned())?;
            figures = Some(
                v.split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().to_owned())
                    .collect::<Vec<_>>(),
            );
            Ok(2)
        }
        "--workloads" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--workloads requires a value".to_owned())?;
            workloads = Some(parse_workload_csv(v)?);
            Ok(2)
        }
        "--progress" => {
            progress = true;
            Ok(1)
        }
        "--phase-stats" => {
            phase_stats = true;
            Ok(1)
        }
        "--chrome-trace" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--chrome-trace requires a value".to_owned())?;
            chrome_trace = Some(PathBuf::from(v));
            Ok(2)
        }
        _ => Ok(0),
    })
    .unwrap_or_else(|msg| usage_exit(USAGE, &msg));
    if journal.is_some() && resume.is_some() {
        usage_exit(USAGE, "--journal and --resume are mutually exclusive");
    }
    if let Err(e) = dsm_bench::harness::install_fault_plan(&run) {
        usage_exit(USAGE, e.message());
    }
    Flags {
        run,
        markdown,
        epoch,
        trace_events,
        out,
        journal,
        resume,
        figures,
        workloads,
        progress,
        phase_stats,
        chrome_trace,
    }
}

/// Makes a spec name filesystem-friendly (`vxp5(t32)` -> `vxp5-t32`).
fn file_stem(name: &str) -> String {
    let mut out: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
        .collect();
    while out.contains("--") {
        out = out.replace("--", "-");
    }
    out.trim_matches('-').to_owned()
}

/// The instrumented reproduction: probed runs of every workload on the
/// key configurations, exported as JSON run reports. This path runs
/// serially regardless of `--jobs`: each run streams its own event log
/// and progress lines, which must stay ordered.
fn run_instrumented(flags: &Flags) -> Result<(), DsmError> {
    let scale = flags.run.scale;
    let out = flags
        .out
        .clone()
        .unwrap_or_else(|| PathBuf::from("results"));
    std::fs::create_dir_all(&out)
        .map_err(|e| DsmError::bad_input(format!("cannot create {}: {e}", out.display())))?;
    let specs = [
        SystemSpec::base(),
        SystemSpec::vb(),
        SystemSpec::ncd(),
        SystemSpec::vxp(PcSize::DataFraction(5), 32),
    ];
    let kinds = flags.workloads.clone().unwrap_or_else(all_workloads);
    let mut index: Vec<Json> = Vec::new();
    for &kind in &kinds {
        let mut ts = TraceSet::new(scale);
        let wl = kind.display_name().to_lowercase();
        for spec in &specs {
            eprintln!("reproduce: instrumented {wl}/{} ...", spec.name);
            let stem = format!("{wl}_{}", file_stem(&spec.name));
            let (report, sink) = if flags.trace_events {
                let ev_path = out.join(format!("{stem}.events.jsonl"));
                let file = BufWriter::new(File::create(&ev_path).map_err(|e| {
                    DsmError::bad_input(format!("cannot create {}: {e}", ev_path.display()))
                })?);
                let probe = Tee(StatsSink::new(), JsonlSink::new(file));
                let (report, Tee(sink, jsonl)) = ts.run_probed(spec, kind, probe, flags.epoch);
                let lines = jsonl.lines();
                jsonl
                    .finish()
                    .and_then(|mut f| f.flush().map(|()| f))
                    .map_err(|e| {
                        DsmError::internal(format!("event log {}: {e}", ev_path.display()))
                    })?;
                eprintln!("reproduce:   {} events -> {}", lines, ev_path.display());
                (report, sink)
            } else {
                ts.run_probed(spec, kind, StatsSink::new(), flags.epoch)
            };
            let path = out.join(format!("{stem}.json"));
            let json = Json::obj()
                .set("scale", scale.factor())
                .set(
                    "epoch_window",
                    match flags.epoch {
                        Some(w) => Json::U64(w),
                        None => Json::Null,
                    },
                )
                .set("report", report.to_json())
                .set("observability", sink.to_json(10));
            write_json_atomic(&path, &json)?;
            index.push(
                Json::obj()
                    .set(
                        "file",
                        path.file_name()
                            .map(|n| n.to_string_lossy().into_owned())
                            .unwrap_or_default(),
                    )
                    .set("workload", wl.as_str())
                    .set("system", spec.name.as_str())
                    .set("refs", report.refs)
                    .set("read_miss_ratio", report.read_miss_ratio)
                    .set("relocation_overhead", report.relocation_overhead),
            );
        }
    }
    let count = index.len();
    write_json_atomic(&out.join("index.json"), &Json::obj().set("runs", index))?;
    eprintln!("reproduce: wrote {count} run reports to {}", out.display());
    Ok(())
}

fn run_figures(flags: &Flags) -> Result<(), DsmError> {
    let scale = flags.run.scale;
    let jobs = flags.run.jobs;
    eprintln!(
        "reproduce: scale factor {}, {} sweep worker(s), {} shard worker(s)",
        scale.factor(),
        jobs.get(),
        flags.run.shard_workers
    );

    let journal: Option<Arc<SweepJournal>> = match (&flags.journal, &flags.resume) {
        (Some(path), None) => Some(Arc::new(SweepJournal::create(path)?)),
        (None, Some(path)) => {
            let j = SweepJournal::resume(path)?;
            eprintln!(
                "reproduce: resumed journal {} ({} completed point(s) will be skipped)",
                path.display(),
                j.resumed_points()
            );
            Some(Arc::new(j))
        }
        _ => None,
    };
    let tracer: Option<Arc<SpanTracer>> = flags
        .chrome_trace
        .as_ref()
        .map(|_| Arc::new(SpanTracer::new()));

    println!("{}", tables::table1());
    println!("{}", tables::table2());
    println!("{}", tables::table3());

    let kinds = flags.workloads.clone().unwrap_or_else(all_workloads);
    type Runner = fn(&mut TraceSet, &[WorkloadKind]) -> Result<FigureTable, DsmError>;
    // (journal scope key, dataset name, runner)
    let figures: Vec<(&str, &str, Runner)> = vec![
        ("fig3", "fig3", fig3::run as Runner),
        ("fig4", "fig4", fig4::run as Runner),
        ("fig5", "fig5", fig5::run as Runner),
        ("fig6", "fig6", fig6::run as Runner),
        (
            "fig6-tight",
            "fig6-tight (supplementary)",
            fig6::run_tight as Runner,
        ),
        ("fig7", "fig7", fig7::run as Runner),
        ("fig8", "fig8", fig8::run as Runner),
        ("fig9", "fig9", fig9::run as Runner),
        ("fig10", "fig10", fig10::run as Runner),
        ("fig11", "fig11", fig11::run as Runner),
        ("origin", "origin (supplementary)", origin::run as Runner),
    ];
    if let Some(wanted) = &flags.figures {
        for w in wanted {
            if !figures.iter().any(|(key, _, _)| key == w) {
                return Err(DsmError::usage(format!(
                    "unknown figure '{w}' (known: {})",
                    figures
                        .iter()
                        .map(|(key, _, _)| *key)
                        .collect::<Vec<_>>()
                        .join(", ")
                )));
            }
        }
    }

    // Per-figure timing entry: name, wall seconds, per-point rollups.
    type FigureTiming = (String, f64, Vec<(String, PhaseCounters)>);
    let mut exported: Vec<Json> = Vec::new();
    let mut timings: Vec<FigureTiming> = Vec::new();
    let mut failures: Vec<(String, DsmError)> = Vec::new();
    let t_all = std::time::Instant::now();
    for (key, name, runner) in figures {
        if flags
            .figures
            .as_ref()
            .is_some_and(|wanted| !wanted.iter().any(|w| w == key))
        {
            continue;
        }
        eprintln!("reproduce: running {name} ...");
        let t0 = std::time::Instant::now();
        if let Some(j) = &journal {
            j.set_scope(key);
        }
        // A fresh trace set per figure keeps peak memory to one trace.
        let mut ts = TraceSet::from_args(&flags.run);
        ts.set_journal(journal.clone());
        ts.set_progress(flags.progress);
        ts.enable_phase_stats(flags.phase_stats);
        ts.set_tracer(tracer.clone());
        let fig_span = tracer.as_deref().map(|t| {
            let lane = t.lane("main");
            t.span(lane, format!("figure: {name}"))
        });
        let table = match runner(&mut ts, &kinds) {
            Ok(t) => t,
            Err(e) => {
                drop(fig_span);
                eprintln!("reproduce: {name} FAILED");
                failures.push((name.to_owned(), e));
                continue;
            }
        };
        drop(fig_span);
        let wall_s = t0.elapsed().as_secs_f64();
        eprintln!("reproduce: {name} done in {wall_s:.1}s");
        // Rollups accumulate in completion order; sort by point label so
        // timings.json is stable across worker counts.
        let mut rollups = ts.take_phase_rollups();
        rollups.sort_by(|a, b| a.0.cmp(&b.0));
        timings.push((name.to_owned(), wall_s, rollups));
        if flags.markdown {
            println!("## {}\n\n{}", table.caption, table.render_markdown());
        } else {
            println!("{}", table.render());
        }
        if flags.out.is_some() {
            exported.push(table.to_json().set("figure", name));
        }
    }
    let total_s = t_all.elapsed().as_secs_f64();
    // Losing crash-safety must not be silent: points whose journal
    // entries were dropped by the sticky disable cannot be resumed.
    let journal_disabled_points = journal.as_ref().map_or(0, |j| j.disabled_points());
    if journal_disabled_points > 0 {
        eprintln!(
            "reproduce: WARNING: journaling was disabled mid-run; {journal_disabled_points} \
             point(s) were not journaled and would re-run on --resume"
        );
    }

    if !failures.is_empty() {
        eprintln!("reproduce: {} figure(s) failed:", failures.len());
        for (name, e) in &failures {
            eprintln!("reproduce: {name}: {e}");
        }
        eprintln!("reproduce: no dataset written");
        let (name, first) = failures.swap_remove(0);
        return Err(first.context(format!("figure {name}")));
    }
    eprintln!("reproduce: all figures done in {total_s:.1}s");

    if let Some(out) = &flags.out {
        std::fs::create_dir_all(out)
            .map_err(|e| DsmError::bad_input(format!("cannot create {}: {e}", out.display())))?;
        // The dataset: everything *but* wall clock, so any two runs at
        // one scale are byte-identical whatever the worker count.
        let path = out.join("reproduce_full.json");
        let json = Json::obj()
            .set("scale", scale.factor())
            .set("figures", exported);
        write_json_atomic(&path, &json)?;
        eprintln!("reproduce: wrote {}", path.display());
        // The timings, separately, so the sweep-engine speedup is
        // visible in results/ without polluting the diffable dataset.
        let t_path = out.join("timings.json");
        let figures_json: Vec<Json> = timings
            .into_iter()
            .map(|(name, wall_s, rollups)| {
                let mut fig = Json::obj().set("figure", name).set("wall_s", wall_s);
                if flags.phase_stats {
                    let phases: Vec<Json> = rollups
                        .into_iter()
                        .map(|(label, counters)| {
                            Json::obj()
                                .set("point", label)
                                .set("counters", counters.to_json())
                        })
                        .collect();
                    fig = fig.set("phases", phases);
                }
                fig
            })
            .collect();
        let t_json = Json::obj()
            .set("scale", scale.factor())
            .set("jobs", jobs.get())
            .set("total_wall_s", total_s)
            .set("journal_disabled_points", journal_disabled_points)
            .set("figures", figures_json);
        write_json_atomic(&t_path, &t_json)?;
        eprintln!("reproduce: wrote {}", t_path.display());
    }
    if let (Some(path), Some(t)) = (&flags.chrome_trace, &tracer) {
        t.write(path)?;
        eprintln!("reproduce: wrote {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    let flags = parse_flags();
    let result = if flags.epoch.is_some() || flags.trace_events {
        run_instrumented(&flags)
    } else {
        run_figures(&flags)
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
