//! Regenerates Tables 1-3 of the paper. The tables are analytic (latency
//! constants and workload footprints — no simulation), so no flags apply;
//! any argument is rejected.

use dsm_bench::figures::tables;

fn main() {
    if let Some(arg) = std::env::args().nth(1) {
        eprintln!("error: unexpected argument '{arg}'");
        eprintln!("usage: tables");
        eprintln!("(Tables 1-3 are analytic; the binary takes no flags)");
        std::process::exit(2);
    }
    println!("{}", tables::table1());
    println!("{}", tables::table2());
    println!("{}", tables::table3());
}
