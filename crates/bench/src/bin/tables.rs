//! Regenerates Tables 1-3 of the paper.

use dsm_bench::figures::tables;

fn main() {
    println!("{}", tables::table1());
    println!("{}", tables::table2());
    println!("{}", tables::table3());
}
