//! Measures simulator throughput (trace references per second) on
//! representative system configurations and records the numbers in
//! `BENCH_perf.json`, so the per-reference cost of the hot path is a
//! tracked quantity rather than an anecdote.
//!
//! Usage:
//!
//! ```text
//! throughput [--scale <f>] [--out <path>] \
//!            [--baseline <name>=<refs_per_s>]... [--baseline-commit <sha>]
//! ```
//!
//! Three configurations replay the same canned FFT trace through the
//! tinybench harness (median of 12 samples): the CC-NUMA base machine
//! (full-map directory, no NC), the SRAM victim network cache, and the
//! integrated NC + page-cache system. Each benchmark prints a tinybench
//! line; with `--out` the measured refs/sec land in a JSON file whose
//! schema is documented in the README ("Throughput benchmark").
//!
//! `--baseline` attaches reference numbers measured at an earlier commit
//! (`--baseline-commit`) so the file records the before/after pair; the
//! CI `bench-smoke` job compares a fresh run against the committed file
//! and fails on a >30% regression. Machine info (arch, OS, hardware
//! threads) is recorded so cross-machine numbers are never compared
//! blindly.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;

use dsm_bench::harness::{parse_argv, usage_exit};
use dsm_bench::tinybench::{consume, Tiny};
use dsm_bench::TraceSet;
use dsm_core::obs::Json;
use dsm_core::{PcSize, SystemSpec};
use dsm_trace::WorkloadKind;

const USAGE: &str = "throughput [--scale <f>] [--out <path>] [--baseline <name>=<refs_per_s>]... [--baseline-commit <sha>]";

fn main() {
    let mut out: Option<PathBuf> = None;
    let mut baseline: HashMap<String, f64> = HashMap::new();
    let mut baseline_commit: Option<String> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let run = parse_argv(&argv, |args, i| match args[i].as_str() {
        "--out" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--out requires a value".to_owned())?;
            out = Some(PathBuf::from(v));
            Ok(2)
        }
        "--baseline" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--baseline requires <name>=<refs_per_s>".to_owned())?;
            let (name, value) = v
                .split_once('=')
                .ok_or_else(|| format!("bad baseline '{v}' (want <name>=<refs_per_s>)"))?;
            let value: f64 = value
                .parse()
                .map_err(|_| format!("bad baseline value '{v}'"))?;
            baseline.insert(name.to_owned(), value);
            Ok(2)
        }
        "--baseline-commit" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--baseline-commit requires a value".to_owned())?;
            baseline_commit = Some(v.clone());
            Ok(2)
        }
        _ => Ok(0),
    })
    .unwrap_or_else(|msg| usage_exit(USAGE, &msg));

    let scale = run.scale;
    // The paper's three interesting design points: no NC, SRAM victim
    // NC, and the integrated NC + PC hierarchy.
    let specs = [
        SystemSpec::base(),
        SystemSpec::vb(),
        SystemSpec::vpp(PcSize::DataFraction(5)),
    ];

    let mut ts = TraceSet::new(scale);
    ts.prepare(WorkloadKind::Fft);
    // One untimed run per spec up front: validates the configs and
    // yields the reference count for the throughput denominator.
    let refs = ts.run_prepared(&specs[0], WorkloadKind::Fft).refs;
    eprintln!(
        "throughput: fft trace, scale {}, {refs} refs per replay",
        scale.factor()
    );

    let mut tiny = Tiny::unfiltered();
    tiny.group("sim_throughput");
    let mut measured: Vec<(String, f64)> = Vec::new();
    for spec in &specs {
        let eps = tiny.bench_value(&spec.name, refs, || {
            consume(ts.run_prepared(spec, WorkloadKind::Fft));
        });
        if let Some(eps) = eps {
            measured.push((spec.name.clone(), eps));
        }
    }

    let Some(out) = out else { return };
    let configs: Vec<Json> = measured
        .iter()
        .map(|(name, eps)| {
            let mut j = Json::obj()
                .set("name", name.as_str())
                .set("refs_per_s", *eps);
            if let Some(base) = baseline.get(name) {
                j = j
                    .set("baseline_refs_per_s", *base)
                    .set("speedup", *eps / *base);
            }
            j
        })
        .collect();
    let machine = Json::obj()
        .set("arch", std::env::consts::ARCH)
        .set("os", std::env::consts::OS)
        .set(
            "parallelism",
            std::thread::available_parallelism().map_or(0, |n| n.get() as u64),
        );
    let json = Json::obj()
        .set("schema", "dsm-bench-throughput/v1")
        .set("workload", "fft")
        .set("scale", scale.factor())
        .set("refs", refs)
        .set("machine", machine)
        .set(
            "baseline_commit",
            match &baseline_commit {
                Some(sha) => Json::Str(sha.clone()),
                None => Json::Null,
            },
        )
        .set("configs", configs);
    let mut f = BufWriter::new(
        File::create(&out).unwrap_or_else(|e| panic!("cannot create {}: {e}", out.display())),
    );
    writeln!(f, "{}", json.render())
        .and_then(|()| f.flush())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", out.display()));
    eprintln!("throughput: wrote {}", out.display());
}
