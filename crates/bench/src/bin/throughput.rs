//! Measures simulator throughput (trace references per second) on
//! representative system configurations and records the numbers in
//! `BENCH_perf.json`, so the per-reference cost of the hot path is a
//! tracked quantity rather than an anecdote.
//!
//! Usage:
//!
//! ```text
//! throughput [--scale <f>] [--shard-workers <n>] [--out <path>] [--best-of <n>] \
//!            [--baseline <workload>/<name>=<refs_per_s>]... [--baseline-commit <sha>]
//! ```
//!
//! Two canned workload traces — FFT (regular, high locality) and Radix
//! (irregular, permutation-heavy) — each replay through three
//! configurations under the tinybench harness (median of 12 samples):
//! the CC-NUMA base machine (full-map directory, no NC), the SRAM victim
//! network cache, and the integrated NC + page-cache system. Each
//! benchmark prints a tinybench line; with `--out` the measured refs/sec
//! land in a JSON file whose schema (`dsm-bench-throughput/v3`) is
//! documented in the README ("Throughput benchmark").
//!
//! `--baseline` attaches reference numbers measured at an earlier commit
//! (`--baseline-commit`), keyed `<workload>/<config>` (e.g. `fft/base`),
//! so the file records the before/after pair. The v3 schema makes the
//! baselines total: giving any `--baseline` requires one for *every*
//! workload/config pair, so no config can silently drop out of the
//! regression guard (v2 allowed partial coverage, and radix shipped
//! without baselines for two PRs). The CI `bench-smoke` job compares a
//! fresh run against the committed file and fails on a >30% regression.
//! Machine info (arch, OS, hardware threads) is recorded so
//! cross-machine numbers are never compared blindly.
//!
//! `--best-of <n>` repeats each configuration's benchmark `n` times and
//! records the fastest repetition. Throughput noise on shared machines
//! is one-sided (interference only ever slows a run down), so the
//! per-config maximum is the stable estimator the regression gates
//! compare; the default is a single repetition.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;

use dsm_bench::harness::{parse_argv, usage_exit};
use dsm_bench::tinybench::{consume, Tiny};
use dsm_bench::TraceSet;
use dsm_core::obs::{write_json_atomic, Json};
use dsm_core::{PcSize, SystemSpec};
use dsm_trace::WorkloadKind;

const USAGE: &str = "throughput [--scale <f>] [--shard-workers <n>] [--out <path>] [--best-of <n>] [--baseline <workload>/<name>=<refs_per_s>]... [--baseline-commit <sha>]";

/// The benchmarked workloads: one regular, one irregular kernel, so the
/// replay cost is tracked under both friendly and hostile access
/// patterns.
const WORKLOADS: [(WorkloadKind, &str); 2] =
    [(WorkloadKind::Fft, "fft"), (WorkloadKind::Radix, "radix")];

fn main() -> ExitCode {
    let mut out: Option<PathBuf> = None;
    let mut baseline: HashMap<String, f64> = HashMap::new();
    let mut baseline_commit: Option<String> = None;
    let mut best_of = 1usize;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let run = parse_argv(&argv, |args, i| match args[i].as_str() {
        "--out" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--out requires a value".to_owned())?;
            out = Some(PathBuf::from(v));
            Ok(2)
        }
        "--baseline" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--baseline requires <workload>/<name>=<refs_per_s>".to_owned())?;
            let (name, value) = v.split_once('=').ok_or_else(|| {
                format!("bad baseline '{v}' (want <workload>/<name>=<refs_per_s>)")
            })?;
            let value: f64 = value
                .parse()
                .map_err(|_| format!("bad baseline value '{v}'"))?;
            baseline.insert(name.to_owned(), value);
            Ok(2)
        }
        "--baseline-commit" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--baseline-commit requires a value".to_owned())?;
            baseline_commit = Some(v.clone());
            Ok(2)
        }
        "--best-of" => {
            let v = args
                .get(i + 1)
                .ok_or_else(|| "--best-of requires a value".to_owned())?;
            best_of = v
                .parse()
                .map_err(|_| format!("bad repetition count '{v}'"))?;
            if best_of == 0 {
                return Err("--best-of must be positive".to_owned());
            }
            Ok(2)
        }
        _ => Ok(0),
    })
    .unwrap_or_else(|msg| usage_exit(USAGE, &msg));

    let scale = run.scale;
    // The paper's three interesting design points: no NC, SRAM victim
    // NC, and the integrated NC + PC hierarchy.
    let specs = [
        SystemSpec::base(),
        SystemSpec::vb(),
        SystemSpec::vpp(PcSize::DataFraction(5)),
    ];

    // v3: baselines are all-or-nothing. A partial set means some config
    // silently escapes the CI regression guard, so reject it up front.
    if !baseline.is_empty() {
        let missing: Vec<String> = WORKLOADS
            .iter()
            .flat_map(|(_, wname)| specs.iter().map(move |s| format!("{wname}/{}", s.name)))
            .filter(|label| !baseline.contains_key(label))
            .collect();
        if !missing.is_empty() {
            usage_exit(
                USAGE,
                &format!(
                    "--baseline must cover every workload/config pair; missing: {}",
                    missing.join(", ")
                ),
            );
        }
    }

    let mut ts = TraceSet::from_args(&run);
    for (kind, _) in WORKLOADS {
        ts.prepare(kind);
    }
    if ts.shard_workers() > 1 {
        eprintln!(
            "throughput: sharded replay with {} workers",
            ts.shard_workers()
        );
    }

    let mut tiny = Tiny::unfiltered();
    tiny.group("sim_throughput");

    // One untimed run per workload up front: validates the configs and
    // yields the reference count for the throughput denominator.
    let mut workload_refs: Vec<u64> = Vec::new();
    for (kind, wname) in WORKLOADS {
        let refs = ts.run_prepared(&specs[0], kind).refs;
        eprintln!(
            "throughput: {wname} trace, scale {}, {refs} refs per replay",
            scale.factor()
        );
        workload_refs.push(refs);
    }

    // Interference is one-sided (it only ever slows a run down), so the
    // fastest repetition per config is the estimator the regression
    // gates compare. Repetitions run round-robin over the whole suite —
    // not back-to-back per config — so a slow window on a shared
    // machine degrades one round of every config instead of every
    // sample of one, which keeps the *ratios* between configs stable.
    let mut best: HashMap<String, f64> = HashMap::new();
    for _round in 0..best_of {
        for ((kind, wname), &refs) in WORKLOADS.iter().zip(&workload_refs) {
            for spec in &specs {
                let label = format!("{wname}/{}", spec.name);
                let eps = tiny.bench_value(&label, refs, || {
                    consume(ts.run_prepared(spec, *kind));
                });
                if let Some(eps) = eps {
                    let slot = best.entry(label).or_insert(eps);
                    *slot = slot.max(eps);
                }
            }
        }
    }

    let mut workload_reports: Vec<Json> = Vec::new();
    for ((_, wname), &refs) in WORKLOADS.iter().zip(&workload_refs) {
        let mut configs: Vec<Json> = Vec::new();
        for spec in &specs {
            let label = format!("{wname}/{}", spec.name);
            let Some(&eps) = best.get(&label) else {
                continue;
            };
            let mut j = Json::obj()
                .set("name", spec.name.as_str())
                .set("refs_per_s", eps);
            if let Some(base) = baseline.get(&label) {
                j = j
                    .set("baseline_refs_per_s", *base)
                    .set("speedup", eps / *base);
            }
            configs.push(j);
        }
        workload_reports.push(
            Json::obj()
                .set("workload", *wname)
                .set("refs", refs)
                .set("configs", configs),
        );
    }

    let Some(out) = out else {
        return ExitCode::SUCCESS;
    };
    let machine = Json::obj()
        .set("arch", std::env::consts::ARCH)
        .set("os", std::env::consts::OS)
        .set(
            "parallelism",
            std::thread::available_parallelism().map_or(0, |n| n.get() as u64),
        );
    let json = Json::obj()
        .set("schema", "dsm-bench-throughput/v3")
        .set("scale", scale.factor())
        .set("shard_workers", ts.shard_workers() as u64)
        .set("machine", machine)
        .set(
            "baseline_commit",
            match &baseline_commit {
                Some(sha) => Json::Str(sha.clone()),
                None => Json::Null,
            },
        )
        .set("workloads", workload_reports);
    if let Err(e) = write_json_atomic(&out, &json) {
        eprintln!("error: {e}");
        return ExitCode::from(e.exit_code());
    }
    eprintln!("throughput: wrote {}", out.display());
    ExitCode::SUCCESS
}
