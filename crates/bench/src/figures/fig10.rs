//! Figure 10: remote data traffic (read misses + write misses +
//! write-backs crossing the network), normalized to an infinite NC, for
//! the same systems as Figure 9.

use dsm_core::Report;
use dsm_trace::WorkloadKind;
use dsm_types::DsmError;

use crate::figures::fig9::{self, StallMetric};
use crate::harness::{normalized_table, run_grid, FigureTable, TraceSet};

/// Runs Figure 10 over `kinds`.
pub fn run(ts: &mut TraceSet, kinds: &[WorkloadKind]) -> Result<FigureTable, DsmError> {
    let specs = fig9::specs();
    let grid = run_grid(ts, &specs, kinds)?;
    Ok(normalized_table(
        "Figure 10: remote data traffic, normalized to an infinite NC",
        &grid,
        fig9::columns(),
        Report::traffic_metric,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_trace::Scale;

    #[test]
    fn victim_cache_cuts_radix_traffic() {
        let mut ts = TraceSet::new(Scale::new(0.1).unwrap());
        let t = run(&mut ts, &[WorkloadKind::Radix]).expect("figure run");
        let v = &t.rows[0].1;
        // Columns: base NCS NCD ncp vbp vpp ncp5 vbp5 vpp5.
        // "the victim cache is effective in reducing the traffic,
        // especially in Radix": vbp <= ncp.
        assert!(v[4] <= v[3] + 0.05, "vbp {} vs ncp {}", v[4], v[3]);
        // And every NC system cuts traffic below base.
        assert!(v[2] <= v[0], "NCD {} vs base {}", v[2], v[0]);
    }
}
