//! Figure 11: remote read stalls with relocation counters controlled by
//! the directory (`ncp5`, R-NUMA) versus by the victim cache (`vxp5`,
//! this paper), with initial thresholds 32 and 64 for the more eager
//! victimization counters. Normalized to an infinite DRAM NC.

use dsm_core::{PcSize, Report, SystemSpec};
use dsm_trace::WorkloadKind;
use dsm_types::DsmError;

use crate::figures::fig9::StallMetric;
use crate::harness::{normalized_table, run_grid, FigureTable, TraceSet};

/// The systems of Figure 11, baseline first.
#[must_use]
pub fn specs() -> Vec<SystemSpec> {
    vec![
        SystemSpec::infinite_dram(),
        SystemSpec::ncp(PcSize::DataFraction(5)),
        SystemSpec::vxp(PcSize::DataFraction(5), 32),
        SystemSpec::vxp(PcSize::DataFraction(5), 64),
    ]
}

/// Runs Figure 11 over `kinds`.
pub fn run(ts: &mut TraceSet, kinds: &[WorkloadKind]) -> Result<FigureTable, DsmError> {
    let specs = specs();
    let columns = specs.iter().skip(1).map(|s| s.name.clone()).collect();
    let grid = run_grid(ts, &specs, kinds)?;
    Ok(normalized_table(
        "Figure 11: remote read stalls, directory counters (ncp5) vs victim-set counters (vxp5), normalized",
        &grid,
        columns,
        Report::stall_metric,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_trace::Scale;

    #[test]
    fn vxp_is_competitive_with_directory_counters() {
        let mut ts = TraceSet::new(Scale::new(0.1).unwrap());
        let t = run(&mut ts, &[WorkloadKind::Fmm]).expect("figure run");
        let v = &t.rows[0].1;
        // "vxp performs as well as ncp": within 40% on the irregular apps
        // where the victim cache matters (generous bound for a scaled
        // trace).
        assert!(
            v[1] <= v[0] * 1.4 + 0.1,
            "vxp5(t32) {} vs ncp5 {}",
            v[1],
            v[0]
        );
    }
}
