//! Figure 3: effects of the network victim cache on the cluster remote
//! miss ratio, sweeping processor-cache associativity (1/2/4-way) against
//! victim-NC size (none, 1 KB, 16 KB).

use dsm_core::SystemSpec;
use dsm_trace::WorkloadKind;
use dsm_types::DsmError;

use crate::harness::{miss_ratio_table, run_grid, FigureTable, TraceSet};

/// The nine configurations of Figure 3, in the paper's bar order.
#[must_use]
pub fn specs() -> Vec<SystemSpec> {
    let mut out = Vec::new();
    for ways in [1usize, 2, 4] {
        for nc_bytes in [0u64, 1024, 16 * 1024] {
            let spec = if nc_bytes == 0 {
                SystemSpec::base()
            } else {
                SystemSpec::vb_sized(nc_bytes)
            };
            let mut spec = spec.with_cache(16 * 1024, ways);
            spec.name = format!("{}w-vb{}", ways, nc_bytes / 1024);
            out.push(spec);
        }
    }
    out
}

/// Runs Figure 3 over `kinds`.
pub fn run(ts: &mut TraceSet, kinds: &[WorkloadKind]) -> Result<FigureTable, DsmError> {
    let specs = specs();
    let columns = specs.iter().map(|s| s.name.clone()).collect();
    let grid = run_grid(ts, &specs, kinds)?;
    Ok(miss_ratio_table(
        "Figure 3: cluster miss ratio (%) vs cache associativity x victim-NC size",
        &grid,
        columns,
        false,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_trace::Scale;

    #[test]
    fn nine_configs_with_paper_names() {
        let s = specs();
        assert_eq!(s.len(), 9);
        assert_eq!(s[0].name, "1w-vb0");
        assert_eq!(s[8].name, "4w-vb16");
        assert_eq!(s[3].cache.ways, 2);
    }

    #[test]
    fn victim_nc_only_improves_miss_ratio() {
        let mut ts = TraceSet::new(Scale::new(0.1).unwrap());
        let t = run(&mut ts, &[WorkloadKind::Lu]).expect("figure run");
        assert_eq!(t.rows.len(), 1);
        let v = &t.rows[0].1;
        // Within each associativity, a bigger victim NC never hurts.
        for w in 0..3 {
            assert!(v[w * 3 + 1] <= v[w * 3] + 1e-9, "1K NC hurt at {w}w: {v:?}");
            assert!(
                v[w * 3 + 2] <= v[w * 3 + 1] + 1e-9,
                "16K NC hurt at {w}w: {v:?}"
            );
        }
        // Higher associativity with no NC never hurts LU.
        assert!(v[3] <= v[0] + 1e-9);
        assert!(v[6] <= v[3] + 1e-9);
    }
}
