//! Figure 4: cluster miss ratios for the two ways of integrating a 16-KB
//! NC — inclusion for dirty blocks (`nc`) versus a victim cache (`vb`).

use dsm_core::SystemSpec;
use dsm_trace::WorkloadKind;
use dsm_types::DsmError;

use crate::harness::{miss_ratio_table, run_grid, FigureTable, TraceSet};

/// Runs Figure 4 over `kinds`.
pub fn run(ts: &mut TraceSet, kinds: &[WorkloadKind]) -> Result<FigureTable, DsmError> {
    let specs = [SystemSpec::nc(), SystemSpec::vb()];
    let grid = run_grid(ts, &specs, kinds)?;
    Ok(miss_ratio_table(
        "Figure 4: cluster miss ratio (%), inclusion NC (nc) vs victim NC (vb), 16 KB",
        &grid,
        vec!["nc".into(), "vb".into()],
        false,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_trace::Scale;

    #[test]
    fn victim_beats_or_matches_inclusion() {
        let mut ts = TraceSet::new(Scale::new(0.1).unwrap());
        let t = run(&mut ts, &[WorkloadKind::Radix, WorkloadKind::Lu]).expect("figure run");
        for (name, v) in &t.rows {
            assert!(
                v[1] <= v[0] + 0.05,
                "{name}: vb ({}) worse than nc ({})",
                v[1],
                v[0]
            );
        }
        // Radix (write-capacity dominated) shows a clear victim-cache win.
        let radix = &t.rows[0].1;
        assert!(
            radix[1] < radix[0],
            "Radix: expected vb < nc, got {radix:?}"
        );
    }
}
