//! Figure 5: cluster miss ratios for the two victim-cache indexing
//! schemes — block-address (`vb`) versus page-address (`vp`) bits.

use dsm_core::SystemSpec;
use dsm_trace::WorkloadKind;
use dsm_types::DsmError;

use crate::harness::{miss_ratio_table, run_grid, FigureTable, TraceSet};

/// Runs Figure 5 over `kinds`.
pub fn run(ts: &mut TraceSet, kinds: &[WorkloadKind]) -> Result<FigureTable, DsmError> {
    let specs = [SystemSpec::vb(), SystemSpec::vp()];
    let grid = run_grid(ts, &specs, kinds)?;
    Ok(miss_ratio_table(
        "Figure 5: cluster miss ratio (%), block-indexed (vb) vs page-indexed (vp) victim NC",
        &grid,
        vec!["vb".into(), "vp".into()],
        false,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_trace::Scale;

    #[test]
    fn page_indexing_never_catastrophic() {
        // The paper: vp can degrade high-spatial-locality apps but "can
        // never lead to results worse than when no NC is present".
        let mut ts = TraceSet::new(Scale::new(0.1).unwrap());
        let base = {
            let grid = crate::harness::run_grid(
                &mut ts,
                &[dsm_core::SystemSpec::base()],
                &[WorkloadKind::Ocean],
            )
            .expect("base grid");
            (grid[0].1[0].read_miss_ratio + grid[0].1[0].write_miss_ratio) * 100.0
        };
        let t = run(&mut ts, &[WorkloadKind::Ocean]).expect("figure run");
        let vp = t.rows[0].1[1];
        assert!(vp <= base + 1e-9, "vp ({vp}) worse than no NC ({base})");
    }
}
