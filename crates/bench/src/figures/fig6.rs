//! Figure 6: adaptive versus fixed (32) relocation-threshold policies for
//! `ncp5` (page cache = 1/5 of the data set). The adaptive policy should
//! suppress page-cache thrashing (Barnes and Radix in the paper).

use dsm_core::{PcSize, SystemSpec, ThresholdPolicy};
use dsm_trace::WorkloadKind;
use dsm_types::DsmError;

use crate::harness::{miss_ratio_table, run_grid, FigureTable, TraceSet};

/// Runs Figure 6 over `kinds`. Values include the relocation overhead in
/// equivalent misses (the paper's bar tops).
pub fn run(ts: &mut TraceSet, kinds: &[WorkloadKind]) -> Result<FigureTable, DsmError> {
    run_at(ts, kinds, 5)
}

/// The same comparison with a deliberately tight page cache
/// (1/16 of the data set), where our synthetic traces actually thrash —
/// the paper notes "with smaller page caches, thrashing occurs in other
/// applications as well".
pub fn run_tight(ts: &mut TraceSet, kinds: &[WorkloadKind]) -> Result<FigureTable, DsmError> {
    run_at(ts, kinds, 16)
}

fn run_at(ts: &mut TraceSet, kinds: &[WorkloadKind], denom: u32) -> Result<FigureTable, DsmError> {
    let mut fixed =
        SystemSpec::ncp(PcSize::DataFraction(denom)).with_threshold(ThresholdPolicy::Fixed(32));
    fixed.name = format!("ncp{denom}-fixed32");
    let mut adaptive = SystemSpec::ncp(PcSize::DataFraction(denom));
    adaptive.name = format!("ncp{denom}-adaptive");
    let specs = [fixed, adaptive];
    let grid = run_grid(ts, &specs, kinds)?;
    Ok(miss_ratio_table(
        &format!(
            "Figure 6: cluster miss ratio + relocation overhead (%), fixed(32) vs adaptive threshold, ncp{denom}"
        ),
        &grid,
        vec!["fixed32".into(), "adaptive".into()],
        true,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_trace::Scale;

    #[test]
    fn adaptive_does_not_lose_badly() {
        let mut ts = TraceSet::new(Scale::new(0.1).unwrap());
        let t = run(&mut ts, &[WorkloadKind::Radix]).expect("figure run");
        let v = &t.rows[0].1;
        // Adaptive must be no worse than fixed beyond noise: its whole
        // point is to cut relocation overhead under thrashing.
        assert!(v[1] <= v[0] * 1.05 + 0.05, "adaptive {v:?}");
    }
}
