//! Figure 7: cluster miss ratios (plus relocation overhead) for systems
//! with page caches of 0, 1/9, 1/7 and 1/5 of the data-set size, with no
//! NC, with the inclusion NC (`ncp`, i.e. R-NUMA), and with the victim NC
//! (`vbp`).

use dsm_core::{CounterSource, PcSize, PcSpec, SystemSpec, ThresholdPolicy};
use dsm_trace::WorkloadKind;
use dsm_types::DsmError;

use crate::harness::{miss_ratio_table, run_grid, FigureTable, TraceSet};

fn pc_only(size: PcSize, suffix: &str) -> SystemSpec {
    SystemSpec {
        name: format!("pc{suffix}"),
        cache: dsm_core::CacheSpec::default(),
        nc: dsm_core::NcSpec::None,
        pc: Some(PcSpec {
            size,
            counters: CounterSource::Directory,
            threshold: ThresholdPolicy::Adaptive { initial: 32 },
            decrement_on_invalidation: false,
        }),
        dirty_shared: false,
        migrep: None,
        directory: dsm_core::DirectorySpec::FullMap,
    }
}

/// The twelve configurations of Figure 7: {no NC, nc, vb} x PC
/// {none, 1/9, 1/7, 1/5}.
#[must_use]
pub fn specs() -> Vec<SystemSpec> {
    let mut out = Vec::new();
    // No NC.
    out.push(SystemSpec::base());
    for d in [9u32, 7, 5] {
        out.push(pc_only(PcSize::DataFraction(d), &d.to_string()));
    }
    // Inclusion NC (R-NUMA).
    out.push(SystemSpec::nc());
    for d in [9u32, 7, 5] {
        out.push(SystemSpec::ncp(PcSize::DataFraction(d)));
    }
    // Victim NC.
    out.push(SystemSpec::vb());
    for d in [9u32, 7, 5] {
        out.push(SystemSpec::vbp(PcSize::DataFraction(d)));
    }
    out
}

/// Runs Figure 7 over `kinds`; values fold in relocation overhead.
pub fn run(ts: &mut TraceSet, kinds: &[WorkloadKind]) -> Result<FigureTable, DsmError> {
    let specs = specs();
    let columns = specs.iter().map(|s| s.name.clone()).collect();
    let grid = run_grid(ts, &specs, kinds)?;
    Ok(miss_ratio_table(
        "Figure 7: cluster miss ratio + relocation overhead (%), page-cache size sweep",
        &grid,
        columns,
        true,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_trace::Scale;

    #[test]
    fn twelve_configs() {
        let s = specs();
        assert_eq!(s.len(), 12);
        assert_eq!(s[0].name, "base");
        assert_eq!(s[7].name, "ncp5");
        assert_eq!(s[11].name, "vbp5");
    }

    #[test]
    fn nc_improves_over_no_nc_with_page_cache() {
        let mut ts = TraceSet::new(Scale::new(0.1).unwrap());
        let t = run(&mut ts, &[WorkloadKind::Fmm]).expect("figure run");
        let v = &t.rows[0].1;
        // The paper: "The 16KB NC clearly improves performance in both
        // ncp and vbp over the system without NC" (columns 3 = pc5,
        // 7 = ncp5, 11 = vbp5).
        assert!(v[7] <= v[3] + 0.1, "ncp5 {} vs pc5 {}", v[7], v[3]);
        assert!(v[11] <= v[3] + 0.1, "vbp5 {} vs pc5 {}", v[11], v[3]);
    }
}
