//! Figure 8: victim-cache indexing (block vs page) revisited in the
//! presence of a 1/5 page cache — the page cache absorbs the conflict
//! misses page indexing creates, making `vpp` feasible.

use dsm_core::{PcSize, SystemSpec};
use dsm_trace::WorkloadKind;
use dsm_types::DsmError;

use crate::harness::{miss_ratio_table, run_grid, FigureTable, TraceSet};

/// Runs Figure 8 over `kinds`; values fold in relocation overhead.
pub fn run(ts: &mut TraceSet, kinds: &[WorkloadKind]) -> Result<FigureTable, DsmError> {
    let specs = [
        SystemSpec::vbp(PcSize::DataFraction(5)),
        SystemSpec::vpp(PcSize::DataFraction(5)),
    ];
    let grid = run_grid(ts, &specs, kinds)?;
    Ok(miss_ratio_table(
        "Figure 8: cluster miss ratio + relocation overhead (%), vbp5 vs vpp5",
        &grid,
        vec!["vbp5".into(), "vpp5".into()],
        true,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_trace::Scale;

    #[test]
    fn indexing_gap_is_small_with_page_cache() {
        let mut ts = TraceSet::new(Scale::new(0.1).unwrap());
        let t = run(&mut ts, &[WorkloadKind::Ocean]).expect("figure run");
        let v = &t.rows[0].1;
        // "Overall, there is little difference between the two indexing
        // methods" once the page cache is present.
        let gap = (v[1] - v[0]).abs();
        let scale = v[0].max(0.1);
        assert!(gap / scale < 0.5, "vbp5 {} vs vpp5 {}", v[0], v[1]);
    }
}
