//! Figure 9: remote read stalls, normalized to a system with an infinite
//! (but slow, DRAM) NC. Compares `base`, the ideal `NCS`, the 512-KB DRAM
//! `NCD`, and the page-cache systems at equal DRAM (512 KB) and at 1/5 of
//! the data set.

use dsm_core::{PcSize, Report, SystemSpec};
use dsm_trace::WorkloadKind;
use dsm_types::DsmError;

use crate::harness::{normalized_table, run_grid, FigureTable, TraceSet};

/// The systems of Figure 9, baseline (infinite DRAM NC) first.
#[must_use]
pub fn specs() -> Vec<SystemSpec> {
    vec![
        SystemSpec::infinite_dram(),
        SystemSpec::base(),
        SystemSpec::ncs(),
        SystemSpec::ncd(),
        SystemSpec::ncp(PcSize::Bytes(512 * 1024)),
        SystemSpec::vbp(PcSize::Bytes(512 * 1024)),
        SystemSpec::vpp(PcSize::Bytes(512 * 1024)),
        SystemSpec::ncp(PcSize::DataFraction(5)),
        SystemSpec::vbp(PcSize::DataFraction(5)),
        SystemSpec::vpp(PcSize::DataFraction(5)),
    ]
}

/// Column labels (excluding the normalization baseline).
#[must_use]
pub fn columns() -> Vec<String> {
    specs().iter().skip(1).map(|s| s.name.clone()).collect()
}

/// Runs Figure 9 over `kinds`.
pub fn run(ts: &mut TraceSet, kinds: &[WorkloadKind]) -> Result<FigureTable, DsmError> {
    let specs = specs();
    let grid = run_grid(ts, &specs, kinds)?;
    Ok(normalized_table(
        "Figure 9: remote read stalls, normalized to an infinite DRAM NC",
        &grid,
        columns(),
        Report::stall_metric,
    ))
}

/// Extraction helper shared with Figures 10-11.
pub trait StallMetric {
    /// The remote read stall in cycles.
    fn stall_metric(&self) -> f64;
    /// The remote data traffic in block transfers.
    fn traffic_metric(&self) -> f64;
}

impl StallMetric for Report {
    fn stall_metric(&self) -> f64 {
        self.remote_read_stall as f64
    }
    fn traffic_metric(&self) -> f64 {
        self.remote_traffic as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_trace::Scale;

    #[test]
    fn ten_systems_baseline_first() {
        let s = specs();
        assert_eq!(s.len(), 10);
        assert_eq!(s[0].name, "NCD-inf");
        assert_eq!(columns().len(), 9);
    }

    #[test]
    fn ideal_sram_nc_is_best_or_near() {
        let mut ts = TraceSet::new(Scale::new(0.1).unwrap());
        let t = run(&mut ts, &[WorkloadKind::Lu]).expect("figure run");
        let v = &t.rows[0].1;
        // NCS (index 1) should beat base (index 0) and be <= 1 vs the
        // infinite DRAM baseline (it saturates capacity at SRAM speed).
        assert!(v[1] <= v[0] + 1e-9, "NCS {} vs base {}", v[1], v[0]);
        assert!(v[1] <= 1.0 + 1e-9, "NCS normalized {}", v[1]);
    }
}
