//! One module per paper figure/table.
//!
//! Every module exposes `run(ts, kinds)` returning one or more
//! [`crate::FigureTable`]s with the same rows/series the paper plots, and
//! every module has a same-named binary. Figure numbers follow the paper:
//!
//! * [`tables`] — Tables 1 (latency components), 2 (event latencies),
//!   3 (benchmark characteristics);
//! * [`fig3`] — miss ratio vs cache associativity x victim-NC size;
//! * [`fig4`] — inclusion NC vs victim NC;
//! * [`fig5`] — block- vs page-indexed victim NC;
//! * [`fig6`] — adaptive vs fixed relocation threshold;
//! * [`fig7`] — page-cache size sweep for noNC/ncp/vbp;
//! * [`fig8`] — vbp vs vpp under a page cache;
//! * [`fig9`] — remote read stalls, normalized;
//! * [`fig10`] — remote data traffic, normalized;
//! * [`fig11`] — directory counters (ncp) vs victim-set counters (vxp);
//! * [`origin`] — supplementary: SGI-Origin-style migration/replication
//!   vs network caches (the paper's concluding hypothesis).

pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod origin;
pub mod tables;

use dsm_trace::WorkloadKind;

/// The paper's eight benchmarks, in its order.
#[must_use]
pub fn all_workloads() -> Vec<WorkloadKind> {
    WorkloadKind::all().to_vec()
}
