//! Supplementary experiment: the SGI Origin alternative.
//!
//! The paper's Related Work notes that the Origin abandons network caches
//! for aggressive page migration/replication, and its Conclusions
//! hypothesize that "a small, very fast NC could shield the page
//! migration and replication policies from the noise of conflict misses,
//! thus improving system's performance". This experiment tests exactly
//! that: `origin` (migration + replication, no RDC) against `origin+vb`
//! (the same policies behind a 16-KB victim NC), with `base`, `vb` and
//! `NCD` for context, normalized to the infinite DRAM NC as in Figure 9.

use dsm_core::{Report, SystemSpec};
use dsm_trace::WorkloadKind;
use dsm_types::DsmError;

use crate::figures::fig9::StallMetric;
use crate::harness::{normalized_table, run_grid, FigureTable, TraceSet};

/// The systems of the Origin experiment, baseline first.
#[must_use]
pub fn specs() -> Vec<SystemSpec> {
    vec![
        SystemSpec::infinite_dram(),
        SystemSpec::base(),
        SystemSpec::vb(),
        SystemSpec::ncd(),
        SystemSpec::origin(),
        SystemSpec::origin_vb(),
    ]
}

/// Runs the Origin comparison over `kinds`.
pub fn run(ts: &mut TraceSet, kinds: &[WorkloadKind]) -> Result<FigureTable, DsmError> {
    let specs = specs();
    let columns = specs.iter().skip(1).map(|s| s.name.clone()).collect();
    let grid = run_grid(ts, &specs, kinds)?;
    Ok(normalized_table(
        "Supplementary: Origin-style migration/replication vs network caches, normalized remote read stall",
        &grid,
        columns,
        Report::stall_metric,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_trace::Scale;

    #[test]
    fn origin_policies_engage_on_read_mostly_workloads() {
        // Raytrace's scene is read-only shared: the replication path (not
        // migration) must fire. Whether it *pays* depends on per-page
        // reuse — with our uniform-random walk it does not, which is
        // itself the expected Origin behaviour on reuse-free data.
        let mut ts = TraceSet::new(Scale::new(0.1).unwrap());
        let grid =
            crate::harness::run_grid(&mut ts, &[SystemSpec::origin()], &[WorkloadKind::Raytrace])
                .expect("origin grid");
        let m = &grid[0].1[0].metrics;
        assert!(m.replications > 0, "{m:?}");
        assert!(
            m.migrations < m.replications / 100,
            "read-mostly data must replicate, not migrate: {m:?}"
        );
    }

    #[test]
    fn victim_nc_composes_with_origin() {
        let mut ts = TraceSet::new(Scale::new(0.1).unwrap());
        let t = run(&mut ts, &[WorkloadKind::Barnes]).expect("figure run");
        let v = &t.rows[0].1;
        // The paper's hypothesis: origin+vb <= origin (the NC absorbs
        // conflict misses the OS policies would otherwise chase).
        assert!(
            v[4] <= v[3] * 1.02 + 0.01,
            "origin+vb ({}) vs origin ({})",
            v[4],
            v[3]
        );
    }
}
