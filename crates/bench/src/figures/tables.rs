//! Tables 1-3 of the paper: latency components per system, event
//! latencies, and benchmark characteristics.

use dsm_core::{Latencies, LatencyModel, NcTechnology};
use dsm_trace::WorkloadKind;

/// Renders Table 1: latency components for remote data references, per
/// system class (values in bus cycles from Table 2).
#[must_use]
pub fn table1() -> String {
    let l = Latencies::paper_default();
    let none = LatencyModel::new(l, NcTechnology::None);
    let dram = LatencyModel::new(l, NcTechnology::Dram);
    let sram = LatencyModel::new(l, NcTechnology::Sram);
    let mut out = String::new();
    out.push_str("# Table 1: latency components for remote data references (bus cycles)\n");
    out.push_str("event      No-NC  DRAM-NC  SRAM-NC  SRAM-NC&PC\n");
    out.push_str(&format!(
        "PC hit     {:>5}  {:>7}  {:>7}  {:>10}\n",
        "-",
        "-",
        "-",
        sram.pc_hit()
    ));
    out.push_str(&format!(
        "NC hit     {:>5}  {:>7}  {:>7}  {:>10}\n",
        "-",
        dram.nc_hit(),
        sram.nc_hit(),
        sram.nc_hit()
    ));
    out.push_str(&format!(
        "NC miss    {:>5}  {:>7}  {:>7}  {:>10}\n",
        none.remote_miss(),
        dram.remote_miss(),
        sram.remote_miss(),
        sram.remote_miss()
    ));
    out
}

/// Renders Table 2: event latencies in 10-ns bus cycles.
#[must_use]
pub fn table2() -> String {
    let l = Latencies::paper_default();
    format!(
        "# Table 2: latencies for the events in Table 1 (10-ns bus cycles)\n\
         DRAM access              {:>4}\n\
         Tag checking             {:>4}\n\
         Cache-to-cache transfer  {:>4}\n\
         Remote access            {:>4}\n\
         Page relocation          {:>4}\n",
        l.dram_access, l.tag_check, l.cache_to_cache, l.remote_access, l.page_relocation
    )
}

/// Renders Table 3: benchmark parameters and shared-memory footprints as
/// implemented by the trace kernels (compare to the paper's column).
#[must_use]
pub fn table3() -> String {
    let paper_mb = [
        (WorkloadKind::Barnes, 3.94),
        (WorkloadKind::Cholesky, 21.37),
        (WorkloadKind::Fft, 3.54),
        (WorkloadKind::Fmm, 29.23),
        (WorkloadKind::Lu, 2.16),
        (WorkloadKind::Ocean, 15.52),
        (WorkloadKind::Radix, 9.87),
        (WorkloadKind::Raytrace, 34.86),
    ];
    let mut out = String::new();
    out.push_str("# Table 3: benchmark characteristics\n");
    out.push_str(&format!(
        "{:<10} {:<28} {:>10} {:>10}\n",
        "benchmark", "parameters", "MB (ours)", "MB (paper)"
    ));
    for (kind, paper) in paper_mb {
        let w = kind.paper_instance();
        let mb = w.shared_bytes() as f64 / (1024.0 * 1024.0);
        out.push_str(&format!(
            "{:<10} {:<28} {:>10.2} {:>10.2}\n",
            kind.display_name(),
            w.params(),
            mb,
            paper
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let t = table1();
        assert!(t.contains("13"), "DRAM NC hit = 10 + 3:\n{t}");
        assert!(t.contains("33"), "DRAM NC miss = 30 + 3:\n{t}");
    }

    #[test]
    fn table2_lists_constants() {
        let t = table2();
        for v in ["10", "3", "1", "30", "225"] {
            assert!(t.contains(v), "{t}");
        }
    }

    #[test]
    fn table3_footprints_track_paper() {
        let t = table3();
        assert!(t.contains("Radix"));
        // Every implemented footprint is within 25 % of the paper's.
        for line in t.lines().skip(2) {
            let cols: Vec<&str> = line.split_whitespace().collect();
            let ours: f64 = cols[cols.len() - 2].parse().unwrap();
            let paper: f64 = cols[cols.len() - 1].parse().unwrap();
            assert!(
                (ours - paper).abs() / paper < 0.25,
                "footprint drift: {line}"
            );
        }
    }
}
