//! Shared experiment machinery: trace caching, fair comparison, and table
//! rendering.

use std::collections::HashMap;

use dsm_core::obs::Json;
use dsm_core::runner::{run_trace, run_trace_probed};
use dsm_core::{Probe, Report, SystemSpec};
use dsm_trace::{Scale, WorkloadKind};
use dsm_types::{Geometry, MemRef, Topology};

/// Parses `--scale <f>` from argv, falling back to the `DSM_SCALE`
/// environment variable and then to 1.0.
///
/// # Panics
///
/// Panics with a usage message on malformed input.
#[must_use]
pub fn parse_scale_arg() -> Scale {
    let mut args = std::env::args().skip(1);
    let mut value: Option<f64> = None;
    while let Some(a) = args.next() {
        if a == "--scale" {
            let v = args
                .next()
                .unwrap_or_else(|| panic!("--scale requires a value"));
            value = Some(v.parse().unwrap_or_else(|_| panic!("bad scale '{v}'")));
        }
    }
    if value.is_none() {
        if let Ok(v) = std::env::var("DSM_SCALE") {
            value = Some(v.parse().unwrap_or_else(|_| panic!("bad DSM_SCALE '{v}'")));
        }
    }
    Scale::new(value.unwrap_or(1.0)).unwrap_or_else(|e| panic!("{e}"))
}

/// A cache of generated traces, one per workload, shared by every system
/// configuration of a figure (the paper's same-trace methodology).
pub struct TraceSet {
    topo: Topology,
    geo: Geometry,
    scale: Scale,
    traces: HashMap<WorkloadKind, (u64, Vec<MemRef>)>,
}

impl TraceSet {
    /// Creates an empty set generating paper-parameter traces at `scale`.
    #[must_use]
    pub fn new(scale: Scale) -> Self {
        TraceSet {
            topo: Topology::paper_default(),
            geo: Geometry::paper_default(),
            scale,
            traces: HashMap::new(),
        }
    }

    /// The machine topology in use.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    fn ensure(&mut self, kind: WorkloadKind) {
        if !self.traces.contains_key(&kind) {
            let w = kind.paper_instance();
            let trace = w.generate(&self.topo, self.scale);
            self.traces.insert(kind, (w.shared_bytes(), trace));
        }
    }

    /// Runs `spec` on `kind`'s cached trace.
    ///
    /// # Panics
    ///
    /// Panics if the system spec is invalid for this workload.
    pub fn run(&mut self, spec: &SystemSpec, kind: WorkloadKind) -> Report {
        self.ensure(kind);
        let (data_bytes, trace) = &self.traces[&kind];
        run_trace(
            spec,
            &kind.display_name().to_lowercase(),
            *data_bytes,
            trace,
            self.topo,
            self.geo,
        )
        .unwrap_or_else(|e| panic!("{}/{kind}: {e}", spec.name))
    }

    /// Runs `spec` on `kind`'s cached trace with an attached probe,
    /// returning the probe (with its collected events/epochs) next to the
    /// report. `epoch_window` enables epoch sampling.
    ///
    /// # Panics
    ///
    /// Panics if the system spec is invalid for this workload.
    pub fn run_probed<P: Probe>(
        &mut self,
        spec: &SystemSpec,
        kind: WorkloadKind,
        probe: P,
        epoch_window: Option<u64>,
    ) -> (Report, P) {
        self.ensure(kind);
        let (data_bytes, trace) = &self.traces[&kind];
        run_trace_probed(
            spec,
            &kind.display_name().to_lowercase(),
            *data_bytes,
            trace,
            self.topo,
            self.geo,
            probe,
            epoch_window,
        )
        .unwrap_or_else(|e| panic!("{}/{kind}: {e}", spec.name))
    }

    /// Drops `kind`'s cached trace (frees memory between figures).
    pub fn evict(&mut self, kind: WorkloadKind) {
        self.traces.remove(&kind);
    }
}

/// A printable figure: a caption, column headers, and one row per
/// benchmark.
#[derive(Debug, Clone)]
pub struct FigureTable {
    /// Figure caption.
    pub caption: String,
    /// Column headers (first column is the benchmark).
    pub columns: Vec<String>,
    /// Rows: benchmark name + one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Printf precision for values.
    pub precision: usize,
}

impl FigureTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(caption: impl Into<String>, columns: Vec<String>) -> Self {
        FigureTable {
            caption: caption.into(),
            columns,
            rows: Vec::new(),
            precision: 3,
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push((name.into(), values));
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.caption));
        let name_w = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain(["benchmark".len()])
            .max()
            .unwrap_or(9);
        let col_w = self
            .columns
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(8)
            .max(self.precision + 4);
        out.push_str(&format!("{:name_w$}", "benchmark"));
        for c in &self.columns {
            out.push_str(&format!("  {c:>col_w$}"));
        }
        out.push('\n');
        for (name, values) in &self.rows {
            out.push_str(&format!("{name:name_w$}"));
            for v in values {
                out.push_str(&format!("  {v:>col_w$.prec$}", prec = self.precision));
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the table as a JSON object (for `results/*.json`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|(name, values)| {
                Json::obj().set("benchmark", name.as_str()).set(
                    "values",
                    values.iter().map(|&v| Json::F64(v)).collect::<Vec<_>>(),
                )
            })
            .collect();
        Json::obj()
            .set("caption", self.caption.as_str())
            .set(
                "columns",
                self.columns
                    .iter()
                    .map(|c| Json::Str(c.clone()))
                    .collect::<Vec<_>>(),
            )
            .set("rows", rows)
    }

    /// Renders as a Markdown table (for EXPERIMENTS.md).
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| benchmark | {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|---|{}\n", "---|".repeat(self.columns.len())));
        for (name, values) in &self.rows {
            let vals: Vec<String> = values
                .iter()
                .map(|v| format!("{v:.prec$}", prec = self.precision))
                .collect();
            out.push_str(&format!("| {name} | {} |\n", vals.join(" | ")));
        }
        out
    }
}

/// Runs each spec on each workload (sharing traces) and returns
/// `(workload, reports-in-spec-order)` rows.
pub fn run_grid(
    ts: &mut TraceSet,
    specs: &[SystemSpec],
    kinds: &[WorkloadKind],
) -> Vec<(WorkloadKind, Vec<Report>)> {
    let mut rows = Vec::new();
    for &kind in kinds {
        let reports = specs.iter().map(|s| ts.run(s, kind)).collect();
        ts.evict(kind);
        rows.push((kind, reports));
    }
    rows
}

/// Builds a table of total cluster miss ratios (%) — the Figures 3-5/8
/// format. Each column is one spec; relocation overhead (x225/30) is
/// folded in when `include_relocation` is set (Figures 6-8 bar tops).
pub fn miss_ratio_table(
    caption: &str,
    grid: &[(WorkloadKind, Vec<Report>)],
    columns: Vec<String>,
    include_relocation: bool,
) -> FigureTable {
    let mut t = FigureTable::new(caption, columns);
    for (kind, reports) in grid {
        let values = reports
            .iter()
            .map(|r| {
                let mut v = (r.read_miss_ratio + r.write_miss_ratio) * 100.0;
                if include_relocation {
                    v += r.relocation_overhead * 100.0;
                }
                v
            })
            .collect();
        t.push_row(kind.display_name(), values);
    }
    t
}

/// Builds a table of values normalized to the *first* spec's value per
/// workload (the Figures 9-11 format, normalized to the infinite DRAM
/// NC), using `metric` to extract the value from each report.
pub fn normalized_table(
    caption: &str,
    grid: &[(WorkloadKind, Vec<Report>)],
    columns: Vec<String>,
    metric: impl Fn(&Report) -> f64,
) -> FigureTable {
    let mut t = FigureTable::new(caption, columns);
    for (kind, reports) in grid {
        let baseline = metric(&reports[0]).max(1e-12);
        let values = reports[1..].iter().map(|r| metric(r) / baseline).collect();
        t.push_row(kind.display_name(), values);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_table_renders() {
        let mut t = FigureTable::new("Test", vec!["a".into(), "b".into()]);
        t.push_row("FFT", vec![1.0, 2.5]);
        let text = t.render();
        assert!(text.contains("# Test"));
        assert!(text.contains("FFT"));
        assert!(text.contains("2.500"));
        let md = t.render_markdown();
        assert!(md.starts_with("| benchmark | a | b |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = FigureTable::new("Test", vec!["a".into()]);
        t.push_row("x", vec![1.0, 2.0]);
    }

    #[test]
    fn trace_set_shares_traces() {
        let mut ts = TraceSet::new(Scale::new(0.5).unwrap());
        // Use the smallest workload for speed.
        let r1 = ts.run(&SystemSpec::base(), WorkloadKind::Lu);
        let r2 = ts.run(&SystemSpec::vb(), WorkloadKind::Lu);
        assert_eq!(r1.refs, r2.refs);
        ts.evict(WorkloadKind::Lu);
    }
}
