//! Shared experiment machinery: strict CLI parsing, trace caching, fair
//! comparison, and table rendering.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dsm_core::obs::span::SpanTracer;
use dsm_core::obs::Json;
use dsm_core::runner::{run_trace, run_trace_probed, run_trace_sharded};
use dsm_core::{PhaseCounters, PhaseProfiler, Probe, Report, SystemSpec};
use dsm_trace::{open_shared_mapped, write_shared, Scale, SharedTrace, WorkloadKind};
use dsm_types::{DsmError, Geometry, Topology};

use crate::journal::SweepJournal;
use crate::sweep::{run_sweep, Jobs, SweepPoint};

/// The flags every figure binary accepts — one usage text shared by all
/// of them (and embedded in `reproduce`'s extended usage).
pub const COMMON_FLAGS_USAGE: &str = "\
common flags:
  --scale <f>  trace-length scale factor in (0, 1] (env DSM_SCALE; default 1.0)
  --jobs <n>   sweep worker threads (env DSM_JOBS; default: available
               parallelism; 1 = the serial legacy path)
  --shard-workers <n|auto>  replay threads per simulated point (env
               DSM_SHARD_WORKERS; default 1 = the single-threaded oracle
               path). Results are byte-identical for any value; sweep
               workers shrink to jobs/n so both levels share one budget,
               so n must not exceed --jobs (unless --jobs is 1, which
               dedicates the whole budget to replay). 'auto' derives n
               from the host's available parallelism, capped by the
               --jobs budget
  --mmap       replay traces through the zero-copy mmap loader:
               generated traces are spilled to a temp file and mapped
               read-only instead of staying heap-resident (env DSM_MMAP;
               results are byte-identical either way)
  --fault-seed <n>  arm the deterministic fault-injection plane with the
               plan derived from seed n (env DSM_FAULT_PLAN accepts a
               seed or an explicit site spec like worker-panic@r1.p0.s0;
               supervised recovery keeps results byte-identical or fails
               with a structured error — chaos testing only)";

/// The common CLI arguments of every experiment binary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunArgs {
    /// Trace-length scale factor.
    pub scale: Scale,
    /// Sweep-engine worker count.
    pub jobs: Jobs,
    /// Replay threads per simulated point (1 = oracle path).
    pub shard_workers: usize,
    /// Load traces through the zero-copy mmap path.
    pub mmap: bool,
    /// Fault-injection seed (`--fault-seed`): `Some` arms the plan
    /// derived from the seed via [`dsm_core::fault`]. `None` leaves the
    /// plane disarmed unless `DSM_FAULT_PLAN` is set.
    pub fault_seed: Option<u64>,
}

/// Parses `argv` (without the program name), accepting `--scale <f>`,
/// `--jobs <n>` and `--shard-workers <n>`. Any other argument is first
/// offered to `extra`, which
/// returns how many argv items it consumed (`Ok(0)` = unrecognized).
/// Unknown or malformed flags are an `Err` — nothing is silently
/// swallowed. Missing values fall back to `DSM_SCALE` / `DSM_JOBS`, then
/// to scale 1.0 / all available hardware threads.
///
/// # Errors
///
/// Returns the message to print above the usage text.
pub fn parse_argv(
    argv: &[String],
    mut extra: impl FnMut(&[String], usize) -> Result<usize, String>,
) -> Result<RunArgs, String> {
    /// `--shard-workers` before resolution: an explicit count, or
    /// `auto` (derive from available parallelism and the jobs budget).
    enum ShardWorkersArg {
        Count(usize),
        Auto,
    }
    fn parse_shard_workers(v: &str) -> Result<ShardWorkersArg, String> {
        if v == "auto" {
            return Ok(ShardWorkersArg::Auto);
        }
        v.parse()
            .map(ShardWorkersArg::Count)
            .map_err(|_| format!("bad worker count '{v}' (expected a number or 'auto')"))
    }
    let mut scale: Option<f64> = None;
    let mut jobs: Option<usize> = None;
    let mut shard_workers: Option<ShardWorkersArg> = None;
    let mut mmap = false;
    let mut fault_seed: Option<u64> = None;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                let v = argv
                    .get(i + 1)
                    .ok_or_else(|| "--scale requires a value".to_owned())?;
                scale = Some(v.parse().map_err(|_| format!("bad scale '{v}'"))?);
                i += 2;
            }
            "--jobs" => {
                let v = argv
                    .get(i + 1)
                    .ok_or_else(|| "--jobs requires a value".to_owned())?;
                jobs = Some(v.parse().map_err(|_| format!("bad job count '{v}'"))?);
                i += 2;
            }
            "--shard-workers" => {
                let v = argv
                    .get(i + 1)
                    .ok_or_else(|| "--shard-workers requires a value".to_owned())?;
                shard_workers = Some(parse_shard_workers(v)?);
                i += 2;
            }
            "--mmap" => {
                mmap = true;
                i += 1;
            }
            "--fault-seed" => {
                let v = argv
                    .get(i + 1)
                    .ok_or_else(|| "--fault-seed requires a value".to_owned())?;
                fault_seed = Some(v.parse().map_err(|_| format!("bad fault seed '{v}'"))?);
                i += 2;
            }
            other => match extra(argv, i)? {
                0 => return Err(format!("unknown flag '{other}'")),
                n => i += n,
            },
        }
    }
    if scale.is_none() {
        if let Ok(v) = std::env::var("DSM_SCALE") {
            scale = Some(v.parse().map_err(|_| format!("bad DSM_SCALE '{v}'"))?);
        }
    }
    if jobs.is_none() {
        if let Ok(v) = std::env::var("DSM_JOBS") {
            jobs = Some(v.parse().map_err(|_| format!("bad DSM_JOBS '{v}'"))?);
        }
    }
    if shard_workers.is_none() {
        if let Ok(v) = std::env::var("DSM_SHARD_WORKERS") {
            shard_workers =
                Some(parse_shard_workers(&v).map_err(|_| format!("bad DSM_SHARD_WORKERS '{v}'"))?);
        }
    }
    if !mmap {
        if let Ok(v) = std::env::var("DSM_MMAP") {
            mmap = !v.is_empty() && v != "0";
        }
    }
    let jobs = match jobs {
        Some(n) => Jobs::new(n)?,
        None => Jobs::available(),
    };
    // Resolve `auto` against the host and the jobs budget: under a
    // serial sweep (--jobs 1) every hardware thread goes to replay;
    // otherwise replay threads cannot exceed the sweep budget.
    let shard_workers = match shard_workers {
        None => 1,
        Some(ShardWorkersArg::Count(n)) => n,
        Some(ShardWorkersArg::Auto) => {
            let avail = Jobs::available().get();
            if jobs.get() == 1 {
                avail
            } else {
                avail.min(jobs.get())
            }
        }
    };
    if shard_workers == 0 {
        return Err("--shard-workers must be at least 1".to_owned());
    }
    // The two parallelism levels share one thread budget (jobs /
    // shard-workers sweep workers). Asking for more replay threads than
    // the budget holds cannot be honored — except under --jobs 1, the
    // explicit "serial sweep, all threads to replay" idiom.
    if jobs.get() > 1 && shard_workers > jobs.get() {
        let j = jobs.get();
        return Err(format!(
            "--shard-workers {shard_workers} exceeds the --jobs {j} thread budget: \
             the split {j} jobs / {shard_workers} replay threads leaves 0 concurrent \
             sweep points. Largest legal value here is --shard-workers {j} \
             (split: 1 sweep point x {j} replay threads); or use --jobs 1 to \
             dedicate every thread to replay, or --shard-workers auto to derive \
             a legal value"
        ));
    }
    Ok(RunArgs {
        scale: Scale::new(scale.unwrap_or(1.0)).map_err(|e| e.to_string())?,
        jobs,
        shard_workers,
        mmap,
        fault_seed,
    })
}

/// Arms the process-wide fault plan from `args.fault_seed` (or, when no
/// seed was given, from `DSM_FAULT_PLAN`). Binaries call this once
/// right after flag parsing; with neither source set it is a no-op and
/// the injection sites stay zero-cost.
///
/// # Errors
///
/// A malformed `DSM_FAULT_PLAN` spec is a usage error (exit code 2).
pub fn install_fault_plan(args: &RunArgs) -> Result<(), DsmError> {
    if let Some(seed) = args.fault_seed {
        let plan = dsm_core::fault::FaultPlan::derive(seed);
        dsm_core::fault::install(Some(plan));
        eprintln!("fault plan armed: seed {seed} -> {}", plan.spec());
        return Ok(());
    }
    if let Some(plan) = dsm_core::fault::install_from_env()? {
        eprintln!("fault plan armed: {}", plan.spec());
    }
    Ok(())
}

/// Prints `error: <msg>`, the binary's usage line, and the shared flag
/// reference, then exits with status 2.
pub fn usage_exit(usage_line: &str, msg: &str) -> ! {
    eprintln!("error: {msg}\nusage: {usage_line}\n{COMMON_FLAGS_USAGE}");
    std::process::exit(2);
}

/// Prints a figure-run error and maps it to the process exit code
/// (see `DsmError::exit_code`: 2 usage, 3 bad input, 4 internal).
#[must_use]
pub fn report_failure(e: &DsmError) -> std::process::ExitCode {
    eprintln!("error: {e}");
    std::process::ExitCode::from(e.exit_code())
}

/// Parses the process arguments of a figure binary (only the common
/// flags), exiting with `usage_line` on anything unrecognized.
#[must_use]
pub fn parse_run_args(usage_line: &str) -> RunArgs {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_argv(&argv, |_, _| Ok(0)).unwrap_or_else(|msg| usage_exit(usage_line, &msg));
    if let Err(e) = install_fault_plan(&args) {
        usage_exit(usage_line, e.message());
    }
    args
}

/// A cache of generated traces, one per workload, shared by every system
/// configuration of a figure (the paper's same-trace methodology).
///
/// The set also carries the sweep-engine worker count ([`Jobs`]): every
/// grid built from this set ([`run_grid`]) executes its points on that
/// many workers, all reading the same immutable trace. Generation happens
/// in [`TraceSet::prepare`] (or lazily in [`TraceSet::run`]) — never
/// inside the parallel region.
pub struct TraceSet {
    topo: Topology,
    geo: Geometry,
    scale: Scale,
    jobs: Jobs,
    /// Replay threads per simulated point (1 = the single-threaded
    /// oracle path). See [`TraceSet::effective_jobs`] for how this
    /// shares one thread budget with the sweep workers.
    shard_workers: usize,
    /// Spill generated traces to a temp file and reopen them through the
    /// zero-copy mmap loader (`--mmap`), so sweeps replay from mapped
    /// pages exactly like externally supplied trace files.
    mmap: bool,
    /// Crash-safety journal consulted and appended by the sweep engine
    /// (see [`SweepJournal`]); `None` = no journaling.
    journal: Option<Arc<SweepJournal>>,
    /// One columnar trace per workload: the decomposition columns are
    /// computed here, once, and shared read-only by every configuration
    /// (and every sweep worker) that replays the workload.
    traces: HashMap<WorkloadKind, (u64, SharedTrace)>,
    /// Live per-point progress lines on stderr (`--progress`).
    progress: bool,
    /// Per-point phase-counter collection (`--phase-stats`): sweep points
    /// run under a [`PhaseProfiler`] and their rollups accumulate here.
    phase_stats: bool,
    /// Span tracer shared with the sweep engine (`--chrome-trace`).
    tracer: Option<Arc<SpanTracer>>,
    /// Completed `(point label, counters)` rollups, appended by sweep
    /// workers under the mutex and drained by [`TraceSet::take_phase_rollups`].
    phase_rollups: Mutex<Vec<(String, PhaseCounters)>>,
}

impl TraceSet {
    /// Creates an empty set generating paper-parameter traces at `scale`,
    /// sweeping on all available hardware threads.
    #[must_use]
    pub fn new(scale: Scale) -> Self {
        TraceSet::with_jobs(scale, Jobs::available())
    }

    /// Builds a set from parsed CLI arguments: scale, sweep jobs and
    /// per-point replay workers — the one-liner every figure binary uses
    /// so `--shard-workers` is honored everywhere.
    #[must_use]
    pub fn from_args(args: &RunArgs) -> Self {
        let mut ts = TraceSet::with_jobs(args.scale, args.jobs);
        ts.set_shard_workers(args.shard_workers);
        ts.set_mmap(args.mmap);
        ts
    }

    /// [`TraceSet::new`] with an explicit sweep worker count.
    #[must_use]
    pub fn with_jobs(scale: Scale, jobs: Jobs) -> Self {
        TraceSet {
            topo: Topology::paper_default(),
            geo: Geometry::paper_default(),
            scale,
            jobs,
            shard_workers: 1,
            mmap: false,
            journal: None,
            traces: HashMap::new(),
            progress: false,
            phase_stats: false,
            tracer: None,
            phase_rollups: Mutex::new(Vec::new()),
        }
    }

    /// The machine topology in use.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The sweep worker count grids built from this set run on.
    #[must_use]
    pub fn jobs(&self) -> Jobs {
        self.jobs
    }

    /// Sets the replay-thread count per simulated point (see
    /// [`dsm_core::runner::run_trace_sharded`]); 1 restores the
    /// single-threaded oracle path. Results are identical either way.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn set_shard_workers(&mut self, workers: usize) {
        assert!(workers > 0, "shard workers must be at least 1");
        self.shard_workers = workers;
    }

    /// Replay threads per simulated point.
    #[must_use]
    pub fn shard_workers(&self) -> usize {
        self.shard_workers
    }

    /// Enables (or disables) the zero-copy trace path: traces generated
    /// by [`TraceSet::prepare`] are written to a temp file and reopened
    /// through the kernel mapping, so replays decode from mapped pages.
    /// Results are byte-identical either way.
    pub fn set_mmap(&mut self, on: bool) {
        self.mmap = on;
    }

    /// Whether prepared traces replay from a kernel mapping.
    #[must_use]
    pub fn mmap(&self) -> bool {
        self.mmap
    }

    /// The sweep worker count after sharing the thread budget with the
    /// per-point replay workers: `max(1, jobs / shard_workers)`, so
    /// `--jobs 8 --shard-workers 4` runs 2 concurrent points of 4 replay
    /// threads each instead of oversubscribing 32 threads.
    #[must_use]
    pub fn effective_jobs(&self) -> Jobs {
        let budget = (self.jobs.get() / self.shard_workers).max(1);
        Jobs::new(budget).unwrap_or_else(|_| Jobs::serial())
    }

    /// The trace-length scale factor (part of every trace's identity).
    #[must_use]
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Attaches (or detaches) a crash-safety journal: every sweep run
    /// from this set records completed points to it, and points a
    /// resumed journal already holds are skipped with their recorded
    /// reports returned instead.
    pub fn set_journal(&mut self, journal: Option<Arc<SweepJournal>>) {
        self.journal = journal;
    }

    /// The attached journal, if any.
    #[must_use]
    pub fn journal(&self) -> Option<&SweepJournal> {
        self.journal.as_deref()
    }

    /// Enables (or disables) live per-point progress lines on stderr.
    pub fn set_progress(&mut self, on: bool) {
        self.progress = on;
    }

    /// Whether sweeps from this set stream progress lines to stderr.
    #[must_use]
    pub fn progress(&self) -> bool {
        self.progress
    }

    /// Enables per-point phase-counter collection: sweep points run under
    /// a [`PhaseProfiler`] and their rollups accumulate on this set until
    /// drained with [`TraceSet::take_phase_rollups`]. Reports are
    /// unchanged (probes observe, never steer).
    pub fn enable_phase_stats(&mut self, on: bool) {
        self.phase_stats = on;
    }

    /// Whether sweep points run under phase profiling.
    #[must_use]
    pub fn phase_stats(&self) -> bool {
        self.phase_stats
    }

    /// Attaches (or detaches) a span tracer: trace generation and every
    /// sweep point record timed spans on it, one lane per sweep worker.
    pub fn set_tracer(&mut self, tracer: Option<Arc<SpanTracer>>) {
        self.tracer = tracer;
    }

    /// The attached span tracer, if any.
    #[must_use]
    pub fn tracer(&self) -> Option<&SpanTracer> {
        self.tracer.as_deref()
    }

    /// Records one completed point's phase-counter rollup (called by
    /// sweep workers; `&self` — the accumulator is behind a mutex).
    pub fn record_phase_rollup(&self, label: &str, counters: PhaseCounters) {
        self.phase_rollups
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((label.to_owned(), counters));
    }

    /// Drains the accumulated `(point label, counters)` rollups, in the
    /// order points completed (not submission order — sort by label for
    /// deterministic output).
    pub fn take_phase_rollups(&mut self) -> Vec<(String, PhaseCounters)> {
        std::mem::take(
            &mut *self
                .phase_rollups
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// Generates (once) the trace for `kind`; afterwards the trace is
    /// immutable and [`TraceSet::run_prepared`] can run on `&self` from
    /// any number of threads.
    pub fn prepare(&mut self, kind: WorkloadKind) {
        if !self.traces.contains_key(&kind) {
            let mut span = self.tracer.as_deref().map(|t| {
                let lane = t.lane("main");
                t.span(lane, format!("trace load: {kind}"))
            });
            let w = kind.paper_instance();
            let refs = w.generate(&self.topo, self.scale);
            if let Some(s) = &mut span {
                s.arg("refs", refs.len() as u64);
            }
            let mut trace = SharedTrace::from_refs(self.topo, self.geo, &refs);
            if self.mmap {
                trace = spill_and_map(kind, &trace);
            }
            self.traces.insert(kind, (w.shared_bytes(), trace));
        }
    }

    /// Runs `spec` on `kind`'s cached trace.
    ///
    /// # Panics
    ///
    /// Panics if the system spec is invalid for this workload.
    pub fn run(&mut self, spec: &SystemSpec, kind: WorkloadKind) -> Report {
        self.prepare(kind);
        self.run_prepared(spec, kind)
    }

    /// Runs `spec` on `kind`'s already-generated trace, without mutating
    /// the set — the shared read-only path the sweep workers use.
    ///
    /// # Panics
    ///
    /// Panics if `kind` was not [`TraceSet::prepare`]d, or if the system
    /// spec is invalid for this workload.
    pub fn run_prepared(&self, spec: &SystemSpec, kind: WorkloadKind) -> Report {
        let (data_bytes, trace) = self
            .traces
            .get(&kind)
            .unwrap_or_else(|| panic!("trace for {kind} not prepared"));
        let name = kind.display_name().to_lowercase();
        if self.shard_workers > 1 {
            run_trace_sharded(spec, &name, *data_bytes, trace, self.shard_workers)
        } else {
            run_trace(spec, &name, *data_bytes, trace)
        }
        .unwrap_or_else(|e| panic!("{}/{kind}: {e}", spec.name))
    }

    /// [`TraceSet::run_prepared`] under a [`PhaseProfiler`]: returns the
    /// report next to the point's phase counters. The report is identical
    /// to the unprofiled run — the profiler only observes.
    ///
    /// # Panics
    ///
    /// Panics if `kind` was not [`TraceSet::prepare`]d, or if the system
    /// spec is invalid for this workload.
    #[must_use]
    pub fn run_prepared_profiled(
        &self,
        spec: &SystemSpec,
        kind: WorkloadKind,
    ) -> (Report, PhaseCounters) {
        let (data_bytes, trace) = self
            .traces
            .get(&kind)
            .unwrap_or_else(|| panic!("trace for {kind} not prepared"));
        let (report, profiler) = run_trace_probed(
            spec,
            &kind.display_name().to_lowercase(),
            *data_bytes,
            trace,
            PhaseProfiler::for_spec(spec),
            None,
        )
        .unwrap_or_else(|e| panic!("{}/{kind}: {e}", spec.name));
        (report, profiler.into_counters())
    }

    /// Runs `spec` on `kind`'s cached trace with an attached probe,
    /// returning the probe (with its collected events/epochs) next to the
    /// report. `epoch_window` enables epoch sampling.
    ///
    /// # Panics
    ///
    /// Panics if the system spec is invalid for this workload.
    pub fn run_probed<P: Probe>(
        &mut self,
        spec: &SystemSpec,
        kind: WorkloadKind,
        probe: P,
        epoch_window: Option<u64>,
    ) -> (Report, P) {
        self.prepare(kind);
        let (data_bytes, trace) = &self.traces[&kind];
        run_trace_probed(
            spec,
            &kind.display_name().to_lowercase(),
            *data_bytes,
            trace,
            probe,
            epoch_window,
        )
        .unwrap_or_else(|e| panic!("{}/{kind}: {e}", spec.name))
    }

    /// Drops `kind`'s cached trace (frees memory between figures).
    pub fn evict(&mut self, kind: WorkloadKind) {
        self.traces.remove(&kind);
    }
}

/// Round-trips a generated trace through a temp `.dsmt` file and reopens
/// it with the zero-copy loader, so `--mmap` sweeps replay from kernel
/// mappings exactly like externally supplied trace files. The temp file
/// is unlinked immediately — success or failure — because the mapping
/// keeps the pages alive without the directory entry.
///
/// # Panics
///
/// Panics if the spill or re-open fails: an `--mmap` run that silently
/// fell back to heap storage would misreport what was measured.
fn spill_and_map(kind: WorkloadKind, trace: &SharedTrace) -> SharedTrace {
    use std::io::Write as _;
    let path = std::env::temp_dir().join(format!("dsm-bench-{}-{kind}.dsmt", std::process::id()));
    let spilled = (|| -> Result<SharedTrace, String> {
        let file =
            std::fs::File::create(&path).map_err(|e| format!("create {}: {e}", path.display()))?;
        let mut w = std::io::BufWriter::new(file);
        write_shared(&mut w, trace).map_err(|e| e.to_string())?;
        w.flush().map_err(|e| e.to_string())?;
        open_shared_mapped(&path).map_err(|e| e.to_string())
    })();
    let _ = std::fs::remove_file(&path);
    spilled.unwrap_or_else(|e| panic!("--mmap trace spill for {kind}: {e}"))
}

/// A printable figure: a caption, column headers, and one row per
/// benchmark.
#[derive(Debug, Clone)]
pub struct FigureTable {
    /// Figure caption.
    pub caption: String,
    /// Column headers (first column is the benchmark).
    pub columns: Vec<String>,
    /// Rows: benchmark name + one value per column.
    pub rows: Vec<(String, Vec<f64>)>,
    /// Printf precision for values.
    pub precision: usize,
}

impl FigureTable {
    /// Creates an empty table.
    #[must_use]
    pub fn new(caption: impl Into<String>, columns: Vec<String>) -> Self {
        FigureTable {
            caption: caption.into(),
            columns,
            rows: Vec::new(),
            precision: 3,
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn push_row(&mut self, name: impl Into<String>, values: Vec<f64>) {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push((name.into(), values));
    }

    /// Renders the table as aligned text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("# {}\n", self.caption));
        let name_w = self
            .rows
            .iter()
            .map(|(n, _)| n.len())
            .chain(["benchmark".len()])
            .max()
            .unwrap_or(9);
        let col_w = self
            .columns
            .iter()
            .map(String::len)
            .max()
            .unwrap_or(8)
            .max(self.precision + 4);
        out.push_str(&format!("{:name_w$}", "benchmark"));
        for c in &self.columns {
            out.push_str(&format!("  {c:>col_w$}"));
        }
        out.push('\n');
        for (name, values) in &self.rows {
            out.push_str(&format!("{name:name_w$}"));
            for v in values {
                out.push_str(&format!("  {v:>col_w$.prec$}", prec = self.precision));
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the table as a JSON object (for `results/*.json`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let rows: Vec<Json> = self
            .rows
            .iter()
            .map(|(name, values)| {
                Json::obj().set("benchmark", name.as_str()).set(
                    "values",
                    values.iter().map(|&v| Json::F64(v)).collect::<Vec<_>>(),
                )
            })
            .collect();
        Json::obj()
            .set("caption", self.caption.as_str())
            .set(
                "columns",
                self.columns
                    .iter()
                    .map(|c| Json::Str(c.clone()))
                    .collect::<Vec<_>>(),
            )
            .set("rows", rows)
    }

    /// Renders as a Markdown table (for EXPERIMENTS.md).
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| benchmark | {} |\n", self.columns.join(" | ")));
        out.push_str(&format!("|---|{}\n", "---|".repeat(self.columns.len())));
        for (name, values) in &self.rows {
            let vals: Vec<String> = values
                .iter()
                .map(|v| format!("{v:.prec$}", prec = self.precision))
                .collect();
            out.push_str(&format!("| {name} | {} |\n", vals.join(" | ")));
        }
        out
    }
}

/// Runs each spec on each workload (sharing traces) and returns
/// `(workload, reports-in-spec-order)` rows.
///
/// Each workload's points are enumerated as [`SweepPoint`]s and executed
/// through the parallel sweep engine on [`TraceSet::jobs`] workers — one
/// workload at a time, so peak memory stays at a single trace while all
/// configurations of that workload run concurrently over it. Row order
/// (and therefore every table and JSON export) is identical to the serial
/// run by the engine's submission-order guarantee.
///
/// # Errors
///
/// The whole grid is always attempted (a failed point never aborts the
/// remaining points — they keep running, and keep journaling if a
/// journal is attached). If any point failed, returns a [`DsmError`]
/// whose message lists every failure with its one-line `simulate`
/// repro invocation.
pub fn run_grid(
    ts: &mut TraceSet,
    specs: &[SystemSpec],
    kinds: &[WorkloadKind],
) -> Result<Vec<(WorkloadKind, Vec<Report>)>, DsmError> {
    // Sweep-level and replay-level parallelism share one thread budget.
    let jobs = ts.effective_jobs();
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    for &kind in kinds {
        let points: Vec<SweepPoint> = specs
            .iter()
            .map(|s| SweepPoint::new(s.clone(), kind))
            .collect();
        let outcomes = run_sweep(ts, &points, jobs);
        ts.evict(kind);
        let mut reports = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            match outcome.result {
                Ok(r) => reports.push(r),
                Err(f) => failures.push(f),
            }
        }
        rows.push((kind, reports));
    }
    if failures.is_empty() {
        return Ok(rows);
    }
    let mut msg = format!("{} sweep point(s) failed:", failures.len());
    for f in &failures {
        msg.push_str("\n  ");
        msg.push_str(&f.to_string());
    }
    // A disabled journal compounds the damage — the failed points'
    // retries won't be resumable — so the summary says so.
    let disabled = ts.journal().map_or(0, |j| j.disabled_points());
    if disabled > 0 {
        msg.push_str(&format!(
            "\n  (journaling was disabled mid-run; {disabled} point(s) were not journaled)"
        ));
    }
    Err(DsmError::internal(msg))
}

/// Builds a table of total cluster miss ratios (%) — the Figures 3-5/8
/// format. Each column is one spec; relocation overhead (x225/30) is
/// folded in when `include_relocation` is set (Figures 6-8 bar tops).
pub fn miss_ratio_table(
    caption: &str,
    grid: &[(WorkloadKind, Vec<Report>)],
    columns: Vec<String>,
    include_relocation: bool,
) -> FigureTable {
    let mut t = FigureTable::new(caption, columns);
    for (kind, reports) in grid {
        let values = reports
            .iter()
            .map(|r| {
                let mut v = (r.read_miss_ratio + r.write_miss_ratio) * 100.0;
                if include_relocation {
                    v += r.relocation_overhead * 100.0;
                }
                v
            })
            .collect();
        t.push_row(kind.display_name(), values);
    }
    t
}

/// Builds a table of values normalized to the *first* spec's value per
/// workload (the Figures 9-11 format, normalized to the infinite DRAM
/// NC), using `metric` to extract the value from each report.
pub fn normalized_table(
    caption: &str,
    grid: &[(WorkloadKind, Vec<Report>)],
    columns: Vec<String>,
    metric: impl Fn(&Report) -> f64,
) -> FigureTable {
    let mut t = FigureTable::new(caption, columns);
    for (kind, reports) in grid {
        let baseline = metric(&reports[0]).max(1e-12);
        let values = reports[1..].iter().map(|r| metric(r) / baseline).collect();
        t.push_row(kind.display_name(), values);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_table_renders() {
        let mut t = FigureTable::new("Test", vec!["a".into(), "b".into()]);
        t.push_row("FFT", vec![1.0, 2.5]);
        let text = t.render();
        assert!(text.contains("# Test"));
        assert!(text.contains("FFT"));
        assert!(text.contains("2.500"));
        let md = t.render_markdown();
        assert!(md.starts_with("| benchmark | a | b |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = FigureTable::new("Test", vec!["a".into()]);
        t.push_row("x", vec![1.0, 2.0]);
    }

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parse_argv_accepts_common_flags() {
        let a = parse_argv(&argv(&["--scale", "0.25", "--jobs", "3"]), |_, _| Ok(0)).unwrap();
        assert_eq!(a.scale.factor(), 0.25);
        assert_eq!(a.jobs.get(), 3);
    }

    #[test]
    fn parse_argv_rejects_unknown_and_malformed_flags() {
        let unknown = parse_argv(&argv(&["--scael", "0.1"]), |_, _| Ok(0)).unwrap_err();
        assert!(unknown.contains("--scael"), "{unknown}");
        // Regression: a stray flag *after* --scale <f> used to be
        // silently swallowed by the old scanner.
        let trailing = parse_argv(&argv(&["--scale", "0.1", "--bogus"]), |_, _| Ok(0)).unwrap_err();
        assert!(trailing.contains("--bogus"), "{trailing}");
        assert!(parse_argv(&argv(&["--scale"]), |_, _| Ok(0)).is_err());
        assert!(parse_argv(&argv(&["--scale", "two"]), |_, _| Ok(0)).is_err());
        assert!(parse_argv(&argv(&["--jobs", "0"]), |_, _| Ok(0)).is_err());
        assert!(parse_argv(&argv(&["--scale", "7"]), |_, _| Ok(0)).is_err());
    }

    #[test]
    fn parse_argv_accepts_shard_workers() {
        let a = parse_argv(&argv(&["--shard-workers", "4"]), |_, _| Ok(0)).unwrap();
        assert_eq!(a.shard_workers, 4);
        let default = parse_argv(&argv(&[]), |_, _| Ok(0)).unwrap();
        assert_eq!(default.shard_workers, 1);
        assert!(parse_argv(&argv(&["--shard-workers", "0"]), |_, _| Ok(0)).is_err());
        assert!(parse_argv(&argv(&["--shard-workers"]), |_, _| Ok(0)).is_err());
        assert!(parse_argv(&argv(&["--shard-workers", "many"]), |_, _| Ok(0)).is_err());
    }

    #[test]
    fn parse_argv_resolves_auto_shard_workers() {
        let avail = Jobs::available().get();
        // Serial sweep: auto dedicates the whole host to replay.
        let a = parse_argv(
            &argv(&["--jobs", "1", "--shard-workers", "auto"]),
            |_, _| Ok(0),
        )
        .unwrap();
        assert_eq!(a.shard_workers, avail);
        // Parallel sweep: auto is capped by the jobs budget, so the
        // result is always legal (never trips the exceeds error).
        let a = parse_argv(
            &argv(&["--jobs", "2", "--shard-workers", "auto"]),
            |_, _| Ok(0),
        )
        .unwrap();
        assert_eq!(a.shard_workers, avail.min(2));
        assert!(a.shard_workers >= 1);
    }

    #[test]
    fn parse_argv_accepts_mmap() {
        let a = parse_argv(&argv(&["--mmap", "--scale", "0.1"]), |_, _| Ok(0)).unwrap();
        assert!(a.mmap);
        let default = parse_argv(&argv(&[]), |_, _| Ok(0)).unwrap();
        assert!(!default.mmap);
    }

    #[test]
    fn parse_argv_rejects_replay_threads_beyond_the_jobs_budget() {
        // jobs/shard-workers integer-divide into the sweep budget; more
        // replay threads than jobs cannot be honored...
        let e = parse_argv(&argv(&["--jobs", "2", "--shard-workers", "4"]), |_, _| {
            Ok(0)
        })
        .unwrap_err();
        assert!(e.contains("exceeds"), "{e}");
        // The message spells out the computed split and the way out.
        assert!(e.contains("2 jobs / 4 replay threads"), "{e}");
        assert!(e.contains("--shard-workers 2"), "{e}");
        // ...except under --jobs 1, the "all threads to replay" idiom.
        let a = parse_argv(&argv(&["--jobs", "1", "--shard-workers", "4"]), |_, _| {
            Ok(0)
        })
        .unwrap();
        assert_eq!(a.shard_workers, 4);
        // Equal split is the boundary: still legal.
        let a = parse_argv(&argv(&["--jobs", "4", "--shard-workers", "4"]), |_, _| {
            Ok(0)
        })
        .unwrap();
        assert_eq!(a.jobs.get(), 4);
        assert_eq!(a.shard_workers, 4);
    }

    #[test]
    fn mmap_trace_set_runs_match_owned_runs() {
        let mut owned = TraceSet::with_jobs(Scale::new(0.5).unwrap(), Jobs::serial());
        let baseline = owned.run(&SystemSpec::vb(), WorkloadKind::Lu);
        let mut mapped = TraceSet::with_jobs(Scale::new(0.5).unwrap(), Jobs::serial());
        mapped.set_mmap(true);
        assert!(mapped.mmap());
        let spilled = mapped.run(&SystemSpec::vb(), WorkloadKind::Lu);
        assert_eq!(baseline, spilled);
    }

    #[test]
    fn shard_workers_shrink_the_sweep_budget() {
        let mut ts = TraceSet::with_jobs(Scale::new(0.5).unwrap(), Jobs::new(8).unwrap());
        assert_eq!(ts.effective_jobs().get(), 8);
        ts.set_shard_workers(4);
        assert_eq!(ts.shard_workers(), 4);
        assert_eq!(ts.effective_jobs().get(), 2);
        ts.set_shard_workers(16); // more replay threads than jobs
        assert_eq!(ts.effective_jobs().get(), 1);
    }

    #[test]
    fn sharded_trace_set_runs_match_oracle() {
        let mut ts = TraceSet::with_jobs(Scale::new(0.5).unwrap(), Jobs::serial());
        ts.prepare(WorkloadKind::Lu);
        let oracle = ts.run_prepared(&SystemSpec::vb(), WorkloadKind::Lu);
        ts.set_shard_workers(4);
        let sharded = ts.run_prepared(&SystemSpec::vb(), WorkloadKind::Lu);
        assert_eq!(oracle, sharded);
        ts.evict(WorkloadKind::Lu);
    }

    #[test]
    fn parse_argv_lets_callers_claim_extra_flags() {
        let mut markdown = false;
        let a = parse_argv(&argv(&["--markdown", "--jobs", "2"]), |args, i| {
            if args[i] == "--markdown" {
                markdown = true;
                Ok(1)
            } else {
                Ok(0)
            }
        })
        .unwrap();
        assert!(markdown);
        assert_eq!(a.jobs.get(), 2);
    }

    #[test]
    fn trace_set_shares_traces() {
        let mut ts = TraceSet::new(Scale::new(0.5).unwrap());
        // Use the smallest workload for speed.
        let r1 = ts.run(&SystemSpec::base(), WorkloadKind::Lu);
        let r2 = ts.run(&SystemSpec::vb(), WorkloadKind::Lu);
        assert_eq!(r1.refs, r2.refs);
        ts.evict(WorkloadKind::Lu);
    }
}
