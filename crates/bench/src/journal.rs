//! Crash-safe sweep journaling: an append-only JSONL record of every
//! completed sweep point, fsynced per entry, from which an interrupted
//! reproduction can resume.
//!
//! Each line is one JSON object:
//!
//! ```text
//! {"scope":"fig3","label":"1w-vb0/LU","wall_s":1.2,"report":{...}}
//! {"scope":"fig3","label":"x/LU","wall_s":0.4,"failed":{"message":...,"repro":...}}
//! ```
//!
//! `scope` is the enclosing experiment (the figure name), so one journal
//! can span a whole `reproduce` run; `label` is the sweep point's label.
//! Successful points carry the full [`Report`] (which round-trips
//! byte-identically through the JSON writer/parser); failed points carry
//! the structured [`PointFailure`] so the failure summary — including
//! the one-line repro invocation — survives the crash.
//!
//! On [`SweepJournal::resume`], successful entries become a skip-set:
//! the sweep engine returns their recorded reports without re-running
//! them, in submission order, so a killed-and-resumed run merges to
//! byte-identical output. Failed entries are *not* skipped — a resumed
//! run retries them. A torn final line (the crash happened mid-write)
//! is ignored, as is everything after it.

use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use dsm_core::obs::Json;
use dsm_core::Report;
use dsm_types::{DsmError, FxHashMap};

use crate::sweep::PointFailure;

/// The journal: shared by every worker of a sweep, serialized by an
/// internal mutex, durable per entry (`fsync` after each line).
#[derive(Debug)]
pub struct SweepJournal {
    inner: Mutex<Inner>,
}

#[derive(Debug)]
struct Inner {
    /// `None` after a write failure: journaling disables itself (with a
    /// warning) rather than failing the sweep it was meant to protect.
    file: Option<File>,
    path: PathBuf,
    scope: String,
    /// Completed points from a resumed journal, keyed `scope/label`.
    completed: FxHashMap<String, Report>,
    /// Entries lost to the sticky disable: the append that failed plus
    /// every one skipped afterwards. Surfaced in the sweep failure
    /// summary and `timings.json` so losing crash-safety is never
    /// silent.
    disabled_appends: u64,
}

impl SweepJournal {
    /// Starts a fresh journal at `path`, truncating any existing file.
    ///
    /// # Errors
    ///
    /// Returns a [`DsmError`] if the file cannot be created.
    pub fn create(path: &Path) -> Result<Self, DsmError> {
        let file = File::create(path).map_err(|e| {
            DsmError::bad_input(format!("cannot create journal {}: {e}", path.display()))
        })?;
        Ok(SweepJournal {
            inner: Mutex::new(Inner {
                file: Some(file),
                path: path.to_owned(),
                scope: String::new(),
                completed: FxHashMap::default(),
                disabled_appends: 0,
            }),
        })
    }

    /// Reopens the journal at `path`, loading every successful entry as
    /// a skip-set and appending new entries after them. Lines after a
    /// torn (unparseable) line are ignored — they are the debris of the
    /// crash being resumed from.
    ///
    /// # Errors
    ///
    /// Returns a [`DsmError`] if the file cannot be read or reopened,
    /// or if a well-formed entry carries a malformed report.
    pub fn resume(path: &Path) -> Result<Self, DsmError> {
        let mut text = String::new();
        File::open(path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| {
                DsmError::bad_input(format!("cannot read journal {}: {e}", path.display()))
            })?;
        let mut completed = FxHashMap::default();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(entry) = Json::parse(line) else {
                break; // torn tail: the crash interrupted this write
            };
            let (Some(scope), Some(label)) = (
                entry.get("scope").and_then(Json::as_str),
                entry.get("label").and_then(Json::as_str),
            ) else {
                return Err(DsmError::bad_input(format!(
                    "journal {}: entry without scope/label",
                    path.display()
                )));
            };
            if let Some(report) = entry.get("report") {
                let report = Report::from_json(report)
                    .map_err(|e| e.context(format!("journal {}", path.display())))?;
                completed.insert(format!("{scope}/{label}"), report);
            }
            // Failed entries are read past but not skipped: resume
            // retries them.
        }
        let file = OpenOptions::new().append(true).open(path).map_err(|e| {
            DsmError::bad_input(format!("cannot reopen journal {}: {e}", path.display()))
        })?;
        Ok(SweepJournal {
            inner: Mutex::new(Inner {
                file: Some(file),
                path: path.to_owned(),
                scope: String::new(),
                completed,
                disabled_appends: 0,
            }),
        })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Sets the scope (experiment name) recorded with subsequent entries
    /// and consulted by [`SweepJournal::lookup`].
    pub fn set_scope(&self, scope: &str) {
        self.lock().scope = scope.to_owned();
    }

    /// The report a resumed journal recorded for `label` under the
    /// current scope, if that point already completed successfully.
    #[must_use]
    pub fn lookup(&self, label: &str) -> Option<Report> {
        let inner = self.lock();
        inner
            .completed
            .get(&format!("{}/{label}", inner.scope))
            .cloned()
    }

    /// Number of completed points loaded by [`SweepJournal::resume`].
    #[must_use]
    pub fn resumed_points(&self) -> usize {
        self.lock().completed.len()
    }

    /// Entries lost to the sticky disable — the failed append plus
    /// every append skipped after it. Zero while journaling is healthy.
    #[must_use]
    pub fn disabled_points(&self) -> u64 {
        self.lock().disabled_appends
    }

    /// Appends a successful point. Durable before return (fsync).
    pub fn record_ok(&self, label: &str, report: &Report, wall_s: f64) {
        let entry = |scope: &str| {
            Json::obj()
                .set("scope", scope)
                .set("label", label)
                .set("wall_s", wall_s)
                .set("report", report.to_json())
        };
        self.append(entry);
    }

    /// Appends a failed point (structured, including the repro line).
    /// Durable before return (fsync).
    pub fn record_failed(&self, failure: &PointFailure, wall_s: f64) {
        let entry = |scope: &str| {
            Json::obj()
                .set("scope", scope)
                .set("label", failure.label.as_str())
                .set("wall_s", wall_s)
                .set("failed", failure.to_json())
        };
        self.append(entry);
    }

    /// Writes one entry under the mutex. Transient failures (`EINTR`,
    /// injected or real) get a bounded retry-with-backoff first; a
    /// persistent failure disables the journal (sticky, counted) with a
    /// warning instead of failing the sweep.
    fn append(&self, entry: impl FnOnce(&str) -> Json) {
        let mut inner = self.lock();
        let line = entry(&inner.scope).render();
        let Some(file) = inner.file.as_mut() else {
            inner.disabled_appends += 1;
            return;
        };
        let result =
            dsm_core::fault::retry_transient(dsm_core::fault::FaultSite::JournalIo, || {
                writeln!(file, "{line}").and_then(|()| file.sync_data())
            });
        if let Err(e) = result {
            eprintln!(
                "warning: journal {} failed ({e}); journaling disabled for the rest of the run",
                inner.path.display()
            );
            inner.file = None;
            inner.disabled_appends += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dsm-journal-{}-{name}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        dir
    }

    fn sample_report(label: &str) -> Report {
        // A report with enough non-trivial floats to exercise the
        // byte-identity of the JSON round-trip.
        let mut r = Report {
            system: label.to_owned(),
            workload: "lu".to_owned(),
            data_bytes: 1 << 20,
            refs: 12345,
            read_miss_ratio: 0.062_499_999_3,
            write_miss_ratio: 0.01,
            relocation_overhead: 0.0,
            remote_read_stall: 987_654,
            remote_traffic: 4321,
            directory_bits_per_block: 32,
            metrics: dsm_core::Metrics::default(),
            wall_s: 1.5,
        };
        r.metrics.shared_refs = 12345;
        r
    }

    #[test]
    fn journal_round_trips_completed_points() {
        let path = tmp_path("roundtrip");
        let j = SweepJournal::create(&path).expect("create");
        j.set_scope("fig3");
        let r = sample_report("base");
        j.record_ok("base/LU", &r, 0.25);
        drop(j);

        let j = SweepJournal::resume(&path).expect("resume");
        assert_eq!(j.resumed_points(), 1);
        j.set_scope("fig3");
        let back = j.lookup("base/LU").expect("completed point");
        assert_eq!(back, r);
        // Wrong scope, wrong label: no hit.
        j.set_scope("fig4");
        assert!(j.lookup("base/LU").is_none());
        j.set_scope("fig3");
        assert!(j.lookup("vb/LU").is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_ignored_and_failures_are_retried() {
        let path = tmp_path("torn");
        let j = SweepJournal::create(&path).expect("create");
        j.set_scope("fig3");
        j.record_ok("base/LU", &sample_report("base"), 0.1);
        let failure = PointFailure {
            label: "vb/LU".to_owned(),
            system: "vb".to_owned(),
            workload: "LU".to_owned(),
            scale: 0.05,
            message: "boom".to_owned(),
            repro: "simulate --system vb --workload lu --scale 0.05".to_owned(),
        };
        j.record_failed(&failure, 0.2);
        drop(j);
        // Simulate a crash mid-write: a torn final line.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            write!(f, "{{\"scope\":\"fig3\",\"label\":\"nc/LU\",\"repo").unwrap();
        }

        let j = SweepJournal::resume(&path).expect("resume tolerates the torn tail");
        j.set_scope("fig3");
        assert!(j.lookup("base/LU").is_some(), "completed point skipped");
        assert!(j.lookup("vb/LU").is_none(), "failed point must be retried");
        assert!(j.lookup("nc/LU").is_none(), "torn point must be retried");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn transient_injected_failures_are_retried_not_sticky() {
        let _guard = dsm_core::fault::test_lock();
        let path = tmp_path("transient");
        let j = SweepJournal::create(&path).expect("create");
        j.set_scope("fig3");
        // Two injected EINTRs fit the three-attempt retry budget: the
        // append lands and journaling stays enabled.
        dsm_core::fault::install(Some(
            dsm_core::fault::FaultPlan::from_spec("journal-io:2").unwrap(),
        ));
        j.record_ok("base/LU", &sample_report("base"), 0.1);
        dsm_core::fault::install(None);
        assert_eq!(j.disabled_points(), 0);
        drop(j);
        let j = SweepJournal::resume(&path).expect("resume");
        assert_eq!(j.resumed_points(), 1, "retried append is durable");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn exhausted_injection_budget_disables_and_counts() {
        let _guard = dsm_core::fault::test_lock();
        let path = tmp_path("sticky");
        let j = SweepJournal::create(&path).expect("create");
        j.set_scope("fig3");
        // Four failures outlast the three attempts: sticky disable.
        dsm_core::fault::install(Some(
            dsm_core::fault::FaultPlan::from_spec("journal-io:4").unwrap(),
        ));
        j.record_ok("base/LU", &sample_report("base"), 0.1);
        dsm_core::fault::install(None);
        assert_eq!(j.disabled_points(), 1, "the failed append is counted");
        j.record_ok("vb/LU", &sample_report("vb"), 0.1);
        j.record_ok("nc/LU", &sample_report("nc"), 0.1);
        assert_eq!(j.disabled_points(), 3, "skipped appends count too");
        drop(j);
        let j = SweepJournal::resume(&path).expect("resume");
        assert_eq!(j.resumed_points(), 0, "nothing was durably recorded");
        std::fs::remove_file(&path).ok();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn real_enospc_disables_without_retry_loops() {
        // /dev/full fails every write with ENOSPC — a non-transient
        // error that must go straight to the sticky disable.
        let Ok(file) = OpenOptions::new().append(true).open("/dev/full") else {
            return; // container without /dev/full
        };
        let j = SweepJournal {
            inner: Mutex::new(Inner {
                file: Some(file),
                path: PathBuf::from("/dev/full"),
                scope: "fig3".to_owned(),
                completed: FxHashMap::default(),
                disabled_appends: 0,
            }),
        };
        j.record_ok("base/LU", &sample_report("base"), 0.1);
        assert_eq!(j.disabled_points(), 1);
        j.record_ok("vb/LU", &sample_report("vb"), 0.1);
        assert_eq!(j.disabled_points(), 2);
    }
}
