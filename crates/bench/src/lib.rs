//! Experiment harnesses that regenerate every table and figure of the
//! paper.
//!
//! Each figure has a module under [`figures`] exposing a `run` function
//! returning printable rows, and a binary (`cargo run -p dsm-bench
//! --release --bin fig3` etc.) that prints them. `--bin reproduce` runs
//! everything and emits the data behind `EXPERIMENTS.md`.
//!
//! Traces are generated **once per workload** and shared across all system
//! configurations of a figure — the paper's methodology (every system sees
//! the same reference stream).
//!
//! Trace lengths are controlled by a scale factor in `(0, 1]` (see
//! `dsm_trace::Scale`), settable with `--scale <f>` on every binary or the
//! `DSM_SCALE` environment variable; the default is 1.0 (full-length
//! traces, minutes of runtime in release mode).
//!
//! Sweeps execute on the parallel engine in [`sweep`]: every (system,
//! workload) point of a figure is enumerated as a [`sweep::SweepPoint`]
//! and run on a scoped-thread worker pool sharing the workload's
//! immutable trace, with results returned in submission order so the
//! output is byte-identical to a serial run. `--jobs <n>` (or `DSM_JOBS`)
//! sizes the pool on every binary; `--jobs 1` is the exact legacy serial
//! path.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod harness;
pub mod journal;
pub mod sweep;
pub mod tinybench;

pub use harness::{install_fault_plan, parse_run_args, FigureTable, RunArgs, TraceSet};
pub use journal::SweepJournal;
pub use sweep::{run_sweep, Jobs, PointFailure, SweepOutcome, SweepPoint};
