//! Dependency-free parallel execution engine for design-space sweeps.
//!
//! Every figure of the paper is a sweep: a grid of (system configuration,
//! workload) points where all points of one workload are read-only over
//! the *same* generated trace (the paper's same-trace methodology). That
//! makes the points embarrassingly parallel: [`run_sweep`] hoists trace
//! generation out of the parallel region (generate-once, then immutable),
//! shares the [`TraceSet`] across a scoped [`std::thread`] worker pool by
//! reference, and hands each worker points from an atomic work queue.
//!
//! Determinism guarantees:
//!
//! * results come back **in submission order**, regardless of which
//!   worker finished first, so tables and JSON exports are byte-identical
//!   to the serial run;
//! * each point is a pure function of `(spec, trace)` — workers share
//!   only the immutable trace, never simulator state;
//! * `jobs = 1` is the exact legacy path: the calling thread runs the
//!   queue serially and no worker threads are spawned.
//!
//! A panicking point (e.g. a spec invalid for its workload) is captured
//! with [`std::panic::catch_unwind`] and reported as a failed
//! [`SweepOutcome`] row; the remaining points still run. The default
//! panic hook still prints the panic message to stderr — stdout (tables,
//! JSON) stays clean.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use dsm_core::{Report, SystemSpec};
use dsm_trace::WorkloadKind;

use crate::harness::TraceSet;

/// A validated worker count for the sweep engine (at least 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jobs(usize);

impl Jobs {
    /// A worker count; `n` must be positive.
    ///
    /// # Errors
    ///
    /// Returns an error message for `n == 0`.
    pub fn new(n: usize) -> Result<Self, String> {
        if n == 0 {
            return Err("--jobs must be at least 1".to_owned());
        }
        Ok(Jobs(n))
    }

    /// The serial engine: no worker threads, the legacy execution path.
    #[must_use]
    pub fn serial() -> Self {
        Jobs(1)
    }

    /// One worker per available hardware thread (the default when neither
    /// `--jobs` nor `DSM_JOBS` is given).
    #[must_use]
    pub fn available() -> Self {
        Jobs(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The worker count.
    #[must_use]
    pub fn get(self) -> usize {
        self.0
    }
}

impl Default for Jobs {
    fn default() -> Self {
        Jobs::available()
    }
}

/// One unit of sweep work: run `spec` on `workload`'s shared trace.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Row label carried through to the outcome (e.g. `"vb16/Radix"`).
    pub label: String,
    /// The system configuration to simulate.
    pub spec: SystemSpec,
    /// The workload whose cached trace drives the run.
    pub workload: WorkloadKind,
}

impl SweepPoint {
    /// A point labelled `"<spec name>/<workload>"`.
    #[must_use]
    pub fn new(spec: SystemSpec, workload: WorkloadKind) -> Self {
        SweepPoint {
            label: format!("{}/{}", spec.name, workload.display_name()),
            spec,
            workload,
        }
    }
}

/// The result of one sweep point, in submission order.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The submitted point's label.
    pub label: String,
    /// The report, or the captured panic message of a failed point.
    pub result: Result<Report, String>,
    /// Wall-clock seconds this point took inside its worker (simulation
    /// only; trace generation is hoisted and not attributed to points).
    pub wall_s: f64,
}

impl SweepOutcome {
    /// The report of a succeeded point.
    ///
    /// # Panics
    ///
    /// Panics with the point's label and captured message if it failed.
    #[must_use]
    pub fn into_report(self) -> Report {
        match self.result {
            Ok(r) => r,
            Err(e) => panic!("sweep point {}: {e}", self.label),
        }
    }
}

/// Renders a captured panic payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "point panicked (non-string payload)".to_owned()
    }
}

/// Runs one prepared point under panic capture, timing it.
fn run_point(ts: &TraceSet, point: &SweepPoint) -> SweepOutcome {
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        ts.run_prepared(&point.spec, point.workload)
    }))
    .map_err(panic_message);
    SweepOutcome {
        label: point.label.clone(),
        result,
        wall_s: t0.elapsed().as_secs_f64(),
    }
}

/// Executes `points` on `jobs` workers sharing `ts`'s traces, returning
/// outcomes in submission order.
///
/// Traces for every workload appearing in `points` are generated first,
/// serially, before any worker starts (`ts` is then only read). With
/// `jobs == 1` the calling thread runs the points in order and no threads
/// are spawned — the exact legacy path.
pub fn run_sweep(ts: &mut TraceSet, points: &[SweepPoint], jobs: Jobs) -> Vec<SweepOutcome> {
    // Hoist trace generation out of the parallel region: generate once,
    // then the set is immutable and shared by reference.
    for p in points {
        ts.prepare(p.workload);
    }
    let ts: &TraceSet = ts;

    if jobs.get() == 1 || points.len() <= 1 {
        return points.iter().map(|p| run_point(ts, p)).collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SweepOutcome>>> = points.iter().map(|_| Mutex::new(None)).collect();
    let workers = jobs.get().min(points.len());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(point) = points.get(i) else { break };
                let outcome = run_point(ts, point);
                *slots[i].lock().unwrap() = Some(outcome);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap()
                .expect("every queue index was claimed by exactly one worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_core::PcSize;
    use dsm_trace::Scale;

    fn small_ts() -> TraceSet {
        TraceSet::new(Scale::new(0.05).unwrap())
    }

    #[test]
    fn jobs_rejects_zero() {
        assert!(Jobs::new(0).is_err());
        assert_eq!(Jobs::new(3).unwrap().get(), 3);
        assert_eq!(Jobs::serial().get(), 1);
        assert!(Jobs::available().get() >= 1);
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let mut ts = small_ts();
        let points: Vec<SweepPoint> = [
            SystemSpec::vb(),
            SystemSpec::base(),
            SystemSpec::nc(),
            SystemSpec::vp(),
            SystemSpec::ncd(),
            SystemSpec::ncs(),
        ]
        .into_iter()
        .map(|s| SweepPoint::new(s, WorkloadKind::Lu))
        .collect();
        let labels: Vec<String> = points.iter().map(|p| p.label.clone()).collect();
        let outcomes = run_sweep(&mut ts, &points, Jobs::new(4).unwrap());
        let got: Vec<String> = outcomes.iter().map(|o| o.label.clone()).collect();
        assert_eq!(got, labels);
        for o in &outcomes {
            assert!(o.result.is_ok(), "{}: {:?}", o.label, o.result);
            assert!(o.wall_s >= 0.0);
        }
    }

    #[test]
    fn panicking_point_becomes_failed_row_without_aborting() {
        let mut ts = small_ts();
        // A page cache of 1/10^6 of LU's ~2 MB data set cannot hold one
        // page: System::new fails, the point panics inside the worker.
        let mut bad = SystemSpec::ncp(PcSize::DataFraction(1_000_000));
        bad.name = "ncp-too-small".into();
        let points = vec![
            SweepPoint::new(SystemSpec::base(), WorkloadKind::Lu),
            SweepPoint::new(bad, WorkloadKind::Lu),
            SweepPoint::new(SystemSpec::vb(), WorkloadKind::Lu),
        ];
        let outcomes = run_sweep(&mut ts, &points, Jobs::new(4).unwrap());
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].result.is_ok());
        assert!(outcomes[2].result.is_ok(), "sweep aborted after a panic");
        let err = outcomes[1].result.as_ref().unwrap_err();
        assert!(
            err.contains("ncp-too-small"),
            "captured message should identify the point: {err}"
        );
    }

    #[test]
    fn serial_and_parallel_reports_are_identical() {
        let points: Vec<SweepPoint> = [SystemSpec::base(), SystemSpec::vb(), SystemSpec::nc()]
            .into_iter()
            .map(|s| SweepPoint::new(s, WorkloadKind::Lu))
            .collect();
        let serial = run_sweep(&mut small_ts(), &points, Jobs::serial());
        let parallel = run_sweep(&mut small_ts(), &points, Jobs::new(3).unwrap());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.label, b.label);
            // Report equality ignores wall time by design.
            assert_eq!(a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        }
    }
}
