//! Dependency-free parallel execution engine for design-space sweeps.
//!
//! Every figure of the paper is a sweep: a grid of (system configuration,
//! workload) points where all points of one workload are read-only over
//! the *same* generated trace (the paper's same-trace methodology). That
//! makes the points embarrassingly parallel: [`run_sweep`] hoists trace
//! generation out of the parallel region (generate-once, then immutable),
//! shares the [`TraceSet`] across a scoped [`std::thread`] worker pool by
//! reference, and hands each worker points from an atomic work queue.
//!
//! Determinism guarantees:
//!
//! * results come back **in submission order**, regardless of which
//!   worker finished first, so tables and JSON exports are byte-identical
//!   to the serial run;
//! * each point is a pure function of `(spec, trace)` — workers share
//!   only the immutable trace, never simulator state;
//! * `jobs = 1` is the exact legacy path: the calling thread runs the
//!   queue serially and no worker threads are spawned.
//!
//! A panicking point (e.g. a spec invalid for its workload) is captured
//! with [`std::panic::catch_unwind`] and reported as a failed
//! [`SweepOutcome`] row; the remaining points still run. The default
//! panic hook still prints the panic message to stderr — stdout (tables,
//! JSON) stays clean.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use dsm_core::config::NcIndexingSpec;
use dsm_core::obs::span::Lane;
use dsm_core::obs::Json;
use dsm_core::{CounterSource, DirectorySpec, NcSpec, PcSize, Report, SystemSpec};
use dsm_trace::{Scale, WorkloadKind};

use crate::harness::TraceSet;

/// A validated worker count for the sweep engine (at least 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Jobs(usize);

impl Jobs {
    /// A worker count; `n` must be positive.
    ///
    /// # Errors
    ///
    /// Returns an error message for `n == 0`.
    pub fn new(n: usize) -> Result<Self, String> {
        if n == 0 {
            return Err("--jobs must be at least 1".to_owned());
        }
        Ok(Jobs(n))
    }

    /// The serial engine: no worker threads, the legacy execution path.
    #[must_use]
    pub fn serial() -> Self {
        Jobs(1)
    }

    /// One worker per available hardware thread (the default when neither
    /// `--jobs` nor `DSM_JOBS` is given).
    #[must_use]
    pub fn available() -> Self {
        Jobs(
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
        )
    }

    /// The worker count.
    #[must_use]
    pub fn get(self) -> usize {
        self.0
    }
}

impl Default for Jobs {
    fn default() -> Self {
        Jobs::available()
    }
}

/// One unit of sweep work: run `spec` on `workload`'s shared trace.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Row label carried through to the outcome (e.g. `"vb16/Radix"`).
    pub label: String,
    /// The system configuration to simulate.
    pub spec: SystemSpec,
    /// The workload whose cached trace drives the run.
    pub workload: WorkloadKind,
}

impl SweepPoint {
    /// A point labelled `"<spec name>/<workload>"`.
    #[must_use]
    pub fn new(spec: SystemSpec, workload: WorkloadKind) -> Self {
        SweepPoint {
            label: format!("{}/{}", spec.name, workload.display_name()),
            spec,
            workload,
        }
    }
}

/// A structured record of one failed sweep point: the full configuration
/// and trace identity, the captured panic message, and a one-line
/// `simulate` invocation that reproduces the point in isolation.
#[derive(Debug, Clone, PartialEq)]
pub struct PointFailure {
    /// The submitted point's label.
    pub label: String,
    /// The system configuration's name.
    pub system: String,
    /// The workload whose trace the point ran on.
    pub workload: String,
    /// The trace-length scale factor (the trace identity: traces are a
    /// deterministic function of workload and scale).
    pub scale: f64,
    /// The captured panic message.
    pub message: String,
    /// A one-line `simulate` invocation reproducing the point.
    pub repro: String,
}

impl PointFailure {
    /// Builds the failure record for `point` from a captured panic.
    #[must_use]
    pub fn from_panic(point: &SweepPoint, scale: Scale, message: String) -> Self {
        PointFailure {
            label: point.label.clone(),
            system: point.spec.name.clone(),
            workload: point.workload.display_name().to_owned(),
            scale: scale.factor(),
            message,
            repro: repro_command(&point.spec, point.workload, scale),
        }
    }

    /// Serializes the failure for the sweep journal.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("system", self.system.as_str())
            .set("workload", self.workload.as_str())
            .set("scale", self.scale)
            .set("message", self.message.as_str())
            .set("repro", self.repro.as_str())
    }
}

impl std::fmt::Display for PointFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} on {} at scale {}): {}\n  reproduce with: {}",
            self.label, self.system, self.workload, self.scale, self.message, self.repro
        )
    }
}

/// Maps a [`SystemSpec`] back to the `simulate` system family name.
fn system_family(spec: &SystemSpec) -> &'static str {
    if spec.migrep.is_some() {
        return if matches!(spec.nc, NcSpec::None) {
            "origin"
        } else {
            "origin-vb"
        };
    }
    if let Some(pc) = &spec.pc {
        return match &spec.nc {
            NcSpec::SramVictim {
                indexing: NcIndexingSpec::Block,
                ..
            } => "vbp",
            NcSpec::SramVictim {
                indexing: NcIndexingSpec::Page,
                ..
            } => match pc.counters {
                CounterSource::VictimSets => "vxp",
                CounterSource::Directory => "vpp",
            },
            _ => "ncp",
        };
    }
    match &spec.nc {
        NcSpec::None => "base",
        NcSpec::SramInclusion { .. } => "nc",
        NcSpec::SramVictim {
            indexing: NcIndexingSpec::Block,
            ..
        } => "vb",
        NcSpec::SramVictim {
            indexing: NcIndexingSpec::Page,
            ..
        } => "vp",
        NcSpec::DramInclusion { .. } => "ncd",
        NcSpec::Infinite { dram: false } => "ncs",
        NcSpec::Infinite { dram: true } => "inf-dram",
    }
}

/// Builds the one-line `simulate` invocation reproducing a sweep point:
/// system family plus the spec knobs `simulate` exposes (cache shape,
/// NC size, page-cache size, threshold, directory pointers, MOESI-R).
/// Exotic ablations (e.g. disabled clean capture) may need manual flags
/// beyond this line, but every configuration the figures sweep maps
/// exactly.
#[must_use]
pub fn repro_command(spec: &SystemSpec, workload: WorkloadKind, scale: Scale) -> String {
    use std::fmt::Write as _;
    let mut cmd = format!(
        "simulate --system {} --workload {} --scale {} --cache-bytes {} --cache-ways {}",
        system_family(spec),
        workload.display_name().to_lowercase(),
        scale.factor(),
        spec.cache.bytes,
        spec.cache.ways,
    );
    match &spec.nc {
        NcSpec::SramInclusion { bytes, .. }
        | NcSpec::SramVictim { bytes, .. }
        | NcSpec::DramInclusion { bytes, .. } => {
            let _ = write!(cmd, " --nc-bytes {bytes}");
        }
        NcSpec::None | NcSpec::Infinite { .. } => {}
    }
    if let Some(pc) = &spec.pc {
        match pc.size {
            PcSize::Bytes(b) => {
                let _ = write!(cmd, " --pc-bytes {b}");
            }
            PcSize::DataFraction(d) => {
                let _ = write!(cmd, " --pc-fraction {d}");
            }
        }
        let _ = write!(cmd, " --threshold {}", pc.threshold.initial());
    }
    if let DirectorySpec::LimitedPointer { pointers } = spec.directory {
        let _ = write!(cmd, " --pointers {pointers}");
    }
    if spec.dirty_shared {
        cmd.push_str(" --dirty-shared");
    }
    cmd
}

/// The result of one sweep point, in submission order.
#[derive(Debug, Clone)]
pub struct SweepOutcome {
    /// The submitted point's label.
    pub label: String,
    /// The report, or the structured record of a failed point.
    pub result: Result<Report, PointFailure>,
    /// Wall-clock seconds this point took inside its worker (simulation
    /// only; trace generation is hoisted and not attributed to points;
    /// 0.0 for points restored from a resumed journal).
    pub wall_s: f64,
}

impl SweepOutcome {
    /// The report of a succeeded point.
    ///
    /// # Panics
    ///
    /// Panics with the failure record (including the repro line) if the
    /// point failed.
    #[must_use]
    pub fn into_report(self) -> Report {
        match self.result {
            Ok(r) => r,
            Err(e) => panic!("sweep point {e}"),
        }
    }
}

/// Live sweep telemetry: a shared completion counter that prints one
/// per-point line to stderr — throughput in Mrefs/s and an ETA from the
/// average pace so far. Off (`enabled == false`) it does nothing; the
/// counter bump is two relaxed atomics per *point*, nowhere near the
/// per-reference hot path.
struct Progress {
    enabled: bool,
    total: usize,
    done: AtomicUsize,
    t0: Instant,
}

impl Progress {
    fn new(enabled: bool, total: usize) -> Self {
        Progress {
            enabled,
            total,
            done: AtomicUsize::new(0),
            t0: Instant::now(),
        }
    }

    /// Counts a completed point and, when enabled, prints its line.
    /// `detail` is `Some((refs, wall_s))` for a freshly simulated point,
    /// `None` for journal-restored or failed points.
    fn tick(&self, label: &str, detail: Option<(u64, f64)>) {
        let k = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if !self.enabled {
            return;
        }
        let elapsed = self.t0.elapsed().as_secs_f64();
        let eta = elapsed / k as f64 * (self.total.saturating_sub(k)) as f64;
        match detail {
            Some((refs, wall_s)) => {
                let mrefs_per_s = refs as f64 / wall_s.max(1e-9) / 1e6;
                eprintln!(
                    "sweep: [{k}/{}] {label}: {refs} refs in {wall_s:.2}s \
                     ({mrefs_per_s:.1} Mrefs/s), ETA {eta:.0}s",
                    self.total
                );
            }
            None => eprintln!("sweep: [{k}/{}] {label}, ETA {eta:.0}s", self.total),
        }
    }
}

/// Renders a captured panic payload as a message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "point panicked (non-string payload)".to_owned()
    }
}

/// Runs one prepared point under panic capture, timing it.
///
/// When the trace set carries a resumed journal, points the journal
/// already recorded as successful are *not* re-run: their recorded
/// reports come back immediately (in submission order like everything
/// else), which is what makes a killed-and-resumed sweep merge to
/// byte-identical output. Fresh results are appended to the journal,
/// durably, before the outcome is returned.
///
/// Fault injection for the crash-safety tests: if `DSM_FAULT_POINT`
/// names this point's label the point panics (exercising the captured-
/// failure path), and if `DSM_FAULT_ABORT` names it the whole process
/// aborts (exercising kill-and-resume).
fn run_point(
    ts: &TraceSet,
    point: &SweepPoint,
    progress: &Progress,
    lane: Option<Lane>,
) -> SweepOutcome {
    if let Some(report) = ts.journal().and_then(|j| j.lookup(&point.label)) {
        progress.tick(&format!("{} restored from journal", point.label), None);
        return SweepOutcome {
            label: point.label.clone(),
            result: Ok(report),
            wall_s: 0.0,
        };
    }
    if std::env::var("DSM_FAULT_ABORT").as_deref() == Ok(point.label.as_str()) {
        eprintln!("sweep: DSM_FAULT_ABORT tripped at {}", point.label);
        std::process::abort();
    }
    let mut span = ts
        .tracer()
        .zip(lane)
        .map(|(t, lane)| t.span(lane, point.label.clone()));
    let t0 = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| {
        if std::env::var("DSM_FAULT_POINT").as_deref() == Ok(point.label.as_str()) {
            panic!("injected fault (DSM_FAULT_POINT) at {}", point.label);
        }
        if ts.phase_stats() {
            let (report, counters) = ts.run_prepared_profiled(&point.spec, point.workload);
            (report, Some(counters))
        } else {
            (ts.run_prepared(&point.spec, point.workload), None)
        }
    }))
    .map_err(|payload| PointFailure::from_panic(point, ts.scale(), panic_message(payload)));
    let wall_s = t0.elapsed().as_secs_f64();
    let result = result.map(|(report, counters)| {
        if let Some(counters) = counters {
            ts.record_phase_rollup(&point.label, counters);
        }
        report
    });
    match &result {
        Ok(report) => {
            if let Some(s) = &mut span {
                s.arg("refs", report.refs);
            }
            progress.tick(&point.label, Some((report.refs, wall_s)));
        }
        Err(_) => progress.tick(&format!("{} FAILED", point.label), None),
    }
    drop(span);
    if let Some(journal) = ts.journal() {
        match &result {
            Ok(report) => journal.record_ok(&point.label, report, wall_s),
            Err(failure) => journal.record_failed(failure, wall_s),
        }
    }
    SweepOutcome {
        label: point.label.clone(),
        result,
        wall_s,
    }
}

/// Executes `points` on `jobs` workers sharing `ts`'s traces, returning
/// outcomes in submission order.
///
/// Traces for every workload appearing in `points` are generated first,
/// serially, before any worker starts (`ts` is then only read). With
/// `jobs == 1` the calling thread runs the points in order and no threads
/// are spawned — the exact legacy path.
pub fn run_sweep(ts: &mut TraceSet, points: &[SweepPoint], jobs: Jobs) -> Vec<SweepOutcome> {
    // Hoist trace generation out of the parallel region: generate once,
    // then the set is immutable and shared by reference.
    for p in points {
        ts.prepare(p.workload);
    }
    let ts: &TraceSet = ts;
    let progress = Progress::new(ts.progress(), points.len());

    if jobs.get() == 1 || points.len() <= 1 {
        // The serial path runs on the calling thread: its spans share the
        // "main" lane with trace loading.
        let lane = ts.tracer().map(|t| t.lane("main"));
        return points
            .iter()
            .map(|p| run_point(ts, p, &progress, lane))
            .collect();
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<SweepOutcome>>> = points.iter().map(|_| Mutex::new(None)).collect();
    let workers = jobs.get().min(points.len());
    std::thread::scope(|scope| {
        for w in 0..workers {
            let (next, slots, progress) = (&next, &slots, &progress);
            scope.spawn(move || {
                // Register the lane (and a worker-lifetime span) before
                // claiming any point, so the trace shows one lane per
                // worker even if this worker never wins a claim.
                let lane = ts.tracer().map(|t| t.lane(&format!("worker-{}", w + 1)));
                let mut worker_span = ts
                    .tracer()
                    .zip(lane)
                    .map(|(t, lane)| t.span(lane, "sweep worker"));
                let mut claimed = 0u64;
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(point) = points.get(i) else { break };
                    claimed += 1;
                    let outcome = run_point(ts, point, progress, lane);
                    // A sibling worker's panic can only poison a *different*
                    // slot's mutex; recover the data rather than cascade.
                    *slots[i]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(outcome);
                }
                if let Some(s) = &mut worker_span {
                    s.arg("points", claimed);
                }
            });
        }
    });
    slots
        .into_iter()
        .zip(points)
        .map(|(slot, point)| {
            let outcome = slot
                .into_inner()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            // Every queue index is claimed by exactly one worker; an
            // empty slot would mean the engine itself broke, which is
            // reported as a failed row rather than a panic.
            outcome.unwrap_or_else(|| SweepOutcome {
                label: point.label.clone(),
                result: Err(PointFailure::from_panic(
                    point,
                    ts.scale(),
                    "sweep engine lost this point's outcome".to_owned(),
                )),
                wall_s: 0.0,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_core::PcSize;
    use dsm_trace::Scale;

    fn small_ts() -> TraceSet {
        TraceSet::new(Scale::new(0.05).unwrap())
    }

    #[test]
    fn jobs_rejects_zero() {
        assert!(Jobs::new(0).is_err());
        assert_eq!(Jobs::new(3).unwrap().get(), 3);
        assert_eq!(Jobs::serial().get(), 1);
        assert!(Jobs::available().get() >= 1);
    }

    #[test]
    fn results_come_back_in_submission_order() {
        let mut ts = small_ts();
        let points: Vec<SweepPoint> = [
            SystemSpec::vb(),
            SystemSpec::base(),
            SystemSpec::nc(),
            SystemSpec::vp(),
            SystemSpec::ncd(),
            SystemSpec::ncs(),
        ]
        .into_iter()
        .map(|s| SweepPoint::new(s, WorkloadKind::Lu))
        .collect();
        let labels: Vec<String> = points.iter().map(|p| p.label.clone()).collect();
        let outcomes = run_sweep(&mut ts, &points, Jobs::new(4).unwrap());
        let got: Vec<String> = outcomes.iter().map(|o| o.label.clone()).collect();
        assert_eq!(got, labels);
        for o in &outcomes {
            assert!(o.result.is_ok(), "{}: {:?}", o.label, o.result);
            assert!(o.wall_s >= 0.0);
        }
    }

    #[test]
    fn panicking_point_becomes_failed_row_without_aborting() {
        let mut ts = small_ts();
        // A page cache of 1/10^6 of LU's ~2 MB data set cannot hold one
        // page: System::new fails, the point panics inside the worker.
        let mut bad = SystemSpec::ncp(PcSize::DataFraction(1_000_000));
        bad.name = "ncp-too-small".into();
        let points = vec![
            SweepPoint::new(SystemSpec::base(), WorkloadKind::Lu),
            SweepPoint::new(bad, WorkloadKind::Lu),
            SweepPoint::new(SystemSpec::vb(), WorkloadKind::Lu),
        ];
        let outcomes = run_sweep(&mut ts, &points, Jobs::new(4).unwrap());
        assert_eq!(outcomes.len(), 3);
        assert!(outcomes[0].result.is_ok());
        assert!(outcomes[2].result.is_ok(), "sweep aborted after a panic");
        let err = outcomes[1].result.as_ref().unwrap_err();
        assert!(
            err.message.contains("ncp-too-small"),
            "captured message should identify the point: {err}"
        );
        assert_eq!(err.system, "ncp-too-small");
        assert_eq!(err.workload, "LU");
        assert!(
            err.repro.starts_with("simulate --system ncp --workload lu"),
            "repro line should rebuild the invocation: {}",
            err.repro
        );
    }

    #[test]
    fn repro_commands_cover_the_design_space() {
        let scale = Scale::new(0.5).unwrap();
        let cases = [
            (SystemSpec::base(), "--system base "),
            (SystemSpec::nc(), "--system nc "),
            (SystemSpec::vb(), "--system vb "),
            (SystemSpec::vp(), "--system vp "),
            (SystemSpec::ncd(), "--system ncd "),
            (SystemSpec::ncs(), "--system ncs "),
            (SystemSpec::infinite_dram(), "--system inf-dram "),
            (SystemSpec::ncp(PcSize::DataFraction(5)), "--system ncp "),
            (SystemSpec::vbp(PcSize::DataFraction(5)), "--system vbp "),
            (SystemSpec::vpp(PcSize::DataFraction(5)), "--system vpp "),
            (SystemSpec::vxp(PcSize::Bytes(8192), 64), "--system vxp "),
            (SystemSpec::origin(), "--system origin "),
            (SystemSpec::origin_vb(), "--system origin-vb "),
        ];
        for (spec, family) in cases {
            let cmd = repro_command(&spec, WorkloadKind::Fft, scale);
            assert!(cmd.contains(family), "{}: {cmd}", spec.name);
            assert!(cmd.contains("--workload fft"), "{cmd}");
            assert!(cmd.contains("--scale 0.5"), "{cmd}");
            assert!(cmd.contains("--cache-bytes"), "{cmd}");
        }
        let vxp = repro_command(
            &SystemSpec::vxp(PcSize::Bytes(8192), 64),
            WorkloadKind::Lu,
            scale,
        );
        assert!(vxp.contains("--pc-bytes 8192"), "{vxp}");
        assert!(vxp.contains("--threshold 64"), "{vxp}");
        let lim = repro_command(
            &SystemSpec::vb().with_limited_directory(2),
            WorkloadKind::Lu,
            scale,
        );
        assert!(lim.contains("--pointers 2"), "{lim}");
        assert!(lim.contains("--nc-bytes 16384"), "{lim}");
    }

    #[test]
    fn injected_fault_point_becomes_failed_row() {
        let mut ts = small_ts();
        // A label unique to this test, so the env var cannot trip a
        // concurrently running sibling test's sweep.
        let mut target = SystemSpec::vb();
        target.name = "fault-target".into();
        let points = vec![
            SweepPoint::new(SystemSpec::base(), WorkloadKind::Lu),
            SweepPoint::new(target, WorkloadKind::Lu),
        ];
        std::env::set_var("DSM_FAULT_POINT", "fault-target/LU");
        let outcomes = run_sweep(&mut ts, &points, Jobs::serial());
        std::env::remove_var("DSM_FAULT_POINT");
        assert!(outcomes[0].result.is_ok());
        let err = outcomes[1].result.as_ref().unwrap_err();
        assert!(err.message.contains("injected fault"), "{err}");
    }

    #[test]
    fn serial_and_parallel_reports_are_identical() {
        let points: Vec<SweepPoint> = [SystemSpec::base(), SystemSpec::vb(), SystemSpec::nc()]
            .into_iter()
            .map(|s| SweepPoint::new(s, WorkloadKind::Lu))
            .collect();
        let serial = run_sweep(&mut small_ts(), &points, Jobs::serial());
        let parallel = run_sweep(&mut small_ts(), &points, Jobs::new(3).unwrap());
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.label, b.label);
            // Report equality ignores wall time by design.
            assert_eq!(a.result.as_ref().unwrap(), b.result.as_ref().unwrap());
        }
    }
}
