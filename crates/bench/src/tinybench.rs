//! A minimal, dependency-free benchmark harness.
//!
//! The workspace builds in fully offline environments, so the benches
//! cannot rely on Criterion. This module provides the small slice of it
//! they need: named benchmarks, warm-up, adaptive iteration counts,
//! median-of-samples timing, optional element throughput, and a
//! substring filter from the command line (`cargo bench -- <filter>`).
//!
//! Results print as one line per benchmark:
//!
//! ```text
//! set_assoc/insert_evict            42 ns/iter (median of 12 samples)
//! sim_throughput/base           31.2 ms/iter   6.41 Melem/s
//! ```

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-exported so benches keep their `black_box` usage through one path.
pub use std::hint::black_box as bb;

/// Target wall-clock time per benchmark (all samples together).
const TARGET: Duration = Duration::from_millis(600);
/// Samples per benchmark (the median is reported).
const SAMPLES: usize = 12;

/// The harness: owns the CLI filter and prints results as it goes.
pub struct Tiny {
    filter: Vec<String>,
    group: String,
}

impl Default for Tiny {
    fn default() -> Self {
        Tiny::from_args()
    }
}

impl Tiny {
    /// Builds a harness honoring `cargo bench -- <substring>...` filters
    /// (any non-flag argument is a filter; `--bench`/`--exact` style flags
    /// that cargo forwards are ignored).
    #[must_use]
    pub fn from_args() -> Self {
        let filter = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Tiny {
            filter,
            group: String::new(),
        }
    }

    /// Builds a harness with no name filter — for binaries that own
    /// their command line (whose flags must not be misread as filters).
    #[must_use]
    pub fn unfiltered() -> Self {
        Tiny {
            filter: Vec::new(),
            group: String::new(),
        }
    }

    /// Sets a group prefix for subsequent benchmark names.
    pub fn group(&mut self, name: &str) {
        self.group = name.to_owned();
    }

    fn full_name(&self, name: &str) -> String {
        if self.group.is_empty() {
            name.to_owned()
        } else {
            format!("{}/{name}", self.group)
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.is_empty() || self.filter.iter().any(|f| name.contains(f.as_str()))
    }

    /// Benchmarks `f`, printing its median time per iteration.
    pub fn bench(&mut self, name: &str, f: impl FnMut()) {
        self.bench_elements(name, 0, f);
    }

    /// Benchmarks `f` which processes `elements` items per call, printing
    /// time per iteration and element throughput.
    pub fn bench_elements(&mut self, name: &str, elements: u64, f: impl FnMut()) {
        self.bench_value(name, elements, f);
    }

    /// [`Tiny::bench_elements`], additionally returning the measured
    /// element throughput in elements/second (the `throughput` binary
    /// records it in `BENCH_perf.json`). Returns `None` when the
    /// benchmark is filtered out or `elements` is zero.
    pub fn bench_value(&mut self, name: &str, elements: u64, mut f: impl FnMut()) -> Option<f64> {
        let full = self.full_name(name);
        if !self.selected(&full) {
            return None;
        }
        // Warm-up and iteration-count calibration: run once, then scale so
        // one sample takes roughly TARGET / SAMPLES.
        let t0 = Instant::now();
        f();
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = TARGET / SAMPLES as u32;
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut samples: Vec<f64> = (0..SAMPLES)
            .map(|_| {
                let t = Instant::now();
                for _ in 0..iters {
                    f();
                }
                t.elapsed().as_nanos() as f64 / iters as f64
            })
            .collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let line = format!("{full:<40} {:>12}/iter", fmt_ns(median));
        if elements > 0 {
            let eps = elements as f64 / (median * 1e-9);
            println!("{line}   {}", fmt_throughput(eps));
            Some(eps)
        } else {
            println!("{line}");
            None
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.0} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

fn fmt_throughput(eps: f64) -> String {
    if eps >= 1e6 {
        format!("{:.2} Melem/s", eps / 1e6)
    } else if eps >= 1e3 {
        format!("{:.2} Kelem/s", eps / 1e3)
    } else {
        format!("{eps:.0} elem/s")
    }
}

/// Runs `f` under `black_box` so the optimizer cannot elide its result.
pub fn consume<T>(value: T) {
    black_box(value);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_scale() {
        assert_eq!(fmt_ns(12.0), "12 ns");
        assert_eq!(fmt_ns(1_500.0), "1.50 µs");
        assert_eq!(fmt_ns(2_500_000.0), "2.50 ms");
        assert!(fmt_throughput(5e6).contains("Melem/s"));
    }

    #[test]
    fn filter_selects_substrings() {
        let t = Tiny {
            filter: vec!["set_assoc".into()],
            group: String::new(),
        };
        assert!(t.selected("set_assoc/insert"));
        assert!(!t.selected("bus/peer"));
        let all = Tiny {
            filter: vec![],
            group: String::new(),
        };
        assert!(all.selected("anything"));
    }
}
