//! Golden tests for the sweep engine's span-trace export: the chrome
//! trace written by a `--jobs 2 --chrome-trace` run must round-trip
//! through the workspace's own JSON parser, carry exactly one lane per
//! worker (plus the main lane that loads traces), keep every lane's
//! spans properly nested (no partial overlap — Chrome infers the span
//! hierarchy from containment), and the per-point phase rollups recorded
//! alongside must match the submitted point labels and partition every
//! point's shared references.

use std::collections::BTreeMap;
use std::sync::Arc;

use dsm_bench::{run_sweep, Jobs, SweepPoint, TraceSet};
use dsm_core::obs::span::SpanTracer;
use dsm_core::obs::Json;
use dsm_core::SystemSpec;
use dsm_trace::{Scale, WorkloadKind};

fn traced_ts(jobs: Jobs, tracer: &Arc<SpanTracer>) -> TraceSet {
    let mut ts = TraceSet::with_jobs(Scale::new(0.05).expect("valid scale"), jobs);
    ts.set_tracer(Some(Arc::clone(tracer)));
    ts.enable_phase_stats(true);
    ts
}

fn points() -> Vec<SweepPoint> {
    [
        SystemSpec::base(),
        SystemSpec::vb(),
        SystemSpec::nc(),
        SystemSpec::vp(),
    ]
    .into_iter()
    .map(|s| SweepPoint::new(s, WorkloadKind::Lu))
    .collect()
}

/// One complete (`"ph":"X"`) event pulled out of the parsed trace.
#[derive(Debug, Clone)]
struct XEvent {
    name: String,
    tid: u64,
    ts: u64,
    dur: u64,
}

/// Parses the rendered chrome JSON back through [`Json::parse`] and
/// splits it into the lane-name map (tid -> thread_name metadata) and
/// the complete events, preserving file order.
fn parse_trace(rendered: &str) -> (BTreeMap<u64, String>, Vec<XEvent>) {
    let parsed = Json::parse(rendered).expect("chrome trace must be valid JSON");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    let mut lanes = BTreeMap::new();
    let mut xs = Vec::new();
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph field");
        let tid = e.get("tid").and_then(Json::as_u64).expect("tid field");
        assert_eq!(e.get("pid").and_then(Json::as_u64), Some(1), "single pid");
        match ph {
            "M" => {
                assert_eq!(e.get("name").and_then(Json::as_str), Some("thread_name"));
                let name = e
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .expect("thread_name args.name");
                assert!(
                    lanes.insert(tid, name.to_owned()).is_none(),
                    "duplicate thread_name record for tid {tid}"
                );
            }
            "X" => xs.push(XEvent {
                name: e
                    .get("name")
                    .and_then(Json::as_str)
                    .expect("name")
                    .to_owned(),
                tid,
                ts: e.get("ts").and_then(Json::as_u64).expect("ts"),
                dur: e.get("dur").and_then(Json::as_u64).expect("dur"),
            }),
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    (lanes, xs)
}

/// Asserts stack discipline within one lane: walking the events in file
/// order (starts ascending, parents before children), every event must
/// either be contained in the currently open span or start at/after its
/// end — a partial overlap means two spans on one thread ran
/// "concurrently", which the RAII guards make impossible.
fn assert_nested(lane: &str, events: &[&XEvent]) {
    let mut stack: Vec<u64> = Vec::new(); // open spans' end timestamps
    let mut last_start = 0u64;
    for e in events {
        assert!(
            e.ts >= last_start,
            "lane {lane}: events must be sorted by start time"
        );
        last_start = e.ts;
        while stack.last().is_some_and(|&end| e.ts >= end) {
            stack.pop();
        }
        if let Some(&parent_end) = stack.last() {
            assert!(
                e.ts + e.dur <= parent_end,
                "lane {lane}: span {:?} [{}, {}] partially overlaps its \
                 enclosing span ending at {parent_end}",
                e.name,
                e.ts,
                e.ts + e.dur,
            );
        }
        stack.push(e.ts + e.dur);
    }
}

#[test]
fn parallel_sweep_trace_has_one_lane_per_worker_and_nests() {
    let tracer = Arc::new(SpanTracer::new());
    let jobs = Jobs::new(2).expect("2 workers");
    let mut ts = traced_ts(jobs, &tracer);
    let pts = points();
    let outcomes = run_sweep(&mut ts, &pts, jobs);
    assert!(outcomes.iter().all(|o| o.result.is_ok()));

    let rendered = tracer.to_chrome_json().render();
    let (lanes, xs) = parse_trace(&rendered);

    // Exactly one lane per worker plus the main (trace-loading) lane.
    let mut names: Vec<&str> = lanes.values().map(String::as_str).collect();
    names.sort_unstable();
    assert_eq!(names, ["main", "worker-1", "worker-2"]);

    // Every lane's spans form a proper hierarchy.
    for (&tid, lane) in &lanes {
        let in_lane: Vec<&XEvent> = xs.iter().filter(|e| e.tid == tid).collect();
        assert_nested(lane, &in_lane);
    }

    // The main lane loaded the one workload's trace; each worker lane has
    // a worker-lifetime span enclosing its claimed point spans, and every
    // submitted point label appears exactly once across the worker lanes.
    let by_name = |n: &str| xs.iter().filter(|e| e.name == n).count();
    assert_eq!(by_name("trace load: LU"), 1);
    assert_eq!(by_name("sweep worker"), 2);
    for p in &pts {
        assert_eq!(by_name(&p.label), 1, "point {} must have one span", p.label);
    }

    // Phase rollups: labels match the submitted points, and each rollup's
    // primary phases partition that point's shared references.
    let rollups = ts.take_phase_rollups();
    let mut rollup_labels: Vec<&str> = rollups.iter().map(|(l, _)| l.as_str()).collect();
    rollup_labels.sort_unstable();
    let mut point_labels: Vec<&str> = pts.iter().map(|p| p.label.as_str()).collect();
    point_labels.sort_unstable();
    assert_eq!(rollup_labels, point_labels);
    for (label, counters) in &rollups {
        let outcome = outcomes
            .iter()
            .find(|o| &o.label == label)
            .expect("rollup label matches an outcome");
        let report = outcome.result.as_ref().expect("point succeeded");
        assert_eq!(
            counters.primary_events(),
            report.metrics.shared_refs,
            "{label}: primary phases must partition the shared references"
        );
    }
}

#[test]
fn serial_sweep_trace_stays_on_the_main_lane() {
    let tracer = Arc::new(SpanTracer::new());
    let mut ts = traced_ts(Jobs::serial(), &tracer);
    let pts = points();
    let outcomes = run_sweep(&mut ts, &pts, Jobs::serial());
    assert!(outcomes.iter().all(|o| o.result.is_ok()));

    let rendered = tracer.to_chrome_json().render();
    let (lanes, xs) = parse_trace(&rendered);
    let names: Vec<&str> = lanes.values().map(String::as_str).collect();
    assert_eq!(names, ["main"], "serial runs must not spawn worker lanes");
    let all: Vec<&XEvent> = xs.iter().collect();
    assert_nested("main", &all);
    for p in &pts {
        assert_eq!(
            xs.iter().filter(|e| e.name == p.label).count(),
            1,
            "point {} must have one span",
            p.label
        );
    }
}
