//! End-to-end crash-safety: a `reproduce` run killed mid-sweep (via the
//! `DSM_FAULT_ABORT` injection point, which calls `abort()` inside a
//! worker) and then resumed from its journal must produce a dataset
//! byte-identical to an uninterrupted run — same figures, same f64 bits,
//! whatever the worker count, and whatever `--shard-workers` split the
//! replay itself runs under. Wall-clock timings are deliberately outside
//! the comparison (they live in `timings.json`, not the dataset).

use std::path::Path;
use std::process::{Command, Output};

/// The 6th of fig3's nine LU sweep points: by the time a 2-worker sweep
/// reaches it, several earlier points have already been journaled, so
/// the resumed run exercises both the skip path and the re-run path.
const ABORT_AT: &str = "2w-vb16/LU";

fn reproduce(base: &[&str], args: &[&str], abort_at: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_reproduce"));
    cmd.args(["--scale", "0.05", "--figures", "fig3"]);
    cmd.args(base);
    cmd.args(args);
    if let Some(label) = abort_at {
        cmd.env("DSM_FAULT_ABORT", label);
    }
    cmd.output().expect("spawn reproduce")
}

fn read_dataset(dir: &Path) -> Vec<u8> {
    let path = dir.join("reproduce_full.json");
    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The full kill-and-resume cycle under `base` flags: an uninterrupted
/// reference run, a journaled run killed at [`ABORT_AT`], and a resume
/// that must merge to a byte-identical dataset. `tag` isolates the temp
/// tree so the sharded variants can run concurrently.
fn kill_and_resume_cycle(tag: &str, base: &[&str]) {
    let tmp = std::env::temp_dir().join(format!("dsm-fault-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).expect("create temp dir");
    let dir_straight = tmp.join("straight");
    let dir_resumed = tmp.join("resumed");
    let journal = tmp.join("sweep.jsonl");
    let journal_s = journal.to_str().expect("utf-8 temp path");

    // 1. The reference: an uninterrupted serial run.
    let out = reproduce(
        base,
        &[
            "--jobs",
            "1",
            "--out",
            dir_straight.to_str().expect("utf-8"),
        ],
        None,
    );
    assert!(
        out.status.success(),
        "[{tag}] uninterrupted run failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // 2. A journaled 2-worker run killed mid-sweep by an injected abort.
    let out = reproduce(
        base,
        &[
            "--jobs",
            "2",
            "--out",
            dir_resumed.to_str().expect("utf-8"),
            "--journal",
            journal_s,
        ],
        Some(ABORT_AT),
    );
    assert!(
        !out.status.success(),
        "[{tag}] the injected abort must kill the run"
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("DSM_FAULT_ABORT tripped"),
        "[{tag}] the run must die at the injection point, not elsewhere:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        !dir_resumed.join("reproduce_full.json").exists(),
        "[{tag}] a killed run must not leave a dataset behind"
    );
    let journal_bytes = std::fs::read(&journal).expect("journal must survive the crash");
    assert!(
        !journal_bytes.is_empty(),
        "[{tag}] completed points must be journaled before the crash"
    );

    // 3. Resume from the journal: completed points are skipped, the rest
    //    (including the aborted point) are recomputed.
    let out = reproduce(
        base,
        &[
            "--jobs",
            "2",
            "--out",
            dir_resumed.to_str().expect("utf-8"),
            "--resume",
            journal_s,
        ],
        None,
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        out.status.success(),
        "[{tag}] resumed run failed:\n{stderr}"
    );
    assert!(
        stderr.contains("resumed journal"),
        "[{tag}] resume must report the reloaded journal:\n{stderr}"
    );

    // The merged output must be byte-identical to never having crashed.
    assert_eq!(
        read_dataset(&dir_straight),
        read_dataset(&dir_resumed),
        "[{tag}] resumed dataset diverged from the uninterrupted run"
    );

    std::fs::remove_dir_all(&tmp).ok();
}

#[test]
fn killed_sweep_resumes_to_byte_identical_output() {
    kill_and_resume_cycle("serial", &["--workloads", "lu"]);
}

/// Same cycle with the replay itself sharded two ways: the LU sweep
/// points replay through the component shard planner and the FFT points
/// (one sharing component) through the rounds engine, so the crash,
/// journal skip, and re-run paths are all proven on top of supervised
/// sharded replay — not just the serial oracle.
#[test]
fn killed_sharded_sweep_resumes_to_byte_identical_output() {
    kill_and_resume_cycle("shard2", &["--workloads", "lu,fft", "--shard-workers", "2"]);
}

/// `--shard-workers auto` resolves the replay split from the host's
/// parallelism and the `--jobs` budget; resume identity must hold there
/// too, since that is the configuration operators actually run.
#[test]
fn killed_auto_sharded_sweep_resumes_to_byte_identical_output() {
    kill_and_resume_cycle(
        "shard-auto",
        &["--workloads", "lu,fft", "--shard-workers", "auto"],
    );
}
