//! End-to-end determinism of the parallel sweep engine: a figure built on
//! N workers must be *identical* — row order, labels, and every f64 bit —
//! to the serial legacy run, because each sweep point is a pure function
//! of (spec, shared trace) and the engine returns results in submission
//! order.

use dsm_bench::figures::{all_workloads, fig3, fig9};
use dsm_bench::{Jobs, TraceSet};
use dsm_trace::{Scale, WorkloadKind};

fn scale() -> Scale {
    Scale::new(0.05).unwrap()
}

#[test]
fn fig3_parallel_equals_serial() {
    let kinds = [WorkloadKind::Lu, WorkloadKind::Fft, WorkloadKind::Radix];
    let mut serial_ts = TraceSet::with_jobs(scale(), Jobs::serial());
    let serial = fig3::run(&mut serial_ts, &kinds).expect("serial fig3");
    let mut parallel_ts = TraceSet::with_jobs(scale(), Jobs::new(4).unwrap());
    let parallel = fig3::run(&mut parallel_ts, &kinds).expect("parallel fig3");

    assert_eq!(serial.caption, parallel.caption);
    assert_eq!(serial.columns, parallel.columns);
    assert_eq!(serial.rows.len(), parallel.rows.len());
    for ((n1, v1), (n2, v2)) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(n1, n2, "row order must match the serial run");
        // Bit-exact, not approximately equal: the rendered tables and
        // the JSON export must be byte-identical.
        let b1: Vec<u64> = v1.iter().map(|v| v.to_bits()).collect();
        let b2: Vec<u64> = v2.iter().map(|v| v.to_bits()).collect();
        assert_eq!(b1, b2, "{n1}: parallel metrics diverged from serial");
    }
    assert_eq!(serial.render(), parallel.render());
    assert_eq!(serial.to_json().render(), parallel.to_json().render());
}

#[test]
fn normalized_figure_parallel_equals_serial() {
    // Figure 9 normalizes every column to the first spec's report, so it
    // also exercises cross-point data flow after the parallel region.
    let kinds = [WorkloadKind::Lu];
    let serial =
        fig9::run(&mut TraceSet::with_jobs(scale(), Jobs::serial()), &kinds).expect("serial fig9");
    let parallel = fig9::run(
        &mut TraceSet::with_jobs(scale(), Jobs::new(4).unwrap()),
        &kinds,
    )
    .expect("parallel fig9");
    assert_eq!(serial.render(), parallel.render());
}

#[test]
fn all_workloads_matches_paper_count() {
    // The sweep tests above subsample workloads for speed; make sure the
    // full enumeration the binaries sweep over is still the paper's 8.
    assert_eq!(all_workloads().len(), 8);
}
