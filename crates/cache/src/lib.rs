//! Set-associative cache substrate for the clustered-DSM simulator.
//!
//! This crate provides the building blocks every caching structure in the
//! system is made of:
//!
//! * [`CacheShape`] — size/associativity arithmetic (sets, ways, index bits);
//! * [`SetAssoc`] — a generic set-associative tag array with true-LRU
//!   replacement, used by processor caches, network caches and victim caches;
//! * [`CacheState`] — the MESIR block states (`M`, `E`, `S`, `I` plus the
//!   paper's `R` state: *mastership for a remote clean block*);
//! * [`ProcCache`] — a processor cache model: a [`SetAssoc`] of
//!   [`CacheState`] keyed by block address, with the operations the bus
//!   protocol needs (probe, fill, downgrade, invalidate, victimize).
//!
//! # Example
//!
//! ```
//! use dsm_cache::{CacheShape, ProcCache};
//! use dsm_types::BlockAddr;
//!
//! // The paper's base processor cache: 16 KB, 2-way, 64-byte blocks.
//! let shape = CacheShape::new(16 * 1024, 64, 2)?;
//! let mut cache = ProcCache::new(shape);
//! assert!(!cache.contains(BlockAddr(42)));
//! # Ok::<(), dsm_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod proc_cache;
pub mod set_assoc;
pub mod shape;
pub mod state;

pub use proc_cache::{Eviction, ProcCache};
pub use set_assoc::SetAssoc;
pub use shape::CacheShape;
pub use state::CacheState;
