//! The processor cache model: a set-associative array of MESIR states.

use dsm_types::BlockAddr;

use crate::{CacheShape, CacheState, SetAssoc};

/// A block evicted from a processor cache, together with the state it held.
///
/// The bus protocol turns evictions into write-backs (for `M`) or
/// replacement transactions (for `R` under MESIR).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// The victimized block.
    pub block: BlockAddr,
    /// Its state at the time of eviction.
    pub state: CacheState,
}

/// A write-back processor cache holding MESIR coherence states per block.
///
/// Data values are not modeled (the simulator is trace-driven and only
/// coherence state matters for the paper's metrics); a frame is a
/// `(tag, CacheState)` pair. Set indexing always uses block-address bits —
/// only network caches use page indexing.
///
/// # Example
///
/// ```
/// use dsm_cache::{CacheShape, CacheState, ProcCache};
/// use dsm_types::BlockAddr;
///
/// let mut c = ProcCache::new(CacheShape::new(1024, 64, 2)?);
/// let b = BlockAddr(7);
/// assert!(c.fill(b, CacheState::Exclusive).is_none());
/// assert_eq!(c.state_of(b), CacheState::Exclusive);
/// c.set_state(b, CacheState::Modified);
/// assert!(c.state_of(b).is_dirty());
/// # Ok::<(), dsm_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ProcCache {
    frames: SetAssoc<CacheState>,
}

impl ProcCache {
    /// Creates an empty cache of the given shape.
    #[must_use]
    pub fn new(shape: CacheShape) -> Self {
        ProcCache {
            frames: SetAssoc::new(shape),
        }
    }

    /// The cache shape.
    #[must_use]
    pub fn shape(&self) -> &CacheShape {
        self.frames.shape()
    }

    #[inline]
    fn set_of(&self, block: BlockAddr) -> usize {
        self.frames.shape().set_of_block(block)
    }

    /// Hints `block`'s tag row into L1 ahead of the lookups replay will
    /// make for it — see [`SetAssoc::prefetch_set`].
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        self.frames.prefetch_set(self.set_of(block));
    }

    /// The state of `block`, `Invalid` if not present. Does not touch LRU.
    #[must_use]
    #[inline]
    pub fn state_of(&self, block: BlockAddr) -> CacheState {
        self.frames
            .peek(self.set_of(block), block.0)
            .copied()
            .unwrap_or(CacheState::Invalid)
    }

    /// Whether `block` is present in any valid state.
    #[must_use]
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.state_of(block).is_valid()
    }

    /// Records a processor access hit on `block`: refreshes LRU and returns
    /// the current state. Returns `Invalid` without LRU effect on a miss.
    #[inline]
    pub fn touch(&mut self, block: BlockAddr) -> CacheState {
        let set = self.set_of(block);
        self.frames
            .get(set, block.0)
            .copied()
            .unwrap_or(CacheState::Invalid)
    }

    /// Single-scan write probe: returns the state `block` was in before
    /// the probe (`Invalid` on a miss), refreshing LRU on a hit and
    /// applying the silent `E -> M` transition when the prior state allows
    /// a silent write. Equivalent to `state_of` + `touch` + `set_state` on
    /// the write-hit path, with one tag-array scan instead of three.
    #[inline]
    pub fn write_probe(&mut self, block: BlockAddr) -> CacheState {
        let set = self.set_of(block);
        match self.frames.get_mut(set, block.0) {
            Some(s) => {
                let old = *s;
                if old == CacheState::Exclusive {
                    *s = CacheState::Modified;
                }
                old
            }
            None => CacheState::Invalid,
        }
    }

    /// Changes the state of a resident block without an LRU refresh (used
    /// for snoop-induced downgrades/upgrades).
    ///
    /// # Panics
    ///
    /// Panics if `block` is not resident — callers must only adjust states
    /// of blocks they have observed present.
    pub fn set_state(&mut self, block: BlockAddr, state: CacheState) {
        let set = self.set_of(block);
        let slot = self
            .frames
            .peek_mut(set, block.0)
            .unwrap_or_else(|| panic!("set_state on absent block {block}"));
        *slot = state;
    }

    /// Single-scan MESIR replacement hand-off probe: if `block` is
    /// resident in `Shared`, promotes it to `RemoteMaster` and returns
    /// `true`; otherwise leaves the cache untouched and returns `false`.
    /// Equivalent to `state_of` + `set_state` on the promotion path, with
    /// one tag-array scan instead of two and no LRU effect (it models a
    /// snoop, not a processor access).
    #[inline]
    pub fn promote_if_shared(&mut self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        match self.frames.peek_mut(set, block.0) {
            Some(s) if *s == CacheState::Shared => {
                *s = CacheState::RemoteMaster;
                true
            }
            _ => false,
        }
    }

    /// Single-scan snoop downgrade: if `block` is resident in a master
    /// state (`M`/`O`/`E`), moves it to `Shared` and returns the state it
    /// held; returns `None` (no state change) otherwise. Equivalent to
    /// `state_of` + `set_state` on the downgrade path, with one tag-array
    /// scan instead of two and no LRU effect.
    #[inline]
    pub fn downgrade_master(&mut self, block: BlockAddr) -> Option<CacheState> {
        let set = self.set_of(block);
        match self.frames.peek_mut(set, block.0) {
            Some(s)
                if matches!(
                    *s,
                    CacheState::Modified | CacheState::Owned | CacheState::Exclusive
                ) =>
            {
                let old = *s;
                *s = CacheState::Shared;
                Some(old)
            }
            _ => None,
        }
    }

    /// Allocates `block` in `state`, evicting the set's LRU occupant if
    /// necessary. Returns the eviction, if any.
    ///
    /// If the block is already resident this just updates its state (no
    /// eviction), which also covers upgrade fills.
    pub fn fill(&mut self, block: BlockAddr, state: CacheState) -> Option<Eviction> {
        let set = self.set_of(block);
        self.frames
            .insert(set, block.0, state)
            .map(|(tag, old_state)| Eviction {
                block: BlockAddr(tag),
                state: old_state,
            })
    }

    /// Invalidates `block`, returning the state it held (`Invalid` if it
    /// was not resident).
    pub fn invalidate(&mut self, block: BlockAddr) -> CacheState {
        let set = self.set_of(block);
        self.frames
            .remove(set, block.0)
            .unwrap_or(CacheState::Invalid)
    }

    /// The eviction that a [`ProcCache::fill`] of a block mapping to
    /// `block`'s set would cause right now, or `None` if a free way exists.
    #[must_use]
    pub fn pending_victim(&self, block: BlockAddr) -> Option<Eviction> {
        let set = self.set_of(block);
        if self.frames.peek(set, block.0).is_some() {
            return None; // upgrade fill, no eviction
        }
        self.frames.victim_of(set).map(|(tag, state)| Eviction {
            block: BlockAddr(tag),
            state: *state,
        })
    }

    /// Iterates over all resident blocks as `(block, state)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, CacheState)> + '_ {
        self.frames
            .iter()
            .map(|(_, tag, state)| (BlockAddr(tag), *state))
    }

    /// Number of resident blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the cache holds no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Empties the cache.
    pub fn clear(&mut self) {
        self.frames.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ProcCache {
        // 2 sets x 2 ways.
        ProcCache::new(CacheShape::from_sets_ways(2, 2, 64).unwrap())
    }

    #[test]
    fn absent_block_is_invalid() {
        let c = small();
        assert_eq!(c.state_of(BlockAddr(0)), CacheState::Invalid);
        assert!(!c.contains(BlockAddr(0)));
    }

    #[test]
    fn fill_and_state_roundtrip() {
        let mut c = small();
        assert!(c.fill(BlockAddr(4), CacheState::Shared).is_none());
        assert_eq!(c.state_of(BlockAddr(4)), CacheState::Shared);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fill_evicts_lru_in_same_set() {
        let mut c = small();
        // Blocks 0, 2, 4 all map to set 0 (even block numbers).
        c.fill(BlockAddr(0), CacheState::Modified);
        c.fill(BlockAddr(2), CacheState::Shared);
        c.touch(BlockAddr(0)); // protect block 0
        let ev = c.fill(BlockAddr(4), CacheState::Exclusive).unwrap();
        assert_eq!(ev.block, BlockAddr(2));
        assert_eq!(ev.state, CacheState::Shared);
        assert!(c.contains(BlockAddr(0)));
        assert!(c.contains(BlockAddr(4)));
    }

    #[test]
    fn upgrade_fill_does_not_evict() {
        let mut c = small();
        c.fill(BlockAddr(0), CacheState::Shared);
        c.fill(BlockAddr(2), CacheState::Shared);
        // Re-filling resident block 0 (e.g. S -> M upgrade) must not evict.
        assert!(c.fill(BlockAddr(0), CacheState::Modified).is_none());
        assert_eq!(c.state_of(BlockAddr(0)), CacheState::Modified);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn invalidate_returns_previous_state() {
        let mut c = small();
        c.fill(BlockAddr(1), CacheState::RemoteMaster);
        assert_eq!(c.invalidate(BlockAddr(1)), CacheState::RemoteMaster);
        assert_eq!(c.invalidate(BlockAddr(1)), CacheState::Invalid);
        assert!(c.is_empty());
    }

    #[test]
    fn set_state_changes_without_lru_touch() {
        let mut c = small();
        c.fill(BlockAddr(0), CacheState::Modified);
        c.fill(BlockAddr(2), CacheState::Shared);
        // Downgrade block 0 via snoop; it must remain LRU.
        c.set_state(BlockAddr(0), CacheState::Shared);
        let ev = c.fill(BlockAddr(4), CacheState::Shared).unwrap();
        assert_eq!(ev.block, BlockAddr(0));
        assert_eq!(ev.state, CacheState::Shared);
    }

    #[test]
    #[should_panic(expected = "set_state on absent block")]
    fn set_state_on_absent_panics() {
        let mut c = small();
        c.set_state(BlockAddr(9), CacheState::Shared);
    }

    #[test]
    fn pending_victim_predicts_eviction() {
        let mut c = small();
        assert!(c.pending_victim(BlockAddr(0)).is_none());
        c.fill(BlockAddr(0), CacheState::Shared);
        c.fill(BlockAddr(2), CacheState::Modified);
        let pv = c.pending_victim(BlockAddr(4)).unwrap();
        let ev = c.fill(BlockAddr(4), CacheState::Shared).unwrap();
        assert_eq!(pv, ev);
        // Resident block: upgrade, no victim.
        assert!(c.pending_victim(BlockAddr(4)).is_none());
    }

    #[test]
    fn promote_if_shared_only_promotes_shared() {
        let mut c = small();
        assert!(!c.promote_if_shared(BlockAddr(0))); // absent
        c.fill(BlockAddr(0), CacheState::Modified);
        assert!(!c.promote_if_shared(BlockAddr(0))); // not Shared
        assert_eq!(c.state_of(BlockAddr(0)), CacheState::Modified);
        c.fill(BlockAddr(2), CacheState::Shared);
        assert!(c.promote_if_shared(BlockAddr(2)));
        assert_eq!(c.state_of(BlockAddr(2)), CacheState::RemoteMaster);
    }

    #[test]
    fn promote_keeps_lru_position() {
        let mut c = small();
        c.fill(BlockAddr(0), CacheState::Shared);
        c.fill(BlockAddr(2), CacheState::Modified);
        // Promote block 0 via snoop; it must remain LRU.
        assert!(c.promote_if_shared(BlockAddr(0)));
        let ev = c.fill(BlockAddr(4), CacheState::Shared).unwrap();
        assert_eq!(ev.block, BlockAddr(0));
        assert_eq!(ev.state, CacheState::RemoteMaster);
    }

    #[test]
    fn downgrade_master_reports_prior_state() {
        let mut c = small();
        assert_eq!(c.downgrade_master(BlockAddr(0)), None); // absent
        c.fill(BlockAddr(0), CacheState::Modified);
        assert_eq!(c.downgrade_master(BlockAddr(0)), Some(CacheState::Modified));
        assert_eq!(c.state_of(BlockAddr(0)), CacheState::Shared);
        assert_eq!(c.downgrade_master(BlockAddr(0)), None); // already Shared
        c.fill(BlockAddr(2), CacheState::Exclusive);
        assert_eq!(
            c.downgrade_master(BlockAddr(2)),
            Some(CacheState::Exclusive)
        );
        assert_eq!(c.state_of(BlockAddr(2)), CacheState::Shared);
    }

    #[test]
    fn touch_miss_returns_invalid() {
        let mut c = small();
        assert_eq!(c.touch(BlockAddr(3)), CacheState::Invalid);
    }

    #[test]
    fn iter_reports_residents() {
        let mut c = small();
        c.fill(BlockAddr(0), CacheState::Shared);
        c.fill(BlockAddr(1), CacheState::Modified);
        let mut v: Vec<_> = c.iter().collect();
        v.sort_by_key(|(b, _)| b.0);
        assert_eq!(
            v,
            vec![
                (BlockAddr(0), CacheState::Shared),
                (BlockAddr(1), CacheState::Modified)
            ]
        );
    }

    #[test]
    fn clear_resets() {
        let mut c = small();
        c.fill(BlockAddr(0), CacheState::Shared);
        c.clear();
        assert!(c.is_empty());
    }
}
