//! A generic set-associative tag array with true-LRU replacement.

use crate::CacheShape;

#[derive(Debug, Clone)]
struct Frame<T> {
    tag: u64,
    value: T,
    last_use: u64,
}

/// A set-associative array mapping `tag -> T` within externally-computed
/// sets, with true-LRU victim selection.
///
/// Set indexing is deliberately *external*: the caller computes the set from
/// whatever bits it wants (block-address bits for conventional caches, page
/// address bits for the paper's `vp` victim-cache organization), typically
/// via [`CacheShape::set_of_block`] or [`CacheShape::set_of_page`]. The tag
/// stored here is the full block (or page) number, so distinct keys can
/// never alias.
///
/// # Example
///
/// ```
/// use dsm_cache::{CacheShape, SetAssoc};
/// let shape = CacheShape::from_sets_ways(2, 2, 64)?;
/// let mut c: SetAssoc<&str> = SetAssoc::new(shape);
/// assert!(c.insert(0, 100, "a").is_none());
/// assert!(c.insert(0, 200, "b").is_none());
/// // Set 0 is full; inserting a third tag evicts the LRU entry (tag 100).
/// let evicted = c.insert(0, 300, "c").unwrap();
/// assert_eq!(evicted, (100, "a"));
/// # Ok::<(), dsm_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssoc<T> {
    shape: CacheShape,
    frames: Vec<Option<Frame<T>>>,
    tick: u64,
    len: usize,
}

impl<T> SetAssoc<T> {
    /// Creates an empty array of the given shape.
    #[must_use]
    pub fn new(shape: CacheShape) -> Self {
        let mut frames = Vec::with_capacity(shape.total_blocks());
        frames.resize_with(shape.total_blocks(), || None);
        SetAssoc {
            shape,
            frames,
            tick: 0,
            len: 0,
        }
    }

    /// The shape this array was built with.
    #[must_use]
    pub fn shape(&self) -> &CacheShape {
        &self.shape
    }

    /// Number of occupied frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no frames are occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn set_range(&self, set: usize) -> core::ops::Range<usize> {
        assert!(set < self.shape.sets(), "set {set} out of range");
        let base = set * self.shape.ways();
        base..base + self.shape.ways()
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Looks up `tag` in `set` without touching LRU state.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn peek(&self, set: usize, tag: u64) -> Option<&T> {
        self.frames[self.set_range(set)]
            .iter()
            .flatten()
            .find(|f| f.tag == tag)
            .map(|f| &f.value)
    }

    /// Looks up `tag` in `set`, marking it most-recently-used on a hit.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn get(&mut self, set: usize, tag: u64) -> Option<&T> {
        let tick = self.bump();
        let range = self.set_range(set);
        self.frames[range]
            .iter_mut()
            .flatten()
            .find(|f| f.tag == tag)
            .map(|f| {
                f.last_use = tick;
                &f.value
            })
    }

    /// Mutable variant of [`SetAssoc::get`]; also refreshes LRU.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn get_mut(&mut self, set: usize, tag: u64) -> Option<&mut T> {
        let tick = self.bump();
        let range = self.set_range(set);
        self.frames[range]
            .iter_mut()
            .flatten()
            .find(|f| f.tag == tag)
            .map(|f| {
                f.last_use = tick;
                &mut f.value
            })
    }

    /// Mutable lookup without refreshing LRU (for state maintenance that
    /// should not count as a use, e.g. downgrades caused by snoops).
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn peek_mut(&mut self, set: usize, tag: u64) -> Option<&mut T> {
        let range = self.set_range(set);
        self.frames[range]
            .iter_mut()
            .flatten()
            .find(|f| f.tag == tag)
            .map(|f| &mut f.value)
    }

    /// Inserts `tag -> value` into `set`, evicting the LRU occupant if the
    /// set is full. Returns the evicted `(tag, value)`, or `None` if a free
    /// way was available. If `tag` is already present its value is replaced
    /// (and refreshed) and `None` is returned.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn insert(&mut self, set: usize, tag: u64, value: T) -> Option<(u64, T)> {
        let tick = self.bump();
        let range = self.set_range(set);

        // Already present: replace in place.
        if let Some(f) = self.frames[range.clone()]
            .iter_mut()
            .flatten()
            .find(|f| f.tag == tag)
        {
            f.value = value;
            f.last_use = tick;
            return None;
        }

        // Free way available.
        if let Some(slot) = self.frames[range.clone()].iter().position(Option::is_none) {
            let idx = range.start + slot;
            self.frames[idx] = Some(Frame {
                tag,
                value,
                last_use: tick,
            });
            self.len += 1;
            return None;
        }

        // Evict the LRU way.
        let victim_off = self.frames[range.clone()]
            .iter()
            .enumerate()
            .min_by_key(|(_, f)| f.as_ref().map_or(u64::MAX, |f| f.last_use))
            .map(|(i, _)| i)
            .expect("set has at least one way");
        let idx = range.start + victim_off;
        let old = self.frames[idx]
            .replace(Frame {
                tag,
                value,
                last_use: tick,
            })
            .expect("victim frame is occupied");
        Some((old.tag, old.value))
    }

    /// Removes `tag` from `set`, returning its value if present.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn remove(&mut self, set: usize, tag: u64) -> Option<T> {
        let range = self.set_range(set);
        for idx in range {
            if self.frames[idx].as_ref().is_some_and(|f| f.tag == tag) {
                self.len -= 1;
                return self.frames[idx].take().map(|f| f.value);
            }
        }
        None
    }

    /// The tag/value that [`SetAssoc::insert`] would evict from a full
    /// `set`, or `None` if the set still has free ways.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn victim_of(&self, set: usize) -> Option<(u64, &T)> {
        let range = self.set_range(set);
        let slice = &self.frames[range];
        if slice.iter().any(Option::is_none) {
            return None;
        }
        slice
            .iter()
            .flatten()
            .min_by_key(|f| f.last_use)
            .map(|f| (f.tag, &f.value))
    }

    /// Iterates over the occupants of `set` as `(tag, &value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn iter_set(&self, set: usize) -> impl Iterator<Item = (u64, &T)> {
        self.frames[self.set_range(set)]
            .iter()
            .flatten()
            .map(|f| (f.tag, &f.value))
    }

    /// Iterates over all occupants as `(set, tag, &value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64, &T)> {
        let ways = self.shape.ways();
        self.frames
            .iter()
            .enumerate()
            .filter_map(move |(i, f)| f.as_ref().map(|f| (i / ways, f.tag, &f.value)))
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.frames.iter_mut().for_each(|f| *f = None);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(sets: usize, ways: usize) -> CacheShape {
        CacheShape::from_sets_ways(sets, ways, 64).unwrap()
    }

    #[test]
    fn empty_lookup_misses() {
        let mut c: SetAssoc<u32> = SetAssoc::new(shape(4, 2));
        assert!(c.get(0, 1).is_none());
        assert!(c.peek(0, 1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn insert_then_hit() {
        let mut c = SetAssoc::new(shape(4, 2));
        assert!(c.insert(1, 42, "x").is_none());
        assert_eq!(c.get(1, 42), Some(&"x"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SetAssoc::new(shape(1, 2));
        c.insert(0, 1, 1);
        c.insert(0, 2, 2);
        // Touch tag 1 so tag 2 becomes LRU.
        c.get(0, 1);
        let evicted = c.insert(0, 3, 3).unwrap();
        assert_eq!(evicted, (2, 2));
        assert!(c.peek(0, 1).is_some());
        assert!(c.peek(0, 3).is_some());
    }

    #[test]
    fn peek_does_not_refresh_lru() {
        let mut c = SetAssoc::new(shape(1, 2));
        c.insert(0, 1, ());
        c.insert(0, 2, ());
        let _ = c.peek(0, 1); // must NOT protect tag 1
        let evicted = c.insert(0, 3, ()).unwrap();
        assert_eq!(evicted.0, 1);
    }

    #[test]
    fn peek_mut_does_not_refresh_lru() {
        let mut c = SetAssoc::new(shape(1, 2));
        c.insert(0, 1, 0u8);
        c.insert(0, 2, 0u8);
        *c.peek_mut(0, 1).unwrap() = 9;
        let evicted = c.insert(0, 3, 0u8).unwrap();
        assert_eq!(evicted, (1, 9));
    }

    #[test]
    fn reinsert_replaces_value_in_place() {
        let mut c = SetAssoc::new(shape(1, 2));
        c.insert(0, 1, "old");
        assert!(c.insert(0, 1, "new").is_none());
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(0, 1), Some(&"new"));
    }

    #[test]
    fn remove_frees_the_way() {
        let mut c = SetAssoc::new(shape(1, 1));
        c.insert(0, 1, ());
        assert_eq!(c.remove(0, 1), Some(()));
        assert_eq!(c.remove(0, 1), None);
        assert!(c.insert(0, 2, ()).is_none());
    }

    #[test]
    fn victim_of_matches_insert_behaviour() {
        let mut c = SetAssoc::new(shape(1, 2));
        assert!(c.victim_of(0).is_none());
        c.insert(0, 1, ());
        assert!(c.victim_of(0).is_none());
        c.insert(0, 2, ());
        let (vtag, _) = c.victim_of(0).unwrap();
        let evicted = c.insert(0, 3, ()).unwrap();
        assert_eq!(vtag, evicted.0);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = SetAssoc::new(shape(2, 1));
        c.insert(0, 1, ());
        assert!(c.insert(1, 2, ()).is_none()); // different set, no eviction
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn iter_set_and_iter() {
        let mut c = SetAssoc::new(shape(2, 2));
        c.insert(0, 1, ());
        c.insert(1, 2, ());
        c.insert(1, 3, ());
        let set1: Vec<u64> = c.iter_set(1).map(|(t, _)| t).collect();
        assert_eq!(set1.len(), 2);
        assert!(set1.contains(&2) && set1.contains(&3));
        assert_eq!(c.iter().count(), 3);
    }

    #[test]
    fn clear_empties() {
        let mut c = SetAssoc::new(shape(2, 2));
        c.insert(0, 1, ());
        c.clear();
        assert!(c.is_empty());
        assert!(c.peek(0, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        let c: SetAssoc<()> = SetAssoc::new(shape(2, 2));
        let _ = c.peek(2, 0);
    }

    #[test]
    fn get_mut_refreshes_lru() {
        let mut c = SetAssoc::new(shape(1, 2));
        c.insert(0, 1, 0u8);
        c.insert(0, 2, 0u8);
        *c.get_mut(0, 1).unwrap() = 5;
        let evicted = c.insert(0, 3, 0u8).unwrap();
        assert_eq!(evicted.0, 2);
    }
}
