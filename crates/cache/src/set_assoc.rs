//! A generic set-associative tag array with true-LRU replacement.

use crate::CacheShape;

/// The tag value marking an unoccupied frame.
///
/// Tags are block or page numbers, i.e. addresses shifted right by at
/// least the block-offset width, so a real tag can never reach
/// `u64::MAX`; [`SetAssoc::insert`] asserts this.
const EMPTY: u64 = u64::MAX;

/// A set-associative array mapping `tag -> T` within externally-computed
/// sets, with true-LRU victim selection.
///
/// Set indexing is deliberately *external*: the caller computes the set from
/// whatever bits it wants (block-address bits for conventional caches, page
/// address bits for the paper's `vp` victim-cache organization), typically
/// via [`CacheShape::set_of_block`] or [`CacheShape::set_of_page`]. The tag
/// stored here is the full block (or page) number, so distinct keys can
/// never alias.
///
/// Storage is struct-of-arrays: the tags of all frames live in one dense
/// `u64` vector (unoccupied frames hold a sentinel), with values and LRU
/// timestamps in parallel vectors. A lookup therefore scans 8 bytes per
/// way — one cache line covers an 8-way set — instead of pulling each
/// frame's value and timestamp through the cache alongside its tag.
///
/// # Example
///
/// ```
/// use dsm_cache::{CacheShape, SetAssoc};
/// let shape = CacheShape::from_sets_ways(2, 2, 64)?;
/// let mut c: SetAssoc<&str> = SetAssoc::new(shape);
/// assert!(c.insert(0, 100, "a").is_none());
/// assert!(c.insert(0, 200, "b").is_none());
/// // Set 0 is full; inserting a third tag evicts the LRU entry (tag 100).
/// let evicted = c.insert(0, 300, "c").unwrap();
/// assert_eq!(evicted, (100, "a"));
/// # Ok::<(), dsm_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssoc<T> {
    shape: CacheShape,
    /// Frame tags, [`EMPTY`] where unoccupied.
    tags: Vec<u64>,
    /// Frame payloads; meaningless (default) where the tag is [`EMPTY`].
    values: Vec<T>,
    /// LRU timestamps; meaningless where the tag is [`EMPTY`].
    last_use: Vec<u64>,
    tick: u64,
    len: usize,
}

impl<T: Copy + Default> SetAssoc<T> {
    /// Creates an empty array of the given shape.
    #[must_use]
    pub fn new(shape: CacheShape) -> Self {
        let n = shape.total_blocks();
        SetAssoc {
            shape,
            tags: vec![EMPTY; n],
            values: vec![T::default(); n],
            last_use: vec![0; n],
            tick: 0,
            len: 0,
        }
    }

    /// The shape this array was built with.
    #[must_use]
    pub fn shape(&self) -> &CacheShape {
        &self.shape
    }

    /// Number of occupied frames.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no frames are occupied.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn set_range(&self, set: usize) -> core::ops::Range<usize> {
        assert!(set < self.shape.sets(), "set {set} out of range");
        let base = set * self.shape.ways();
        base..base + self.shape.ways()
    }

    fn bump(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Index of the frame holding `tag` in `set`, if any. The sentinel
    /// never matches a caller-supplied tag, so unoccupied frames need no
    /// separate occupancy test on this, the hottest path in the simulator.
    #[inline]
    fn find(&self, set: usize, tag: u64) -> Option<usize> {
        debug_assert!(tag != EMPTY, "lookup of the reserved empty tag");
        let ways = self.shape.ways();
        let base = set * ways;
        self.tags[base..base + ways]
            .iter()
            .position(|&t| t == tag)
            .map(|i| base + i)
    }

    /// Looks up `tag` in `set` without touching LRU state.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    #[inline]
    pub fn peek(&self, set: usize, tag: u64) -> Option<&T> {
        self.find(set, tag).map(|i| &self.values[i])
    }

    /// Hints `set`'s tag row into L1 — a row of up to eight ways shares
    /// one cache line, so a single hint covers the whole associative
    /// scan. The replay pipeline calls this for the blocks of batch
    /// `N+1` while batch `N` runs through the protocol. Out-of-range
    /// sets are ignored (the caller is predicting, not asserting).
    #[inline]
    pub fn prefetch_set(&self, set: usize) {
        dsm_types::prefetch_slice(&self.tags, set * self.shape.ways());
    }

    /// Looks up `tag` in `set`, marking it most-recently-used on a hit.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[inline]
    pub fn get(&mut self, set: usize, tag: u64) -> Option<&T> {
        let tick = self.bump();
        match self.find(set, tag) {
            Some(i) => {
                self.last_use[i] = tick;
                Some(&self.values[i])
            }
            None => None,
        }
    }

    /// Mutable variant of [`SetAssoc::get`]; also refreshes LRU.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[inline]
    pub fn get_mut(&mut self, set: usize, tag: u64) -> Option<&mut T> {
        let tick = self.bump();
        match self.find(set, tag) {
            Some(i) => {
                self.last_use[i] = tick;
                Some(&mut self.values[i])
            }
            None => None,
        }
    }

    /// Mutable lookup without refreshing LRU (for state maintenance that
    /// should not count as a use, e.g. downgrades caused by snoops).
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[inline]
    pub fn peek_mut(&mut self, set: usize, tag: u64) -> Option<&mut T> {
        self.find(set, tag).map(|i| &mut self.values[i])
    }

    /// Inserts `tag -> value` into `set`, evicting the LRU occupant if the
    /// set is full. Returns the evicted `(tag, value)`, or `None` if a free
    /// way was available. If `tag` is already present its value is replaced
    /// (and refreshed) and `None` is returned.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range or `tag` is the reserved sentinel
    /// (`u64::MAX`, unreachable for real block/page numbers).
    pub fn insert(&mut self, set: usize, tag: u64, value: T) -> Option<(u64, T)> {
        assert!(tag != EMPTY, "insert of the reserved empty tag");
        let tick = self.bump();
        let range = self.set_range(set);

        // Already present: replace in place. A free way doubles as the
        // eviction victim search: one pass tracks both.
        let mut victim = range.start;
        let mut victim_use = u64::MAX;
        for i in range {
            if self.tags[i] == tag {
                self.values[i] = value;
                self.last_use[i] = tick;
                return None;
            }
            // An empty frame sorts before any occupied one, so a free way
            // always wins the victim slot when one exists.
            let use_key = if self.tags[i] == EMPTY {
                0
            } else {
                self.last_use[i]
            };
            if use_key < victim_use {
                victim = i;
                victim_use = use_key;
            }
        }

        let evicted = if self.tags[victim] == EMPTY {
            self.len += 1;
            None
        } else {
            Some((self.tags[victim], self.values[victim]))
        };
        self.tags[victim] = tag;
        self.values[victim] = value;
        self.last_use[victim] = tick;
        evicted
    }

    /// Removes `tag` from `set`, returning its value if present.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn remove(&mut self, set: usize, tag: u64) -> Option<T> {
        let i = self.find(set, tag)?;
        self.len -= 1;
        self.tags[i] = EMPTY;
        Some(self.values[i])
    }

    /// The tag/value that [`SetAssoc::insert`] would evict from a full
    /// `set`, or `None` if the set still has free ways.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn victim_of(&self, set: usize) -> Option<(u64, &T)> {
        let range = self.set_range(set);
        let mut victim: Option<usize> = None;
        for i in range {
            if self.tags[i] == EMPTY {
                return None;
            }
            if victim.is_none_or(|v| self.last_use[i] < self.last_use[v]) {
                victim = Some(i);
            }
        }
        victim.map(|i| (self.tags[i], &self.values[i]))
    }

    /// Occupied frames in `set` — the per-set fill hook the profiling
    /// layer reads (victim-NC set pressure). O(ways).
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn set_len(&self, set: usize) -> usize {
        self.iter_set(set).count()
    }

    /// Iterates over the occupants of `set` as `(tag, &value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn iter_set(&self, set: usize) -> impl Iterator<Item = (u64, &T)> {
        let range = self.set_range(set);
        range
            .filter(|&i| self.tags[i] != EMPTY)
            .map(|i| (self.tags[i], &self.values[i]))
    }

    /// Iterates over all occupants as `(set, tag, &value)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64, &T)> {
        let ways = self.shape.ways();
        self.tags
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != EMPTY)
            .map(move |(i, &t)| (i / ways, t, &self.values[i]))
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.tags.iter_mut().for_each(|t| *t = EMPTY);
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape(sets: usize, ways: usize) -> CacheShape {
        CacheShape::from_sets_ways(sets, ways, 64).unwrap()
    }

    #[test]
    fn empty_lookup_misses() {
        let mut c: SetAssoc<u32> = SetAssoc::new(shape(4, 2));
        assert!(c.get(0, 1).is_none());
        assert!(c.peek(0, 1).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn insert_then_hit() {
        let mut c = SetAssoc::new(shape(4, 2));
        assert!(c.insert(1, 42, "x").is_none());
        assert_eq!(c.get(1, 42), Some(&"x"));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = SetAssoc::new(shape(1, 2));
        c.insert(0, 1, 1);
        c.insert(0, 2, 2);
        // Touch tag 1 so tag 2 becomes LRU.
        c.get(0, 1);
        let evicted = c.insert(0, 3, 3).unwrap();
        assert_eq!(evicted, (2, 2));
        assert!(c.peek(0, 1).is_some());
        assert!(c.peek(0, 3).is_some());
    }

    #[test]
    fn peek_does_not_refresh_lru() {
        let mut c = SetAssoc::new(shape(1, 2));
        c.insert(0, 1, ());
        c.insert(0, 2, ());
        let _ = c.peek(0, 1); // must NOT protect tag 1
        let evicted = c.insert(0, 3, ()).unwrap();
        assert_eq!(evicted.0, 1);
    }

    #[test]
    fn peek_mut_does_not_refresh_lru() {
        let mut c = SetAssoc::new(shape(1, 2));
        c.insert(0, 1, 0u8);
        c.insert(0, 2, 0u8);
        *c.peek_mut(0, 1).unwrap() = 9;
        let evicted = c.insert(0, 3, 0u8).unwrap();
        assert_eq!(evicted, (1, 9));
    }

    #[test]
    fn reinsert_replaces_value_in_place() {
        let mut c = SetAssoc::new(shape(1, 2));
        c.insert(0, 1, "old");
        assert!(c.insert(0, 1, "new").is_none());
        assert_eq!(c.len(), 1);
        assert_eq!(c.peek(0, 1), Some(&"new"));
    }

    #[test]
    fn remove_frees_the_way() {
        let mut c = SetAssoc::new(shape(1, 1));
        c.insert(0, 1, ());
        assert_eq!(c.remove(0, 1), Some(()));
        assert_eq!(c.remove(0, 1), None);
        assert!(c.insert(0, 2, ()).is_none());
    }

    #[test]
    fn victim_of_matches_insert_behaviour() {
        let mut c = SetAssoc::new(shape(1, 2));
        assert!(c.victim_of(0).is_none());
        c.insert(0, 1, ());
        assert!(c.victim_of(0).is_none());
        c.insert(0, 2, ());
        let (vtag, _) = c.victim_of(0).unwrap();
        let evicted = c.insert(0, 3, ()).unwrap();
        assert_eq!(vtag, evicted.0);
    }

    #[test]
    fn sets_are_independent() {
        let mut c = SetAssoc::new(shape(2, 1));
        c.insert(0, 1, ());
        assert!(c.insert(1, 2, ()).is_none()); // different set, no eviction
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn iter_set_and_iter() {
        let mut c = SetAssoc::new(shape(2, 2));
        c.insert(0, 1, ());
        c.insert(1, 2, ());
        c.insert(1, 3, ());
        let set1: Vec<u64> = c.iter_set(1).map(|(t, _)| t).collect();
        assert_eq!(set1.len(), 2);
        assert!(set1.contains(&2) && set1.contains(&3));
        assert_eq!(c.iter().count(), 3);
    }

    #[test]
    fn clear_empties() {
        let mut c = SetAssoc::new(shape(2, 2));
        c.insert(0, 1, ());
        c.clear();
        assert!(c.is_empty());
        assert!(c.peek(0, 1).is_none());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_set_panics() {
        let c: SetAssoc<()> = SetAssoc::new(shape(2, 2));
        let _ = c.peek(2, 0);
    }

    #[test]
    fn get_mut_refreshes_lru() {
        let mut c = SetAssoc::new(shape(1, 2));
        c.insert(0, 1, 0u8);
        c.insert(0, 2, 0u8);
        *c.get_mut(0, 1).unwrap() = 5;
        let evicted = c.insert(0, 3, 0u8).unwrap();
        assert_eq!(evicted.0, 2);
    }
}
