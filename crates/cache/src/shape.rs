//! Cache size/associativity arithmetic.

use dsm_types::{BlockAddr, ConfigError, Geometry, PageAddr};

/// The shape of a set-associative cache: number of sets and ways, derived
/// from a capacity, block size and associativity.
///
/// # Example
///
/// ```
/// use dsm_cache::CacheShape;
/// // 16 KB, 64-byte blocks, 4 ways -> 64 sets.
/// let s = CacheShape::new(16 * 1024, 64, 4)?;
/// assert_eq!(s.sets(), 64);
/// assert_eq!(s.ways(), 4);
/// assert_eq!(s.total_blocks(), 256);
/// # Ok::<(), dsm_types::ConfigError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheShape {
    sets: usize,
    ways: usize,
    block_bytes: u64,
}

impl CacheShape {
    /// Computes the shape of a cache of `capacity_bytes` with the given
    /// block size and associativity.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any argument is zero, the capacity is not
    /// an exact multiple of `block_bytes * ways`, or the resulting number of
    /// sets is not a power of two (required for bit-field set indexing).
    pub fn new(capacity_bytes: u64, block_bytes: u64, ways: usize) -> Result<Self, ConfigError> {
        if capacity_bytes == 0 || block_bytes == 0 || ways == 0 {
            return Err(ConfigError::new(
                "cache capacity, block size and associativity must be nonzero",
            ));
        }
        let way_bytes = block_bytes
            .checked_mul(ways as u64)
            .ok_or_else(|| ConfigError::new("cache way size overflows"))?;
        if !capacity_bytes.is_multiple_of(way_bytes) {
            return Err(ConfigError::new(format!(
                "capacity {capacity_bytes} is not a multiple of ways*block ({way_bytes})"
            )));
        }
        let sets = capacity_bytes / way_bytes;
        if !sets.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "set count {sets} must be a power of two"
            )));
        }
        Ok(CacheShape {
            sets: sets as usize,
            ways,
            block_bytes,
        })
    }

    /// Builds a shape directly from a set count and way count.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `sets` is not a power of two or either
    /// count is zero.
    pub fn from_sets_ways(sets: usize, ways: usize, block_bytes: u64) -> Result<Self, ConfigError> {
        if sets == 0 || ways == 0 || block_bytes == 0 {
            return Err(ConfigError::new(
                "sets, ways and block size must be nonzero",
            ));
        }
        if !sets.is_power_of_two() {
            return Err(ConfigError::new(format!(
                "set count {sets} must be a power of two"
            )));
        }
        Ok(CacheShape {
            sets,
            ways,
            block_bytes,
        })
    }

    /// Number of sets.
    #[must_use]
    #[inline]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of ways (associativity).
    #[must_use]
    #[inline]
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Block size in bytes.
    #[must_use]
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Total number of block frames.
    #[must_use]
    pub fn total_blocks(&self) -> usize {
        self.sets * self.ways
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.block_bytes * self.total_blocks() as u64
    }

    /// Set index for a block address, using the least significant bits of
    /// the block number (the conventional indexing, `vb` in the paper).
    #[must_use]
    #[inline]
    pub fn set_of_block(&self, block: BlockAddr) -> usize {
        (block.0 as usize) & (self.sets - 1)
    }

    /// Set index for a block using the least significant bits of its *page*
    /// number (the paper's `vp` indexing: all blocks of a page map to the
    /// same set, so a set acts as intermediate storage for one remote page).
    #[must_use]
    #[inline]
    pub fn set_of_page(&self, geo: &Geometry, block: BlockAddr) -> usize {
        let page: PageAddr = geo.page_of_block(block);
        (page.0 as usize) & (self.sets - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_types::Geometry;

    #[test]
    fn paper_shapes() {
        // 16 KB 2-way processor cache -> 128 sets.
        let pc = CacheShape::new(16 * 1024, 64, 2).unwrap();
        assert_eq!(pc.sets(), 128);
        // 16 KB 4-way NC -> 64 sets.
        let nc = CacheShape::new(16 * 1024, 64, 4).unwrap();
        assert_eq!(nc.sets(), 64);
        // 1 KB 4-way NC -> 4 sets.
        let small = CacheShape::new(1024, 64, 4).unwrap();
        assert_eq!(small.sets(), 4);
        // 512 KB 4-way DRAM NC -> 2048 sets.
        let dram = CacheShape::new(512 * 1024, 64, 4).unwrap();
        assert_eq!(dram.sets(), 2048);
    }

    #[test]
    fn rejects_zero_and_nonmultiple() {
        assert!(CacheShape::new(0, 64, 2).is_err());
        assert!(CacheShape::new(16 * 1024, 0, 2).is_err());
        assert!(CacheShape::new(16 * 1024, 64, 0).is_err());
        assert!(CacheShape::new(1000, 64, 2).is_err());
    }

    #[test]
    fn rejects_non_power_of_two_sets() {
        // 192 KB / (64*2) = 1536 sets -> not a power of two.
        assert!(CacheShape::new(192 * 1024, 64, 2).is_err());
    }

    #[test]
    fn from_sets_ways_validates() {
        assert!(CacheShape::from_sets_ways(3, 2, 64).is_err());
        assert!(CacheShape::from_sets_ways(0, 2, 64).is_err());
        let s = CacheShape::from_sets_ways(4, 2, 64).unwrap();
        assert_eq!(s.capacity_bytes(), 512);
    }

    #[test]
    fn block_indexing_uses_low_bits() {
        let s = CacheShape::new(16 * 1024, 64, 4).unwrap(); // 64 sets
        assert_eq!(s.set_of_block(BlockAddr(0)), 0);
        assert_eq!(s.set_of_block(BlockAddr(63)), 63);
        assert_eq!(s.set_of_block(BlockAddr(64)), 0);
        assert_eq!(s.set_of_block(BlockAddr(65)), 1);
    }

    #[test]
    fn page_indexing_groups_blocks_of_a_page() {
        let geo = Geometry::paper_default();
        let s = CacheShape::new(16 * 1024, 64, 4).unwrap(); // 64 sets
                                                            // All 64 blocks of page 5 map to the same set.
        let base = geo.first_block_of_page(dsm_types::PageAddr(5));
        let set = s.set_of_page(&geo, base);
        for i in 0..geo.blocks_per_page() {
            assert_eq!(s.set_of_page(&geo, BlockAddr(base.0 + i)), set);
        }
        // Consecutive pages land in consecutive sets.
        let next = geo.first_block_of_page(dsm_types::PageAddr(6));
        assert_eq!(s.set_of_page(&geo, next), (set + 1) % 64);
    }

    #[test]
    fn capacity_roundtrips() {
        let s = CacheShape::new(16 * 1024, 64, 2).unwrap();
        assert_eq!(s.capacity_bytes(), 16 * 1024);
        assert_eq!(s.total_blocks(), 256);
    }
}
