//! MESIR block states.

use core::fmt;

/// The coherence state of a block in a processor cache under the paper's
/// **MESIR** protocol — MESI extended with `R`, *mastership for a remote
/// clean block*.
///
/// `R` behaves like `Shared` except on victimization: a block in `R` is the
/// designated master copy of a clean remote block inside the cluster, so its
/// replacement generates a bus transaction that either hands mastership to
/// another sharer or deposits the block in the network victim cache. Under
/// plain MESI a clean block is dropped silently and can never be captured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CacheState {
    /// Not present (or invalidated).
    #[default]
    Invalid,
    /// Clean, potentially multiple sharers, not the master copy.
    Shared,
    /// Clean, only cached copy machine-wide, local supply allowed (MESI `E`).
    Exclusive,
    /// Dirty, only valid copy machine-wide.
    Modified,
    /// Clean **remote** block for which this cache holds cluster mastership
    /// (the paper's `R` state). Replacement reaches the bus.
    RemoteMaster,
    /// Dirty-shared (MOESI `O`): this cache supplies the block and owes the
    /// eventual write-back, while peers hold `Shared` copies. The paper
    /// considered adding `O` to avoid polluting the victim cache with
    /// downgrade write-backs but measured "very little benefit"; it is
    /// implemented here as an optional protocol variant so that claim can
    /// be checked (see the `dirty_shared_o_state` ablation).
    Owned,
}

impl CacheState {
    /// Whether the block is present (any state but `Invalid`).
    #[must_use]
    pub fn is_valid(self) -> bool {
        !matches!(self, CacheState::Invalid)
    }

    /// Whether the block holds data that differs from memory.
    #[must_use]
    pub fn is_dirty(self) -> bool {
        matches!(self, CacheState::Modified | CacheState::Owned)
    }

    /// Whether a read hit is allowed in this state.
    #[must_use]
    pub fn allows_read(self) -> bool {
        self.is_valid()
    }

    /// Whether a write hit is allowed without a bus transaction.
    #[must_use]
    pub fn allows_silent_write(self) -> bool {
        matches!(self, CacheState::Modified | CacheState::Exclusive)
    }

    /// Whether this cache must respond to a snoop for the block with data
    /// (it is the cluster master copy).
    #[must_use]
    pub fn is_master(self) -> bool {
        matches!(
            self,
            CacheState::Modified
                | CacheState::Exclusive
                | CacheState::RemoteMaster
                | CacheState::Owned
        )
    }
}

impl fmt::Display for CacheState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CacheState::Invalid => "I",
            CacheState::Shared => "S",
            CacheState::Exclusive => "E",
            CacheState::Modified => "M",
            CacheState::RemoteMaster => "R",
            CacheState::Owned => "O",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_invalid() {
        assert_eq!(CacheState::default(), CacheState::Invalid);
    }

    #[test]
    fn validity() {
        assert!(!CacheState::Invalid.is_valid());
        for s in [
            CacheState::Shared,
            CacheState::Exclusive,
            CacheState::Modified,
            CacheState::RemoteMaster,
            CacheState::Owned,
        ] {
            assert!(s.is_valid(), "{s} should be valid");
        }
    }

    #[test]
    fn only_modified_is_dirty() {
        assert!(CacheState::Modified.is_dirty());
        assert!(CacheState::Owned.is_dirty());
        for s in [
            CacheState::Invalid,
            CacheState::Shared,
            CacheState::Exclusive,
            CacheState::RemoteMaster,
        ] {
            assert!(!s.is_dirty(), "{s} should be clean");
        }
    }

    #[test]
    fn silent_writes_need_exclusivity() {
        assert!(CacheState::Modified.allows_silent_write());
        assert!(CacheState::Exclusive.allows_silent_write());
        assert!(!CacheState::Shared.allows_silent_write());
        assert!(!CacheState::RemoteMaster.allows_silent_write());
        assert!(!CacheState::Owned.allows_silent_write());
        assert!(!CacheState::Invalid.allows_silent_write());
    }

    #[test]
    fn masters_supply_data() {
        assert!(CacheState::Modified.is_master());
        assert!(CacheState::Owned.is_master());
        assert!(CacheState::Exclusive.is_master());
        assert!(CacheState::RemoteMaster.is_master());
        assert!(!CacheState::Shared.is_master());
        assert!(!CacheState::Invalid.is_master());
    }

    #[test]
    fn display_single_letter() {
        assert_eq!(CacheState::RemoteMaster.to_string(), "R");
        assert_eq!(CacheState::Modified.to_string(), "M");
        assert_eq!(CacheState::Owned.to_string(), "O");
    }
}
