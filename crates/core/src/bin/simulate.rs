//! Simulates a system configuration on a workload or a recorded trace.
//!
//! ```text
//! simulate --system <name> --workload <benchmark> [--scale <f>] [--dev]
//! simulate --system <name> --trace <file.dsmt> [--data-mb <n>] [--mmap]
//! ```
//!
//! Systems: `base`, `nc`, `vb`, `vp`, `ncd`, `ncs`, `inf-dram`, and the
//! page-cache systems `ncp`, `vbp`, `vpp`, `vxp` (which accept
//! `--pc-fraction <d>` [default 5] or `--pc-bytes <n>`, and `vxp` accepts
//! `--threshold <t>` [default 32]).
//!
//! `--stats` attaches the observability probe and appends a profiling
//! view: event counts by kind, per-cluster remote intensity and bus
//! traffic, the hottest pages (`--top <k>`, default 10), and the
//! relocation/threshold timelines. `--epoch <refs>` additionally samples
//! the run into epochs and reports the per-epoch remote miss series.

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use dsm_core::obs::StatsSink;
use dsm_core::runner::{report_of, run_trace};
use dsm_core::{NcSpec, PcSize, Report, System, SystemSpec};
use dsm_trace::{open_shared_mapped, read_shared, CodecError, Scale, SharedTrace, WorkloadKind};
use dsm_types::{ClusterId, DsmError, Geometry, Topology};

fn usage() -> ExitCode {
    eprintln!(
        "usage: simulate --system <name> --workload <benchmark> [--scale <f>] [--dev]\n\
         \x20      simulate --system <name> --trace <file.dsmt> [--data-mb <n>] [--mmap]\n\
         systems: base nc vb vp ncd ncs inf-dram ncp vbp vpp vxp origin origin-vb\n\
         overrides: --cache-bytes <n> --cache-ways <n> --nc-bytes <n> --pointers <p> --dirty-shared\n\
         page-cache options: --pc-fraction <d> | --pc-bytes <n>; vxp: --threshold <t>\n\
         checking: --check <K> (validate coherence invariants every K references)\n\
         parallelism: --shard-workers <n> (shard replay by home cluster; metrics identical)\n\
         observability: --stats [--top <k>] [--epoch <refs>]\n\
         chaos: env DSM_FAULT_PLAN=<seed|spec> arms deterministic fault injection\n\
         \x20      (supervised recovery keeps metrics identical or fails structurally)"
    );
    ExitCode::from(2)
}

struct Options {
    system: String,
    workload: Option<WorkloadKind>,
    trace: Option<String>,
    scale: f64,
    dev: bool,
    pc_fraction: Option<u32>,
    pc_bytes: Option<u64>,
    threshold: u32,
    cache_bytes: Option<u64>,
    cache_ways: Option<usize>,
    nc_bytes: Option<u64>,
    pointers: Option<usize>,
    dirty_shared: bool,
    check: Option<u64>,
    data_mb: Option<u64>,
    mmap: bool,
    stats: bool,
    top: usize,
    epoch: Option<u64>,
    shard_workers: usize,
}

fn parse_args() -> Result<Options, String> {
    let mut o = Options {
        system: String::new(),
        workload: None,
        trace: None,
        scale: 1.0,
        dev: false,
        pc_fraction: None,
        pc_bytes: None,
        threshold: 32,
        cache_bytes: None,
        cache_ways: None,
        nc_bytes: None,
        pointers: None,
        dirty_shared: false,
        check: None,
        data_mb: None,
        mmap: false,
        stats: false,
        top: 10,
        epoch: None,
        shard_workers: 1,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().ok_or_else(|| format!("{a} requires a value"));
        fn num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
            v.parse().map_err(|_| format!("bad value '{v}' for {flag}"))
        }
        match a.as_str() {
            "--system" => o.system = val()?,
            "--workload" => {
                let name = val()?;
                o.workload = WorkloadKind::all()
                    .into_iter()
                    .find(|k| k.display_name().eq_ignore_ascii_case(&name));
                if o.workload.is_none() {
                    return Err(format!("unknown benchmark '{name}'"));
                }
            }
            "--trace" => o.trace = Some(val()?),
            "--scale" => o.scale = num("--scale", &val()?)?,
            "--dev" => o.dev = true,
            "--pc-fraction" => o.pc_fraction = Some(num("--pc-fraction", &val()?)?),
            "--pc-bytes" => o.pc_bytes = Some(num("--pc-bytes", &val()?)?),
            "--threshold" => o.threshold = num("--threshold", &val()?)?,
            "--cache-bytes" => o.cache_bytes = Some(num("--cache-bytes", &val()?)?),
            "--cache-ways" => o.cache_ways = Some(num("--cache-ways", &val()?)?),
            "--nc-bytes" => o.nc_bytes = Some(num("--nc-bytes", &val()?)?),
            "--pointers" => {
                let p: usize = num("--pointers", &val()?)?;
                if p == 0 {
                    return Err("--pointers must be positive".to_owned());
                }
                o.pointers = Some(p);
            }
            "--dirty-shared" => o.dirty_shared = true,
            "--check" => o.check = Some(num("--check", &val()?)?),
            "--data-mb" => o.data_mb = Some(num("--data-mb", &val()?)?),
            "--mmap" => o.mmap = true,
            "--stats" => o.stats = true,
            "--top" => o.top = num("--top", &val()?)?,
            "--epoch" => {
                let w: u64 = num("--epoch", &val()?)?;
                if w == 0 {
                    return Err("--epoch must be positive".to_owned());
                }
                o.epoch = Some(w);
            }
            "--shard-workers" => {
                let n: usize = num("--shard-workers", &val()?)?;
                if n == 0 {
                    return Err("--shard-workers must be at least 1".to_owned());
                }
                o.shard_workers = n;
            }
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if o.system.is_empty() {
        return Err("--system is required".to_owned());
    }
    if o.workload.is_none() == o.trace.is_none() {
        return Err("exactly one of --workload and --trace is required".to_owned());
    }
    if o.mmap && o.trace.is_none() {
        return Err("--mmap requires --trace (generated workloads are heap-resident)".to_owned());
    }
    if o.stats && o.shard_workers > 1 {
        return Err(
            "--shard-workers does not combine with --stats (the probe is single-threaded)"
                .to_owned(),
        );
    }
    Ok(o)
}

fn spec_of(o: &Options) -> Result<SystemSpec, String> {
    let pc_size = match (o.pc_bytes, o.pc_fraction) {
        (Some(b), _) => PcSize::Bytes(b),
        (None, Some(d)) => PcSize::DataFraction(d),
        (None, None) => PcSize::DataFraction(5),
    };
    let mut spec = match o.system.as_str() {
        "base" => SystemSpec::base(),
        "nc" => SystemSpec::nc(),
        "vb" => SystemSpec::vb(),
        "vp" => SystemSpec::vp(),
        "ncd" => SystemSpec::ncd(),
        "ncs" => SystemSpec::ncs(),
        "inf-dram" => SystemSpec::infinite_dram(),
        "ncp" => SystemSpec::ncp(pc_size),
        "vbp" => SystemSpec::vbp(pc_size),
        "vpp" => SystemSpec::vpp(pc_size),
        "vxp" => SystemSpec::vxp(pc_size, o.threshold),
        "origin" => SystemSpec::origin(),
        "origin-vb" => SystemSpec::origin_vb(),
        other => return Err(format!("unknown system '{other}'")),
    };
    if o.cache_bytes.is_some() || o.cache_ways.is_some() {
        let bytes = o.cache_bytes.unwrap_or(spec.cache.bytes);
        let ways = o.cache_ways.unwrap_or(spec.cache.ways);
        spec = spec.with_cache(bytes, ways);
    }
    if let Some(bytes) = o.nc_bytes {
        match &mut spec.nc {
            NcSpec::SramInclusion { bytes: b, .. }
            | NcSpec::SramVictim { bytes: b, .. }
            | NcSpec::DramInclusion { bytes: b, .. } => *b = bytes,
            NcSpec::None | NcSpec::Infinite { .. } => {
                return Err(format!(
                    "--nc-bytes does not apply to system '{}'",
                    o.system
                ))
            }
        }
    }
    if let Some(p) = o.pointers {
        spec = spec.with_limited_directory(p);
    }
    if o.dirty_shared {
        spec = spec.with_dirty_shared();
    }
    Ok(spec)
}

fn print_report(report: &Report) {
    println!("system:              {}", report.system);
    println!("workload:            {}", report.workload);
    println!("references:          {}", report.refs);
    println!(
        "read miss ratio:     {:.4} %",
        report.read_miss_ratio * 100.0
    );
    println!(
        "write miss ratio:    {:.4} %",
        report.write_miss_ratio * 100.0
    );
    println!(
        "relocation overhead: {:.4} %",
        report.relocation_overhead * 100.0
    );
    println!("remote read stall:   {} cycles", report.remote_read_stall);
    println!("remote traffic:      {} blocks", report.remote_traffic);
    let m = &report.metrics;
    println!(
        "  necessary misses:  {} r / {} w",
        m.remote_read_necessary, m.remote_write_necessary
    );
    println!(
        "  capacity misses:   {} r / {} w",
        m.remote_read_capacity, m.remote_write_capacity
    );
    println!(
        "  NC hits:           {} r / {} w",
        m.nc_read_hits, m.nc_write_hits
    );
    println!(
        "  PC hits:           {} r / {} w",
        m.pc_read_hits, m.pc_write_hits
    );
    println!("  relocations:       {}", m.relocations);
    println!("  writebacks:        {}", m.remote_writebacks);
}

/// The `--stats` profiling view: per-cluster intensity, hot pages,
/// relocation history, epoch series. Reads both the probe's aggregation
/// and the final machine state (bus stats, resident frames, counters).
fn print_stats(system: &System<StatsSink>, top: usize) {
    let sink = system.probe();
    let clusters = (0..system.topology().clusters()).map(ClusterId);

    println!("\n== events by kind ({} total) ==", sink.events_seen());
    for (kind, n) in sink.kind_counts() {
        println!("  {kind:<20} {n:>12}");
    }

    println!("\n== per-cluster breakdown ==");
    println!(
        "  {:>7}  {:>12}  {:>9}  {:>9}  {:>8}  {:>8}  {:>6}  {:>12}  {:>8}",
        "cluster",
        "refs",
        "rd-remote",
        "wr-remote",
        "nc-hits",
        "pc-hits",
        "reloc",
        "bus-txns",
        "rem/ref"
    );
    for c in clusters {
        let counts = system.cluster_counts(c);
        let unit = system.cluster(c);
        let remote = counts.remote_reads + counts.remote_writes;
        let intensity = if counts.refs == 0 {
            0.0
        } else {
            remote as f64 / counts.refs as f64
        };
        println!(
            "  {:>7}  {:>12}  {:>9}  {:>9}  {:>8}  {:>8}  {:>6}  {:>12}  {:>8.4}",
            c.0,
            counts.refs,
            counts.remote_reads,
            counts.remote_writes,
            counts.nc_hits,
            counts.pc_hits,
            counts.relocations,
            unit.bus.stats().transactions(),
            intensity,
        );
    }

    let hot = sink.top_pages(top);
    if !hot.is_empty() {
        println!(
            "\n== top {} hottest pages (PC hits + relocations) ==",
            hot.len()
        );
        for (page, heat) in hot {
            println!("  page {:>8}  {:>10}", page.0, heat);
        }
    }

    let resident: Vec<(u64, u32, u16)> = (0..system.topology().clusters())
        .map(ClusterId)
        .filter_map(|c| system.cluster(c).pc.as_ref().map(|pc| (c, pc)))
        .flat_map(|(c, pc)| {
            pc.pages_with_hits()
                .map(move |(p, h)| (p.0, h, c.0))
                .collect::<Vec<_>>()
        })
        .collect();
    if !resident.is_empty() {
        let mut frames = resident;
        frames.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        frames.truncate(top);
        println!("\n== hottest resident page frames ==");
        for (page, hits, cluster) in frames {
            println!("  page {page:>8}  cluster {cluster:>3}  {hits:>8} hits since reset");
        }
    }

    let reloc = sink.relocation_timeline();
    if !reloc.is_empty() {
        println!("\n== relocation timeline ({} events) ==", reloc.len());
        for &(at, cluster, page) in reloc.iter().take(top) {
            println!("  ref {at:>12}  cluster {cluster:>3}  page {page}");
        }
        if reloc.len() > top {
            println!("  ... {} more", reloc.len() - top);
        }
    }

    let thresholds = sink.threshold_timeline();
    if !thresholds.is_empty() {
        println!(
            "\n== threshold adaptations ({} events) ==",
            thresholds.len()
        );
        for &(at, cluster, t) in thresholds.iter().take(top) {
            println!("  ref {at:>12}  cluster {cluster:>3}  threshold -> {t}");
        }
        if thresholds.len() > top {
            println!("  ... {} more", thresholds.len() - top);
        }
    }

    let epochs = sink.epochs();
    if !epochs.is_empty() {
        println!("\n== epoch series ({} epochs) ==", epochs.len());
        println!(
            "  {:>5}  {:>12}  {:>9}  {:>9}  {:>8}  {:>6}",
            "epoch", "refs", "rd-remote", "wr-remote", "nc-hits", "reloc"
        );
        for s in epochs {
            let d = &s.delta;
            println!(
                "  {:>5}  {:>12}  {:>9}  {:>9}  {:>8}  {:>6}",
                s.index,
                s.len(),
                d.remote_read_necessary + d.remote_read_capacity,
                d.remote_write_necessary + d.remote_write_capacity,
                d.nc_read_hits + d.nc_write_hits,
                d.relocations,
            );
        }
    }
}

fn run(o: &Options, spec: SystemSpec) -> Result<(), DsmError> {
    let (trace, data_bytes, name) = if let Some(kind) = o.workload {
        let scale = Scale::new(o.scale).map_err(DsmError::from)?;
        let w = if o.dev {
            kind.dev_instance()
        } else {
            kind.paper_instance()
        };
        let topo = Topology::paper_default();
        let refs = w.generate(&topo, scale);
        let trace = SharedTrace::from_refs(topo, Geometry::paper_default(), &refs);
        (trace, w.shared_bytes(), w.name().to_owned())
    } else {
        let path = o.trace.as_deref().unwrap_or_default();
        // v2 trace files carry their geometry; v1 files replay under the
        // paper default. --mmap decodes straight from the kernel mapping
        // instead of copying the file into heap columns.
        let trace = if o.mmap {
            open_shared_mapped(std::path::Path::new(path)).map_err(|e| match e {
                // Match the owned path's classification: a path the user
                // gave us that does not exist is their input's fault.
                CodecError::Io(io) if io.kind() == std::io::ErrorKind::NotFound => {
                    DsmError::bad_input(format!("cannot open {path}: {io}"))
                }
                other => DsmError::from(other).context(format!("trace {path}")),
            })?
        } else {
            let file = File::open(path)
                .map_err(|e| DsmError::bad_input(format!("cannot open {path}: {e}")))?;
            read_shared(BufReader::new(file))
                .map_err(|e| DsmError::from(e).context(format!("trace {path}")))?
        };
        let data_bytes = o.data_mb.unwrap_or(32) * 1024 * 1024;
        (trace, data_bytes, path.to_owned())
    };

    if o.stats {
        let (topo, geo) = (*trace.topology(), *trace.geometry());
        let mut system = System::with_probe(spec, topo, geo, data_bytes, StatsSink::new())?;
        if let Some(w) = o.epoch {
            system.set_epoch_window(w);
        }
        if let Some(k) = o.check {
            system.set_check_level(k);
            system.run_shared_checked(&trace)?;
        } else {
            system.run_shared(&trace);
        }
        system.finish();
        let report = report_of(&system, &name, data_bytes, trace.len() as u64);
        print_report(&report);
        print_stats(&system, o.top.max(1));
        return Ok(());
    }

    let report = if o.shard_workers > 1 {
        // Sharded replay has no per-K checkpointing, but the final
        // machine state can still be validated wholesale.
        let (topo, geo) = (*trace.topology(), *trace.geometry());
        let mut system = System::new(spec, topo, geo, data_bytes)?;
        let engaged = system.run_sharded(&trace, o.shard_workers);
        match system.shard_report() {
            Some(r) if engaged > 1 => eprintln!(
                "simulate: sharded replay across {engaged} workers ({:?} engine, {} parallel rounds, {} parallel / {} serial refs)",
                r.engine, r.parallel_rounds, r.parallel_refs, r.serial_refs
            ),
            _ => eprintln!(
                "simulate: no parallel work found; replayed on the single-thread oracle"
            ),
        }
        if o.check.is_some() {
            system.check_invariants()?;
        }
        report_of(&system, &name, data_bytes, trace.len() as u64)
    } else if let Some(k) = o.check {
        let (topo, geo) = (*trace.topology(), *trace.geometry());
        let mut system = System::new(spec, topo, geo, data_bytes)?;
        system.set_check_level(k);
        system.run_shared_checked(&trace)?;
        report_of(&system, &name, data_bytes, trace.len() as u64)
    } else {
        run_trace(&spec, &name, data_bytes, &trace)?
    };
    print_report(&report);
    Ok(())
}

fn main() -> ExitCode {
    let o = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("error: {msg}");
            return usage();
        }
    };
    match dsm_core::fault::install_from_env() {
        Ok(Some(plan)) => eprintln!("fault plan armed: {}", plan.spec()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    }
    let spec = match spec_of(&o) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("error: {msg}");
            return usage();
        }
    };
    match run(&o, spec) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
