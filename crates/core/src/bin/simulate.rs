//! Simulates a system configuration on a workload or a recorded trace.
//!
//! ```text
//! simulate --system <name> --workload <benchmark> [--scale <f>] [--dev]
//! simulate --system <name> --trace <file.dsmt> [--data-mb <n>]
//! ```
//!
//! Systems: `base`, `nc`, `vb`, `vp`, `ncd`, `ncs`, `inf-dram`, and the
//! page-cache systems `ncp`, `vbp`, `vpp`, `vxp` (which accept
//! `--pc-fraction <d>` [default 5] or `--pc-bytes <n>`, and `vxp` accepts
//! `--threshold <t>` [default 32]).

use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

use dsm_core::runner::run_trace;
use dsm_core::{PcSize, SystemSpec};
use dsm_trace::{read_trace, Scale, WorkloadKind};
use dsm_types::{Geometry, Topology};

fn usage() -> ExitCode {
    eprintln!(
        "usage: simulate --system <name> --workload <benchmark> [--scale <f>] [--dev]\n\
         \x20      simulate --system <name> --trace <file.dsmt> [--data-mb <n>]\n\
         systems: base nc vb vp ncd ncs inf-dram ncp vbp vpp vxp\n\
         page-cache options: --pc-fraction <d> | --pc-bytes <n>; vxp: --threshold <t>"
    );
    ExitCode::FAILURE
}

struct Options {
    system: String,
    workload: Option<WorkloadKind>,
    trace: Option<String>,
    scale: f64,
    dev: bool,
    pc_fraction: Option<u32>,
    pc_bytes: Option<u64>,
    threshold: u32,
    data_mb: Option<u64>,
}

fn parse_args() -> Option<Options> {
    let mut o = Options {
        system: String::new(),
        workload: None,
        trace: None,
        scale: 1.0,
        dev: false,
        pc_fraction: None,
        pc_bytes: None,
        threshold: 32,
        data_mb: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next();
        match a.as_str() {
            "--system" => o.system = val()?,
            "--workload" => {
                let name = val()?;
                o.workload = WorkloadKind::all()
                    .into_iter()
                    .find(|k| k.display_name().eq_ignore_ascii_case(&name));
                o.workload?;
            }
            "--trace" => o.trace = Some(val()?),
            "--scale" => o.scale = val()?.parse().ok()?,
            "--dev" => o.dev = true,
            "--pc-fraction" => o.pc_fraction = Some(val()?.parse().ok()?),
            "--pc-bytes" => o.pc_bytes = Some(val()?.parse().ok()?),
            "--threshold" => o.threshold = val()?.parse().ok()?,
            "--data-mb" => o.data_mb = Some(val()?.parse().ok()?),
            _ => return None,
        }
    }
    if o.system.is_empty() || (o.workload.is_none() == o.trace.is_none()) {
        return None;
    }
    Some(o)
}

fn spec_of(o: &Options) -> Option<SystemSpec> {
    let pc_size = match (o.pc_bytes, o.pc_fraction) {
        (Some(b), _) => PcSize::Bytes(b),
        (None, Some(d)) => PcSize::DataFraction(d),
        (None, None) => PcSize::DataFraction(5),
    };
    Some(match o.system.as_str() {
        "base" => SystemSpec::base(),
        "nc" => SystemSpec::nc(),
        "vb" => SystemSpec::vb(),
        "vp" => SystemSpec::vp(),
        "ncd" => SystemSpec::ncd(),
        "ncs" => SystemSpec::ncs(),
        "inf-dram" => SystemSpec::infinite_dram(),
        "ncp" => SystemSpec::ncp(pc_size),
        "vbp" => SystemSpec::vbp(pc_size),
        "vpp" => SystemSpec::vpp(pc_size),
        "vxp" => SystemSpec::vxp(pc_size, o.threshold),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let Some(o) = parse_args() else {
        return usage();
    };
    let Some(spec) = spec_of(&o) else {
        eprintln!("unknown system '{}'", o.system);
        return usage();
    };

    let geo = Geometry::paper_default();
    let (topo, trace, data_bytes, name) = if let Some(kind) = o.workload {
        let scale = match Scale::new(o.scale) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        };
        let w = if o.dev {
            kind.dev_instance()
        } else {
            kind.paper_instance()
        };
        let topo = Topology::paper_default();
        let trace = w.generate(&topo, scale);
        (topo, trace, w.shared_bytes(), w.name().to_owned())
    } else {
        let path = o.trace.as_deref().expect("checked by parse_args");
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("cannot open {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match read_trace(BufReader::new(file)) {
            Ok((topo, trace)) => {
                let data_bytes = o.data_mb.unwrap_or(32) * 1024 * 1024;
                (topo, trace, data_bytes, path.to_owned())
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let report = match run_trace(&spec, &name, data_bytes, &trace, topo, geo) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };

    println!("system:              {}", report.system);
    println!("workload:            {}", report.workload);
    println!("references:          {}", report.refs);
    println!("read miss ratio:     {:.4} %", report.read_miss_ratio * 100.0);
    println!("write miss ratio:    {:.4} %", report.write_miss_ratio * 100.0);
    println!("relocation overhead: {:.4} %", report.relocation_overhead * 100.0);
    println!("remote read stall:   {} cycles", report.remote_read_stall);
    println!("remote traffic:      {} blocks", report.remote_traffic);
    let m = &report.metrics;
    println!("  necessary misses:  {} r / {} w", m.remote_read_necessary, m.remote_write_necessary);
    println!("  capacity misses:   {} r / {} w", m.remote_read_capacity, m.remote_write_capacity);
    println!("  NC hits:           {} r / {} w", m.nc_read_hits, m.nc_write_hits);
    println!("  PC hits:           {} r / {} w", m.pc_read_hits, m.pc_write_hits);
    println!("  relocations:       {}", m.relocations);
    println!("  writebacks:        {}", m.remote_writebacks);
    ExitCode::SUCCESS
}
