//! The coherence invariant checker: a read-only audit of the whole
//! machine state, run between references by
//! [`System::run_shared_checked`] at the cadence set with
//! [`System::set_check_level`].
//!
//! Every probe used here is side-effect free (no LRU updates, no state
//! transitions), so interleaving checks with replay cannot perturb the
//! simulation — a checked run produces the same metrics as an unchecked
//! one.
//!
//! # The invariants
//!
//! Per cluster, aggregated over that cluster's processor caches:
//!
//! 1. **Exclusivity** — at most one `M`/`E` copy of a block, and an
//!    `M`/`E` copy is the *only* valid copy in the cluster.
//! 2. **Master uniqueness** — at most one shared-master (`R`/`O`) copy
//!    per cluster: MESIR designates exactly one cluster master to answer
//!    bus snoops and emit the replacement transaction.
//! 3. **Victim-NC exclusion** — a victim NC holds only blocks the
//!    processor caches victimized, so an `M`/`E` copy and a victim-NC
//!    entry for the same block cannot coexist. (Scoped to victim NCs:
//!    inclusion and infinite NCs deliberately keep a *shadow* entry
//!    behind a local `M` copy, and S/R copies legitimately coexist with
//!    victim-NC pollution left by other pages.)
//! 4. **Dirty-copy consistency** — a dirty (`M`/`O`) copy implies the
//!    directory names this cluster as owner, and neither the local NC
//!    nor the local page cache also claims dirty data for the block
//!    (the machine would have two versions of truth).
//! 5. **Presence coverage** — the directory's sharer set covers every
//!    cluster holding a cached copy, *except* blocks of pages resident
//!    in the cluster's own page cache: R-NUMA relocation fills page-
//!    cache frames without directory transactions, and page-cache hits
//!    fill processor caches the same way. Those copies are reclaimed by
//!    the page-eviction flash-invalidate rather than directory
//!    invalidations, so the directory legitimately never sees them.
//! 6. **Page-cache dirtiness** — a `Dirty` page-cache block implies the
//!    directory names this cluster as owner (the PC absorbed the
//!    cluster's last dirty copy without writing back to the home).
//!
//! Deliberately **not** asserted: the converse of invariant 4 (a
//! directory owner need not hold a copy — `E`-state copies die silently
//! on replacement, leaving a stale owner the protocol recovers from on
//! the next request), and machine-wide dirty uniqueness (it follows
//! from invariant 4, because `owner_of` is single-valued).

use dsm_cache::CacheState;
use dsm_types::{BlockAddr, ClusterId, DsmError, FxHashMap, LocalProcId};

use crate::nc::NcUnit;
use crate::page_cache::PcBlockState;
use crate::probe::Probe;
use crate::system::System;

/// Per-cluster aggregate of one block's processor-cache copies.
#[derive(Debug, Default, Clone, Copy)]
struct Copies {
    /// Valid copies in any state.
    valid: u32,
    /// `M` or `E` copies.
    exclusive: u32,
    /// Shared-master (`R` or `O`) copies.
    master_shared: u32,
    /// Dirty (`M` or `O`) copies.
    dirty: u32,
}

/// Builds an invariant-violation error naming the block and cluster.
fn violation(block: BlockAddr, cl: ClusterId, detail: &str) -> DsmError {
    DsmError::invariant(format!("{block} in {cl}: {detail}"))
}

impl<P: Probe> System<P> {
    /// Audits the coherence invariants over the entire machine state
    /// (documented in [the module docs](crate::check)). Read-only: no
    /// LRU state or metric is touched.
    ///
    /// # Errors
    ///
    /// Returns a [`DsmError`] of kind
    /// [`ErrorKind::InvariantViolation`](dsm_types::ErrorKind) naming
    /// the first violated invariant, the block, and the cluster.
    pub fn check_invariants(&self) -> Result<(), DsmError> {
        let mut copies: FxHashMap<u64, Copies> = FxHashMap::default();
        for (c, cluster) in self.clusters.iter().enumerate() {
            let cl = ClusterId(c as u16);

            // Aggregate this cluster's processor-cache copies per block.
            copies.clear();
            for p in 0..cluster.bus.procs() {
                let proc = LocalProcId(p as u16);
                for (block, state) in cluster.bus.cache(proc).iter() {
                    if !state.is_valid() {
                        continue; // defensive: iter should skip these
                    }
                    let e = copies.entry(block.0).or_default();
                    e.valid += 1;
                    if matches!(state, CacheState::Modified | CacheState::Exclusive) {
                        e.exclusive += 1;
                    }
                    if matches!(state, CacheState::RemoteMaster | CacheState::Owned) {
                        e.master_shared += 1;
                    }
                    if state.is_dirty() {
                        e.dirty += 1;
                    }
                }
            }

            let victim_nc = matches!(cluster.nc, NcUnit::Victim(_));
            for (&raw, agg) in &copies {
                let block = BlockAddr(raw);

                // 1. Exclusivity.
                if agg.exclusive > 1 {
                    return Err(violation(
                        block,
                        cl,
                        &format!("{} M/E copies in one cluster", agg.exclusive),
                    ));
                }
                if agg.exclusive == 1 && agg.valid > 1 {
                    return Err(violation(
                        block,
                        cl,
                        &format!(
                            "an M/E copy coexists with {} other valid copies",
                            agg.valid - 1
                        ),
                    ));
                }

                // 2. Master uniqueness.
                if agg.master_shared > 1 {
                    return Err(violation(
                        block,
                        cl,
                        &format!("{} R/O cluster-master copies", agg.master_shared),
                    ));
                }

                // 3. Victim-NC exclusion.
                if victim_nc && agg.exclusive == 1 && cluster.nc.contains(block) {
                    return Err(violation(
                        block,
                        cl,
                        "an M/E copy coexists with a victim-NC entry",
                    ));
                }

                // 4. Dirty-copy consistency.
                if agg.dirty >= 1 {
                    let owner = self.dir.owner_of(block);
                    if owner != Some(cl) {
                        return Err(violation(
                            block,
                            cl,
                            &format!(
                                "a dirty copy is cached but the directory owner is {}",
                                match owner {
                                    Some(o) => o.to_string(),
                                    None => "unset".to_string(),
                                }
                            ),
                        ));
                    }
                    if cluster.nc.peek_dirty(block) == Some(true) {
                        return Err(violation(
                            block,
                            cl,
                            "a dirty cache copy coexists with a dirty NC entry",
                        ));
                    }
                    if let Some(pc) = &cluster.pc {
                        if pc.block_state(block) == Some(PcBlockState::Dirty) {
                            return Err(violation(
                                block,
                                cl,
                                "a dirty cache copy coexists with a dirty PC block",
                            ));
                        }
                    }
                }

                // 5. Presence coverage. Blocks of locally PC-resident
                // pages are exempt (filled without directory
                // transactions; see the module docs).
                let pc_resident = cluster
                    .pc
                    .as_ref()
                    .is_some_and(|pc| pc.has_page(self.geo.page_of_block(block)));
                if !pc_resident && !self.dir.sharer_set(block).contains(cl) {
                    return Err(violation(
                        block,
                        cl,
                        "a cached copy is missing from the directory sharer set",
                    ));
                }
            }

            // 6. Page-cache dirtiness.
            if let Some(pc) = &cluster.pc {
                for page in pc.pages() {
                    for (block, state) in pc.page_blocks(page) {
                        if state == PcBlockState::Dirty && self.dir.owner_of(block) != Some(cl) {
                            return Err(violation(
                                block,
                                cl,
                                "a dirty PC block is not owned by this cluster",
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}
