//! One cluster's hardware: processor caches + bus, network cache, page
//! cache, and relocation-policy state.

use dsm_cache::CacheShape;
use dsm_protocol::BusCluster;
use dsm_types::{ConfigError, Geometry, Topology};

use crate::config::{CounterSource, NcSpec, SystemSpec, ThresholdPolicy};
use crate::model::NcTechnology;
use crate::nc::{InclusionNc, InfiniteNc, NcIndexing, NcUnit, VictimNc};
use crate::page_cache::{AdaptiveThreshold, PageCache};
use crate::relocation::VxpCounters;

/// The per-cluster simulation state.
#[derive(Debug, Clone)]
pub struct ClusterUnit {
    /// Processor caches on the snooping bus.
    pub bus: BusCluster,
    /// The network cache (possibly [`NcUnit::None`]).
    pub nc: NcUnit,
    /// The page cache, if configured.
    pub pc: Option<PageCache>,
    /// Relocation-threshold state (meaningful only with a page cache).
    pub threshold: AdaptiveThreshold,
    /// Per-set victimization counters (`vxp` only).
    pub vxp: Option<VxpCounters>,
}

impl ClusterUnit {
    /// Builds one cluster from the system spec. `pc_frames` is the
    /// resolved page-cache capacity (`None` when the spec has no PC).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid cache/NC shapes.
    pub fn build(
        spec: &SystemSpec,
        topo: &Topology,
        geo: Geometry,
        pc_frames: Option<usize>,
    ) -> Result<Self, ConfigError> {
        let cache_shape = CacheShape::new(spec.cache.bytes, geo.block_bytes(), spec.cache.ways)?;
        let mut bus = BusCluster::new(usize::from(topo.procs_per_cluster()), cache_shape);
        bus.set_dirty_shared(spec.dirty_shared);

        let nc = match spec.nc {
            NcSpec::None => NcUnit::None,
            NcSpec::SramInclusion { bytes, ways } => {
                let shape = CacheShape::new(bytes, geo.block_bytes(), ways)?;
                NcUnit::Inclusion(InclusionNc::sram_relaxed(shape))
            }
            NcSpec::SramVictim {
                bytes,
                ways,
                indexing,
                capture_clean,
            } => {
                let shape = CacheShape::new(bytes, geo.block_bytes(), ways)?;
                let mut nc = VictimNc::new(shape, NcIndexing::from(indexing), geo);
                if !capture_clean {
                    nc = nc.without_clean_capture();
                }
                NcUnit::Victim(nc)
            }
            NcSpec::DramInclusion { bytes, ways } => {
                let shape = CacheShape::new(bytes, geo.block_bytes(), ways)?;
                NcUnit::Inclusion(InclusionNc::dram_full(shape))
            }
            NcSpec::Infinite { dram } => NcUnit::Infinite(InfiniteNc::new(if dram {
                NcTechnology::Dram
            } else {
                NcTechnology::Sram
            })),
        };

        let pc = match (&spec.pc, pc_frames) {
            (Some(_), Some(frames)) => Some(PageCache::new(frames, geo)),
            (None, None) => None,
            _ => {
                return Err(ConfigError::new(
                    "page-cache spec and resolved frame count must agree",
                ))
            }
        };

        let threshold = match spec.pc.as_ref().map(|p| p.threshold) {
            Some(ThresholdPolicy::Fixed(t)) => AdaptiveThreshold::fixed(t),
            Some(ThresholdPolicy::Adaptive { initial }) => {
                AdaptiveThreshold::adaptive(initial, pc_frames.unwrap_or(1))
            }
            None => AdaptiveThreshold::fixed(u32::MAX),
        };

        let vxp = match spec.pc.as_ref().map(|p| p.counters) {
            Some(CounterSource::VictimSets) => {
                let sets = nc
                    .sets()
                    .ok_or_else(|| ConfigError::new("victim-set counters require a victim NC"))?;
                Some(VxpCounters::new(sets))
            }
            _ => None,
        };

        Ok(ClusterUnit {
            bus,
            nc,
            pc,
            threshold,
            vxp,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PcSize, SystemSpec};

    fn topo() -> Topology {
        Topology::paper_default()
    }

    #[test]
    fn base_has_no_nc_or_pc() {
        let c = ClusterUnit::build(
            &SystemSpec::base(),
            &topo(),
            Geometry::paper_default(),
            None,
        )
        .unwrap();
        assert!(matches!(c.nc, NcUnit::None));
        assert!(c.pc.is_none());
        assert!(c.vxp.is_none());
        assert_eq!(c.bus.procs(), 4);
    }

    #[test]
    fn vb_builds_victim_nc() {
        let c = ClusterUnit::build(&SystemSpec::vb(), &topo(), Geometry::paper_default(), None)
            .unwrap();
        assert!(matches!(c.nc, NcUnit::Victim(_)));
        assert_eq!(c.nc.sets(), Some(64)); // 16 KB / (64 B x 4 ways)
    }

    #[test]
    fn vxp_builds_counters_sized_to_nc_sets() {
        let spec = SystemSpec::vxp(PcSize::Bytes(512 * 1024), 32);
        let c = ClusterUnit::build(&spec, &topo(), Geometry::paper_default(), Some(128)).unwrap();
        assert_eq!(c.vxp.as_ref().unwrap().sets(), 64);
        assert!(c.pc.is_some());
        assert!(c.threshold.is_adaptive());
        assert_eq!(c.threshold.threshold(), 32);
    }

    #[test]
    fn mismatched_pc_resolution_errors() {
        let spec = SystemSpec::ncp(PcSize::Bytes(512 * 1024));
        assert!(ClusterUnit::build(&spec, &topo(), Geometry::paper_default(), None).is_err());
        assert!(ClusterUnit::build(
            &SystemSpec::base(),
            &topo(),
            Geometry::paper_default(),
            Some(4)
        )
        .is_err());
    }
}
