//! System configurations: the paper's design points by name.
//!
//! | paper name | constructor | NC | PC |
//! |---|---|---|---|
//! | `base` | [`SystemSpec::base`] | — | — |
//! | `nc` | [`SystemSpec::nc`] | 16 KB 4-way SRAM, inclusion relaxed for clean | — |
//! | `vb` | [`SystemSpec::vb`] | 16 KB 4-way SRAM victim, block-indexed | — |
//! | `vp` | [`SystemSpec::vp`] | victim, page-indexed | — |
//! | `NCD` | [`SystemSpec::ncd`] | 512 KB 4-way DRAM, full inclusion | — |
//! | `NCS` | [`SystemSpec::ncs`] | infinite SRAM | — |
//! | (baseline) | [`SystemSpec::infinite_dram`] | infinite DRAM | — |
//! | `ncp` | [`SystemSpec::ncp`] | as `nc` | directory counters |
//! | `vbp` | [`SystemSpec::vbp`] | as `vb` | directory counters |
//! | `vpp` | [`SystemSpec::vpp`] | as `vp` | directory counters |
//! | `vxp` | [`SystemSpec::vxp`] | as `vp` | victim-set counters |
//!
//! Page-cache sizes follow the paper's notation: `ncp5` is
//! `SystemSpec::ncp(PcSize::DataFraction(5))` (one fifth of the data set);
//! the 512-KB points of Figures 9-10 are `PcSize::Bytes(512 * 1024)`.

use crate::model::NcTechnology;
use crate::nc::NcIndexing;
use dsm_types::{ConfigError, Geometry};

/// Processor-cache geometry (per processor).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheSpec {
    /// Capacity in bytes (paper: 16 KB).
    pub bytes: u64,
    /// Associativity (paper: 2-way base, 1/2/4 in Figure 3).
    pub ways: usize,
}

impl Default for CacheSpec {
    fn default() -> Self {
        CacheSpec {
            bytes: 16 * 1024,
            ways: 2,
        }
    }
}

/// Network-cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NcSpec {
    /// No network cache.
    None,
    /// Small SRAM NC with relaxed (clean) inclusion — the paper's `nc`.
    SramInclusion {
        /// Capacity in bytes.
        bytes: u64,
        /// Associativity (paper: always 4).
        ways: usize,
    },
    /// SRAM network victim cache — `vb` / `vp`.
    SramVictim {
        /// Capacity in bytes.
        bytes: u64,
        /// Associativity (paper: always 4).
        ways: usize,
        /// Block- or page-address set indexing.
        indexing: NcIndexingSpec,
        /// Capture clean (MESIR `R`-state replacement) victims; disabling
        /// this models a plain-MESI bus where only dirty write-backs reach
        /// the NC (an ablation of the paper's protocol extension).
        capture_clean: bool,
    },
    /// Large DRAM NC with full inclusion — `NCD`.
    DramInclusion {
        /// Capacity in bytes (paper: 512 KB).
        bytes: u64,
        /// Associativity.
        ways: usize,
    },
    /// Unbounded NC of the given technology — `NCS` / the normalization
    /// baseline.
    Infinite {
        /// SRAM (`NCS`) or DRAM (baseline).
        dram: bool,
    },
}

/// Serializable mirror of [`NcIndexing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NcIndexingSpec {
    /// Block-address bits (`vb`).
    Block,
    /// Page-address bits (`vp`).
    Page,
}

impl From<NcIndexingSpec> for NcIndexing {
    fn from(s: NcIndexingSpec) -> Self {
        match s {
            NcIndexingSpec::Block => NcIndexing::Block,
            NcIndexingSpec::Page => NcIndexing::Page,
        }
    }
}

/// Page-cache size, absolute or relative to the application data set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcSize {
    /// Absolute bytes (the 512-KB comparisons of Figures 9-10).
    Bytes(u64),
    /// `1/denominator` of the application's data-set size (the paper's
    /// `ncp5` = 1/5, `ncp7` = 1/7, `ncp9` = 1/9 notation).
    DataFraction(u32),
}

impl PcSize {
    /// Resolves to a frame count for a data set of `data_bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the resolved size is smaller than one
    /// page.
    pub fn frames(&self, data_bytes: u64, geo: &Geometry) -> Result<usize, ConfigError> {
        let bytes = match self {
            PcSize::Bytes(b) => *b,
            PcSize::DataFraction(d) => {
                if *d == 0 {
                    return Err(ConfigError::new("page-cache fraction denominator is zero"));
                }
                data_bytes / u64::from(*d)
            }
        };
        let frames = bytes / geo.page_bytes();
        if frames == 0 {
            return Err(ConfigError::new(format!(
                "page cache of {bytes} bytes holds no {}-byte page",
                geo.page_bytes()
            )));
        }
        #[allow(clippy::cast_possible_truncation)]
        Ok(frames as usize)
    }
}

/// Which counters trigger page relocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterSource {
    /// R-NUMA: per-page per-cluster capacity-miss counters at the
    /// directory.
    Directory,
    /// The paper's `vxp`: per-set victimization counters on the network
    /// victim cache.
    VictimSets,
}

/// The relocation-threshold policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThresholdPolicy {
    /// A fixed threshold (Figure 6's comparison point).
    Fixed(u32),
    /// The adaptive policy: start at `initial`, +8 on thrashing.
    Adaptive {
        /// Initial threshold (32, or 64 for eager `vxp` counters).
        initial: u32,
    },
}

impl ThresholdPolicy {
    /// The initial threshold value.
    #[must_use]
    pub fn initial(&self) -> u32 {
        match self {
            ThresholdPolicy::Fixed(t) | ThresholdPolicy::Adaptive { initial: t } => *t,
        }
    }
}

/// Page-cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcSpec {
    /// Capacity.
    pub size: PcSize,
    /// Counter placement.
    pub counters: CounterSource,
    /// Threshold policy.
    pub threshold: ThresholdPolicy,
    /// The paper's optional refinement for `vxp`: decrement the set's
    /// victimization counter when an invalidation arrives and no cache or
    /// NC in the node holds the block (the next miss will be a coherence
    /// miss, so the earlier victimization should not push toward
    /// relocation). Off in the paper's base system.
    pub decrement_on_invalidation: bool,
}

/// Inter-cluster directory organization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DirectorySpec {
    /// Full-map presence bits (the paper's base; required by R-NUMA's
    /// directory-controlled relocation counters).
    #[default]
    FullMap,
    /// Dir-i-B limited pointers (NUMA-Q-class scalability) — usable with
    /// `vxp`'s victim-set counters, per the paper's scalability argument.
    LimitedPointer {
        /// Sharer pointers per entry.
        pointers: usize,
    },
}

/// OS-level page migration/replication (the SGI Origin approach the paper
/// contrasts against: no network cache, "relying exclusively on page
/// migration and replication").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigRepSpec {
    /// Remote misses from one cluster to one page before the OS acts.
    pub threshold: u32,
    /// Migrate written pages to their dominant accessor.
    pub migration: bool,
    /// Replicate read-only pages into the reader's local memory.
    pub replication: bool,
}

impl Default for MigRepSpec {
    fn default() -> Self {
        MigRepSpec {
            threshold: DEFAULT_THRESHOLD,
            migration: true,
            replication: true,
        }
    }
}

/// A complete system configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemSpec {
    /// Display name (the paper's configuration label).
    pub name: String,
    /// Processor caches.
    pub cache: CacheSpec,
    /// Network cache.
    pub nc: NcSpec,
    /// Page cache, if any.
    pub pc: Option<PcSpec>,
    /// Use the MOESI-R protocol variant (dirty-shared `O` state) instead
    /// of plain MESIR — the option the paper evaluated and found of
    /// "very little benefit". Off by default.
    pub dirty_shared: bool,
    /// OS page migration/replication (the SGI Origin alternative;
    /// mutually exclusive with a page cache).
    pub migrep: Option<MigRepSpec>,
    /// Inter-cluster directory organization.
    pub directory: DirectorySpec,
}

/// The paper's NC size for the SRAM configurations: 16 KB (equal to one
/// processor cache).
pub const SRAM_NC_BYTES: u64 = 16 * 1024;
/// The paper's DRAM NC size: 512 KB (8x the cluster's total cache).
pub const DRAM_NC_BYTES: u64 = 512 * 1024;
/// NCs are always four-way set-associative in the paper.
pub const NC_WAYS: usize = 4;
/// Default adaptive relocation threshold.
pub const DEFAULT_THRESHOLD: u32 = 32;

impl SystemSpec {
    fn named(name: impl Into<String>, nc: NcSpec, pc: Option<PcSpec>) -> Self {
        SystemSpec {
            name: name.into(),
            cache: CacheSpec::default(),
            nc,
            pc,
            dirty_shared: false,
            migrep: None,
            directory: DirectorySpec::default(),
        }
    }

    /// `base`: no NC, no PC.
    #[must_use]
    pub fn base() -> Self {
        SystemSpec::named("base", NcSpec::None, None)
    }

    /// `nc`: 16-KB SRAM NC, inclusion relaxed for clean blocks.
    #[must_use]
    pub fn nc() -> Self {
        SystemSpec::named(
            "nc",
            NcSpec::SramInclusion {
                bytes: SRAM_NC_BYTES,
                ways: NC_WAYS,
            },
            None,
        )
    }

    /// `vb`: 16-KB SRAM victim NC, block-indexed.
    #[must_use]
    pub fn vb() -> Self {
        SystemSpec::vb_sized(SRAM_NC_BYTES)
    }

    /// A block-indexed victim NC of `bytes` bytes (Figure 3's `vb1` is
    /// 1 KB, `vb16` is 16 KB).
    #[must_use]
    pub fn vb_sized(bytes: u64) -> Self {
        SystemSpec::named(
            format!("vb{}", bytes / 1024),
            NcSpec::SramVictim {
                bytes,
                ways: NC_WAYS,
                indexing: NcIndexingSpec::Block,
                capture_clean: true,
            },
            None,
        )
    }

    /// `vp`: 16-KB SRAM victim NC, page-indexed.
    #[must_use]
    pub fn vp() -> Self {
        SystemSpec::named(
            "vp",
            NcSpec::SramVictim {
                bytes: SRAM_NC_BYTES,
                ways: NC_WAYS,
                indexing: NcIndexingSpec::Page,
                capture_clean: true,
            },
            None,
        )
    }

    /// `NCD`: 512-KB DRAM NC with full inclusion.
    #[must_use]
    pub fn ncd() -> Self {
        SystemSpec::named(
            "NCD",
            NcSpec::DramInclusion {
                bytes: DRAM_NC_BYTES,
                ways: NC_WAYS,
            },
            None,
        )
    }

    /// `NCS`: infinite SRAM NC (ideal).
    #[must_use]
    pub fn ncs() -> Self {
        SystemSpec::named("NCS", NcSpec::Infinite { dram: false }, None)
    }

    /// Infinite DRAM NC — the normalization baseline of Figures 9-11.
    #[must_use]
    pub fn infinite_dram() -> Self {
        SystemSpec::named("NCD-inf", NcSpec::Infinite { dram: true }, None)
    }

    fn directory_pc(size: PcSize) -> PcSpec {
        PcSpec {
            size,
            counters: CounterSource::Directory,
            threshold: ThresholdPolicy::Adaptive {
                initial: DEFAULT_THRESHOLD,
            },
            decrement_on_invalidation: false,
        }
    }

    fn pc_suffix(size: PcSize) -> String {
        match size {
            PcSize::Bytes(b) => format!("-{}K", b / 1024),
            PcSize::DataFraction(d) => format!("{d}"),
        }
    }

    /// `ncp`: `nc` plus a page cache with directory (R-NUMA) counters.
    #[must_use]
    pub fn ncp(size: PcSize) -> Self {
        let mut s = SystemSpec::nc();
        s.name = format!("ncp{}", Self::pc_suffix(size));
        s.pc = Some(Self::directory_pc(size));
        s
    }

    /// `vbp`: `vb` plus a page cache with directory counters.
    #[must_use]
    pub fn vbp(size: PcSize) -> Self {
        let mut s = SystemSpec::vb();
        s.name = format!("vbp{}", Self::pc_suffix(size));
        s.pc = Some(Self::directory_pc(size));
        s
    }

    /// `vpp`: `vp` plus a page cache with directory counters.
    #[must_use]
    pub fn vpp(size: PcSize) -> Self {
        let mut s = SystemSpec::vp();
        s.name = format!("vpp{}", Self::pc_suffix(size));
        s.pc = Some(Self::directory_pc(size));
        s
    }

    /// `vxp`: page-indexed victim NC whose per-set victimization counters
    /// control the page cache (`initial` threshold 32 or 64 in Figure 11).
    #[must_use]
    pub fn vxp(size: PcSize, initial: u32) -> Self {
        let mut s = SystemSpec::vp();
        s.name = format!("vxp{}(t{initial})", Self::pc_suffix(size));
        s.pc = Some(PcSpec {
            size,
            counters: CounterSource::VictimSets,
            threshold: ThresholdPolicy::Adaptive { initial },
            decrement_on_invalidation: false,
        });
        s
    }

    /// `origin`: no RDC at all — OS page migration and replication only,
    /// the SGI Origin philosophy the paper contrasts against.
    #[must_use]
    pub fn origin() -> Self {
        let mut s = SystemSpec::base();
        s.name = "origin".into();
        s.migrep = Some(MigRepSpec::default());
        s
    }

    /// `origin` plus a 16-KB victim NC — the paper's concluding
    /// hypothesis: "a small, very fast NC could shield the page migration
    /// and replication policies from the noise of conflict misses".
    #[must_use]
    pub fn origin_vb() -> Self {
        let mut s = SystemSpec::vb();
        s.name = "origin+vb".into();
        s.migrep = Some(MigRepSpec::default());
        s
    }

    /// Switches to a Dir-i-B limited-pointer directory with `pointers`
    /// sharer slots (NUMA-Q-class scalability). Only `vxp`'s victim-set
    /// counters remain usable for page relocation under it.
    ///
    /// # Panics
    ///
    /// Panics if `pointers` is zero.
    #[must_use]
    pub fn with_limited_directory(mut self, pointers: usize) -> Self {
        assert!(pointers > 0, "need at least one sharer pointer");
        self.directory = DirectorySpec::LimitedPointer { pointers };
        self.name.push_str(&format!("-dir{pointers}B"));
        self
    }

    /// Enables the MOESI-R dirty-shared `O` state (protocol-variant
    /// ablation).
    #[must_use]
    pub fn with_dirty_shared(mut self) -> Self {
        self.dirty_shared = true;
        self.name.push_str("-O");
        self
    }

    /// Enables the invalidation-driven counter decrement on a `vxp` spec
    /// (the paper's optional refinement).
    ///
    /// # Panics
    ///
    /// Panics unless the spec uses victim-set counters.
    #[must_use]
    pub fn with_invalidation_decrement(mut self) -> Self {
        let pc = self.pc.as_mut().expect("no page cache configured");
        assert_eq!(
            pc.counters,
            CounterSource::VictimSets,
            "invalidation decrement refines the vxp counters"
        );
        pc.decrement_on_invalidation = true;
        self.name.push_str("-dec");
        self
    }

    /// Overrides the processor-cache geometry (Figure 3's associativity
    /// sweep).
    #[must_use]
    pub fn with_cache(mut self, bytes: u64, ways: usize) -> Self {
        self.cache = CacheSpec { bytes, ways };
        self
    }

    /// Disables MESIR clean-victim capture on a victim-NC spec (ablation:
    /// under plain MESI only dirty write-backs reach the NC).
    ///
    /// # Panics
    ///
    /// Panics if the spec's NC is not a victim cache.
    #[must_use]
    pub fn without_mesir_capture(mut self) -> Self {
        match &mut self.nc {
            NcSpec::SramVictim { capture_clean, .. } => *capture_clean = false,
            other => panic!("MESIR capture only applies to victim NCs, not {other:?}"),
        }
        self.name.push_str("-mesi");
        self
    }

    /// Overrides the threshold policy (Figure 6's fixed-vs-adaptive
    /// comparison).
    ///
    /// # Panics
    ///
    /// Panics if the spec has no page cache.
    #[must_use]
    pub fn with_threshold(mut self, threshold: ThresholdPolicy) -> Self {
        let pc = self.pc.as_mut().expect("no page cache to configure");
        pc.threshold = threshold;
        self
    }

    /// The NC memory technology, for the latency model.
    #[must_use]
    pub fn technology(&self) -> NcTechnology {
        match self.nc {
            NcSpec::None => NcTechnology::None,
            NcSpec::SramInclusion { .. } | NcSpec::SramVictim { .. } => NcTechnology::Sram,
            NcSpec::DramInclusion { .. } => NcTechnology::Dram,
            NcSpec::Infinite { dram } => {
                if dram {
                    NcTechnology::Dram
                } else {
                    NcTechnology::Sram
                }
            }
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if victim-set counters are configured
    /// without a victim NC, or cache/NC shapes are degenerate.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cache.bytes == 0 || self.cache.ways == 0 {
            return Err(ConfigError::new("degenerate processor cache"));
        }
        if let Some(pc) = &self.pc {
            if pc.counters == CounterSource::VictimSets
                && !matches!(self.nc, NcSpec::SramVictim { .. })
            {
                return Err(ConfigError::new(
                    "victim-set relocation counters require a victim network cache",
                ));
            }
            if pc.threshold.initial() == 0 {
                return Err(ConfigError::new("relocation threshold must be nonzero"));
            }
            if self.migrep.is_some() {
                return Err(ConfigError::new(
                    "page migration/replication and a page cache are mutually exclusive",
                ));
            }
        }
        if let Some(pc) = &self.pc {
            if pc.counters == CounterSource::Directory && self.directory != DirectorySpec::FullMap {
                return Err(ConfigError::new(
                    "R-NUMA's directory relocation counters require a full-map directory                      (the paper's scalability critique); use vxp's victim-set counters",
                ));
            }
        }
        if let Some(mr) = &self.migrep {
            if mr.threshold == 0 {
                return Err(ConfigError::new("migration threshold must be nonzero"));
            }
            if !(mr.migration || mr.replication) {
                return Err(ConfigError::new(
                    "migration/replication spec enables neither mechanism",
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_names() {
        assert_eq!(SystemSpec::base().name, "base");
        assert_eq!(SystemSpec::nc().name, "nc");
        assert_eq!(SystemSpec::vb().name, "vb16");
        assert_eq!(SystemSpec::vp().name, "vp");
        assert_eq!(SystemSpec::ncd().name, "NCD");
        assert_eq!(SystemSpec::ncs().name, "NCS");
        assert_eq!(SystemSpec::ncp(PcSize::DataFraction(5)).name, "ncp5");
        assert_eq!(
            SystemSpec::vxp(PcSize::DataFraction(5), 64).name,
            "vxp5(t64)"
        );
    }

    #[test]
    fn technologies() {
        assert_eq!(SystemSpec::base().technology(), NcTechnology::None);
        assert_eq!(SystemSpec::vb().technology(), NcTechnology::Sram);
        assert_eq!(SystemSpec::ncd().technology(), NcTechnology::Dram);
        assert_eq!(SystemSpec::ncs().technology(), NcTechnology::Sram);
        assert_eq!(SystemSpec::infinite_dram().technology(), NcTechnology::Dram);
    }

    #[test]
    fn pc_size_resolution() {
        let geo = Geometry::paper_default();
        assert_eq!(PcSize::Bytes(512 * 1024).frames(0, &geo).unwrap(), 128);
        // 1/5 of 10 MB = 2 MB = 512 pages.
        assert_eq!(
            PcSize::DataFraction(5)
                .frames(10 * 1024 * 1024, &geo)
                .unwrap(),
            512
        );
        assert!(PcSize::Bytes(100).frames(0, &geo).is_err());
        assert!(PcSize::DataFraction(0).frames(1000, &geo).is_err());
    }

    #[test]
    fn validation_catches_vxp_without_victim_nc() {
        let mut bad = SystemSpec::ncp(PcSize::DataFraction(5));
        bad.pc.as_mut().unwrap().counters = CounterSource::VictimSets;
        assert!(bad.validate().is_err());
        assert!(SystemSpec::vxp(PcSize::DataFraction(5), 32)
            .validate()
            .is_ok());
    }

    #[test]
    fn all_paper_specs_validate() {
        let specs = [
            SystemSpec::base(),
            SystemSpec::nc(),
            SystemSpec::vb(),
            SystemSpec::vb_sized(1024),
            SystemSpec::vp(),
            SystemSpec::ncd(),
            SystemSpec::ncs(),
            SystemSpec::infinite_dram(),
            SystemSpec::ncp(PcSize::Bytes(512 * 1024)),
            SystemSpec::vbp(PcSize::DataFraction(7)),
            SystemSpec::vpp(PcSize::DataFraction(5)),
            SystemSpec::vxp(PcSize::DataFraction(5), 64),
        ];
        for s in specs {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn with_cache_and_threshold() {
        let s = SystemSpec::vb().with_cache(16 * 1024, 4);
        assert_eq!(s.cache.ways, 4);
        let s = SystemSpec::ncp(PcSize::DataFraction(5)).with_threshold(ThresholdPolicy::Fixed(32));
        assert_eq!(s.pc.unwrap().threshold, ThresholdPolicy::Fixed(32));
    }

    #[test]
    #[should_panic(expected = "no page cache")]
    fn with_threshold_requires_pc() {
        let _ = SystemSpec::vb().with_threshold(ThresholdPolicy::Fixed(32));
    }
}
