//! Fault-injection plumbing for the replay stack: environment plumbing
//! and the bounded-retry helper the supervised I/O paths share.
//!
//! The plan vocabulary and the process-wide arming switch live in
//! [`dsm_types::fault`] (so `dsm-trace` can consult the plan without
//! depending on this crate); this module re-exports that surface and
//! adds the pieces that belong at the runtime layer:
//!
//! * [`install_from_env`] — binaries call this once at startup to arm
//!   the plan named by `DSM_FAULT_PLAN` (a seed or an explicit spec);
//! * [`retry_transient`] — bounded retry-with-backoff around fallible
//!   I/O, absorbing `EINTR`-class errors (injected or real) before the
//!   caller's sticky-disable / structured-error path runs;
//! * [`shard_plan`] — the sharded engines' one-shot read of the active
//!   plan, filtered to shard sites.
//!
//! With no plan installed every consultation is a single relaxed atomic
//! load, so the hot path costs nothing.

pub use dsm_types::fault::{active, install, take_io_error, test_lock, FAULT_SITES};
pub use dsm_types::{FaultPlan, FaultSite};

use dsm_types::DsmError;
use std::io;
use std::time::Duration;

/// The environment variable naming the fault plan: a bare integer seed
/// (expanded by [`FaultPlan::derive`]) or an explicit spec (see
/// [`FaultPlan::from_spec`]).
pub const FAULT_PLAN_ENV: &str = "DSM_FAULT_PLAN";

/// Arms the process-wide fault plan from [`FAULT_PLAN_ENV`], if set.
/// Returns the installed plan so binaries can log it.
///
/// # Errors
///
/// A malformed spec is a usage error (exit code 2) naming the variable
/// and the parse failure.
pub fn install_from_env() -> Result<Option<FaultPlan>, DsmError> {
    let Ok(spec) = std::env::var(FAULT_PLAN_ENV) else {
        return Ok(None);
    };
    if spec.trim().is_empty() {
        install(None);
        return Ok(None);
    }
    let plan =
        FaultPlan::from_spec(&spec).map_err(|e| DsmError::usage(e).context(FAULT_PLAN_ENV))?;
    install(Some(plan));
    Ok(Some(plan))
}

/// Backoff schedule between retry attempts: first retry after 1ms, the
/// second (final) after 5ms more.
const RETRY_BACKOFF: [Duration; 2] = [Duration::from_millis(1), Duration::from_millis(5)];

/// Whether an I/O error is transient — worth retrying rather than
/// surfacing. `Interrupted` is `EINTR` (signals); `WouldBlock` covers
/// short-write-style contention.
fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock
    )
}

/// Runs `op` with a bounded retry budget (three attempts, short
/// backoff) for transient errors, consulting the installed fault plan
/// before each attempt so injected `EINTR`s exercise exactly this path.
/// Non-transient errors and budget exhaustion surface to the caller,
/// where the existing sticky-disable or structured-error handling takes
/// over.
///
/// # Errors
///
/// The first non-transient error, or the last transient one once the
/// retry budget is spent.
pub fn retry_transient<T>(site: FaultSite, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
    let mut backoff = RETRY_BACKOFF.iter();
    loop {
        let result = match take_io_error(site) {
            Some(injected) => Err(injected),
            None => op(),
        };
        match result {
            Ok(v) => return Ok(v),
            Err(e) if is_transient(&e) => match backoff.next() {
                Some(delay) => std::thread::sleep(*delay),
                None => return Err(e),
            },
            Err(e) => return Err(e),
        }
    }
}

/// The active plan if it targets a sharded-replay site; the engines
/// read this once at entry and thread it down, so workers never touch
/// the global.
#[must_use]
pub fn shard_plan() -> Option<FaultPlan> {
    active().filter(|p| p.site.is_shard())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn retry_absorbs_transient_errors_within_budget() {
        let calls = AtomicU32::new(0);
        let out = retry_transient(FaultSite::JournalIo, || {
            if calls.fetch_add(1, Ordering::Relaxed) < 2 {
                Err(io::Error::new(io::ErrorKind::Interrupted, "eintr"))
            } else {
                Ok(7)
            }
        });
        assert_eq!(out.unwrap(), 7);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn retry_gives_up_after_three_transient_attempts() {
        let calls = AtomicU32::new(0);
        let out: io::Result<()> = retry_transient(FaultSite::JournalIo, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::new(io::ErrorKind::WouldBlock, "busy"))
        });
        assert_eq!(out.unwrap_err().kind(), io::ErrorKind::WouldBlock);
        assert_eq!(calls.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn retry_passes_hard_errors_straight_through() {
        let calls = AtomicU32::new(0);
        let out: io::Result<()> = retry_transient(FaultSite::AtomicWriteIo, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Err(io::Error::other("disk on fire"))
        });
        assert!(out.is_err());
        assert_eq!(calls.load(Ordering::Relaxed), 1, "no retry for hard errors");
    }

    #[test]
    fn retry_consumes_injected_failures_first() {
        let _guard = test_lock();
        install(Some(FaultPlan::from_spec("journal-io:2").unwrap()));
        let calls = AtomicU32::new(0);
        let out = retry_transient(FaultSite::JournalIo, || {
            calls.fetch_add(1, Ordering::Relaxed);
            Ok(1)
        });
        install(None);
        // Two injected EINTRs absorbed by the two retries; the real op
        // then runs exactly once and succeeds.
        assert_eq!(out.unwrap(), 1);
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn injected_budget_beyond_retries_surfaces() {
        let _guard = test_lock();
        install(Some(FaultPlan::from_spec("journal-io:3").unwrap()));
        let out: io::Result<u32> = retry_transient(FaultSite::JournalIo, || Ok(1));
        install(None);
        assert_eq!(out.unwrap_err().kind(), io::ErrorKind::Interrupted);
    }

    #[test]
    fn install_from_env_rejects_bad_specs() {
        let _guard = test_lock();
        // Env mutation is process-global; serialized by the same lock as
        // every other plan-touching test.
        std::env::set_var(FAULT_PLAN_ENV, "no-such-site@r0.p0.s0");
        let err = install_from_env().unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(err.to_string().contains(FAULT_PLAN_ENV), "{err}");
        std::env::set_var(FAULT_PLAN_ENV, "worker-panic@r1.p0.s0");
        let plan = install_from_env().unwrap().unwrap();
        assert_eq!(plan.site, FaultSite::WorkerPanic);
        std::env::remove_var(FAULT_PLAN_ENV);
        install(None);
    }

    #[test]
    fn shard_plan_filters_io_sites() {
        let _guard = test_lock();
        install(Some(FaultPlan::from_spec("journal-io:1").unwrap()));
        assert!(shard_plan().is_none());
        install(Some(FaultPlan::from_spec("worker-panic@r0.p0.s0").unwrap()));
        assert!(shard_plan().is_some());
        install(None);
    }
}
