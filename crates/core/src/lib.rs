//! # sram-nc-dsm core
//!
//! A from-scratch reproduction of Moga & Dubois, *"The Effectiveness of
//! SRAM Network Caches in Clustered DSMs"* (HPCA 1998 / USC CENG 97-11):
//! small SRAM network **victim caches** and main-memory **page caches** as
//! alternatives to large, slow DRAM network caches in clustered CC-NUMA
//! machines.
//!
//! This crate is the top of the workspace: it composes the substrates —
//! [`dsm_cache`] (set-associative arrays, MESIR states), [`dsm_protocol`]
//! (the snooping cluster bus), [`dsm_directory`] (full-map inter-cluster
//! directory, first-touch placement, R-NUMA counters) and [`dsm_trace`]
//! (SPLASH-2-style trace kernels) — into complete systems:
//!
//! * [`nc`] — the network-cache design space (victim `vb`/`vp`, relaxed
//!   inclusion `nc`, DRAM `NCD`, infinite `NCS`);
//! * [`page_cache`] — remote pages aliased into local DRAM, with
//!   least-recently-missed replacement and the adaptive relocation
//!   threshold;
//! * [`relocation`] — `vxp`: victimization counters on victim-cache sets
//!   replacing R-NUMA's directory counters;
//! * [`model`] — the latency model of Tables 1-2 and Equation 1;
//! * [`System`] — the trace-driven machine simulator;
//! * [`runner`] — one-call experiment execution.
//!
//! # Observability
//!
//! [`System`] is generic over a [`Probe`] — `System<P: Probe = NoProbe>`
//! — and emits a structured [`Event`] for every machine-level occurrence
//! it counts. The emission hook is monomorphized and guarded by the
//! associated constant `P::ENABLED`, so the default [`NoProbe`] system
//! compiles to the exact uninstrumented code: observability is
//! zero-overhead unless a probe is attached
//! ([`System::with_probe`] / [`runner::run_trace_probed`]).
//!
//! The event taxonomy follows the machine's layers:
//!
//! * **processor caches / bus** — `CacheHit`, `LocalUpgrade`,
//!   `PeerTransfer`, `LocalMiss` (plus per-cluster
//!   [`dsm_protocol::BusStats`] transaction counters underneath);
//! * **network cache** — `NcHit`, `NcCapture`, `AbsorbedDowngrade`,
//!   `ForcedEviction`;
//! * **page cache & relocation** — `PcHit`, `Relocation`,
//!   `PageEviction`, `ThresholdAdapted`;
//! * **directory / remote home** — `RemoteRead`, `RemoteWrite`,
//!   `OwnershipRequest`, `Invalidation`, `RemoteWriteback`;
//! * **OS page policies** — `Migration`, `Replication`,
//!   `ReplicaCollapse`.
//!
//! [`System::set_epoch_window`] additionally samples the run into
//! epochs: every N shared references the probe receives an
//! [`EpochSample`] with the delta [`Metrics`] and per-cluster counts for
//! that window (the samples sum back exactly to the final aggregates).
//! Ready-made sinks live in [`obs`]: a counting/top-K [`obs::StatsSink`],
//! a JSONL event-log [`obs::JsonlSink`], and JSON serialization for run
//! reports ([`Report::to_json`]) built on the dependency-free
//! [`obs::Json`] writer.
//!
//! On top of the probe sit two profiling layers: [`phase`] attributes
//! every event to a protocol phase ([`PhaseProfiler`], with estimated
//! per-phase cycle contributions and log-bucketed histograms), and
//! [`obs::span`] records hierarchical wall-clock spans exportable as
//! chrome://tracing JSON. [`System::occupancy`] snapshots structure
//! fill levels (cache/NC/PC/directory) for the same diagnostics.
//!
//! # Quickstart
//!
//! ```
//! use dsm_core::{runner::run_workload, SystemSpec};
//! use dsm_trace::{workloads::Fft, Scale};
//!
//! let fft = Fft::with_points(1 << 8); // small instance for the doctest
//! let base = run_workload(&SystemSpec::base(), &fft, Scale::full())?;
//! let vb = run_workload(&SystemSpec::vb(), &fft, Scale::full())?;
//! assert!(vb.read_miss_ratio <= base.read_miss_ratio + 1e-12);
//! # Ok::<(), dsm_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod cluster;
pub mod config;
pub mod fault;
pub mod metrics;
pub mod model;
pub mod nc;
pub mod obs;
pub mod page_cache;
pub mod phase;
pub mod probe;
pub mod relocation;
pub mod runner;
pub mod shard;
pub mod system;

pub use config::{
    CacheSpec, CounterSource, DirectorySpec, MigRepSpec, NcSpec, PcSize, PcSpec, SystemSpec,
    ThresholdPolicy,
};
pub use fault::{FaultPlan, FaultSite};
pub use metrics::Metrics;
pub use model::{Latencies, LatencyModel, NcTechnology};
pub use phase::{LogHistogram, Phase, PhaseCounters, PhaseProfiler, PHASES};
pub use probe::{EpochSample, Event, NoProbe, Probe, Tee};
pub use runner::{run_workload, Report};
pub use shard::{ShardEngine, ShardFault, ShardMsg, ShardReport, ShardTuning};
pub use system::{ClusterOccupancy, OccupancySnapshot, System};
