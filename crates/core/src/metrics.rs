//! Event counters and the derived figures-of-merit.

use crate::model::LatencyModel;

/// Everything the simulator counts, machine-wide.
///
/// The paper's metrics derive from these:
///
/// * **cluster miss ratio** (Figures 3-8): references to remote data that
///   leave the cluster, as a percentage of all shared references, split
///   into reads and writes, with page-relocation overhead expressed in
///   equivalent misses;
/// * **remote read stall** (Figure 9, Equation 1);
/// * **remote data traffic** (Figure 10): read misses + write misses +
///   write-backs crossing the network.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// All shared references processed.
    pub shared_refs: u64,
    /// Shared reads.
    pub reads: u64,
    /// Shared writes.
    pub writes: u64,

    /// Read hits in the issuing processor's own cache.
    pub read_hits: u64,
    /// Write hits (`M`, or silent `E -> M`).
    pub write_hits: u64,
    /// Write upgrades satisfied without a directory transaction.
    pub local_upgrades: u64,
    /// Misses supplied cache-to-cache by a peer in the same cluster.
    pub peer_transfers: u64,

    /// Read misses to remote data that hit in the network cache.
    pub nc_read_hits: u64,
    /// Write misses to remote data whose data came from the network cache.
    pub nc_write_hits: u64,
    /// Read misses to remote data that hit in the page cache.
    pub pc_read_hits: u64,
    /// Write misses to remote data whose data came from the page cache.
    pub pc_write_hits: u64,

    /// Read misses to remote data serviced by the home node, classified as
    /// *necessary* (cold/coherence: the requester's presence bit was clear).
    pub remote_read_necessary: u64,
    /// ... and as capacity/conflict (presence bit already set).
    pub remote_read_capacity: u64,
    /// Write misses/upgrades to remote data requiring a directory
    /// transaction, necessary.
    pub remote_write_necessary: u64,
    /// ... and capacity/conflict.
    pub remote_write_capacity: u64,
    /// Ownership-only directory transactions for remote data: the write's
    /// *data* was supplied inside the cluster (peer cache, NC or PC held a
    /// clean copy) but exclusivity had to be acquired from the home. These
    /// cross the network (they count as cluster write misses and traffic)
    /// but are not the reference's primary service classification.
    pub remote_ownership_requests: u64,

    /// Misses to *local* data that left the processor caches (served by
    /// local memory; not part of the paper's remote metrics).
    pub local_misses: u64,

    /// Dirty blocks written back across the network to a remote home.
    pub remote_writebacks: u64,
    /// Pages relocated into page caches.
    pub relocations: u64,
    /// Blocks invalidated in caches/NCs/PCs by remote writes.
    pub invalidations: u64,
    /// Blocks forcibly evicted from processor caches by NC inclusion or by
    /// page-cache page evictions (re-mapping evictions).
    pub forced_evictions: u64,
    /// Victim blocks accepted by the network cache.
    pub nc_captures: u64,
    /// Dirty downgrades (M -> S on a peer read) of remote blocks absorbed
    /// by the network cache instead of updating the remote home.
    pub absorbed_downgrades: u64,
    /// Pages migrated to a new home (Origin-style OS policy).
    pub migrations: u64,
    /// Read-only pages replicated into a cluster's local memory.
    pub replications: u64,
    /// Replica sets collapsed by a write to a replicated page.
    pub replica_collapses: u64,
}

/// Applies a callback macro to the complete `Metrics` field list.
///
/// Everything that must stay in sync with the struct — [`Metrics::merge`],
/// [`Metrics::delta`], [`Metrics::fields`] — is generated from this one
/// list. The generated code destructures `Metrics` exhaustively (no `..`),
/// so adding a field to the struct without adding it here is a compile
/// error, not a silently-dropped counter.
macro_rules! for_each_metric_field {
    ($with:ident) => {
        $with!(
            shared_refs,
            reads,
            writes,
            read_hits,
            write_hits,
            local_upgrades,
            peer_transfers,
            nc_read_hits,
            nc_write_hits,
            pc_read_hits,
            pc_write_hits,
            remote_read_necessary,
            remote_read_capacity,
            remote_write_necessary,
            remote_write_capacity,
            remote_ownership_requests,
            local_misses,
            remote_writebacks,
            relocations,
            invalidations,
            forced_evictions,
            nc_captures,
            absorbed_downgrades,
            migrations,
            replications,
            replica_collapses
        )
    };
}

impl Metrics {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds every counter of `other` into `self`.
    ///
    /// This is the inverse of splitting a run into parts (per-epoch deltas,
    /// per-shard partial runs): merging the parts in any order reproduces
    /// the whole-run aggregate exactly, since all fields are plain sums.
    pub fn merge(&mut self, other: &Metrics) {
        macro_rules! add_fields {
            ($($f:ident),*) => {{
                let Metrics { $($f),* } = other;
                $(self.$f += *$f;)*
            }};
        }
        for_each_metric_field!(add_fields);
    }

    /// The counters accumulated since `earlier` (a snapshot of the same
    /// run): `self - earlier`, field-wise.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `earlier` is not an earlier snapshot of
    /// the same monotonically-growing counters.
    #[must_use]
    pub fn delta(&self, earlier: &Metrics) -> Metrics {
        macro_rules! sub_fields {
            ($($f:ident),*) => {
                Metrics { $($f: self.$f - earlier.$f),* }
            };
        }
        for_each_metric_field!(sub_fields)
    }

    /// Every counter as a `(name, value)` pair, in declaration order —
    /// the single source for JSON export and tabular dumps.
    #[must_use]
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        macro_rules! list_fields {
            ($($f:ident),*) => {
                vec![$((stringify!($f), self.$f)),*]
            };
        }
        for_each_metric_field!(list_fields)
    }

    /// Sets the counter named `name` (the [`Metrics::fields`] spelling) to
    /// `value`, returning `false` for unknown names — the inverse of
    /// `fields()`, used to rehydrate metrics from journaled JSON.
    pub fn set_field(&mut self, name: &str, value: u64) -> bool {
        macro_rules! assign_field {
            ($($f:ident),*) => {
                match name {
                    $(stringify!($f) => { self.$f = value; true })*
                    _ => false,
                }
            };
        }
        for_each_metric_field!(assign_field)
    }

    /// Read misses to remote data serviced by the home node (all classes).
    #[must_use]
    pub fn remote_read_misses(&self) -> u64 {
        self.remote_read_necessary + self.remote_read_capacity
    }

    /// Write transactions to remote data requiring the directory,
    /// including ownership-only requests.
    #[must_use]
    pub fn remote_write_misses(&self) -> u64 {
        self.remote_write_necessary + self.remote_write_capacity + self.remote_ownership_requests
    }

    /// Cluster read miss ratio: remote read misses leaving the cluster per
    /// shared reference (the read portion of Figures 3-8).
    #[must_use]
    pub fn read_miss_ratio(&self) -> f64 {
        ratio(self.remote_read_misses(), self.shared_refs)
    }

    /// Cluster write miss ratio (the write portion of Figures 3-8).
    #[must_use]
    pub fn write_miss_ratio(&self) -> f64 {
        ratio(self.remote_write_misses(), self.shared_refs)
    }

    /// Combined cluster miss ratio.
    #[must_use]
    pub fn cluster_miss_ratio(&self) -> f64 {
        self.read_miss_ratio() + self.write_miss_ratio()
    }

    /// Page-relocation overhead expressed as an equivalent miss ratio: the
    /// relocation ratio scaled by the paper's 225/30 cost factor (the bar
    /// tops in Figures 7-8).
    #[must_use]
    pub fn relocation_overhead_ratio(&self, model: &LatencyModel) -> f64 {
        ratio(self.relocations, self.shared_refs) * model.latencies().relocation_cost_factor()
    }

    /// OS page operations charged at the page-relocation cost: page-cache
    /// relocations plus Origin-style migrations and replications (all
    /// involve handlers and TLB shootdown).
    #[must_use]
    pub fn os_page_ops(&self) -> u64 {
        self.relocations + self.migrations + self.replications
    }

    /// Equation 1: total remote read stall in bus cycles.
    #[must_use]
    pub fn remote_read_stall(&self, model: &LatencyModel) -> u64 {
        model.remote_read_stall(
            self.nc_read_hits,
            self.pc_read_hits,
            self.remote_read_misses(),
            self.os_page_ops(),
        )
    }

    /// Remote data traffic in block transfers: read misses + write misses
    /// + write-backs crossing the network (Figure 10).
    #[must_use]
    pub fn remote_traffic(&self) -> u64 {
        self.remote_read_misses() + self.remote_write_misses() + self.remote_writebacks
    }

    /// The sum of all *primary* service classifications: every shared
    /// reference is served in exactly one way — a cache hit (or silent
    /// upgrade), a peer transfer, an NC hit, a PC hit, a local-memory
    /// fill, or a remote fill — so this always equals
    /// [`Metrics::shared_refs`]. Secondary counters (ownership requests,
    /// invalidations, write-backs, relocations, ...) describe work that
    /// *accompanies* a service and are deliberately excluded. The
    /// phase-counter identity tests pin this partition.
    #[must_use]
    pub fn primary_services(&self) -> u64 {
        self.read_hits
            + self.write_hits
            + self.local_upgrades
            + self.peer_transfers
            + self.nc_read_hits
            + self.nc_write_hits
            + self.pc_read_hits
            + self.pc_write_hits
            + self.local_misses
            + self.remote_read_necessary
            + self.remote_read_capacity
            + self.remote_write_necessary
            + self.remote_write_capacity
    }
}

/// Per-cluster event counts, for locality/imbalance analysis (e.g. how
/// well first-touch placement spread the remote-miss load).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterCounts {
    /// References issued by this cluster's processors.
    pub refs: u64,
    /// Remote read misses this cluster sent to other homes.
    pub remote_reads: u64,
    /// Remote write transactions this cluster sent (incl. ownership-only).
    pub remote_writes: u64,
    /// Remote-data misses served by this cluster's NC.
    pub nc_hits: u64,
    /// Remote-data misses served by this cluster's page cache.
    pub pc_hits: u64,
    /// Pages relocated into this cluster's page cache.
    pub relocations: u64,
}

impl ClusterCounts {
    /// Remote transactions per reference issued — the per-cluster
    /// communication intensity.
    #[must_use]
    pub fn remote_intensity(&self) -> f64 {
        ratio(self.remote_reads + self.remote_writes, self.refs)
    }

    /// Adds every counter of `other` into `self`.
    pub fn merge(&mut self, other: &ClusterCounts) {
        let ClusterCounts {
            refs,
            remote_reads,
            remote_writes,
            nc_hits,
            pc_hits,
            relocations,
        } = other;
        self.refs += refs;
        self.remote_reads += remote_reads;
        self.remote_writes += remote_writes;
        self.nc_hits += nc_hits;
        self.pc_hits += pc_hits;
        self.relocations += relocations;
    }

    /// The counters accumulated since `earlier` (an earlier snapshot of
    /// this cluster's monotonically-growing counters).
    #[must_use]
    pub fn delta(&self, earlier: &ClusterCounts) -> ClusterCounts {
        ClusterCounts {
            refs: self.refs - earlier.refs,
            remote_reads: self.remote_reads - earlier.remote_reads,
            remote_writes: self.remote_writes - earlier.remote_writes,
            nc_hits: self.nc_hits - earlier.nc_hits,
            pc_hits: self.pc_hits - earlier.pc_hits,
            relocations: self.relocations - earlier.relocations,
        }
    }

    /// Every counter as a `(name, value)` pair, in declaration order.
    #[must_use]
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("refs", self.refs),
            ("remote_reads", self.remote_reads),
            ("remote_writes", self.remote_writes),
            ("nc_hits", self.nc_hits),
            ("pc_hits", self.pc_hits),
            ("relocations", self.relocations),
        ]
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Latencies, NcTechnology};

    #[test]
    fn zeroed_by_default() {
        let m = Metrics::new();
        assert_eq!(m.shared_refs, 0);
        assert_eq!(m.cluster_miss_ratio(), 0.0);
        assert_eq!(m.remote_traffic(), 0);
    }

    #[test]
    fn miss_ratios() {
        let m = Metrics {
            shared_refs: 1000,
            remote_read_necessary: 10,
            remote_read_capacity: 20,
            remote_write_necessary: 5,
            remote_write_capacity: 5,
            ..Metrics::default()
        };
        assert!((m.read_miss_ratio() - 0.03).abs() < 1e-12);
        assert!((m.write_miss_ratio() - 0.01).abs() < 1e-12);
        assert!((m.cluster_miss_ratio() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn relocation_overhead_uses_cost_factor() {
        let m = Metrics {
            shared_refs: 1000,
            relocations: 4,
            ..Metrics::default()
        };
        let model = LatencyModel::new(Latencies::paper_default(), NcTechnology::Sram);
        // 4/1000 * 7.5 = 0.03
        assert!((m.relocation_overhead_ratio(&model) - 0.03).abs() < 1e-12);
    }

    /// A metrics value with every field distinct and non-zero, so a merge
    /// or delta that drops/duplicates any field is caught.
    fn dense(offset: u64) -> Metrics {
        let mut m = Metrics::new();
        for (i, (_, _)) in Metrics::new().fields().iter().enumerate() {
            let v = offset + i as u64 + 1;
            set_field(&mut m, i, v);
        }
        m
    }

    fn set_field(m: &mut Metrics, index: usize, value: u64) {
        // Round-trip through the field list: write by constructing a merge
        // of a one-hot metrics value.
        let names: Vec<&str> = m.fields().iter().map(|(n, _)| *n).collect();
        let mut one = Metrics::new();
        match names[index] {
            "shared_refs" => one.shared_refs = value,
            "reads" => one.reads = value,
            "writes" => one.writes = value,
            "read_hits" => one.read_hits = value,
            "write_hits" => one.write_hits = value,
            "local_upgrades" => one.local_upgrades = value,
            "peer_transfers" => one.peer_transfers = value,
            "nc_read_hits" => one.nc_read_hits = value,
            "nc_write_hits" => one.nc_write_hits = value,
            "pc_read_hits" => one.pc_read_hits = value,
            "pc_write_hits" => one.pc_write_hits = value,
            "remote_read_necessary" => one.remote_read_necessary = value,
            "remote_read_capacity" => one.remote_read_capacity = value,
            "remote_write_necessary" => one.remote_write_necessary = value,
            "remote_write_capacity" => one.remote_write_capacity = value,
            "remote_ownership_requests" => one.remote_ownership_requests = value,
            "local_misses" => one.local_misses = value,
            "remote_writebacks" => one.remote_writebacks = value,
            "relocations" => one.relocations = value,
            "invalidations" => one.invalidations = value,
            "forced_evictions" => one.forced_evictions = value,
            "nc_captures" => one.nc_captures = value,
            "absorbed_downgrades" => one.absorbed_downgrades = value,
            "migrations" => one.migrations = value,
            "replications" => one.replications = value,
            "replica_collapses" => one.replica_collapses = value,
            other => panic!("unknown metrics field {other}"),
        }
        m.merge(&one);
    }

    #[test]
    fn merge_sums_every_field() {
        let a = dense(0);
        let b = dense(100);
        let mut merged = a;
        merged.merge(&b);
        for (i, (name, v)) in merged.fields().iter().enumerate() {
            let expect = (i as u64 + 1) + (100 + i as u64 + 1);
            assert_eq!(*v, expect, "field {name} mis-merged");
        }
    }

    #[test]
    fn merge_with_default_is_identity() {
        let a = dense(7);
        let mut merged = a;
        merged.merge(&Metrics::default());
        assert_eq!(merged, a);
        let mut from_zero = Metrics::default();
        from_zero.merge(&a);
        assert_eq!(from_zero, a);
    }

    #[test]
    fn delta_inverts_merge() {
        let earlier = dense(3);
        let gained = dense(40);
        let mut later = earlier;
        later.merge(&gained);
        assert_eq!(later.delta(&earlier), gained);
    }

    #[test]
    fn set_field_inverts_fields() {
        let original = dense(11);
        let mut rebuilt = Metrics::new();
        for (name, v) in original.fields() {
            assert!(rebuilt.set_field(name, v), "unknown field {name}");
        }
        assert_eq!(rebuilt, original);
        assert!(!rebuilt.set_field("no_such_counter", 1));
    }

    #[test]
    fn fields_cover_the_struct_distinctly() {
        let m = dense(0);
        let fields = m.fields();
        // All names unique, all values the distinct ones `dense` wrote.
        let mut names: Vec<&str> = fields.iter().map(|(n, _)| *n).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), fields.len());
        for (i, (name, v)) in fields.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1, "field {name} not covered");
        }
    }

    #[test]
    fn cluster_counts_merge_and_delta() {
        let a = ClusterCounts {
            refs: 10,
            remote_reads: 2,
            remote_writes: 3,
            nc_hits: 4,
            pc_hits: 5,
            relocations: 6,
        };
        let b = ClusterCounts {
            refs: 100,
            remote_reads: 20,
            remote_writes: 30,
            nc_hits: 40,
            pc_hits: 50,
            relocations: 60,
        };
        let mut merged = a;
        merged.merge(&b);
        assert_eq!(merged.refs, 110);
        assert_eq!(merged.relocations, 66);
        assert_eq!(merged.delta(&a), b);
        assert_eq!(merged.fields().len(), 6);
    }

    #[test]
    fn stall_and_traffic_composition() {
        let m = Metrics {
            nc_read_hits: 10,
            pc_read_hits: 2,
            remote_read_necessary: 3,
            remote_read_capacity: 1,
            remote_write_necessary: 2,
            remote_write_capacity: 0,
            remote_writebacks: 5,
            relocations: 1,
            ..Metrics::default()
        };
        let model = LatencyModel::new(Latencies::paper_default(), NcTechnology::Sram);
        assert_eq!(m.remote_read_stall(&model), 10 + 20 + 120 + 225);
        assert_eq!(m.remote_traffic(), 4 + 2 + 5);
    }
}
