//! Event counters and the derived figures-of-merit.

use serde::{Deserialize, Serialize};

use crate::model::LatencyModel;

/// Everything the simulator counts, machine-wide.
///
/// The paper's metrics derive from these:
///
/// * **cluster miss ratio** (Figures 3-8): references to remote data that
///   leave the cluster, as a percentage of all shared references, split
///   into reads and writes, with page-relocation overhead expressed in
///   equivalent misses;
/// * **remote read stall** (Figure 9, Equation 1);
/// * **remote data traffic** (Figure 10): read misses + write misses +
///   write-backs crossing the network.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Metrics {
    /// All shared references processed.
    pub shared_refs: u64,
    /// Shared reads.
    pub reads: u64,
    /// Shared writes.
    pub writes: u64,

    /// Read hits in the issuing processor's own cache.
    pub read_hits: u64,
    /// Write hits (`M`, or silent `E -> M`).
    pub write_hits: u64,
    /// Write upgrades satisfied without a directory transaction.
    pub local_upgrades: u64,
    /// Misses supplied cache-to-cache by a peer in the same cluster.
    pub peer_transfers: u64,

    /// Read misses to remote data that hit in the network cache.
    pub nc_read_hits: u64,
    /// Write misses to remote data whose data came from the network cache.
    pub nc_write_hits: u64,
    /// Read misses to remote data that hit in the page cache.
    pub pc_read_hits: u64,
    /// Write misses to remote data whose data came from the page cache.
    pub pc_write_hits: u64,

    /// Read misses to remote data serviced by the home node, classified as
    /// *necessary* (cold/coherence: the requester's presence bit was clear).
    pub remote_read_necessary: u64,
    /// ... and as capacity/conflict (presence bit already set).
    pub remote_read_capacity: u64,
    /// Write misses/upgrades to remote data requiring a directory
    /// transaction, necessary.
    pub remote_write_necessary: u64,
    /// ... and capacity/conflict.
    pub remote_write_capacity: u64,
    /// Ownership-only directory transactions for remote data: the write's
    /// *data* was supplied inside the cluster (peer cache, NC or PC held a
    /// clean copy) but exclusivity had to be acquired from the home. These
    /// cross the network (they count as cluster write misses and traffic)
    /// but are not the reference's primary service classification.
    pub remote_ownership_requests: u64,

    /// Misses to *local* data that left the processor caches (served by
    /// local memory; not part of the paper's remote metrics).
    pub local_misses: u64,

    /// Dirty blocks written back across the network to a remote home.
    pub remote_writebacks: u64,
    /// Pages relocated into page caches.
    pub relocations: u64,
    /// Blocks invalidated in caches/NCs/PCs by remote writes.
    pub invalidations: u64,
    /// Blocks forcibly evicted from processor caches by NC inclusion or by
    /// page-cache page evictions (re-mapping evictions).
    pub forced_evictions: u64,
    /// Victim blocks accepted by the network cache.
    pub nc_captures: u64,
    /// Dirty downgrades (M -> S on a peer read) of remote blocks absorbed
    /// by the network cache instead of updating the remote home.
    pub absorbed_downgrades: u64,
    /// Pages migrated to a new home (Origin-style OS policy).
    #[serde(default)]
    pub migrations: u64,
    /// Read-only pages replicated into a cluster's local memory.
    #[serde(default)]
    pub replications: u64,
    /// Replica sets collapsed by a write to a replicated page.
    #[serde(default)]
    pub replica_collapses: u64,
}

impl Metrics {
    /// Creates zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Read misses to remote data serviced by the home node (all classes).
    #[must_use]
    pub fn remote_read_misses(&self) -> u64 {
        self.remote_read_necessary + self.remote_read_capacity
    }

    /// Write transactions to remote data requiring the directory,
    /// including ownership-only requests.
    #[must_use]
    pub fn remote_write_misses(&self) -> u64 {
        self.remote_write_necessary + self.remote_write_capacity + self.remote_ownership_requests
    }

    /// Cluster read miss ratio: remote read misses leaving the cluster per
    /// shared reference (the read portion of Figures 3-8).
    #[must_use]
    pub fn read_miss_ratio(&self) -> f64 {
        ratio(self.remote_read_misses(), self.shared_refs)
    }

    /// Cluster write miss ratio (the write portion of Figures 3-8).
    #[must_use]
    pub fn write_miss_ratio(&self) -> f64 {
        ratio(self.remote_write_misses(), self.shared_refs)
    }

    /// Combined cluster miss ratio.
    #[must_use]
    pub fn cluster_miss_ratio(&self) -> f64 {
        self.read_miss_ratio() + self.write_miss_ratio()
    }

    /// Page-relocation overhead expressed as an equivalent miss ratio: the
    /// relocation ratio scaled by the paper's 225/30 cost factor (the bar
    /// tops in Figures 7-8).
    #[must_use]
    pub fn relocation_overhead_ratio(&self, model: &LatencyModel) -> f64 {
        ratio(self.relocations, self.shared_refs) * model.latencies().relocation_cost_factor()
    }

    /// OS page operations charged at the page-relocation cost: page-cache
    /// relocations plus Origin-style migrations and replications (all
    /// involve handlers and TLB shootdown).
    #[must_use]
    pub fn os_page_ops(&self) -> u64 {
        self.relocations + self.migrations + self.replications
    }

    /// Equation 1: total remote read stall in bus cycles.
    #[must_use]
    pub fn remote_read_stall(&self, model: &LatencyModel) -> u64 {
        model.remote_read_stall(
            self.nc_read_hits,
            self.pc_read_hits,
            self.remote_read_misses(),
            self.os_page_ops(),
        )
    }

    /// Remote data traffic in block transfers: read misses + write misses
    /// + write-backs crossing the network (Figure 10).
    #[must_use]
    pub fn remote_traffic(&self) -> u64 {
        self.remote_read_misses() + self.remote_write_misses() + self.remote_writebacks
    }
}

/// Per-cluster event counts, for locality/imbalance analysis (e.g. how
/// well first-touch placement spread the remote-miss load).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterCounts {
    /// References issued by this cluster's processors.
    pub refs: u64,
    /// Remote read misses this cluster sent to other homes.
    pub remote_reads: u64,
    /// Remote write transactions this cluster sent (incl. ownership-only).
    pub remote_writes: u64,
    /// Remote-data misses served by this cluster's NC.
    pub nc_hits: u64,
    /// Remote-data misses served by this cluster's page cache.
    pub pc_hits: u64,
    /// Pages relocated into this cluster's page cache.
    pub relocations: u64,
}

impl ClusterCounts {
    /// Remote transactions per reference issued — the per-cluster
    /// communication intensity.
    #[must_use]
    pub fn remote_intensity(&self) -> f64 {
        ratio(self.remote_reads + self.remote_writes, self.refs)
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Latencies, NcTechnology};

    #[test]
    fn zeroed_by_default() {
        let m = Metrics::new();
        assert_eq!(m.shared_refs, 0);
        assert_eq!(m.cluster_miss_ratio(), 0.0);
        assert_eq!(m.remote_traffic(), 0);
    }

    #[test]
    fn miss_ratios() {
        let m = Metrics {
            shared_refs: 1000,
            remote_read_necessary: 10,
            remote_read_capacity: 20,
            remote_write_necessary: 5,
            remote_write_capacity: 5,
            ..Metrics::default()
        };
        assert!((m.read_miss_ratio() - 0.03).abs() < 1e-12);
        assert!((m.write_miss_ratio() - 0.01).abs() < 1e-12);
        assert!((m.cluster_miss_ratio() - 0.04).abs() < 1e-12);
    }

    #[test]
    fn relocation_overhead_uses_cost_factor() {
        let m = Metrics {
            shared_refs: 1000,
            relocations: 4,
            ..Metrics::default()
        };
        let model = LatencyModel::new(Latencies::paper_default(), NcTechnology::Sram);
        // 4/1000 * 7.5 = 0.03
        assert!((m.relocation_overhead_ratio(&model) - 0.03).abs() < 1e-12);
    }

    #[test]
    fn stall_and_traffic_composition() {
        let m = Metrics {
            nc_read_hits: 10,
            pc_read_hits: 2,
            remote_read_necessary: 3,
            remote_read_capacity: 1,
            remote_write_necessary: 2,
            remote_write_capacity: 0,
            remote_writebacks: 5,
            relocations: 1,
            ..Metrics::default()
        };
        let model = LatencyModel::new(Latencies::paper_default(), NcTechnology::Sram);
        assert_eq!(m.remote_read_stall(&model), 10 + 20 + 120 + 225);
        assert_eq!(m.remote_traffic(), 4 + 2 + 5);
    }
}
