//! The paper's performance model: event latencies (Table 2), per-system
//! latency composition (Table 1), and the remote read stall (Equation 1).
//!
//! The model is deliberately simple — the paper's own words: "This model
//! does not account for contention and uses a constant, average value for
//! latencies". Every latency is in 10-ns cycles of the 100-MHz cluster bus.

/// Event latencies in bus cycles — the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// A DRAM array access (page-cache data, or DRAM-NC data+tag fetch).
    pub dram_access: u64,
    /// Checking a DRAM NC's tag after the fetch.
    pub tag_check: u64,
    /// A cache-to-cache transfer on the cluster bus (SRAM NC or peer cache).
    pub cache_to_cache: u64,
    /// A remote access to the home node over the network.
    pub remote_access: u64,
    /// Relocating a page into the page cache (interrupt + software handler
    /// + TLB shootdown), amortized average.
    pub page_relocation: u64,
}

impl Latencies {
    /// Table 2 of the paper: 10 / 3 / 1 / 30 / 225 cycles.
    #[must_use]
    pub fn paper_default() -> Self {
        Latencies {
            dram_access: 10,
            tag_check: 3,
            cache_to_cache: 1,
            remote_access: 30,
            page_relocation: 225,
        }
    }

    /// The relocation-to-remote-access cost ratio the paper uses to fold
    /// relocation overhead into "equivalent remote misses" (225 / 30).
    #[must_use]
    pub fn relocation_cost_factor(&self) -> f64 {
        self.page_relocation as f64 / self.remote_access as f64
    }
}

impl Default for Latencies {
    fn default() -> Self {
        Latencies::paper_default()
    }
}

/// The memory technology of a network cache, which determines where its
/// access time falls on the remote-miss critical path (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NcTechnology {
    /// No network cache at all.
    None,
    /// Small and fast: snoops at bus speed, hits are cache-to-cache
    /// transfers, misses add nothing.
    Sram,
    /// Large and slow: every lookup costs a DRAM fetch plus a tag check,
    /// on hits *and* misses.
    Dram,
}

/// Per-event latencies for one system configuration — the rows of Table 1
/// evaluated against Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyModel {
    latencies: Latencies,
    nc: NcTechnology,
}

impl LatencyModel {
    /// Builds the model for a system whose NC uses `nc` technology.
    #[must_use]
    pub fn new(latencies: Latencies, nc: NcTechnology) -> Self {
        LatencyModel { latencies, nc }
    }

    /// The raw event latencies.
    #[must_use]
    pub fn latencies(&self) -> &Latencies {
        &self.latencies
    }

    /// Latency of a remote-data miss that hits in the network cache.
    ///
    /// # Panics
    ///
    /// Panics if the system has no NC (such systems cannot produce NC hits).
    #[must_use]
    pub fn nc_hit(&self) -> u64 {
        match self.nc {
            NcTechnology::None => panic!("a system without an NC cannot hit in it"),
            NcTechnology::Sram => self.latencies.cache_to_cache,
            NcTechnology::Dram => self.latencies.dram_access + self.latencies.tag_check,
        }
    }

    /// Latency of a remote-data miss that hits in the page cache (a local
    /// DRAM access; the page cache's block-state tags are SRAM and snooped
    /// at bus speed, so no tag-check penalty applies).
    #[must_use]
    pub fn pc_hit(&self) -> u64 {
        self.latencies.dram_access
    }

    /// Latency of a remote-data miss that must go to the home node. A DRAM
    /// NC adds its tag check to the critical path even on a miss.
    #[must_use]
    pub fn remote_miss(&self) -> u64 {
        match self.nc {
            NcTechnology::None | NcTechnology::Sram => self.latencies.remote_access,
            NcTechnology::Dram => self.latencies.remote_access + self.latencies.tag_check,
        }
    }

    /// Average overhead of one page relocation.
    #[must_use]
    pub fn relocation(&self) -> u64 {
        self.latencies.page_relocation
    }

    /// Equation 1: the total remote read stall for the given event counts.
    #[must_use]
    pub fn remote_read_stall(
        &self,
        nc_read_hits: u64,
        pc_read_hits: u64,
        remote_read_misses: u64,
        relocations: u64,
    ) -> u64 {
        let nc_part = if nc_read_hits == 0 {
            0
        } else {
            nc_read_hits * self.nc_hit()
        };
        nc_part
            + pc_read_hits * self.pc_hit()
            + remote_read_misses * self.remote_miss()
            + relocations * self.relocation()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants() {
        let l = Latencies::paper_default();
        assert_eq!(l.dram_access, 10);
        assert_eq!(l.tag_check, 3);
        assert_eq!(l.cache_to_cache, 1);
        assert_eq!(l.remote_access, 30);
        assert_eq!(l.page_relocation, 225);
        assert!((l.relocation_cost_factor() - 7.5).abs() < 1e-12);
    }

    #[test]
    fn table1_sram_row() {
        let m = LatencyModel::new(Latencies::paper_default(), NcTechnology::Sram);
        assert_eq!(m.nc_hit(), 1);
        assert_eq!(m.pc_hit(), 10);
        assert_eq!(m.remote_miss(), 30);
    }

    #[test]
    fn table1_dram_row() {
        let m = LatencyModel::new(Latencies::paper_default(), NcTechnology::Dram);
        assert_eq!(m.nc_hit(), 13);
        assert_eq!(m.remote_miss(), 33);
    }

    #[test]
    fn table1_no_nc_row() {
        let m = LatencyModel::new(Latencies::paper_default(), NcTechnology::None);
        assert_eq!(m.remote_miss(), 30);
    }

    #[test]
    #[should_panic(expected = "without an NC")]
    fn nc_hit_without_nc_panics() {
        let m = LatencyModel::new(Latencies::paper_default(), NcTechnology::None);
        let _ = m.nc_hit();
    }

    #[test]
    fn equation1_composition() {
        let m = LatencyModel::new(Latencies::paper_default(), NcTechnology::Sram);
        // 10 NC hits + 5 PC hits + 2 remote + 1 relocation
        assert_eq!(m.remote_read_stall(10, 5, 2, 1), 10 + 50 + 60 + 225);
    }

    #[test]
    fn equation1_zero_nc_hits_ok_without_nc() {
        let m = LatencyModel::new(Latencies::paper_default(), NcTechnology::None);
        assert_eq!(m.remote_read_stall(0, 0, 4, 0), 120);
    }
}
