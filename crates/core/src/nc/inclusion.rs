//! Allocate-on-fill network caches with relaxed or full inclusion
//! (the paper's `nc` and `NCD` configurations).

use dsm_cache::{CacheShape, SetAssoc};
use dsm_types::BlockAddr;

use super::{NcEviction, NcHit, VictimOutcome};
use crate::model::NcTechnology;

/// The state of an inclusion-NC entry.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum Entry {
    /// Valid clean copy (caches may hold additional clean copies).
    #[default]
    Clean,
    /// Valid dirty copy; the processor caches no longer hold the block
    /// dirty (its write-back landed here). Eviction requires a write-back.
    Dirty,
    /// A processor cache holds the block `Modified`; this entry is the
    /// inclusion placeholder. Evicting it forces the cache copy out
    /// (inclusion for dirty blocks) and produces a write-back.
    Shadow,
}

/// A network cache that allocates a frame on **every remote fill** and
/// maintains inclusion with the processor caches:
///
/// * `full_inclusion = false` — the paper's `nc`: inclusion is relaxed for
///   clean blocks (evicting a clean entry leaves cache copies alone, after
///   Fletcher et al.), but kept for dirty ones;
/// * `full_inclusion = true` — the `NCD` DRAM cache (NUMA-Q style): any
///   eviction forces the caches' copies out.
///
/// Unlike the victim organization, hits leave the entry in place (the NC
/// replicates what the caches hold), and clean victims from the caches are
/// *not* captured — clean replacements die silently as under plain MESI.
#[derive(Debug, Clone)]
pub struct InclusionNc {
    frames: SetAssoc<Entry>,
    full_inclusion: bool,
    technology: NcTechnology,
}

impl InclusionNc {
    /// Creates an inclusion NC.
    ///
    /// # Panics
    ///
    /// Panics if `technology` is [`NcTechnology::None`].
    #[must_use]
    pub fn new(shape: CacheShape, full_inclusion: bool, technology: NcTechnology) -> Self {
        assert!(
            technology != NcTechnology::None,
            "an inclusion NC needs a memory technology"
        );
        InclusionNc {
            frames: SetAssoc::new(shape),
            full_inclusion,
            technology,
        }
    }

    /// The paper's `nc`: SRAM, inclusion relaxed for clean blocks.
    #[must_use]
    pub fn sram_relaxed(shape: CacheShape) -> Self {
        InclusionNc::new(shape, false, NcTechnology::Sram)
    }

    /// The paper's `NCD`: DRAM, full inclusion.
    #[must_use]
    pub fn dram_full(shape: CacheShape) -> Self {
        InclusionNc::new(shape, true, NcTechnology::Dram)
    }

    /// The memory technology.
    #[must_use]
    pub fn technology(&self) -> NcTechnology {
        self.technology
    }

    fn set_of(&self, block: BlockAddr) -> usize {
        self.frames.shape().set_of_block(block)
    }

    fn eviction_of(&self, tag: u64, entry: Entry) -> Option<NcEviction> {
        let block = BlockAddr(tag);
        match entry {
            Entry::Clean => {
                if self.full_inclusion {
                    Some(NcEviction {
                        block,
                        dirty: false,
                        force_cache_eviction: true,
                    })
                } else {
                    // Relaxed inclusion: clean NC victims leave the caches
                    // alone and need no write-back.
                    None
                }
            }
            Entry::Dirty => Some(NcEviction {
                block,
                dirty: true,
                force_cache_eviction: self.full_inclusion,
            }),
            Entry::Shadow => Some(NcEviction {
                block,
                dirty: true,
                force_cache_eviction: true,
            }),
        }
    }

    fn insert(&mut self, block: BlockAddr, entry: Entry) -> Option<NcEviction> {
        let set = self.set_of(block);
        self.frames
            .insert(set, block.0, entry)
            .and_then(|(tag, old)| self.eviction_of(tag, old))
    }

    /// Hints `block`'s tag row into L1 ahead of the lookup replay will
    /// make for it.
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        self.frames.prefetch_set(self.set_of(block));
    }

    /// Allocates on a completed remote fill (`write` fills shadow the
    /// cache's `M` copy). Displaces at most one block.
    pub fn on_remote_fill(&mut self, block: BlockAddr, write: bool) -> Option<NcEviction> {
        let entry = if write { Entry::Shadow } else { Entry::Clean };
        self.insert(block, entry)
    }

    /// Read-miss lookup: hits on valid data, keeps the entry.
    pub fn read_lookup(&mut self, block: BlockAddr) -> Option<NcHit> {
        let set = self.set_of(block);
        match self.frames.get(set, block.0).copied() {
            Some(Entry::Clean) => Some(NcHit { dirty: false }),
            Some(Entry::Dirty) => Some(NcHit { dirty: true }),
            // A shadow entry has no data (the M copy lives in a cache);
            // the bus would have been answered by that cache already.
            Some(Entry::Shadow) | None => None,
        }
    }

    /// Write-miss lookup: hits supply data and the entry becomes a shadow
    /// of the cache's new `M` copy.
    pub fn write_lookup(&mut self, block: BlockAddr) -> Option<NcHit> {
        let set = self.set_of(block);
        match self.frames.get(set, block.0).copied() {
            Some(e @ (Entry::Clean | Entry::Dirty)) => {
                *self.frames.peek_mut(set, block.0).expect("present") = Entry::Shadow;
                Some(NcHit {
                    dirty: e == Entry::Dirty,
                })
            }
            Some(Entry::Shadow) | None => None,
        }
    }

    /// A victimized block from the caches: dirty write-backs land in the
    /// entry (shadow -> dirty); clean victims are ignored (no replacement
    /// transactions in this organization).
    pub fn on_victim(&mut self, block: BlockAddr, dirty: bool) -> VictimOutcome {
        if !dirty {
            return VictimOutcome::default();
        }
        let set = self.set_of(block);
        if let Some(e) = self.frames.peek_mut(set, block.0) {
            *e = Entry::Dirty;
            VictimOutcome {
                accepted: true,
                eviction: None,
                set: None,
            }
        } else {
            // Inclusion guarantees a dirty cache block has an entry; be
            // permissive and allocate if it is somehow gone.
            VictimOutcome {
                accepted: true,
                eviction: self.insert(block, Entry::Dirty),
                set: None,
            }
        }
    }

    /// A local processor took `M` ownership: the entry becomes a shadow
    /// (allocating one if needed — inclusion for dirty blocks).
    pub fn on_local_write(&mut self, block: BlockAddr) -> Option<NcEviction> {
        let set = self.set_of(block);
        if let Some(e) = self.frames.peek_mut(set, block.0) {
            *e = Entry::Shadow;
            None
        } else {
            self.insert(block, Entry::Shadow)
        }
    }

    /// A dirty downgrade write-back is on the bus; absorb it into the
    /// entry. Returns `true` (inclusion NCs always have or make room).
    pub fn absorb_downgrade(&mut self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        if let Some(e) = self.frames.peek_mut(set, block.0) {
            *e = Entry::Dirty;
        } else {
            // Entry lost (relaxed-clean eviction earlier): reallocate.
            let _ = self.insert(block, Entry::Dirty);
        }
        true
    }

    /// Removes the entry for a page re-mapping, reporting whether it held
    /// dirty *data* (shadow entries report `false`: the dirty data lives in
    /// a processor cache and is written back by the cache-level purge).
    pub fn purge(&mut self, block: BlockAddr) -> Option<NcHit> {
        let set = self.set_of(block);
        self.frames.remove(set, block.0).map(|e| NcHit {
            dirty: e == Entry::Dirty,
        })
    }

    /// An external downgrade (another cluster read a block this cluster
    /// owned): dirty/shadow entries become clean copies.
    pub fn on_external_downgrade(&mut self, block: BlockAddr) {
        let set = self.set_of(block);
        if let Some(e) = self.frames.peek_mut(set, block.0) {
            *e = Entry::Clean;
        }
    }

    /// External invalidation.
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        self.frames.remove(set, block.0).is_some()
    }

    /// Whether `block` has an entry (any state).
    #[must_use]
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.frames.peek(self.set_of(block), block.0).is_some()
    }

    /// Read-only probe of whether `block`'s entry holds dirty *data* (no
    /// LRU effect; shadow entries report `false` — their dirty data lives
    /// in a processor cache). `None` when not resident.
    #[must_use]
    pub fn peek_dirty(&self, block: BlockAddr) -> Option<bool> {
        self.frames
            .peek(self.set_of(block), block.0)
            .map(|e| *e == Entry::Dirty)
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the NC is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relaxed() -> InclusionNc {
        // 4 sets x 4 ways.
        InclusionNc::sram_relaxed(CacheShape::new(1024, 64, 4).unwrap())
    }

    fn tiny_full() -> InclusionNc {
        InclusionNc::new(
            CacheShape::from_sets_ways(1, 1, 64).unwrap(),
            true,
            NcTechnology::Dram,
        )
    }

    #[test]
    fn fills_allocate_and_hit() {
        let mut nc = relaxed();
        let b = BlockAddr(7);
        assert!(nc.on_remote_fill(b, false).is_none());
        assert_eq!(nc.read_lookup(b), Some(NcHit { dirty: false }));
        // Entry stays after a read hit.
        assert!(nc.contains(b));
    }

    #[test]
    fn relaxed_clean_eviction_is_silent() {
        let mut nc = InclusionNc::sram_relaxed(CacheShape::from_sets_ways(1, 1, 64).unwrap());
        nc.on_remote_fill(BlockAddr(1), false);
        let ev = nc.on_remote_fill(BlockAddr(2), false);
        assert!(ev.is_none(), "clean eviction must not reach the caches");
    }

    #[test]
    fn full_inclusion_clean_eviction_forces_caches() {
        let mut nc = tiny_full();
        nc.on_remote_fill(BlockAddr(1), false);
        let ev = nc.on_remote_fill(BlockAddr(2), false).expect("displaced");
        assert!(ev.force_cache_eviction);
        assert!(!ev.dirty);
    }

    #[test]
    fn shadow_eviction_forces_and_writes_back() {
        let mut nc = InclusionNc::sram_relaxed(CacheShape::from_sets_ways(1, 1, 64).unwrap());
        nc.on_remote_fill(BlockAddr(1), true); // write fill -> shadow
        let ev = nc.on_remote_fill(BlockAddr(2), false).expect("displaced");
        assert!(ev.dirty);
        assert!(ev.force_cache_eviction);
    }

    #[test]
    fn writeback_converts_shadow_to_dirty() {
        let mut nc = relaxed();
        let b = BlockAddr(3);
        nc.on_remote_fill(b, true);
        let out = nc.on_victim(b, true);
        assert!(out.accepted);
        assert_eq!(nc.read_lookup(b), Some(NcHit { dirty: true }));
    }

    #[test]
    fn clean_victims_are_ignored() {
        let mut nc = relaxed();
        let out = nc.on_victim(BlockAddr(9), false);
        assert!(!out.accepted);
        assert!(!nc.contains(BlockAddr(9)));
    }

    #[test]
    fn shadow_does_not_answer_lookups() {
        let mut nc = relaxed();
        let b = BlockAddr(4);
        nc.on_remote_fill(b, true);
        assert!(nc.read_lookup(b).is_none());
        assert!(nc.write_lookup(b).is_none());
    }

    #[test]
    fn write_lookup_shadows_the_entry() {
        let mut nc = relaxed();
        let b = BlockAddr(4);
        nc.on_remote_fill(b, false);
        assert_eq!(nc.write_lookup(b), Some(NcHit { dirty: false }));
        // Now shadowed: no further hits until the write-back returns.
        assert!(nc.read_lookup(b).is_none());
        nc.on_victim(b, true);
        assert_eq!(nc.read_lookup(b), Some(NcHit { dirty: true }));
    }

    #[test]
    fn local_write_shadows_or_allocates() {
        let mut nc = relaxed();
        let b = BlockAddr(5);
        nc.on_remote_fill(b, false);
        assert!(nc.on_local_write(b).is_none());
        assert!(nc.read_lookup(b).is_none()); // shadowed
                                              // Absent entry: allocated as shadow.
        let b2 = BlockAddr(6);
        nc.on_local_write(b2);
        assert!(nc.contains(b2));
    }

    #[test]
    fn absorb_downgrade_revives_lost_entries() {
        let mut nc = relaxed();
        let b = BlockAddr(8);
        assert!(nc.absorb_downgrade(b));
        assert_eq!(nc.read_lookup(b), Some(NcHit { dirty: true }));
    }

    #[test]
    fn dirty_eviction_writes_back_without_forcing_when_relaxed() {
        let mut nc = InclusionNc::sram_relaxed(CacheShape::from_sets_ways(1, 1, 64).unwrap());
        nc.on_remote_fill(BlockAddr(1), false);
        nc.on_victim(BlockAddr(1), true); // entry -> dirty
        let ev = nc.on_remote_fill(BlockAddr(2), false).expect("displaced");
        assert!(ev.dirty);
        assert!(!ev.force_cache_eviction);
    }

    #[test]
    fn invalidate_drops_entry() {
        let mut nc = relaxed();
        nc.on_remote_fill(BlockAddr(1), false);
        assert!(nc.invalidate(BlockAddr(1)));
        assert!(!nc.invalidate(BlockAddr(1)));
        assert!(nc.is_empty());
    }

    #[test]
    #[should_panic(expected = "memory technology")]
    fn rejects_none_technology() {
        let _ = InclusionNc::new(
            CacheShape::new(1024, 64, 4).unwrap(),
            false,
            NcTechnology::None,
        );
    }
}
