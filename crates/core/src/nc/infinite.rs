//! Unbounded network caches: the `NCS` ideal and the infinite-DRAM
//! normalization baseline.

use dsm_types::{BlockAddr, DenseMap};

use super::NcHit;
use crate::model::NcTechnology;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Entry {
    Clean,
    Dirty,
    Shadow,
}

/// An infinite network cache: allocates on every remote fill and victim,
/// never evicts. After the first fetch of a block, only coherence
/// invalidations can remove it, so the directory sees exactly the
/// *necessary* misses — the paper's saturation point for any RDC design.
///
/// With [`NcTechnology::Sram`] this is `NCS` (Figure 9's ideal); with
/// [`NcTechnology::Dram`] it is the baseline all of Figures 9-11 normalize
/// against.
#[derive(Debug, Clone)]
pub struct InfiniteNc {
    entries: DenseMap<Entry>,
    technology: NcTechnology,
}

impl InfiniteNc {
    /// Creates an infinite NC of the given technology.
    ///
    /// # Panics
    ///
    /// Panics if `technology` is [`NcTechnology::None`].
    #[must_use]
    pub fn new(technology: NcTechnology) -> Self {
        assert!(
            technology != NcTechnology::None,
            "an infinite NC needs a memory technology"
        );
        InfiniteNc {
            entries: DenseMap::new(),
            technology,
        }
    }

    /// The memory technology.
    #[must_use]
    pub fn technology(&self) -> NcTechnology {
        self.technology
    }

    /// Hints `block`'s entry's home slot into L1 ahead of the lookup
    /// replay will make for it.
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        self.entries.prefetch(block.0);
    }

    /// Allocates on a completed remote fill.
    pub fn on_remote_fill(&mut self, block: BlockAddr, write: bool) {
        let entry = if write { Entry::Shadow } else { Entry::Clean };
        self.entries.insert(block.0, entry);
    }

    /// Read-miss lookup; the entry stays.
    pub fn read_lookup(&mut self, block: BlockAddr) -> Option<NcHit> {
        match self.entries.get(block.0) {
            Some(Entry::Clean) => Some(NcHit { dirty: false }),
            Some(Entry::Dirty) => Some(NcHit { dirty: true }),
            Some(Entry::Shadow) | None => None,
        }
    }

    /// Write-miss lookup; a hit shadows the entry behind the cache's `M`.
    pub fn write_lookup(&mut self, block: BlockAddr) -> Option<NcHit> {
        match self.entries.get(block.0).copied() {
            Some(e @ (Entry::Clean | Entry::Dirty)) => {
                self.entries.insert(block.0, Entry::Shadow);
                Some(NcHit {
                    dirty: e == Entry::Dirty,
                })
            }
            Some(Entry::Shadow) | None => None,
        }
    }

    /// Captures a victim (dirty write-backs refresh the entry; clean `R`
    /// replacements land as clean copies). Never evicts anything.
    pub fn on_victim(&mut self, block: BlockAddr, dirty: bool) -> super::VictimOutcome {
        let entry = if dirty { Entry::Dirty } else { Entry::Clean };
        self.entries.insert(block.0, entry);
        super::VictimOutcome {
            accepted: true,
            eviction: None,
            set: None,
        }
    }

    /// A local processor took `M`: shadow the entry.
    pub fn on_local_write(&mut self, block: BlockAddr) {
        self.entries.insert(block.0, Entry::Shadow);
    }

    /// Absorbs a dirty downgrade write-back.
    pub fn absorb_downgrade(&mut self, block: BlockAddr) {
        self.entries.insert(block.0, Entry::Dirty);
    }

    /// Removes the entry for a page re-mapping, reporting whether it held
    /// dirty data.
    pub fn purge(&mut self, block: BlockAddr) -> Option<NcHit> {
        self.entries.remove(block.0).map(|e| NcHit {
            dirty: e == Entry::Dirty,
        })
    }

    /// An external downgrade: dirty/shadow entries become clean.
    pub fn on_external_downgrade(&mut self, block: BlockAddr) {
        if let Some(e) = self.entries.get_mut(block.0) {
            *e = Entry::Clean;
        }
    }

    /// External invalidation.
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        self.entries.remove(block.0).is_some()
    }

    /// Whether `block` has an entry.
    #[must_use]
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.entries.contains_key(block.0)
    }

    /// Read-only probe of whether `block`'s entry holds dirty data
    /// (shadow entries report `false`); `None` when not resident.
    #[must_use]
    pub fn peek_dirty(&self, block: BlockAddr) -> Option<bool> {
        self.entries.get(block.0).map(|e| *e == Entry::Dirty)
    }

    /// Number of blocks held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_evicts() {
        let mut nc = InfiniteNc::new(NcTechnology::Sram);
        for i in 0..10_000 {
            nc.on_remote_fill(BlockAddr(i), false);
        }
        assert_eq!(nc.len(), 10_000);
        assert!(nc.read_lookup(BlockAddr(0)).is_some());
    }

    #[test]
    fn victims_and_fills_coexist() {
        let mut nc = InfiniteNc::new(NcTechnology::Dram);
        nc.on_victim(BlockAddr(1), true);
        assert_eq!(nc.read_lookup(BlockAddr(1)), Some(NcHit { dirty: true }));
        nc.on_victim(BlockAddr(2), false);
        assert_eq!(nc.read_lookup(BlockAddr(2)), Some(NcHit { dirty: false }));
    }

    #[test]
    fn shadow_cycle() {
        let mut nc = InfiniteNc::new(NcTechnology::Sram);
        nc.on_remote_fill(BlockAddr(1), false);
        assert!(nc.write_lookup(BlockAddr(1)).is_some());
        assert!(nc.read_lookup(BlockAddr(1)).is_none()); // shadowed
        nc.on_victim(BlockAddr(1), true); // write-back returns
        assert_eq!(nc.read_lookup(BlockAddr(1)), Some(NcHit { dirty: true }));
    }

    #[test]
    fn invalidation_is_the_only_removal() {
        let mut nc = InfiniteNc::new(NcTechnology::Sram);
        nc.on_remote_fill(BlockAddr(1), false);
        assert!(nc.invalidate(BlockAddr(1)));
        assert!(nc.is_empty());
        assert!(nc.read_lookup(BlockAddr(1)).is_none());
    }

    #[test]
    #[should_panic(expected = "memory technology")]
    fn rejects_none_technology() {
        let _ = InfiniteNc::new(NcTechnology::None);
    }
}
