//! Network caches: the paper's design space.
//!
//! Four organizations, one enum ([`NcUnit`]) so the cluster model can hold
//! any of them without dynamic dispatch and the `vxp` relocation counters
//! can reach into the victim variant:
//!
//! * [`VictimNc`] — the paper's contribution: a small SRAM cache holding
//!   *only* blocks victimized from the processor caches (no inclusion,
//!   no allocation on fills). Indexed by block-address bits (`vb`) or
//!   page-address bits (`vp`).
//! * [`InclusionNc`] — allocates on every remote fill. With
//!   `full_inclusion = false` it relaxes inclusion for clean blocks (the
//!   paper's `nc`, after Fletcher et al. / R-NUMA): evicting a clean NC
//!   entry leaves processor-cache copies alone; evicting a dirty one
//!   forces them out. With `full_inclusion = true` it models the 512-KB
//!   DRAM `NCD` (NUMA-Q style).
//! * [`InfiniteNc`] — an unbounded NC (the `NCS` ideal and the
//!   infinite-DRAM normalization baseline of Figures 9-11).
//! * [`NcUnit::None`] — no NC (`base`).

mod inclusion;
mod infinite;
mod victim;

use dsm_types::{BlockAddr, PageAddr};

pub use inclusion::InclusionNc;
pub use infinite::InfiniteNc;
pub use victim::{NcIndexing, VictimNc};

use crate::model::NcTechnology;

/// A hit in a network cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NcHit {
    /// The cached copy is dirty (the cluster holds ownership; a fill from
    /// it installs `M` without a directory transaction).
    pub dirty: bool,
}

/// A block leaving a network cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NcEviction {
    /// The evicted block.
    pub block: BlockAddr,
    /// It carries dirty data that must be written back (to the page cache
    /// if the page is resident, else to the remote home).
    pub dirty: bool,
    /// Inclusion requires the processor caches' copies of this block to be
    /// evicted too (dirty entries under relaxed inclusion; all entries
    /// under full inclusion).
    pub force_cache_eviction: bool,
}

/// Outcome of offering a victimized block to the NC.
#[derive(Debug, Clone, Copy, Default)]
pub struct VictimOutcome {
    /// The NC took the block (victim organizations always accept remote
    /// victims; inclusion NCs fold write-backs into their existing entry).
    pub accepted: bool,
    /// The entry displaced to make room, if any. Set-associative
    /// replacement displaces at most one block per insertion, so this is
    /// an `Option`, not a list — the coherence path stays allocation-free.
    pub eviction: Option<NcEviction>,
    /// The NC set the block landed in (victim organizations only) — the
    /// hook for `vxp`'s per-set victimization counters.
    pub set: Option<usize>,
}

/// Any of the paper's network-cache organizations (or none).
#[derive(Debug, Clone)]
pub enum NcUnit {
    /// No network cache.
    None,
    /// The victim-cache organization (`vb` / `vp`).
    Victim(VictimNc),
    /// Allocate-on-fill with (relaxed or full) inclusion (`nc` / `NCD`).
    Inclusion(InclusionNc),
    /// Unbounded (`NCS` and the infinite-DRAM baseline).
    Infinite(InfiniteNc),
}

impl NcUnit {
    /// The memory technology, for latency modelling.
    #[must_use]
    pub fn technology(&self) -> NcTechnology {
        match self {
            NcUnit::None => NcTechnology::None,
            NcUnit::Victim(_) => NcTechnology::Sram,
            NcUnit::Inclusion(nc) => nc.technology(),
            NcUnit::Infinite(nc) => nc.technology(),
        }
    }

    /// Hints `block`'s NC line into L1 ahead of the lookups replay will
    /// make for it — the batch-ahead prefetch hook.
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        match self {
            NcUnit::None => {}
            NcUnit::Victim(nc) => nc.prefetch(block),
            NcUnit::Inclusion(nc) => nc.prefetch(block),
            NcUnit::Infinite(nc) => nc.prefetch(block),
        }
    }

    /// Looks up `block` for a read miss. Victim organizations transfer the
    /// block to the requesting cache (the entry is removed); inclusion
    /// organizations keep their entry.
    pub fn read_lookup(&mut self, block: BlockAddr) -> Option<NcHit> {
        match self {
            NcUnit::None => None,
            NcUnit::Victim(nc) => nc.take(block),
            NcUnit::Inclusion(nc) => nc.read_lookup(block),
            NcUnit::Infinite(nc) => nc.read_lookup(block),
        }
    }

    /// Looks up `block` for a write miss; the block will be installed `M`
    /// in the requesting cache, so every organization relinquishes or
    /// shadows its entry.
    pub fn write_lookup(&mut self, block: BlockAddr) -> Option<NcHit> {
        match self {
            NcUnit::None => None,
            NcUnit::Victim(nc) => nc.take(block),
            NcUnit::Inclusion(nc) => nc.write_lookup(block),
            NcUnit::Infinite(nc) => nc.write_lookup(block),
        }
    }

    /// A remote fill (from the home node) completed; inclusion
    /// organizations allocate, displacing at most one block. `write`
    /// marks a write fill (the cache installs `M`).
    pub fn on_remote_fill(&mut self, block: BlockAddr, write: bool) -> Option<NcEviction> {
        match self {
            NcUnit::None | NcUnit::Victim(_) => None,
            NcUnit::Inclusion(nc) => nc.on_remote_fill(block, write),
            NcUnit::Infinite(nc) => {
                nc.on_remote_fill(block, write);
                None
            }
        }
    }

    /// A victimized remote block (dirty write-back, or a clean `R`
    /// replacement under MESIR) is on the bus.
    pub fn on_victim(&mut self, block: BlockAddr, dirty: bool) -> VictimOutcome {
        match self {
            NcUnit::None => VictimOutcome::default(),
            NcUnit::Victim(nc) => nc.on_victim(block, dirty),
            NcUnit::Inclusion(nc) => nc.on_victim(block, dirty),
            NcUnit::Infinite(nc) => nc.on_victim(block, dirty),
        }
    }

    /// A local processor took `M` ownership of `block` (upgrade or
    /// peer-supplied write): NC copies are stale.
    pub fn on_local_write(&mut self, block: BlockAddr) -> Option<NcEviction> {
        match self {
            NcUnit::None => None,
            NcUnit::Victim(nc) => {
                nc.remove(block);
                None
            }
            NcUnit::Inclusion(nc) => nc.on_local_write(block),
            NcUnit::Infinite(nc) => {
                nc.on_local_write(block);
                None
            }
        }
    }

    /// A dirty downgrade (peer read of an `M` block) put a remote
    /// write-back on the bus; returns `true` if the NC absorbed it
    /// (otherwise it must update the remote home — the DASH RAC problem).
    pub fn on_downgrade_writeback(&mut self, block: BlockAddr) -> bool {
        match self {
            NcUnit::None => false,
            // Pollution: the victim cache allocates a frame although the
            // caches still hold (clean) copies.
            NcUnit::Victim(nc) => {
                let _ = nc.on_victim(block, true);
                true
            }
            NcUnit::Inclusion(nc) => nc.absorb_downgrade(block),
            NcUnit::Infinite(nc) => {
                nc.absorb_downgrade(block);
                true
            }
        }
    }

    /// Removes any entry for `block` during a page re-mapping (page-cache
    /// eviction), returning whether a copy existed and whether it carried
    /// dirty data needing a write-back.
    pub fn purge(&mut self, block: BlockAddr) -> Option<NcHit> {
        match self {
            NcUnit::None => None,
            NcUnit::Victim(nc) => nc.take(block),
            NcUnit::Inclusion(nc) => nc.purge(block),
            NcUnit::Infinite(nc) => nc.purge(block),
        }
    }

    /// An external downgrade (a remote read of a block this cluster owns):
    /// dirty NC copies become clean, the home having been updated.
    pub fn on_external_downgrade(&mut self, block: BlockAddr) {
        match self {
            NcUnit::None => {}
            NcUnit::Victim(nc) => nc.clean(block),
            NcUnit::Inclusion(nc) => nc.on_external_downgrade(block),
            NcUnit::Infinite(nc) => nc.on_external_downgrade(block),
        }
    }

    /// An external (directory) invalidation; returns `true` if a copy was
    /// dropped.
    pub fn invalidate(&mut self, block: BlockAddr) -> bool {
        match self {
            NcUnit::None => false,
            NcUnit::Victim(nc) => nc.remove(block),
            NcUnit::Inclusion(nc) => nc.invalidate(block),
            NcUnit::Infinite(nc) => nc.invalidate(block),
        }
    }

    /// Whether the NC holds `block` in any state.
    #[must_use]
    pub fn contains(&self, block: BlockAddr) -> bool {
        match self {
            NcUnit::None => false,
            NcUnit::Victim(nc) => nc.contains(block),
            NcUnit::Inclusion(nc) => nc.contains(block),
            NcUnit::Infinite(nc) => nc.contains(block),
        }
    }

    /// Read-only probe of whether `block`'s entry holds dirty data (no
    /// LRU or state effect — safe for the invariant checker). `None` when
    /// not resident; shadow entries report `Some(false)`.
    #[must_use]
    pub fn peek_dirty(&self, block: BlockAddr) -> Option<bool> {
        match self {
            NcUnit::None => None,
            NcUnit::Victim(nc) => nc.peek_dirty(block),
            NcUnit::Inclusion(nc) => nc.peek_dirty(block),
            NcUnit::Infinite(nc) => nc.peek_dirty(block),
        }
    }

    /// The predominant page among the tags of victim-NC set `set` — the
    /// relocation candidate `vxp` derives from the set contents. `None`
    /// for non-victim organizations or empty sets.
    #[must_use]
    pub fn predominant_page(&self, set: usize) -> Option<PageAddr> {
        match self {
            NcUnit::Victim(nc) => nc.predominant_page(set),
            _ => None,
        }
    }

    /// Number of sets (victim organizations), for sizing `vxp` counters.
    #[must_use]
    pub fn sets(&self) -> Option<usize> {
        match self {
            NcUnit::Victim(nc) => Some(nc.sets()),
            _ => None,
        }
    }

    /// The victim-NC set `block` maps to (for `vxp` counter addressing).
    #[must_use]
    pub fn set_of(&self, block: BlockAddr) -> Option<usize> {
        match self {
            NcUnit::Victim(nc) => Some(nc.set_of(block)),
            _ => None,
        }
    }

    /// Blocks currently resident in the network cache — the occupancy
    /// hook the profiling layer snapshots (0 for [`NcUnit::None`];
    /// unbounded organizations report their live entry count).
    #[must_use]
    pub fn occupied_blocks(&self) -> usize {
        match self {
            NcUnit::None => 0,
            NcUnit::Victim(nc) => nc.len(),
            NcUnit::Inclusion(nc) => nc.len(),
            NcUnit::Infinite(nc) => nc.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_cache::CacheShape;
    use dsm_types::Geometry;

    fn victim_unit() -> NcUnit {
        NcUnit::Victim(VictimNc::new(
            CacheShape::new(1024, 64, 4).unwrap(),
            NcIndexing::Page,
            Geometry::paper_default(),
        ))
    }

    fn inclusion_unit() -> NcUnit {
        NcUnit::Inclusion(InclusionNc::sram_relaxed(
            CacheShape::new(1024, 64, 4).unwrap(),
        ))
    }

    fn infinite_unit() -> NcUnit {
        NcUnit::Infinite(InfiniteNc::new(crate::model::NcTechnology::Sram))
    }

    #[test]
    fn victim_dispatch_transfers_on_hit() {
        let mut nc = victim_unit();
        assert_eq!(nc.technology(), NcTechnology::Sram);
        let b = BlockAddr(5);
        assert!(nc.on_victim(b, true).accepted);
        assert!(nc.contains(b));
        assert_eq!(nc.read_lookup(b), Some(NcHit { dirty: true }));
        assert!(!nc.contains(b), "victim hits transfer the block out");
        assert_eq!(nc.sets(), Some(4));
        assert_eq!(nc.set_of(b), Some(0));
    }

    #[test]
    fn inclusion_dispatch_keeps_entries_on_read_hits() {
        let mut nc = inclusion_unit();
        let b = BlockAddr(5);
        assert!(nc.on_remote_fill(b, false).is_none());
        assert_eq!(nc.read_lookup(b), Some(NcHit { dirty: false }));
        assert!(nc.contains(b));
        assert!(nc.sets().is_none());
        assert!(nc.set_of(b).is_none());
        assert!(nc.predominant_page(0).is_none());
    }

    #[test]
    fn infinite_dispatch_accumulates() {
        let mut nc = infinite_unit();
        for i in 0..100 {
            nc.on_remote_fill(BlockAddr(i), false);
        }
        assert!(nc.contains(BlockAddr(0)));
        assert!(nc.on_victim(BlockAddr(200), true).accepted);
        assert!(nc.on_downgrade_writeback(BlockAddr(300)));
        assert!(nc.invalidate(BlockAddr(0)));
    }

    #[test]
    fn purge_reports_dirty_data_per_variant() {
        let b = BlockAddr(5);
        let mut v = victim_unit();
        v.on_victim(b, true);
        assert_eq!(v.purge(b), Some(NcHit { dirty: true }));

        let mut i = inclusion_unit();
        i.on_remote_fill(b, true); // shadow: dirty data is in a cache
        assert_eq!(i.purge(b), Some(NcHit { dirty: false }));
        i.on_remote_fill(b, false);
        i.on_victim(b, true); // now genuinely dirty
        assert_eq!(i.purge(b), Some(NcHit { dirty: true }));

        let mut inf = infinite_unit();
        assert_eq!(inf.purge(b), None);
    }

    #[test]
    fn external_downgrade_cleans_each_variant() {
        let b = BlockAddr(5);
        let mut v = victim_unit();
        v.on_victim(b, true);
        v.on_external_downgrade(b);
        assert_eq!(v.read_lookup(b), Some(NcHit { dirty: false }));

        let mut i = inclusion_unit();
        i.on_remote_fill(b, false);
        i.on_victim(b, true);
        i.on_external_downgrade(b);
        assert_eq!(i.read_lookup(b), Some(NcHit { dirty: false }));

        let mut inf = infinite_unit();
        inf.on_victim(b, true);
        inf.on_external_downgrade(b);
        assert_eq!(inf.read_lookup(b), Some(NcHit { dirty: false }));
    }

    #[test]
    fn downgrade_writeback_absorption_per_variant() {
        let b = BlockAddr(9);
        let mut none = NcUnit::None;
        assert!(!none.on_downgrade_writeback(b));

        let mut v = victim_unit();
        assert!(v.on_downgrade_writeback(b)); // pollution copy allocated
        assert!(v.contains(b));

        let mut i = inclusion_unit();
        assert!(i.on_downgrade_writeback(b));
        assert_eq!(i.read_lookup(b), Some(NcHit { dirty: true }));
    }

    #[test]
    fn predominant_page_through_enum() {
        let mut nc = victim_unit();
        // Two blocks of page 0 (blocks 0..64 map to set 0 of 4).
        nc.on_victim(BlockAddr(0), false);
        nc.on_victim(BlockAddr(1), false);
        let set = nc.set_of(BlockAddr(0)).unwrap();
        assert_eq!(nc.predominant_page(set), Some(dsm_types::PageAddr(0)));
    }

    #[test]
    fn none_is_inert() {
        let mut nc = NcUnit::None;
        let b = BlockAddr(1);
        assert_eq!(nc.technology(), NcTechnology::None);
        assert!(nc.read_lookup(b).is_none());
        assert!(nc.write_lookup(b).is_none());
        assert!(nc.on_remote_fill(b, false).is_none());
        let out = nc.on_victim(b, true);
        assert!(!out.accepted);
        assert!(!nc.on_downgrade_writeback(b));
        assert!(!nc.invalidate(b));
        assert!(!nc.contains(b));
        assert!(nc.predominant_page(0).is_none());
        assert!(nc.sets().is_none());
    }
}
