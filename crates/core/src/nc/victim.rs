//! The network victim cache (`vb` / `vp`), the paper's proposal.

use dsm_cache::{CacheShape, SetAssoc};
use dsm_types::{BlockAddr, Geometry, PageAddr};

use super::{NcEviction, NcHit, VictimOutcome};

/// How the victim cache computes a block's set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NcIndexing {
    /// Least significant bits of the block address (`vb`).
    Block,
    /// Least significant bits of the page address (`vp`): all blocks of a
    /// page share a set, making each set an intermediate store for one
    /// remote page — the organization that lets relocation counters attach
    /// to sets (`vxp`).
    Page,
}

/// A small SRAM network cache organized as a **victim cache** for remote
/// data: it holds only blocks victimized by the processor caches (the last
/// copy in the node, delivered by MESIR write-back/replacement
/// transactions), never replicating what the caches already hold.
///
/// Lookups are *transfers*: a hit removes the entry and moves the block
/// back into the requesting processor's cache (two-level exclusive
/// caching), so the NC's capacity is pure surplus for the cluster.
#[derive(Debug, Clone)]
pub struct VictimNc {
    frames: SetAssoc<bool>, // payload: dirty flag
    indexing: NcIndexing,
    geo: Geometry,
    capture_clean: bool,
}

impl VictimNc {
    /// Creates a victim NC of the given shape and indexing.
    #[must_use]
    pub fn new(shape: CacheShape, indexing: NcIndexing, geo: Geometry) -> Self {
        VictimNc {
            frames: SetAssoc::new(shape),
            indexing,
            geo,
            capture_clean: true,
        }
    }

    /// Disables capture of *clean* victims — an ablation of the MESIR `R`
    /// state: under plain MESI a clean remote block never reaches the bus
    /// on replacement, so only dirty write-backs can be captured.
    #[must_use]
    pub fn without_clean_capture(mut self) -> Self {
        self.capture_clean = false;
        self
    }

    /// Whether clean (MESIR replacement-transaction) victims are captured.
    #[must_use]
    pub fn captures_clean(&self) -> bool {
        self.capture_clean
    }

    /// The indexing mode.
    #[must_use]
    pub fn indexing(&self) -> NcIndexing {
        self.indexing
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.frames.shape().sets()
    }

    /// The set `block` maps to under this indexing.
    #[must_use]
    pub fn set_of(&self, block: BlockAddr) -> usize {
        match self.indexing {
            NcIndexing::Block => self.frames.shape().set_of_block(block),
            NcIndexing::Page => self.frames.shape().set_of_page(&self.geo, block),
        }
    }

    /// Hints `block`'s tag row into L1 ahead of the lookup replay will
    /// make for it.
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        self.frames.prefetch_set(self.set_of(block));
    }

    /// Transfers `block` out of the NC (read or write miss service):
    /// removes the entry and reports its dirtiness.
    pub fn take(&mut self, block: BlockAddr) -> Option<NcHit> {
        let set = self.set_of(block);
        self.frames
            .remove(set, block.0)
            .map(|dirty| NcHit { dirty })
    }

    /// Drops `block` without a hit (stale copy after a local write, or an
    /// external invalidation). Returns whether an entry existed.
    pub fn remove(&mut self, block: BlockAddr) -> bool {
        let set = self.set_of(block);
        self.frames.remove(set, block.0).is_some()
    }

    /// Marks a resident dirty entry clean (an external downgrade: another
    /// cluster's read forced this cluster, the owner, to supply the block
    /// and update the home). No-op if absent.
    pub fn clean(&mut self, block: BlockAddr) {
        let set = self.set_of(block);
        if let Some(dirty) = self.frames.peek_mut(set, block.0) {
            *dirty = false;
        }
    }

    /// Accepts a victimized block, possibly displacing the set's LRU
    /// entry. Victim-cache evictions never force processor-cache evictions
    /// (there is no inclusion to maintain). Clean victims are rejected
    /// when MESIR capture is disabled ([`VictimNc::without_clean_capture`]).
    pub fn on_victim(&mut self, block: BlockAddr, dirty: bool) -> VictimOutcome {
        if !dirty && !self.capture_clean {
            return VictimOutcome::default();
        }
        let set = self.set_of(block);
        let eviction = self
            .frames
            .insert(set, block.0, dirty)
            .map(|(tag, was_dirty)| NcEviction {
                block: BlockAddr(tag),
                dirty: was_dirty,
                force_cache_eviction: false,
            });
        VictimOutcome {
            accepted: true,
            eviction,
            set: Some(set),
        }
    }

    /// Whether `block` is resident.
    #[must_use]
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.frames.peek(self.set_of(block), block.0).is_some()
    }

    /// Read-only probe of `block`'s dirty flag (no LRU effect) — the
    /// invariant checker's view; `None` when not resident.
    #[must_use]
    pub fn peek_dirty(&self, block: BlockAddr) -> Option<bool> {
        self.frames.peek(self.set_of(block), block.0).copied()
    }

    /// Number of resident blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the NC is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Occupied frames in `set` (victim-set pressure, for diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn set_len(&self, set: usize) -> usize {
        self.frames.set_len(set)
    }

    /// The page holding the most tags in `set` — the page a software
    /// relocation handler would pick when the set's victimization counter
    /// trips (`vxp`). Ties break toward the lower page number.
    ///
    /// Runs a single pass over the set's tags (at most the associativity,
    /// typically 4-16) keeping a running argmax, with no per-call map
    /// allocation. The running comparison `count > best || (count == best
    /// && page < best_page)` picks the same winner as sorting by
    /// `(count desc, page asc)`: counts only ever grow, so the first page
    /// to reach the winning count with the lowest number wins the tie.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn predominant_page(&self, set: usize) -> Option<PageAddr> {
        let mut counts: [(u64, usize); 2] = [(0, 0); 2];
        let mut used = 0usize;
        let mut overflow = dsm_types::DenseMap::new();
        let mut best: Option<(u64, usize)> = None;
        for (tag, _) in self.frames.iter_set(set) {
            let page = self.geo.page_of_block(BlockAddr(tag)).0;
            // Count in a tiny inline array first (sets rarely straddle
            // more than two pages under page indexing); spill to a map
            // only when a set genuinely mixes many pages.
            let count = if let Some(slot) = counts[..used].iter_mut().find(|(p, _)| *p == page) {
                slot.1 += 1;
                slot.1
            } else if used < counts.len() {
                counts[used] = (page, 1);
                used += 1;
                1
            } else {
                let c = overflow.entry_or_default(page);
                *c += 1usize;
                *c
            };
            let better = match best {
                None => true,
                Some((bp, bc)) => count > bc || (count == bc && page < bp),
            };
            if better {
                best = Some((page, count));
            }
        }
        best.map(|(page, _)| PageAddr(page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nc(indexing: NcIndexing) -> VictimNc {
        // 1 KB, 4-way, 64-B blocks -> 4 sets.
        VictimNc::new(
            CacheShape::new(1024, 64, 4).unwrap(),
            indexing,
            Geometry::paper_default(),
        )
    }

    #[test]
    fn take_transfers_and_removes() {
        let mut v = nc(NcIndexing::Block);
        let b = BlockAddr(5);
        assert!(v.take(b).is_none());
        v.on_victim(b, true);
        assert!(v.contains(b));
        assert_eq!(v.take(b), Some(NcHit { dirty: true }));
        assert!(!v.contains(b));
        assert!(v.is_empty());
    }

    #[test]
    fn victims_never_force_cache_evictions() {
        let mut v = nc(NcIndexing::Block);
        // Fill set 0 (blocks 0,4,8,12 with 4 sets) then overflow it.
        for i in 0..5 {
            let out = v.on_victim(BlockAddr(i * 4), false);
            assert!(out.accepted);
            if let Some(e) = out.eviction {
                assert!(!e.force_cache_eviction);
            }
        }
        assert_eq!(v.len(), 4);
    }

    #[test]
    fn eviction_carries_dirtiness() {
        let mut v = VictimNc::new(
            CacheShape::from_sets_ways(1, 1, 64).unwrap(),
            NcIndexing::Block,
            Geometry::paper_default(),
        );
        v.on_victim(BlockAddr(1), true);
        let out = v.on_victim(BlockAddr(2), false);
        let e = out.eviction.expect("full set must displace");
        assert_eq!(e.block, BlockAddr(1));
        assert!(e.dirty);
    }

    #[test]
    fn block_indexing_spreads_a_page() {
        let v = nc(NcIndexing::Block);
        // Consecutive blocks of one page land in different sets.
        assert_ne!(v.set_of(BlockAddr(0)), v.set_of(BlockAddr(1)));
    }

    #[test]
    fn page_indexing_collapses_a_page() {
        let v = nc(NcIndexing::Page);
        // All 64 blocks of page 0 share a set; page 1 gets the next set.
        let s0 = v.set_of(BlockAddr(0));
        for i in 1..64 {
            assert_eq!(v.set_of(BlockAddr(i)), s0);
        }
        assert_eq!(v.set_of(BlockAddr(64)), (s0 + 1) % 4);
    }

    #[test]
    fn predominant_page_majority() {
        let mut v = nc(NcIndexing::Page);
        // Page 0 and page 4 both map to set 0 (4 sets). Two blocks of page
        // 4, one of page 0.
        v.on_victim(BlockAddr(64 * 4), false);
        v.on_victim(BlockAddr(64 * 4 + 1), false);
        v.on_victim(BlockAddr(0), false);
        assert_eq!(
            v.predominant_page(v.set_of(BlockAddr(0))),
            Some(PageAddr(4))
        );
    }

    #[test]
    fn predominant_page_empty_set() {
        let v = nc(NcIndexing::Page);
        assert_eq!(v.predominant_page(0), None);
    }

    #[test]
    fn predominant_page_many_distinct_pages() {
        // Pages 0, 4, 8, 12 all map to set 0 (4 sets, page indexing), so
        // the count spills past the inline pair into the overflow map.
        let mut v = nc(NcIndexing::Page);
        for p in [0u64, 4, 8, 12] {
            v.on_victim(BlockAddr(p * 64), false);
        }
        // All counts are 1: the tie breaks toward the lowest page.
        assert_eq!(v.predominant_page(0), Some(PageAddr(0)));
        // A second block of page 12 makes it the clear winner.
        v.on_victim(BlockAddr(12 * 64 + 1), false);
        assert_eq!(v.predominant_page(0), Some(PageAddr(12)));
    }

    #[test]
    fn remove_reports_presence() {
        let mut v = nc(NcIndexing::Block);
        assert!(!v.remove(BlockAddr(3)));
        v.on_victim(BlockAddr(3), false);
        assert!(v.remove(BlockAddr(3)));
    }
}
