//! A minimal JSON value and serializer.
//!
//! The workspace builds with no external dependencies, so run reports and
//! event logs serialize through this ~100-line writer instead of serde.
//! It covers exactly what the observability layer needs: objects with
//! ordered keys, arrays, strings with escaping, integers, and finite
//! floats (non-finite floats render as `null`).

use std::fmt::Write as _;

/// A JSON value, built imperatively and rendered with [`Json::render`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for counters).
    U64(u64),
    /// A float; NaN/infinity render as `null`.
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be extended with [`Json::set`].
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) `key` in an object; builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(entries) = &mut self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = value;
        } else {
            entries.push((key.to_owned(), value));
        }
        self
    }

    /// Renders compact (single-line) JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj()
            .set("name", "vb16")
            .set("count", 42u64)
            .set("ratio", 0.25)
            .set("ok", true)
            .set("tags", Json::Arr(vec![Json::U64(1), Json::Null]));
        assert_eq!(
            j.render(),
            r#"{"name":"vb16","count":42,"ratio":0.25,"ok":true,"tags":[1,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn set_replaces_existing_key() {
        let j = Json::obj().set("k", 1u64).set("k", 2u64);
        assert_eq!(j.render(), r#"{"k":2}"#);
    }
}
