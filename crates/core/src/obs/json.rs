//! A minimal JSON value, serializer, and parser.
//!
//! The workspace builds with no external dependencies, so run reports and
//! event logs serialize through this small writer instead of serde. It
//! covers exactly what the observability layer needs: objects with
//! ordered keys, arrays, strings with escaping, integers, and finite
//! floats (non-finite floats render as `null`). [`Json::parse`] is the
//! matching reader, used by the sweep journal to resume interrupted runs;
//! for any value produced by [`Json::render`], parsing and re-rendering
//! is byte-identical (floats round-trip because Rust's `{}` formatting is
//! shortest-roundtrip).

use std::fmt::Write as _;

/// A JSON value, built imperatively and rendered with [`Json::render`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (the common case for counters).
    U64(u64),
    /// A float; NaN/infinity render as `null`.
    F64(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be extended with [`Json::set`].
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds (or replaces) `key` in an object; builder-style.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    #[must_use]
    pub fn set(mut self, key: &str, value: impl Into<Json>) -> Json {
        let Json::Obj(entries) = &mut self else {
            panic!("Json::set on a non-object");
        };
        let value = value.into();
        if let Some(e) = entries.iter_mut().find(|(k, _)| k == key) {
            e.1 = value;
        } else {
            entries.push((key.to_owned(), value));
        }
        self
    }

    /// Renders compact (single-line) JSON.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing non-whitespace is an error).
    ///
    /// Numbers without sign, fraction or exponent parse as [`Json::U64`];
    /// everything else numeric parses as [`Json::F64`]. This matches the
    /// writer, so `parse(render(v))` re-renders byte-identically.
    ///
    /// # Errors
    ///
    /// Returns a message naming the byte offset of the first syntax
    /// error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object; `None` for missing keys or
    /// non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a float; integers widen (a whole-number float renders
    /// as an integer, so readers of float fields must accept both).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::F64(v) => Some(*v),
            Json::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object entries, if it is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(entries) => {
                out.push('{');
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(b: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at offset {pos}", want as char))
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at offset {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => parse_literal(b, pos, "null", Json::Null),
        Some(b't') => parse_literal(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(entries));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect_byte(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                entries.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(entries));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(c) if *c == b'-' || c.is_ascii_digit() => parse_number(b, pos),
        Some(c) => Err(format!("unexpected byte '{}' at offset {pos}", *c as char)),
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    // &b[start..*pos] stays on char boundaries: every byte consumed is
    // ASCII.
    let token = core::str::from_utf8(&b[start..*pos]).map_err(|_| "non-utf8 number".to_owned())?;
    if !fractional && b[start] != b'-' {
        if let Ok(v) = token.parse::<u64>() {
            return Ok(Json::U64(v));
        }
    }
    match token.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(Json::F64(v)),
        _ => Err(format!("bad number '{token}' at offset {start}")),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        let start = *pos;
        while let Some(&c) = b.get(*pos) {
            if c == b'"' || c == b'\\' {
                break;
            }
            *pos += 1;
        }
        out.push_str(
            core::str::from_utf8(&b[start..*pos]).map_err(|_| "non-utf8 string".to_owned())?,
        );
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = *b.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let code = parse_hex4(b, pos)?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xd800..0xdc00).contains(&code) {
                            if b.get(*pos) == Some(&b'\\') && b.get(*pos + 1) == Some(&b'u') {
                                *pos += 2;
                                let low = parse_hex4(b, pos)?;
                                let combined =
                                    0x10000 + ((code - 0xd800) << 10) + (low.wrapping_sub(0xdc00));
                                char::from_u32(combined)
                            } else {
                                None
                            }
                        } else {
                            char::from_u32(code)
                        };
                        out.push(c.ok_or_else(|| format!("bad \\u escape at offset {pos}"))?);
                    }
                    other => {
                        return Err(format!("bad escape '\\{}' at offset {pos}", other as char))
                    }
                }
            }
            Some(_) => unreachable!("scan stops only at quote or backslash"),
        }
    }
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, String> {
    let hex = b
        .get(*pos..*pos + 4)
        .and_then(|s| core::str::from_utf8(s).ok())
        .ok_or_else(|| format!("short \\u escape at offset {pos}"))?;
    let code = u32::from_str_radix(hex, 16).map_err(|_| format!("bad \\u escape '{hex}'"))?;
    *pos += 4;
    Ok(code)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(u64::from(v))
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_owned())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Arr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let j = Json::obj()
            .set("name", "vb16")
            .set("count", 42u64)
            .set("ratio", 0.25)
            .set("ok", true)
            .set("tags", Json::Arr(vec![Json::U64(1), Json::Null]));
        assert_eq!(
            j.render(),
            r#"{"name":"vb16","count":42,"ratio":0.25,"ok":true,"tags":[1,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.render(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::F64(f64::INFINITY).render(), "null");
    }

    #[test]
    fn set_replaces_existing_key() {
        let j = Json::obj().set("k", 1u64).set("k", 2u64);
        assert_eq!(j.render(), r#"{"k":2}"#);
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let j = Json::obj()
            .set("name", "vb16")
            .set("count", 42u64)
            .set("ratio", 0.25)
            .set("big", 1.0e300)
            .set("neg", -0.125)
            .set("whole", 3.0)
            .set("ok", true)
            .set("none", Json::Null)
            .set("text", "a\"b\\c\nd\u{1}é")
            .set("tags", Json::Arr(vec![Json::U64(1), Json::Null]));
        let rendered = j.render();
        let back = Json::parse(&rendered).unwrap();
        assert_eq!(back.render(), rendered);
        assert_eq!(back.get("count").and_then(Json::as_u64), Some(42));
        assert_eq!(back.get("ratio").and_then(Json::as_f64), Some(0.25));
        // Whole floats render as integers and must read back via as_f64.
        assert_eq!(back.get("whole").and_then(Json::as_f64), Some(3.0));
        assert_eq!(
            back.get("text").and_then(Json::as_str),
            Some("a\"b\\c\nd\u{1}é")
        );
        assert_eq!(
            back.get("tags").and_then(Json::as_array).map(<[Json]>::len),
            Some(2)
        );
    }

    #[test]
    fn parse_handles_whitespace_and_nesting() {
        let j = Json::parse(" { \"a\" : [ 1 , { \"b\" : false } ] } ").unwrap();
        let arr = j.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "01x",
            "{\"a\" 1}",
            "[1] trailing",
            "\"bad \\q escape\"",
            "nan",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parse_unicode_escapes() {
        // \u escapes: plain BMP chars and a surrogate pair.
        assert_eq!(
            Json::parse("\"\\u0041\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("Aé\u{1f600}".into())
        );
        // Raw (unescaped) multi-byte UTF-8 passes through too.
        assert_eq!(Json::parse("\"é😀\"").unwrap(), Json::Str("é😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }
}
