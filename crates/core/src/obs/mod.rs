//! Observation sinks and structured export: where [`Probe`] data goes.
//!
//! * [`StatsSink`] — in-memory aggregation: per-kind event counts,
//!   per-cluster activity, per-page heat, relocation/threshold timelines,
//!   and the collected [`EpochSample`] series. This is the sink behind
//!   `simulate --stats` and the `reproduce` run reports.
//! * [`JsonlSink`] — streams every event (and epoch) as one JSON object
//!   per line to any `io::Write`, for offline analysis of full traces.
//! * [`json::Json`] — the dependency-free JSON writer both use; also the
//!   serialization target for [`Metrics`], [`ClusterCounts`],
//!   [`EpochSample`] and the bench `Report`.
//!
//! Combine sinks with [`Tee`](crate::probe::Tee) to, say, stream a JSONL
//! log while also aggregating statistics.
//!
//! [`span`] is the wall-clock side of observability: hierarchical timed
//! spans (trace load → sweep point → replay batch) recorded by a
//! thread-safe [`span::SpanTracer`] and exported as chrome://tracing
//! JSON, so a whole `reproduce` run opens in a trace viewer.

pub mod json;
pub mod span;

use std::io::{self, Write};
use std::path::Path;

use dsm_types::{DenseMap, DsmError, FxHashMap, PageAddr};

use crate::metrics::{ClusterCounts, Metrics};
use crate::probe::{EpochSample, Event, Probe};

pub use json::Json;

/// Writes `json` to `path` atomically: the document is rendered into a
/// sibling `<name>.tmp` file, flushed and synced, then renamed over the
/// target. A crash mid-write leaves either the old file or the new one —
/// never a truncated half-document.
///
/// Transient failures (`EINTR`-class, injected or real) are retried a
/// bounded number of times with backoff ([`crate::fault::retry_transient`])
/// before surfacing.
///
/// # Errors
///
/// Returns a [`DsmError`] naming the path on any I/O failure; the
/// temporary file is removed on a failed write.
pub fn write_json_atomic(path: &Path, json: &Json) -> Result<(), DsmError> {
    let tmp = match path.file_name() {
        Some(name) => {
            let mut n = name.to_os_string();
            n.push(".tmp");
            path.with_file_name(n)
        }
        None => {
            return Err(DsmError::bad_input(format!(
                "not a file path: {}",
                path.display()
            )))
        }
    };
    let io_err = |stage: &str, e: io::Error| {
        DsmError::internal(format!("cannot {stage} {}: {e}", path.display()))
    };
    let write = || -> io::Result<()> {
        let mut f = io::BufWriter::new(std::fs::File::create(&tmp)?);
        writeln!(f, "{}", json.render())?;
        f.flush()?;
        f.into_inner()
            .map_err(io::IntoInnerError::into_error)?
            .sync_data()
    };
    if let Err(e) = crate::fault::retry_transient(crate::fault::FaultSite::AtomicWriteIo, write) {
        let _ = std::fs::remove_file(&tmp);
        return Err(io_err("write", e));
    }
    std::fs::rename(&tmp, path).map_err(|e| io_err("replace", e))
}

/// Serializes the full counter set as a JSON object.
#[must_use]
pub fn metrics_json(m: &Metrics) -> Json {
    Json::Obj(
        m.fields()
            .into_iter()
            .map(|(k, v)| (k.to_owned(), Json::U64(v)))
            .collect(),
    )
}

/// Serializes one cluster's counters as a JSON object (with the derived
/// remote intensity).
#[must_use]
pub fn cluster_counts_json(c: &ClusterCounts) -> Json {
    let mut j = Json::Obj(
        c.fields()
            .into_iter()
            .map(|(k, v)| (k.to_owned(), Json::U64(v)))
            .collect(),
    );
    j = j.set("remote_intensity", c.remote_intensity());
    j
}

/// Serializes an epoch sample: window bounds, the delta counters, and
/// per-cluster breakdowns.
#[must_use]
pub fn epoch_json(s: &EpochSample) -> Json {
    Json::obj()
        .set("epoch", s.index)
        .set("start_ref", s.start_ref)
        .set("end_ref", s.end_ref)
        .set("delta", metrics_json(&s.delta))
        .set(
            "per_cluster",
            Json::Arr(s.per_cluster.iter().map(cluster_counts_json).collect()),
        )
        .set(
            "thresholds",
            Json::Arr(
                s.thresholds
                    .iter()
                    .map(|&t| Json::U64(u64::from(t)))
                    .collect(),
            ),
        )
}

/// Serializes one event as a flat JSON object: `{"at":..,"ev":..,
/// "cluster":.., ...}` plus the variant's own fields.
#[must_use]
pub fn event_json(at: u64, e: &Event) -> Json {
    let mut j = Json::obj()
        .set("at", at)
        .set("ev", e.kind())
        .set("cluster", u64::from(e.cluster().0));
    match *e {
        Event::CacheHit { write, .. } => j = j.set("write", write),
        Event::LocalUpgrade { block, .. } => j = j.set("block", block.0),
        Event::PeerTransfer { block, write, .. } => {
            j = j.set("block", block.0).set("write", write);
        }
        Event::NcHit {
            block,
            write,
            dirty,
            ..
        } => {
            j = j
                .set("block", block.0)
                .set("write", write)
                .set("dirty", dirty);
        }
        Event::PcHit {
            page, block, write, ..
        } => {
            j = j
                .set("page", page.0)
                .set("block", block.0)
                .set("write", write);
        }
        Event::LocalMiss { block, .. } => j = j.set("block", block.0),
        Event::RemoteRead {
            block, capacity, ..
        }
        | Event::RemoteWrite {
            block, capacity, ..
        } => {
            j = j.set("block", block.0).set("capacity", capacity);
        }
        Event::OwnershipRequest { block, .. } => j = j.set("block", block.0),
        Event::Invalidation { block, copies, .. } => {
            j = j.set("block", block.0).set("copies", copies);
        }
        Event::RemoteWriteback { block, .. } => j = j.set("block", block.0),
        Event::AbsorbedDowngrade { block, .. } => j = j.set("block", block.0),
        Event::NcCapture {
            block, dirty, set, ..
        } => {
            j = j.set("block", block.0).set("dirty", dirty);
            if let Some(s) = set {
                j = j.set("set", s);
            }
        }
        Event::ForcedEviction { block, .. } => j = j.set("block", block.0),
        Event::Relocation { page, .. } => j = j.set("page", page.0),
        Event::PageEviction {
            page,
            dirty_blocks,
            hits,
            ..
        } => {
            j = j
                .set("page", page.0)
                .set("dirty_blocks", dirty_blocks)
                .set("hits", hits);
        }
        Event::ThresholdAdapted { threshold, .. } => j = j.set("threshold", threshold),
        Event::Migration { page, .. }
        | Event::Replication { page, .. }
        | Event::ReplicaCollapse { page, .. } => j = j.set("page", page.0),
    }
    j
}

/// An aggregating probe: histograms and timelines instead of a raw log.
///
/// Everything is keyed so the profiling views fall out directly:
/// `top_pages` for the hottest remote pages, `per_cluster_events` for
/// load imbalance, `relocations`/`threshold_changes` for Fig-6-style
/// dynamics, and the full epoch series for time-resolved figures-of-merit.
#[derive(Debug, Clone, Default)]
pub struct StatsSink {
    events_seen: u64,
    by_kind: FxHashMap<&'static str, u64>,
    per_cluster: Vec<u64>,
    /// Remote-service heat per page: PC hits + NC hits attributed to the
    /// page, plus relocations (each weighted once).
    page_heat: DenseMap<u64>,
    /// `(at, cluster, page)` for every relocation, in trace order.
    relocations: Vec<(u64, u16, u64)>,
    /// `(at, cluster, new_threshold)` for every adaptive adjustment.
    threshold_changes: Vec<(u64, u16, u32)>,
    epochs: Vec<EpochSample>,
}

impl StatsSink {
    /// An empty sink.
    #[must_use]
    pub fn new() -> Self {
        StatsSink::default()
    }

    /// Total events observed.
    #[must_use]
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Event count for one [`Event::kind`] tag.
    #[must_use]
    pub fn count(&self, kind: &str) -> u64 {
        self.by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Per-kind counts, descending.
    #[must_use]
    pub fn kind_counts(&self) -> Vec<(&'static str, u64)> {
        let mut v: Vec<_> = self.by_kind.iter().map(|(&k, &n)| (k, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
        v
    }

    /// Events observed per cluster (index = cluster id).
    #[must_use]
    pub fn per_cluster_events(&self) -> &[u64] {
        &self.per_cluster
    }

    /// The `k` hottest pages by remote service count, descending.
    #[must_use]
    pub fn top_pages(&self, k: usize) -> Vec<(PageAddr, u64)> {
        let mut v: Vec<_> = self
            .page_heat
            .iter()
            .map(|(p, &n)| (PageAddr(p), n))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0 .0.cmp(&b.0 .0)));
        v.truncate(k);
        v
    }

    /// Every relocation as `(at, cluster, page)`, in trace order.
    #[must_use]
    pub fn relocation_timeline(&self) -> &[(u64, u16, u64)] {
        &self.relocations
    }

    /// Every adaptive-threshold adjustment as `(at, cluster, threshold)`.
    #[must_use]
    pub fn threshold_timeline(&self) -> &[(u64, u16, u32)] {
        &self.threshold_changes
    }

    /// The collected epoch series.
    #[must_use]
    pub fn epochs(&self) -> &[EpochSample] {
        &self.epochs
    }

    /// Merges all epoch deltas back into one aggregate — equals the run's
    /// final [`Metrics`] when every epoch was flushed (the invariant the
    /// integration tests assert).
    #[must_use]
    pub fn epoch_total(&self) -> Metrics {
        let mut total = Metrics::new();
        for e in &self.epochs {
            total.merge(&e.delta);
        }
        total
    }

    /// Per-cluster sums across all epochs.
    #[must_use]
    pub fn epoch_cluster_totals(&self) -> Vec<ClusterCounts> {
        let clusters = self.epochs.first().map_or(0, |e| e.per_cluster.len());
        let mut totals = vec![ClusterCounts::default(); clusters];
        for e in &self.epochs {
            for (t, d) in totals.iter_mut().zip(&e.per_cluster) {
                t.merge(d);
            }
        }
        totals
    }

    /// The whole sink as a JSON object (the `"observed"` section of run
    /// reports): per-kind counts, per-cluster event totals, top pages,
    /// relocation/threshold timelines, and the epoch series.
    #[must_use]
    pub fn to_json(&self, top_k: usize) -> Json {
        Json::obj()
            .set("events", self.events_seen)
            .set(
                "by_kind",
                Json::Obj(
                    self.kind_counts()
                        .into_iter()
                        .map(|(k, n)| (k.to_owned(), Json::U64(n)))
                        .collect(),
                ),
            )
            .set(
                "per_cluster_events",
                Json::Arr(self.per_cluster.iter().map(|&n| Json::U64(n)).collect()),
            )
            .set(
                "top_pages",
                Json::Arr(
                    self.top_pages(top_k)
                        .into_iter()
                        .map(|(p, n)| Json::obj().set("page", p.0).set("heat", n))
                        .collect(),
                ),
            )
            .set(
                "relocation_timeline",
                Json::Arr(
                    self.relocations
                        .iter()
                        .map(|&(at, cl, page)| {
                            Json::obj()
                                .set("at", at)
                                .set("cluster", u64::from(cl))
                                .set("page", page)
                        })
                        .collect(),
                ),
            )
            .set(
                "threshold_timeline",
                Json::Arr(
                    self.threshold_changes
                        .iter()
                        .map(|&(at, cl, t)| {
                            Json::obj()
                                .set("at", at)
                                .set("cluster", u64::from(cl))
                                .set("threshold", t)
                        })
                        .collect(),
                ),
            )
            .set(
                "epochs",
                Json::Arr(self.epochs.iter().map(epoch_json).collect()),
            )
    }
}

impl Probe for StatsSink {
    fn event(&mut self, at: u64, event: &Event) {
        self.events_seen += 1;
        *self.by_kind.entry(event.kind()).or_insert(0) += 1;
        let ci = usize::from(event.cluster().0);
        if ci >= self.per_cluster.len() {
            self.per_cluster.resize(ci + 1, 0);
        }
        self.per_cluster[ci] += 1;
        match *event {
            Event::PcHit { page, .. } | Event::Relocation { page, .. } => {
                *self.page_heat.entry_or_default(page.0) += 1;
            }
            _ => {}
        }
        if let Event::Relocation { cluster, page } = *event {
            self.relocations.push((at, cluster.0, page.0));
        }
        if let Event::ThresholdAdapted { cluster, threshold } = *event {
            self.threshold_changes.push((at, cluster.0, threshold));
        }
    }

    fn epoch(&mut self, sample: &EpochSample) {
        self.epochs.push(sample.clone());
    }
}

/// A streaming probe: one JSON object per line per event (and per epoch)
/// into any writer. Errors are sticky — the first I/O failure stops
/// writing and is reported by [`JsonlSink::finish`].
pub struct JsonlSink<W: Write> {
    out: W,
    error: Option<io::Error>,
    lines: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Wraps `out` (consider a `BufWriter`: traces emit millions of
    /// events).
    pub fn new(out: W) -> Self {
        JsonlSink {
            out,
            error: None,
            lines: 0,
        }
    }

    /// Lines successfully written.
    #[must_use]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Flushes and returns the writer, or the first I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first write/flush error encountered.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn write_line(&mut self, j: &Json) {
        if self.error.is_some() {
            return;
        }
        match writeln!(self.out, "{}", j.render()) {
            Ok(()) => self.lines += 1,
            Err(e) => self.error = Some(e),
        }
    }
}

impl<W: Write> Probe for JsonlSink<W> {
    fn event(&mut self, at: u64, event: &Event) {
        let j = event_json(at, event);
        self.write_line(&j);
    }

    fn epoch(&mut self, sample: &EpochSample) {
        let j = epoch_json(sample).set("ev", "epoch");
        self.write_line(&j);
    }
}

impl<W: Write> std::fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JsonlSink")
            .field("lines", &self.lines)
            .field("error", &self.error)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_types::{BlockAddr, ClusterId};

    #[test]
    fn atomic_write_absorbs_transient_injections() {
        let _guard = crate::fault::test_lock();
        let path = std::env::temp_dir().join(format!(
            "dsm-obs-atomic-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        // Two injected EINTRs fit inside the three-attempt budget.
        crate::fault::install(Some(
            crate::fault::FaultPlan::from_spec("atomic-write-io:2").unwrap(),
        ));
        let out = write_json_atomic(&path, &Json::U64(1));
        crate::fault::install(None);
        out.unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "1\n");
        // Three injections exhaust it: a structured internal error, and
        // the old file must survive untouched (no torn write).
        crate::fault::install(Some(
            crate::fault::FaultPlan::from_spec("atomic-write-io:3").unwrap(),
        ));
        let out = write_json_atomic(&path, &Json::U64(2));
        crate::fault::install(None);
        let err = out.unwrap_err();
        assert_eq!(err.exit_code(), 4, "{err}");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "1\n");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_sink_aggregates() {
        let mut s = StatsSink::new();
        s.event(
            1,
            &Event::PcHit {
                cluster: ClusterId(1),
                page: PageAddr(7),
                block: BlockAddr(448),
                write: false,
            },
        );
        s.event(
            2,
            &Event::PcHit {
                cluster: ClusterId(1),
                page: PageAddr(7),
                block: BlockAddr(449),
                write: true,
            },
        );
        s.event(
            3,
            &Event::Relocation {
                cluster: ClusterId(2),
                page: PageAddr(9),
            },
        );
        assert_eq!(s.events_seen(), 3);
        assert_eq!(s.count("pc_hit"), 2);
        assert_eq!(s.count("relocation"), 1);
        assert_eq!(s.per_cluster_events(), &[0, 2, 1]);
        assert_eq!(s.top_pages(1), vec![(PageAddr(7), 2)]);
        assert_eq!(s.relocation_timeline(), &[(3, 2, 9)]);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.event(
            5,
            &Event::RemoteRead {
                cluster: ClusterId(3),
                block: BlockAddr(64),
                capacity: true,
            },
        );
        let bytes = sink.finish().unwrap();
        let line = String::from_utf8(bytes).unwrap();
        assert_eq!(
            line,
            "{\"at\":5,\"ev\":\"remote_read\",\"cluster\":3,\"block\":64,\"capacity\":true}\n"
        );
    }

    #[test]
    fn epoch_total_merges_deltas() {
        let mut s = StatsSink::new();
        let mut d1 = Metrics::new();
        d1.shared_refs = 10;
        d1.reads = 6;
        let mut d2 = Metrics::new();
        d2.shared_refs = 5;
        d2.writes = 5;
        for (i, d) in [d1, d2].into_iter().enumerate() {
            s.epoch(&EpochSample {
                index: i as u64,
                start_ref: 0,
                end_ref: 0,
                delta: d,
                per_cluster: vec![ClusterCounts {
                    refs: 1,
                    ..ClusterCounts::default()
                }],
                thresholds: vec![32],
            });
        }
        let total = s.epoch_total();
        assert_eq!(total.shared_refs, 15);
        assert_eq!(total.reads, 6);
        assert_eq!(total.writes, 5);
        assert_eq!(s.epoch_cluster_totals()[0].refs, 2);
    }
}
