//! Hand-rolled hierarchical span tracing with chrome://tracing export.
//!
//! A [`SpanTracer`] records named, timed spans grouped into *lanes* (one
//! lane per logical thread of work: the main thread, each sweep worker).
//! Spans are RAII guards — [`SpanTracer::span`] returns a [`SpanGuard`]
//! that measures from creation to drop — so nesting follows scope
//! structure by construction: a guard created inside another guard's
//! scope drops first, and the exported intervals are properly nested
//! within their lane.
//!
//! Like [`json`](super::json), this module is dependency-free; the
//! export target is the Chrome Trace Event format (`chrome://tracing`,
//! Perfetto, Speedscope all read it): a JSON object whose `traceEvents`
//! array holds complete-duration (`"ph":"X"`) events with microsecond
//! timestamps, plus one thread-name metadata record per lane.
//!
//! The tracer is `Sync` (a mutex around the event log) so sweep workers
//! on scoped threads can share one tracer by reference; recording a span
//! is one short critical section at drop time, far off the simulator's
//! per-reference hot path.

use std::path::Path;
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use dsm_types::DsmError;

use super::json::Json;
use super::write_json_atomic;

/// A lane handle: one horizontal track in the trace viewer (rendered as
/// a thread). Obtain from [`SpanTracer::lane`]; copyable and cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lane(u32);

/// One completed span, as recorded: lane, name, start offset and
/// duration in microseconds since the tracer's epoch, plus any counter
/// arguments attached via [`SpanGuard::arg`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// The lane the span belongs to (index into [`SpanTracer::lanes`]).
    pub lane: u32,
    /// Span name (the trace viewer's slice label).
    pub name: String,
    /// Start, in microseconds since the tracer was created.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Counter arguments shown in the viewer's detail pane.
    pub args: Vec<(&'static str, u64)>,
}

#[derive(Debug, Default)]
struct Inner {
    lanes: Vec<String>,
    events: Vec<SpanEvent>,
}

/// A thread-safe recorder of hierarchical timed spans.
#[derive(Debug)]
pub struct SpanTracer {
    epoch: Instant,
    inner: Mutex<Inner>,
}

impl SpanTracer {
    /// A tracer whose clock starts now.
    #[must_use]
    pub fn new() -> Self {
        SpanTracer {
            epoch: Instant::now(),
            inner: Mutex::new(Inner::default()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        // A panicking span guard poisons the mutex; the trace data is
        // still consistent (events append atomically), so keep going.
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Microseconds elapsed since the tracer was created.
    #[must_use]
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Returns the lane named `name`, registering it on first use.
    /// Lanes render as threads in the viewer; give each worker its own.
    #[must_use]
    pub fn lane(&self, name: &str) -> Lane {
        let mut inner = self.lock();
        if let Some(i) = inner.lanes.iter().position(|l| l == name) {
            return Lane(i as u32);
        }
        inner.lanes.push(name.to_owned());
        Lane((inner.lanes.len() - 1) as u32)
    }

    /// Opens a span on `lane`; the span closes (and is recorded) when
    /// the returned guard drops. Guards created within this guard's
    /// lifetime on the same lane drop first, so recorded intervals nest.
    #[must_use]
    pub fn span(&self, lane: Lane, name: impl Into<String>) -> SpanGuard<'_> {
        SpanGuard {
            tracer: self,
            lane,
            name: name.into(),
            start_us: self.now_us(),
            args: Vec::new(),
        }
    }

    /// Registered lane names, in lane order.
    #[must_use]
    pub fn lanes(&self) -> Vec<String> {
        self.lock().lanes.clone()
    }

    /// A copy of every recorded span (tests and offline analysis).
    #[must_use]
    pub fn events(&self) -> Vec<SpanEvent> {
        self.lock().events.clone()
    }

    /// The trace in Chrome Trace Event format: a `traceEvents` array of
    /// complete (`"ph":"X"`) events — sorted by lane, then start time,
    /// parents before children — preceded by one `thread_name` metadata
    /// record per lane.
    #[must_use]
    pub fn to_chrome_json(&self) -> Json {
        let inner = self.lock();
        let mut events: Vec<(usize, &SpanEvent)> = inner.events.iter().enumerate().collect();
        // Chrome infers nesting from containment; sort parents first so
        // the file is stable and readable raw. On microsecond ties the
        // later-recorded span wins: parents drop (and record) after
        // their children.
        events.sort_by(|(ai, a), (bi, b)| {
            (
                a.lane,
                a.start_us,
                std::cmp::Reverse(a.dur_us),
                std::cmp::Reverse(*ai),
            )
                .cmp(&(
                    b.lane,
                    b.start_us,
                    std::cmp::Reverse(b.dur_us),
                    std::cmp::Reverse(*bi),
                ))
        });
        let mut out = Vec::with_capacity(inner.lanes.len() + events.len());
        for (i, name) in inner.lanes.iter().enumerate() {
            out.push(
                Json::obj()
                    .set("name", "thread_name")
                    .set("ph", "M")
                    .set("pid", 1u64)
                    .set("tid", i as u64 + 1)
                    .set("args", Json::obj().set("name", name.as_str())),
            );
        }
        for (_, e) in events {
            let mut obj = Json::obj()
                .set("name", e.name.as_str())
                .set("ph", "X")
                .set("pid", 1u64)
                .set("tid", u64::from(e.lane) + 1)
                .set("ts", e.start_us)
                .set("dur", e.dur_us);
            if !e.args.is_empty() {
                let mut args = Json::obj();
                for (k, v) in &e.args {
                    args = args.set(k, *v);
                }
                obj = obj.set("args", args);
            }
            out.push(obj);
        }
        Json::obj()
            .set("displayTimeUnit", "ms")
            .set("traceEvents", Json::Arr(out))
    }

    /// Writes the chrome-trace JSON to `path` atomically.
    ///
    /// # Errors
    ///
    /// Returns a [`DsmError`] naming the path on any I/O failure.
    pub fn write(&self, path: &Path) -> Result<(), DsmError> {
        write_json_atomic(path, &self.to_chrome_json())
    }

    fn record(&self, event: SpanEvent) {
        self.lock().events.push(event);
    }
}

impl Default for SpanTracer {
    fn default() -> Self {
        SpanTracer::new()
    }
}

/// An open span; records itself on drop. See [`SpanTracer::span`].
#[derive(Debug)]
pub struct SpanGuard<'a> {
    tracer: &'a SpanTracer,
    lane: Lane,
    name: String,
    start_us: u64,
    args: Vec<(&'static str, u64)>,
}

impl SpanGuard<'_> {
    /// Attaches a counter argument (shown in the viewer's detail pane),
    /// e.g. `refs` processed or points completed.
    pub fn arg(&mut self, key: &'static str, value: u64) {
        self.args.push((key, value));
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = self.tracer.now_us();
        self.tracer.record(SpanEvent {
            lane: self.lane.0,
            name: std::mem::take(&mut self.name),
            start_us: self.start_us,
            dur_us: end.saturating_sub(self.start_us),
            args: std::mem::take(&mut self.args),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lanes_dedupe_by_name() {
        let t = SpanTracer::new();
        let a = t.lane("main");
        let b = t.lane("worker-1");
        let a2 = t.lane("main");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.lanes(), ["main", "worker-1"]);
    }

    #[test]
    fn guards_record_nested_spans() {
        let t = SpanTracer::new();
        let lane = t.lane("main");
        {
            let mut outer = t.span(lane, "outer");
            outer.arg("points", 3);
            {
                let _inner = t.span(lane, "inner");
            }
        }
        let events = t.events();
        // Inner dropped first, so it is recorded first.
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].args, [("points", 3)]);
        // Containment: outer starts no later and ends no earlier.
        let (inner, outer) = (&events[0], &events[1]);
        assert!(outer.start_us <= inner.start_us);
        assert!(outer.start_us + outer.dur_us >= inner.start_us + inner.dur_us);
    }

    #[test]
    fn chrome_export_shape() {
        let t = SpanTracer::new();
        let lane = t.lane("main");
        {
            let _s = t.span(lane, "load");
        }
        let json = t.to_chrome_json();
        assert_eq!(
            json.get("displayTimeUnit").and_then(Json::as_str),
            Some("ms")
        );
        let events = json.get("traceEvents").and_then(Json::as_array).unwrap();
        assert_eq!(events.len(), 2); // metadata + one span
        assert_eq!(events[0].get("ph").and_then(Json::as_str), Some("M"));
        assert_eq!(events[1].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(events[1].get("tid").and_then(Json::as_u64), Some(1));
        // Round-trips through the hand-rolled parser byte-identically.
        let text = json.render();
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }

    #[test]
    fn export_sorts_parents_before_children() {
        let t = SpanTracer::new();
        let lane = t.lane("main");
        {
            let _outer = t.span(lane, "outer");
            let _inner = t.span(lane, "inner");
        }
        let json = t.to_chrome_json();
        let events = json.get("traceEvents").and_then(Json::as_array).unwrap();
        let xs: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
            .map(|e| e.get("name").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(xs, ["outer", "inner"]);
    }

    #[test]
    fn write_is_atomic_and_parseable() {
        let t = SpanTracer::new();
        let lane = t.lane("main");
        {
            let _s = t.span(lane, "work");
        }
        let dir = std::env::temp_dir().join(format!("dsm-span-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        t.write(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let parsed = Json::parse(text.trim_end()).unwrap();
        assert!(parsed.get("traceEvents").is_some());
        std::fs::remove_dir_all(&dir).ok();
    }
}
