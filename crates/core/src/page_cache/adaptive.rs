//! The paper's adaptive relocation-threshold policy (Section 6.2).
//!
//! Fixed thresholds make cross-application comparison unfair and leave
//! page-cache thrashing unchecked (Figure 6: Barnes and Radix thrash with
//! a fixed threshold of 32). The adaptive policy:
//!
//! * per-node threshold, initialized to 32 (or 64 for `vxp`'s more eager
//!   victimization counters), incremented by 8 whenever thrashing is
//!   detected;
//! * thrashing detection: every page-cache frame has a saturating hit
//!   counter; when a frame is *reused* (its page evicted for a new one),
//!   `hits - break_even` is accumulated into a thrashing indicator
//!   (break-even = 12, the hit count that amortizes one relocation);
//! * after a monitoring window of `2 x frames` reuses, a negative
//!   indicator raises the threshold and resets all hit counters.

/// Per-cluster relocation-threshold state, fixed or adaptive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveThreshold {
    threshold: u32,
    adaptive: bool,
    increment: u32,
    break_even: u32,
    window: u64,
    reuses: u64,
    indicator: i64,
    adjustments: u32,
}

impl AdaptiveThreshold {
    /// Break-even hit count: the minimum hits that offset one relocation.
    pub const BREAK_EVEN: u32 = 12;
    /// Threshold increment on detected thrashing.
    pub const INCREMENT: u32 = 8;

    /// The paper's adaptive policy for a page cache of `frames` frames:
    /// initial threshold `initial` (32 in `ncp`/`vbp`/`vpp`, 32 or 64 in
    /// `vxp`), break-even 12, monitoring window `2 x frames`.
    #[must_use]
    pub fn adaptive(initial: u32, frames: usize) -> Self {
        AdaptiveThreshold {
            threshold: initial,
            adaptive: true,
            increment: Self::INCREMENT,
            break_even: Self::BREAK_EVEN,
            window: 2 * frames.max(1) as u64,
            reuses: 0,
            indicator: 0,
            adjustments: 0,
        }
    }

    /// A fixed threshold (the comparison policy of Figure 6).
    #[must_use]
    pub fn fixed(threshold: u32) -> Self {
        AdaptiveThreshold {
            threshold,
            adaptive: false,
            increment: 0,
            break_even: Self::BREAK_EVEN,
            window: u64::MAX,
            reuses: 0,
            indicator: 0,
            adjustments: 0,
        }
    }

    /// The current relocation threshold.
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Whether the policy adapts.
    #[must_use]
    pub fn is_adaptive(&self) -> bool {
        self.adaptive
    }

    /// How many times the threshold was raised.
    #[must_use]
    pub fn adjustments(&self) -> u32 {
        self.adjustments
    }

    /// Records a frame reuse whose evicted page had `hits` page-cache
    /// hits. Returns `true` if the monitoring window closed with a
    /// negative indicator — the caller must then reset the page cache's
    /// hit counters ([`super::PageCache::reset_hit_counters`]).
    pub fn on_frame_reuse(&mut self, hits: u32) -> bool {
        if !self.adaptive {
            return false;
        }
        self.indicator += i64::from(hits) - i64::from(self.break_even);
        self.reuses += 1;
        if self.reuses < self.window {
            return false;
        }
        let thrashing = self.indicator < 0;
        if thrashing {
            self.threshold += self.increment;
            self.adjustments += 1;
        }
        self.reuses = 0;
        self.indicator = 0;
        thrashing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_never_moves() {
        let mut t = AdaptiveThreshold::fixed(32);
        for _ in 0..1000 {
            assert!(!t.on_frame_reuse(0));
        }
        assert_eq!(t.threshold(), 32);
        assert!(!t.is_adaptive());
        assert_eq!(t.adjustments(), 0);
    }

    #[test]
    fn thrashing_raises_threshold() {
        // 4 frames -> window of 8 reuses.
        let mut t = AdaptiveThreshold::adaptive(32, 4);
        let mut tripped = false;
        for _ in 0..8 {
            // Every reuse with 0 hits: indicator goes strongly negative.
            tripped |= t.on_frame_reuse(0);
        }
        assert!(tripped);
        assert_eq!(t.threshold(), 40);
        assert_eq!(t.adjustments(), 1);
    }

    #[test]
    fn amortized_frames_do_not_trip() {
        let mut t = AdaptiveThreshold::adaptive(32, 4);
        for _ in 0..16 {
            // Hits above break-even: healthy reuse.
            assert!(!t.on_frame_reuse(20));
        }
        assert_eq!(t.threshold(), 32);
    }

    #[test]
    fn window_resets_after_each_decision() {
        let mut t = AdaptiveThreshold::adaptive(32, 2); // window 4
        for _ in 0..4 {
            t.on_frame_reuse(0);
        }
        assert_eq!(t.threshold(), 40);
        // Next window: healthy -> no further bump.
        for _ in 0..4 {
            t.on_frame_reuse(20);
        }
        assert_eq!(t.threshold(), 40);
        // And thrash again.
        for _ in 0..4 {
            t.on_frame_reuse(0);
        }
        assert_eq!(t.threshold(), 48);
        assert_eq!(t.adjustments(), 2);
    }

    #[test]
    fn mixed_window_balances_at_break_even() {
        let mut t = AdaptiveThreshold::adaptive(32, 2); // window 4
                                                        // Two frames at 24, two at 0: indicator = 2*(24-12) + 2*(-12) = 0,
                                                        // not negative -> no bump.
        t.on_frame_reuse(24);
        t.on_frame_reuse(0);
        t.on_frame_reuse(24);
        assert!(!t.on_frame_reuse(0));
        assert_eq!(t.threshold(), 32);
    }

    #[test]
    fn paper_constants() {
        assert_eq!(AdaptiveThreshold::BREAK_EVEN, 12);
        assert_eq!(AdaptiveThreshold::INCREMENT, 8);
        let t = AdaptiveThreshold::adaptive(32, 128);
        assert_eq!(t.window, 256);
    }
}
