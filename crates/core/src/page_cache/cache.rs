//! The page-cache frame store with least-recently-missed replacement.

use dsm_types::{BlockAddr, DenseMap, Geometry, PageAddr};

/// Fine-grain (block-level) state inside a resident page-cache page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PcBlockState {
    /// No valid copy in the page cache (never fetched, invalidated by a
    /// remote write, or owned dirty higher in the cluster hierarchy).
    #[default]
    Invalid,
    /// Valid copy, identical to the home memory.
    Clean,
    /// Valid copy, newer than the home memory (the cluster owns the block;
    /// eviction requires a write-back).
    Dirty,
}

impl PcBlockState {
    /// Whether the block can be supplied from the page cache.
    #[must_use]
    pub fn is_valid(self) -> bool {
        !matches!(self, PcBlockState::Invalid)
    }
}

#[derive(Debug, Clone)]
struct PageEntry {
    blocks: Box<[PcBlockState]>,
    /// Saturating per-frame hit counter (hardware-maintained in the
    /// paper), consumed by the adaptive-threshold thrashing detector.
    hits: u32,
    /// Tick of the last *miss* that touched this page — the page cache is
    /// only accessed on processor-cache misses, and R-NUMA's replacement
    /// policy is least-recently-**missed**.
    last_miss: u64,
}

/// A page evicted from the page cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvictedPage {
    /// The page that lost its frame.
    pub page: PageAddr,
    /// Blocks that held dirty data (each needs a write-back to the home).
    pub dirty_blocks: Vec<BlockAddr>,
    /// The frame's hit count at eviction (fed to the thrashing detector
    /// on frame reuse).
    pub hits: u32,
}

/// The page-cache frame store: up to `capacity` remote pages with
/// block-grain state, least-recently-missed replacement, and per-frame hit
/// counters.
///
/// # Example
///
/// ```
/// use dsm_core::page_cache::{PageCache, PcBlockState};
/// use dsm_types::{Geometry, PageAddr};
///
/// let geo = Geometry::paper_default();
/// let mut pc = PageCache::new(2, geo);
/// pc.insert_page(PageAddr(7), |_| PcBlockState::Clean);
/// let first = geo.first_block_of_page(PageAddr(7));
/// assert_eq!(pc.lookup_block(first), Some(PcBlockState::Clean));
/// ```
#[derive(Debug, Clone)]
pub struct PageCache {
    capacity: usize,
    geo: Geometry,
    pages: DenseMap<PageEntry>,
    tick: u64,
}

impl PageCache {
    /// Creates a page cache of `capacity` page frames.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (configure no page cache instead).
    #[must_use]
    pub fn new(capacity: usize, geo: Geometry) -> Self {
        assert!(capacity > 0, "a page cache needs at least one frame");
        PageCache {
            capacity,
            geo,
            pages: DenseMap::new(),
            tick: 0,
        }
    }

    /// The frame capacity in pages.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of resident pages.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no pages are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Whether `page` is resident.
    #[must_use]
    pub fn has_page(&self, page: PageAddr) -> bool {
        self.pages.contains_key(page.0)
    }

    fn block_slot(&self, block: BlockAddr) -> (PageAddr, usize) {
        let page = self.geo.page_of_block(block);
        #[allow(clippy::cast_possible_truncation)]
        let idx = self.geo.block_index_in_page(block) as usize;
        (page, idx)
    }

    /// Looks up `block` on a processor-cache miss: returns its state if
    /// the page is resident, refreshing the page's last-missed tick. The
    /// caller decides hit vs miss from the state and must call
    /// [`PageCache::record_hit`] on an actual data supply.
    pub fn lookup_block(&mut self, block: BlockAddr) -> Option<PcBlockState> {
        self.tick += 1;
        let (page, idx) = self.block_slot(block);
        let tick = self.tick;
        self.pages.get_mut(page.0).map(|e| {
            e.last_miss = tick;
            e.blocks[idx]
        })
    }

    /// Peeks at `block`'s state without touching the LRM tick (for state
    /// maintenance that is not a miss lookup).
    #[must_use]
    pub fn block_state(&self, block: BlockAddr) -> Option<PcBlockState> {
        let (page, idx) = self.block_slot(block);
        self.pages.get(page.0).map(|e| e.blocks[idx])
    }

    /// Counts a data supply from the page cache toward the frame's hit
    /// counter (saturating).
    ///
    /// # Panics
    ///
    /// Panics if the page is not resident.
    pub fn record_hit(&mut self, page: PageAddr) {
        let e = self
            .pages
            .get_mut(page.0)
            .unwrap_or_else(|| panic!("record_hit on absent {page}"));
        e.hits = e.hits.saturating_add(1);
    }

    /// Sets the state of one block of a resident page (remote fill
    /// completion, write-back landing, ownership handoff). No-op if the
    /// page is not resident.
    pub fn set_block(&mut self, block: BlockAddr, state: PcBlockState) {
        let (page, idx) = self.block_slot(block);
        if let Some(e) = self.pages.get_mut(page.0) {
            e.blocks[idx] = state;
        }
    }

    /// Invalidates one block (remote write); returns the previous state.
    pub fn invalidate_block(&mut self, block: BlockAddr) -> PcBlockState {
        let (page, idx) = self.block_slot(block);
        match self.pages.get_mut(page.0) {
            Some(e) => std::mem::replace(&mut e.blocks[idx], PcBlockState::Invalid),
            None => PcBlockState::Invalid,
        }
    }

    /// Relocates `page` into the cache. `initial` supplies the state of
    /// each block (by index within the page): `Clean` for blocks whose
    /// home copy is valid, `Invalid` for blocks dirty elsewhere.
    ///
    /// If the cache is full, the least-recently-missed page is evicted and
    /// returned (its dirty blocks need write-backs, and the paper's
    /// re-mapping rule requires the cluster to drop all its copies of the
    /// evicted page's blocks).
    ///
    /// Re-inserting a resident page refreshes nothing and returns `None`.
    pub fn insert_page(
        &mut self,
        page: PageAddr,
        initial: impl Fn(u64) -> PcBlockState,
    ) -> Option<EvictedPage> {
        if self.pages.contains_key(page.0) {
            return None;
        }
        let evicted = if self.pages.len() >= self.capacity {
            // Miss ticks are unique, so the minimum is unique and the
            // result does not depend on iteration order.
            let victim = self
                .pages
                .iter()
                .min_by_key(|(_, e)| e.last_miss)
                .map(|(p, _)| p)
                .expect("cache is full, therefore nonempty");
            self.remove_page(PageAddr(victim))
        } else {
            None
        };
        #[allow(clippy::cast_possible_truncation)]
        let n = self.geo.blocks_per_page() as usize;
        let blocks: Box<[PcBlockState]> = (0..n as u64).map(&initial).collect();
        self.tick += 1;
        self.pages.insert(
            page.0,
            PageEntry {
                blocks,
                hits: 0,
                last_miss: self.tick,
            },
        );
        evicted
    }

    /// Removes `page` outright (used by tests and explicit shrinking),
    /// returning its eviction record.
    pub fn remove_page(&mut self, page: PageAddr) -> Option<EvictedPage> {
        let entry = self.pages.remove(page.0)?;
        let first = self.geo.first_block_of_page(page);
        let dirty_blocks = entry
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == PcBlockState::Dirty)
            .map(|(i, _)| BlockAddr(first.0 + i as u64))
            .collect();
        Some(EvictedPage {
            page,
            dirty_blocks,
            hits: entry.hits,
        })
    }

    /// All blocks of resident `page`, with their states.
    #[must_use]
    pub fn page_blocks(&self, page: PageAddr) -> Vec<(BlockAddr, PcBlockState)> {
        let Some(entry) = self.pages.get(page.0) else {
            return Vec::new();
        };
        let first = self.geo.first_block_of_page(page);
        entry
            .blocks
            .iter()
            .enumerate()
            .map(|(i, s)| (BlockAddr(first.0 + i as u64), *s))
            .collect()
    }

    /// Resets every frame's hit counter (the adaptive policy does this
    /// when it raises the threshold).
    pub fn reset_hit_counters(&mut self) {
        for e in self.pages.values_mut() {
            e.hits = 0;
        }
    }

    /// Resident pages (unordered).
    pub fn pages(&self) -> impl Iterator<Item = PageAddr> + '_ {
        self.pages.keys().map(PageAddr)
    }

    /// Resident pages with their frame hit counters (unordered).
    ///
    /// The counters are the same ones the adaptive relocation threshold
    /// inspects; the `--stats` profiling view ranks them to report the
    /// hottest resident frames per cluster.
    pub fn pages_with_hits(&self) -> impl Iterator<Item = (PageAddr, u32)> + '_ {
        self.pages.iter().map(|(p, e)| (PageAddr(p), e.hits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> Geometry {
        Geometry::paper_default()
    }

    fn block_of_page(page: u64, idx: u64) -> BlockAddr {
        BlockAddr(page * 64 + idx)
    }

    #[test]
    fn insert_and_lookup() {
        let mut pc = PageCache::new(2, geo());
        assert!(pc
            .insert_page(PageAddr(1), |_| PcBlockState::Clean)
            .is_none());
        assert_eq!(
            pc.lookup_block(block_of_page(1, 5)),
            Some(PcBlockState::Clean)
        );
        assert_eq!(pc.lookup_block(block_of_page(2, 0)), None);
        assert_eq!(pc.len(), 1);
    }

    #[test]
    fn initial_states_per_block() {
        let mut pc = PageCache::new(1, geo());
        pc.insert_page(PageAddr(0), |i| {
            if i % 2 == 0 {
                PcBlockState::Clean
            } else {
                PcBlockState::Invalid
            }
        });
        assert_eq!(
            pc.lookup_block(block_of_page(0, 0)),
            Some(PcBlockState::Clean)
        );
        assert_eq!(
            pc.lookup_block(block_of_page(0, 1)),
            Some(PcBlockState::Invalid)
        );
    }

    #[test]
    fn least_recently_missed_eviction() {
        let mut pc = PageCache::new(2, geo());
        pc.insert_page(PageAddr(1), |_| PcBlockState::Clean);
        pc.insert_page(PageAddr(2), |_| PcBlockState::Clean);
        // Miss on page 1 -> page 2 becomes LRM.
        pc.lookup_block(block_of_page(1, 0));
        let ev = pc
            .insert_page(PageAddr(3), |_| PcBlockState::Clean)
            .unwrap();
        assert_eq!(ev.page, PageAddr(2));
        assert!(pc.has_page(PageAddr(1)));
        assert!(pc.has_page(PageAddr(3)));
    }

    #[test]
    fn eviction_reports_dirty_blocks_and_hits() {
        let mut pc = PageCache::new(1, geo());
        pc.insert_page(PageAddr(1), |_| PcBlockState::Clean);
        pc.set_block(block_of_page(1, 3), PcBlockState::Dirty);
        pc.set_block(block_of_page(1, 7), PcBlockState::Dirty);
        pc.record_hit(PageAddr(1));
        pc.record_hit(PageAddr(1));
        let ev = pc
            .insert_page(PageAddr(2), |_| PcBlockState::Clean)
            .unwrap();
        assert_eq!(ev.page, PageAddr(1));
        assert_eq!(
            ev.dirty_blocks,
            vec![block_of_page(1, 3), block_of_page(1, 7)]
        );
        assert_eq!(ev.hits, 2);
    }

    #[test]
    fn reinsert_resident_page_is_noop() {
        let mut pc = PageCache::new(1, geo());
        pc.insert_page(PageAddr(1), |_| PcBlockState::Clean);
        pc.set_block(block_of_page(1, 0), PcBlockState::Dirty);
        assert!(pc
            .insert_page(PageAddr(1), |_| PcBlockState::Invalid)
            .is_none());
        // State preserved.
        assert_eq!(
            pc.lookup_block(block_of_page(1, 0)),
            Some(PcBlockState::Dirty)
        );
    }

    #[test]
    fn invalidate_block() {
        let mut pc = PageCache::new(1, geo());
        pc.insert_page(PageAddr(1), |_| PcBlockState::Clean);
        assert_eq!(
            pc.invalidate_block(block_of_page(1, 0)),
            PcBlockState::Clean
        );
        assert_eq!(
            pc.invalidate_block(block_of_page(1, 0)),
            PcBlockState::Invalid
        );
        assert_eq!(
            pc.invalidate_block(block_of_page(9, 0)),
            PcBlockState::Invalid
        );
    }

    #[test]
    fn hit_counters_reset() {
        let mut pc = PageCache::new(1, geo());
        pc.insert_page(PageAddr(1), |_| PcBlockState::Clean);
        pc.record_hit(PageAddr(1));
        pc.reset_hit_counters();
        let ev = pc.remove_page(PageAddr(1)).unwrap();
        assert_eq!(ev.hits, 0);
    }

    #[test]
    fn page_blocks_lists_states() {
        let mut pc = PageCache::new(1, geo());
        pc.insert_page(PageAddr(2), |_| PcBlockState::Clean);
        pc.set_block(block_of_page(2, 1), PcBlockState::Dirty);
        let blocks = pc.page_blocks(PageAddr(2));
        assert_eq!(blocks.len(), 64);
        assert_eq!(blocks[0], (block_of_page(2, 0), PcBlockState::Clean));
        assert_eq!(blocks[1], (block_of_page(2, 1), PcBlockState::Dirty));
        assert!(pc.page_blocks(PageAddr(9)).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one frame")]
    fn zero_capacity_panics() {
        let _ = PageCache::new(0, geo());
    }

    #[test]
    #[should_panic(expected = "record_hit on absent")]
    fn record_hit_absent_panics() {
        let mut pc = PageCache::new(1, geo());
        pc.record_hit(PageAddr(5));
    }
}
