//! The page cache: remote pages aliased into local main memory.
//!
//! Proposed for Simple COMA and refined by R-NUMA, the page cache extends
//! the cluster's remote-data capacity at **page** granularity: a relocated
//! remote page occupies a local DRAM frame, its blocks keep fine-grain
//! (block-level) coherence state in SRAM tags snooped at bus speed, and a
//! hit costs one local DRAM access — off the critical path of necessary
//! misses, unlike a DRAM network cache.
//!
//! What makes or breaks the page cache is the relocation *policy*:
//! relocating costs the paper's 225 cycles (interrupt + handler + TLB
//! shootdown), so a page must serve enough capacity misses to amortize it.
//! [`AdaptiveThreshold`] implements the paper's thrashing-driven threshold
//! adjustment on top of either counter source (directory R-NUMA counters
//! or `vxp` victim-set counters).

mod adaptive;
mod cache;

pub use adaptive::AdaptiveThreshold;
pub use cache::{EvictedPage, PageCache, PcBlockState};
