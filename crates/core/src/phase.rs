//! Phase-level hot-path profiling: attribute per-reference work to
//! protocol phases and estimate each phase's latency contribution.
//!
//! # Design
//!
//! The final [`Metrics`] aggregate says *how many* misses a run produced;
//! it cannot say *where the cycles went* — whether a configuration lost
//! its throughput to the victim-buffer path, to directory-only
//! transactions, or to page relocations. This module adds that
//! attribution as a [`Probe`] implementation, [`PhaseProfiler`], so it
//! rides the same compile-time on/off switch as every other observer:
//! under the default [`NoProbe`](crate::NoProbe) the emission sites fold
//! away and the simulator's hot loop is byte-for-byte un-instrumented.
//!
//! # Phases
//!
//! Every [`Event`] maps to exactly one [`Phase`] (the match in
//! [`Phase::of`] is total, so a new event variant is a compile error
//! here, not a silently unattributed count). The first six phases are
//! *primary*: each shared reference emits exactly one primary event —
//! its service classification — so the primary phase counts partition
//! [`Metrics::shared_refs`] exactly ([`Metrics::primary_services`]).
//! The remaining phases count secondary work (directory-only
//! transactions, victim traffic, OS page operations) that accompanies
//! the primary services.
//!
//! # Cost attribution
//!
//! Each event is charged an estimated cost in bus cycles from the
//! system's [`LatencyModel`] (Tables 1-2), chosen so the per-phase sums
//! reconcile with the paper's Equation 1 terms: NC lookups cost
//! `nc_hit`, page-cache hits `pc_hit`, remote fills `remote_miss`, and
//! OS page operations the full 225-cycle relocation — so
//! `cycles(Relocation) == os_page_ops x 225` exactly. Costs are
//! estimates of *contribution*, not a contention model: the paper's own
//! model is contention-free, and so is this attribution.
//!
//! # Histograms
//!
//! Per phase, two allocation-free log-bucketed histograms
//! ([`LogHistogram`], fixed inline arrays): the per-event estimated cost
//! and the inter-arrival gap in shared references (burstiness — a
//! victim path that fires every few references is a different problem
//! from one that fires in rare storms of thousands).

use crate::config::SystemSpec;
#[cfg(doc)]
use crate::metrics::Metrics;
use crate::model::{Latencies, LatencyModel};
use crate::obs::json::Json;
use crate::probe::{Event, Probe};

/// A protocol phase: where a unit of coherence work happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Hits in the issuing processor's own cache (incl. silent upgrades).
    CacheHit = 0,
    /// Misses supplied cache-to-cache by a peer on the cluster bus.
    BusTransfer = 1,
    /// Remote-data misses served by the network cache.
    NcLookup = 2,
    /// Remote-data misses served by the page cache.
    PageCachePath = 3,
    /// Misses to local data filled from home memory.
    LocalFill = 4,
    /// Misses filled by a remote home over the network.
    RemoteFill = 5,
    /// Directory-only transactions: ownership requests and invalidations.
    DirectoryProbe = 6,
    /// Victim-buffer traffic: NC captures, forced evictions, write-backs
    /// and absorbed downgrades.
    VictimPath = 7,
    /// OS page operations: relocations, page evictions, migrations,
    /// replications, threshold adaptation and replica collapses.
    Relocation = 8,
}

/// All phases, in table/JSON order.
pub const PHASES: [Phase; Phase::COUNT] = [
    Phase::CacheHit,
    Phase::BusTransfer,
    Phase::NcLookup,
    Phase::PageCachePath,
    Phase::LocalFill,
    Phase::RemoteFill,
    Phase::DirectoryProbe,
    Phase::VictimPath,
    Phase::Relocation,
];

impl Phase {
    /// Number of phases (array dimensions below).
    pub const COUNT: usize = 9;

    /// The phase an event belongs to. Total over the event taxonomy.
    #[must_use]
    pub fn of(event: &Event) -> Phase {
        match event {
            Event::CacheHit { .. } | Event::LocalUpgrade { .. } => Phase::CacheHit,
            Event::PeerTransfer { .. } => Phase::BusTransfer,
            Event::NcHit { .. } => Phase::NcLookup,
            Event::PcHit { .. } => Phase::PageCachePath,
            Event::LocalMiss { .. } => Phase::LocalFill,
            Event::RemoteRead { .. } | Event::RemoteWrite { .. } => Phase::RemoteFill,
            Event::OwnershipRequest { .. } | Event::Invalidation { .. } => Phase::DirectoryProbe,
            Event::NcCapture { .. }
            | Event::ForcedEviction { .. }
            | Event::RemoteWriteback { .. }
            | Event::AbsorbedDowngrade { .. } => Phase::VictimPath,
            Event::Relocation { .. }
            | Event::PageEviction { .. }
            | Event::ThresholdAdapted { .. }
            | Event::Migration { .. }
            | Event::Replication { .. }
            | Event::ReplicaCollapse { .. } => Phase::Relocation,
        }
    }

    /// Stable snake_case tag (JSON `"phase"` field, table rows).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Phase::CacheHit => "cache_hit",
            Phase::BusTransfer => "bus_transfer",
            Phase::NcLookup => "nc_lookup",
            Phase::PageCachePath => "page_cache",
            Phase::LocalFill => "local_fill",
            Phase::RemoteFill => "remote_fill",
            Phase::DirectoryProbe => "directory_probe",
            Phase::VictimPath => "victim_path",
            Phase::Relocation => "relocation",
        }
    }

    /// Array index of this phase (declaration order).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Whether this phase is a primary service classification: every
    /// shared reference lands in exactly one primary phase, so the
    /// primary counts partition [`Metrics::shared_refs`].
    #[must_use]
    pub fn is_primary(self) -> bool {
        matches!(
            self,
            Phase::CacheHit
                | Phase::BusTransfer
                | Phase::NcLookup
                | Phase::PageCachePath
                | Phase::LocalFill
                | Phase::RemoteFill
        )
    }
}

/// A log2-bucketed histogram over `u64` samples, fixed-size and
/// allocation-free (the profiler keeps one inline per phase).
///
/// Bucket 0 counts zero samples; bucket `i > 0` counts samples in
/// `[2^(i-1), 2^i)`, so 65 buckets cover the full `u64` range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogHistogram {
    buckets: [u64; LogHistogram::BUCKETS],
}

impl LogHistogram {
    /// Number of buckets (zero bucket + one per bit of `u64`).
    pub const BUCKETS: usize = 65;

    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LogHistogram {
            buckets: [0; LogHistogram::BUCKETS],
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
    }

    /// The bucket index a value falls in.
    #[must_use]
    pub fn bucket_of(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// The inclusive lower bound of bucket `i`.
    #[must_use]
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// The count in bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= Self::BUCKETS`.
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Whether no samples have been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buckets.iter().all(|&b| b == 0)
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &LogHistogram) {
        for (into, from) in self.buckets.iter_mut().zip(&other.buckets) {
            *into += from;
        }
    }

    /// Sparse JSON form: an array of `[bucket_floor, count]` pairs for
    /// the non-empty buckets (log histograms are mostly empty).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.buckets
                .iter()
                .enumerate()
                .filter(|(_, &n)| n > 0)
                .map(|(i, &n)| Json::Arr(vec![Json::U64(Self::bucket_floor(i)), Json::U64(n)]))
                .collect(),
        )
    }
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

/// Per-phase counters accumulated over a replay: event counts, estimated
/// cycle contribution, cost/gap histograms, and per-cluster occupancy
/// counts. Mergeable across shards/points like [`Metrics`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PhaseCounters {
    counts: [u64; Phase::COUNT],
    cycles: [u64; Phase::COUNT],
    cost: [LogHistogram; Phase::COUNT],
    gap: [LogHistogram; Phase::COUNT],
    /// Per-cluster event counts by phase; grows to the highest cluster
    /// seen (a handful of resizes per run, never per-reference).
    per_cluster: Vec<[u64; Phase::COUNT]>,
}

impl PhaseCounters {
    /// Zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        PhaseCounters {
            counts: [0; Phase::COUNT],
            cycles: [0; Phase::COUNT],
            cost: [LogHistogram::new(); Phase::COUNT],
            gap: [LogHistogram::new(); Phase::COUNT],
            per_cluster: Vec::new(),
        }
    }

    /// Events attributed to `phase`.
    #[must_use]
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Estimated bus cycles attributed to `phase`.
    #[must_use]
    pub fn cycles(&self, phase: Phase) -> u64 {
        self.cycles[phase.index()]
    }

    /// Total events across all phases.
    #[must_use]
    pub fn total_events(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total estimated cycles across all phases.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Events in the primary phases — equals [`Metrics::shared_refs`]
    /// for a full replay (each reference has exactly one primary
    /// service; the identity tests assert this).
    #[must_use]
    pub fn primary_events(&self) -> u64 {
        PHASES
            .iter()
            .filter(|p| p.is_primary())
            .map(|p| self.count(*p))
            .sum()
    }

    /// The per-event estimated-cost histogram of `phase`.
    #[must_use]
    pub fn cost_histogram(&self, phase: Phase) -> &LogHistogram {
        &self.cost[phase.index()]
    }

    /// The inter-arrival gap histogram of `phase` (shared references
    /// between consecutive events of the phase).
    #[must_use]
    pub fn gap_histogram(&self, phase: Phase) -> &LogHistogram {
        &self.gap[phase.index()]
    }

    /// Per-cluster event counts: `per_cluster()[c][p]` is the events of
    /// phase index `p` in cluster `c`. Summed over clusters this equals
    /// the machine-wide [`PhaseCounters::count`] of each phase — the
    /// occupancy identity the tests assert.
    #[must_use]
    pub fn per_cluster(&self) -> &[[u64; Phase::COUNT]] {
        &self.per_cluster
    }

    /// All events attributed to cluster `c` (any phase); 0 when the
    /// cluster never produced an event.
    #[must_use]
    pub fn cluster_events(&self, c: usize) -> u64 {
        self.per_cluster.get(c).map_or(0, |row| row.iter().sum())
    }

    /// Adds every counter, histogram and per-cluster row of `other` into
    /// `self` (the shard/point merge; commutative like
    /// [`Metrics::merge`]).
    pub fn merge(&mut self, other: &PhaseCounters) {
        for p in 0..Phase::COUNT {
            self.counts[p] += other.counts[p];
            self.cycles[p] += other.cycles[p];
            self.cost[p].merge(&other.cost[p]);
            self.gap[p].merge(&other.gap[p]);
        }
        if self.per_cluster.len() < other.per_cluster.len() {
            self.per_cluster
                .resize(other.per_cluster.len(), [0; Phase::COUNT]);
        }
        for (into, from) in self.per_cluster.iter_mut().zip(&other.per_cluster) {
            for p in 0..Phase::COUNT {
                into[p] += from[p];
            }
        }
    }

    fn record(&mut self, at: u64, cluster: usize, phase: Phase, cost: u64, last_at: u64) {
        let p = phase.index();
        self.counts[p] += 1;
        self.cycles[p] += cost;
        self.cost[p].record(cost);
        self.gap[p].record(at.saturating_sub(last_at));
        if cluster >= self.per_cluster.len() {
            self.per_cluster.resize(cluster + 1, [0; Phase::COUNT]);
        }
        self.per_cluster[cluster][p] += 1;
    }

    /// JSON form (the `timings.json` rollups and `profile --out`
    /// schema): per-phase objects with counts, estimated cycles and
    /// sparse histograms, plus the per-cluster count matrix.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let phases = PHASES
            .iter()
            .map(|&p| {
                Json::obj()
                    .set("phase", p.label())
                    .set("events", self.count(p))
                    .set("est_cycles", self.cycles(p))
                    .set("cost_hist", self.cost_histogram(p).to_json())
                    .set("gap_hist", self.gap_histogram(p).to_json())
            })
            .collect();
        let per_cluster = self
            .per_cluster
            .iter()
            .map(|row| Json::Arr(row.iter().map(|&n| Json::U64(n)).collect()))
            .collect();
        Json::obj()
            .set("phases", Json::Arr(phases))
            .set("per_cluster", Json::Arr(per_cluster))
            .set("total_events", self.total_events())
            .set("est_total_cycles", self.total_cycles())
    }

    /// Renders the phase-cost table the `profile` binary prints:
    /// per-phase events, event rate, estimated cycles and cycle share,
    /// with a totals row. `refs` is the replay length in shared
    /// references (the rate denominator).
    #[must_use]
    pub fn render_table(&self, refs: u64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<16} {:>14} {:>10} {:>16} {:>9} {:>7}",
            "phase", "events", "/kref", "est cycles", "cyc/ref", "share%"
        );
        let total_cycles = self.total_cycles();
        let per_kref = |n: u64| {
            if refs == 0 {
                0.0
            } else {
                n as f64 * 1000.0 / refs as f64
            }
        };
        let share = |c: u64| {
            if total_cycles == 0 {
                0.0
            } else {
                c as f64 * 100.0 / total_cycles as f64
            }
        };
        for &p in &PHASES {
            let _ = writeln!(
                out,
                "{:<16} {:>14} {:>10.2} {:>16} {:>9.3} {:>7.1}",
                p.label(),
                self.count(p),
                per_kref(self.count(p)),
                self.cycles(p),
                if refs == 0 {
                    0.0
                } else {
                    self.cycles(p) as f64 / refs as f64
                },
                share(self.cycles(p)),
            );
        }
        let _ = writeln!(
            out,
            "{:<16} {:>14} {:>10.2} {:>16} {:>9.3} {:>7.1}",
            "total",
            self.total_events(),
            per_kref(self.total_events()),
            total_cycles,
            if refs == 0 {
                0.0
            } else {
                total_cycles as f64 / refs as f64
            },
            if total_cycles == 0 { 0.0 } else { 100.0 },
        );
        out
    }
}

/// The phase-attributing probe: classifies every event into a [`Phase`]
/// and charges it an estimated cost from the system's latency model.
///
/// Use through [`System::with_probe`](crate::System::with_probe) or
/// [`run_trace_probed`](crate::runner::run_trace_probed); compose with
/// other sinks via [`Tee`](crate::Tee). When profiling is off (the
/// default [`NoProbe`](crate::NoProbe) system), none of this code is
/// reachable — zero cost by construction, not by measurement.
#[derive(Debug, Clone)]
pub struct PhaseProfiler {
    counters: PhaseCounters,
    model: LatencyModel,
    last_at: [u64; Phase::COUNT],
}

impl PhaseProfiler {
    /// A profiler charging costs from `model`.
    #[must_use]
    pub fn new(model: LatencyModel) -> Self {
        PhaseProfiler {
            counters: PhaseCounters::new(),
            model,
            last_at: [0; Phase::COUNT],
        }
    }

    /// A profiler with the cost model the given spec implies (paper
    /// Table 2 latencies, NC technology from the spec) — matches the
    /// model a [`System`](crate::System) built from `spec` uses.
    #[must_use]
    pub fn for_spec(spec: &SystemSpec) -> Self {
        PhaseProfiler::new(LatencyModel::new(
            Latencies::paper_default(),
            spec.technology(),
        ))
    }

    /// The accumulated counters.
    #[must_use]
    pub fn counters(&self) -> &PhaseCounters {
        &self.counters
    }

    /// Consumes the profiler, returning the counters.
    #[must_use]
    pub fn into_counters(self) -> PhaseCounters {
        self.counters
    }

    /// The estimated cost of one event in bus cycles.
    ///
    /// Primary fills use the Table 1 composition ([`LatencyModel`]), so
    /// phase cycle sums reconcile with Equation 1 terms; secondary
    /// events are charged the Table 2 latency of the bus/network
    /// operation they stand for. Invalidations cost one bus transfer per
    /// destroyed copy; bookkeeping-only events (threshold adaptation,
    /// replica collapse, the page-eviction frame scrub whose write-backs
    /// are charged separately) cost zero.
    #[must_use]
    pub fn cost_of(&self, event: &Event) -> u64 {
        let l = self.model.latencies();
        match event {
            Event::CacheHit { .. } | Event::LocalUpgrade { .. } => 0,
            Event::PeerTransfer { .. } => l.cache_to_cache,
            Event::NcHit { .. } => self.model.nc_hit(),
            Event::PcHit { .. } => self.model.pc_hit(),
            Event::LocalMiss { .. } => l.dram_access,
            Event::RemoteRead { .. } | Event::RemoteWrite { .. } => self.model.remote_miss(),
            Event::OwnershipRequest { .. } => l.remote_access,
            Event::Invalidation { copies, .. } => l.cache_to_cache * u64::from(*copies),
            Event::RemoteWriteback { .. } => l.remote_access,
            Event::AbsorbedDowngrade { .. } => l.cache_to_cache,
            Event::NcCapture { .. } => l.cache_to_cache,
            Event::ForcedEviction { .. } => l.tag_check,
            Event::Relocation { .. } | Event::Migration { .. } | Event::Replication { .. } => {
                self.model.relocation()
            }
            Event::PageEviction { .. }
            | Event::ThresholdAdapted { .. }
            | Event::ReplicaCollapse { .. } => 0,
        }
    }
}

impl Probe for PhaseProfiler {
    fn event(&mut self, at: u64, event: &Event) {
        let phase = Phase::of(event);
        let cost = self.cost_of(event);
        let last = std::mem::replace(&mut self.last_at[phase.index()], at);
        self.counters
            .record(at, usize::from(event.cluster().0), phase, cost, last);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NcTechnology;
    use dsm_types::{BlockAddr, ClusterId, PageAddr};

    fn sram_profiler() -> PhaseProfiler {
        PhaseProfiler::new(LatencyModel::new(
            Latencies::paper_default(),
            NcTechnology::Sram,
        ))
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(LogHistogram::bucket_of(0), 0);
        assert_eq!(LogHistogram::bucket_of(1), 1);
        assert_eq!(LogHistogram::bucket_of(2), 2);
        assert_eq!(LogHistogram::bucket_of(3), 2);
        assert_eq!(LogHistogram::bucket_of(4), 3);
        assert_eq!(LogHistogram::bucket_of(u64::MAX), 64);
        assert_eq!(LogHistogram::bucket_floor(0), 0);
        assert_eq!(LogHistogram::bucket_floor(1), 1);
        assert_eq!(LogHistogram::bucket_floor(5), 16);
        // Floors invert bucket_of at bucket boundaries.
        for i in 1..LogHistogram::BUCKETS {
            assert_eq!(LogHistogram::bucket_of(LogHistogram::bucket_floor(i)), i);
        }
    }

    #[test]
    fn histogram_record_merge_and_json() {
        let mut h = LogHistogram::new();
        assert!(h.is_empty());
        for v in [0, 1, 1, 3, 30, 225] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket(0), 1); // the zero
        assert_eq!(h.bucket(1), 2); // the ones
        assert_eq!(h.bucket(2), 1); // 3
        assert_eq!(h.bucket(5), 1); // 30 in [16,32)
        assert_eq!(h.bucket(8), 1); // 225 in [128,256)
        let mut merged = h;
        merged.merge(&h);
        assert_eq!(merged.count(), 12);
        // Sparse JSON: one [floor, count] pair per non-empty bucket.
        let json = h.to_json();
        let pairs = json.as_array().unwrap();
        assert_eq!(pairs.len(), 5);
        assert_eq!(pairs[0].as_array().unwrap()[0].as_u64(), Some(0));
        assert_eq!(pairs[0].as_array().unwrap()[1].as_u64(), Some(1));
    }

    #[test]
    fn every_event_kind_has_a_phase_and_cost() {
        let c = ClusterId(1);
        let b = BlockAddr(7);
        let pg = PageAddr(3);
        let events = [
            Event::CacheHit {
                cluster: c,
                write: false,
            },
            Event::LocalUpgrade {
                cluster: c,
                block: b,
            },
            Event::PeerTransfer {
                cluster: c,
                block: b,
                write: true,
            },
            Event::NcHit {
                cluster: c,
                block: b,
                write: false,
                dirty: false,
            },
            Event::PcHit {
                cluster: c,
                page: pg,
                block: b,
                write: false,
            },
            Event::LocalMiss {
                cluster: c,
                block: b,
            },
            Event::RemoteRead {
                cluster: c,
                block: b,
                capacity: false,
            },
            Event::RemoteWrite {
                cluster: c,
                block: b,
                capacity: true,
            },
            Event::OwnershipRequest {
                cluster: c,
                block: b,
            },
            Event::Invalidation {
                cluster: c,
                block: b,
                copies: 3,
            },
            Event::RemoteWriteback {
                cluster: c,
                block: b,
            },
            Event::AbsorbedDowngrade {
                cluster: c,
                block: b,
            },
            Event::NcCapture {
                cluster: c,
                block: b,
                dirty: true,
                set: None,
            },
            Event::ForcedEviction {
                cluster: c,
                block: b,
            },
            Event::Relocation {
                cluster: c,
                page: pg,
            },
            Event::PageEviction {
                cluster: c,
                page: pg,
                dirty_blocks: 2,
                hits: 5,
            },
            Event::ThresholdAdapted {
                cluster: c,
                threshold: 64,
            },
            Event::Migration {
                cluster: c,
                page: pg,
            },
            Event::Replication {
                cluster: c,
                page: pg,
            },
            Event::ReplicaCollapse {
                cluster: c,
                page: pg,
            },
        ];
        let mut profiler = sram_profiler();
        for (i, e) in events.iter().enumerate() {
            profiler.event(i as u64 + 1, e);
        }
        let counters = profiler.counters();
        assert_eq!(counters.total_events(), events.len() as u64);
        // The partition is total: every event landed in some phase.
        let by_phase: u64 = PHASES.iter().map(|&p| counters.count(p)).sum();
        assert_eq!(by_phase, events.len() as u64);
        // Spot-check the SRAM Table 1/2 costs.
        assert_eq!(counters.cycles(Phase::NcLookup), 1);
        assert_eq!(counters.cycles(Phase::PageCachePath), 10);
        assert_eq!(counters.cycles(Phase::RemoteFill), 60);
        assert_eq!(counters.cycles(Phase::DirectoryProbe), 30 + 3);
        assert_eq!(counters.cycles(Phase::VictimPath), 30 + 1 + 1 + 3);
        assert_eq!(counters.cycles(Phase::Relocation), 3 * 225);
        // All 20 events happened in cluster 1.
        assert_eq!(counters.cluster_events(0), 0);
        assert_eq!(counters.cluster_events(1), events.len() as u64);
    }

    #[test]
    fn primary_phases_are_the_service_classifications() {
        let primaries: Vec<Phase> = PHASES.iter().copied().filter(|p| p.is_primary()).collect();
        assert_eq!(
            primaries,
            [
                Phase::CacheHit,
                Phase::BusTransfer,
                Phase::NcLookup,
                Phase::PageCachePath,
                Phase::LocalFill,
                Phase::RemoteFill
            ]
        );
    }

    #[test]
    fn labels_are_unique() {
        let mut labels: Vec<&str> = PHASES.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), Phase::COUNT);
    }

    #[test]
    fn merge_sums_counts_cycles_and_clusters() {
        let mut a = sram_profiler();
        let mut b = sram_profiler();
        a.event(
            1,
            &Event::NcHit {
                cluster: ClusterId(0),
                block: BlockAddr(1),
                write: false,
                dirty: false,
            },
        );
        b.event(
            1,
            &Event::NcHit {
                cluster: ClusterId(2),
                block: BlockAddr(2),
                write: true,
                dirty: true,
            },
        );
        b.event(
            2,
            &Event::Relocation {
                cluster: ClusterId(2),
                page: PageAddr(0),
            },
        );
        let mut merged = a.counters().clone();
        merged.merge(b.counters());
        assert_eq!(merged.count(Phase::NcLookup), 2);
        assert_eq!(merged.cycles(Phase::NcLookup), 2);
        assert_eq!(merged.count(Phase::Relocation), 1);
        assert_eq!(merged.per_cluster().len(), 3);
        assert_eq!(merged.cluster_events(0), 1);
        assert_eq!(merged.cluster_events(2), 2);
        assert_eq!(merged.total_events(), 3);
        // Merge is commutative.
        let mut other_way = b.counters().clone();
        other_way.merge(a.counters());
        assert_eq!(other_way, merged);
    }

    #[test]
    fn gap_histogram_tracks_inter_arrival() {
        let mut p = sram_profiler();
        let hit = |at: u64, p: &mut PhaseProfiler| {
            p.event(
                at,
                &Event::CacheHit {
                    cluster: ClusterId(0),
                    write: false,
                },
            );
        };
        hit(1, &mut p);
        hit(2, &mut p);
        hit(10, &mut p);
        let gaps = p.counters().gap_histogram(Phase::CacheHit);
        assert_eq!(gaps.count(), 3);
        assert_eq!(gaps.bucket(1), 2); // gaps of 1 (first event: 1 - 0)
        assert_eq!(gaps.bucket(4), 1); // gap of 8
    }

    #[test]
    fn table_and_json_have_all_phases() {
        let mut p = sram_profiler();
        p.event(
            1,
            &Event::PcHit {
                cluster: ClusterId(0),
                page: PageAddr(0),
                block: BlockAddr(0),
                write: false,
            },
        );
        let table = p.counters().render_table(1);
        for phase in &PHASES {
            assert!(table.contains(phase.label()), "missing {}", phase.label());
        }
        assert!(table.contains("total"));
        let json = p.counters().to_json();
        assert_eq!(
            json.get("phases")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(Phase::COUNT)
        );
        assert_eq!(json.get("total_events").and_then(Json::as_u64), Some(1));
        assert_eq!(
            json.get("est_total_cycles").and_then(Json::as_u64),
            Some(10)
        );
        // Round-trips through the hand-rolled parser byte-identically.
        let text = json.render();
        assert_eq!(Json::parse(&text).unwrap().render(), text);
    }
}
