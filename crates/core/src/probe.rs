//! Zero-overhead-when-disabled observability: the [`Probe`] trait, the
//! structured [`Event`] taxonomy, and epoch-sampled [`EpochSample`] time
//! series.
//!
//! # Design
//!
//! [`System`](crate::System) is generic over a [`Probe`]. The default,
//! [`NoProbe`], has `ENABLED = false`; every emission site is guarded by
//! `if P::ENABLED`, a constant the compiler folds away, so the
//! un-instrumented simulator is byte-for-byte the uninstrumented hot loop
//! — no dynamic dispatch, no branch, no formatting. Enabling observation
//! is a type choice (`System::with_probe`), not a runtime flag.
//!
//! # Event taxonomy
//!
//! Events mirror the paper's accounting, one variant per countable
//! occurrence (see [`Event`]): processor-cache hits and upgrades, in-bus
//! peer transfers, network-cache hits/captures/victimizations, page-cache
//! hits, directory transactions (remote reads/writes/ownership requests),
//! invalidations, write-backs and absorbed downgrades, page relocations
//! and evictions, adaptive-threshold adjustments, and the Origin-style
//! migration/replication actions. Each event carries the cluster it
//! happened in and the block/page it concerns, so sinks can build
//! per-cluster and per-page views without re-simulating.
//!
//! # Epochs
//!
//! Independent of per-event tracing, a system with a configured epoch
//! window (`set_epoch_window`) snapshots its counters every N shared
//! references and hands the probe the *delta* ([`EpochSample`]): the
//! [`Metrics`] gained this epoch plus per-cluster deltas and the live
//! relocation thresholds. Summing all epoch deltas reproduces the final
//! aggregate exactly — an invariant the integration tests assert.

use dsm_types::{BlockAddr, ClusterId, PageAddr};

use crate::metrics::{ClusterCounts, Metrics};

/// One structured observation from the simulator core.
///
/// Variants are `Copy` and carry only ids/addresses, so emitting one is a
/// handful of register moves even for recording sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Event {
    /// A reference hit in the issuing processor's own cache.
    CacheHit {
        /// Cluster issuing the reference.
        cluster: ClusterId,
        /// `true` for a write hit.
        write: bool,
    },
    /// A write upgrade satisfied without a directory transaction.
    LocalUpgrade {
        /// Cluster issuing the write.
        cluster: ClusterId,
        /// Block upgraded.
        block: BlockAddr,
    },
    /// A miss supplied cache-to-cache by a peer on the cluster bus.
    PeerTransfer {
        /// Cluster whose bus carried the transfer.
        cluster: ClusterId,
        /// Block transferred.
        block: BlockAddr,
        /// `true` for a write miss.
        write: bool,
    },
    /// A remote-data miss served by the cluster's network cache.
    NcHit {
        /// Cluster whose NC hit.
        cluster: ClusterId,
        /// Block served.
        block: BlockAddr,
        /// `true` for a write miss.
        write: bool,
        /// The NC copy was dirty (cluster owns the block).
        dirty: bool,
    },
    /// A remote-data miss served by the cluster's page cache.
    PcHit {
        /// Cluster whose page cache hit.
        cluster: ClusterId,
        /// Resident page.
        page: PageAddr,
        /// Block served.
        block: BlockAddr,
        /// `true` for a write miss.
        write: bool,
    },
    /// A miss to local data served by home memory (not a remote event).
    LocalMiss {
        /// Home (and issuing) cluster.
        cluster: ClusterId,
        /// Block served.
        block: BlockAddr,
    },
    /// A read miss serviced by a remote home via the directory.
    RemoteRead {
        /// Cluster that missed.
        cluster: ClusterId,
        /// Block read.
        block: BlockAddr,
        /// Presence bit was already set (capacity/conflict miss).
        capacity: bool,
    },
    /// A write miss/upgrade requiring a remote directory transaction.
    RemoteWrite {
        /// Cluster that missed.
        cluster: ClusterId,
        /// Block written.
        block: BlockAddr,
        /// Presence bit was already set (capacity/conflict miss).
        capacity: bool,
    },
    /// An ownership-only directory transaction (data supplied in-cluster).
    OwnershipRequest {
        /// Cluster acquiring exclusivity.
        cluster: ClusterId,
        /// Block involved.
        block: BlockAddr,
    },
    /// Directory-ordered invalidations applied at one cluster.
    Invalidation {
        /// Cluster receiving the invalidation.
        cluster: ClusterId,
        /// Block invalidated.
        block: BlockAddr,
        /// Processor-cache copies destroyed (NC/PC copies not included).
        copies: u32,
    },
    /// A dirty block crossed the network back to its remote home.
    RemoteWriteback {
        /// Cluster writing back.
        cluster: ClusterId,
        /// Block written back.
        block: BlockAddr,
    },
    /// A dirty downgrade absorbed by the NC or page cache instead of
    /// updating the remote home.
    AbsorbedDowngrade {
        /// Cluster absorbing.
        cluster: ClusterId,
        /// Block downgraded.
        block: BlockAddr,
    },
    /// A victim block accepted by the network cache (MESIR `R` capture
    /// when clean).
    NcCapture {
        /// Cluster whose NC captured.
        cluster: ClusterId,
        /// Block captured.
        block: BlockAddr,
        /// The victim was dirty.
        dirty: bool,
        /// Victim-NC set index, when the NC is set-indexed.
        set: Option<usize>,
    },
    /// A block forcibly evicted from processor caches (NC inclusion or
    /// page re-mapping).
    ForcedEviction {
        /// Cluster evicting.
        cluster: ClusterId,
        /// Block evicted.
        block: BlockAddr,
    },
    /// A page relocated into a cluster's page cache.
    Relocation {
        /// Cluster gaining the page.
        cluster: ClusterId,
        /// Page relocated.
        page: PageAddr,
    },
    /// A page lost its page-cache frame to a new relocation.
    PageEviction {
        /// Cluster losing the page.
        cluster: ClusterId,
        /// Page evicted.
        page: PageAddr,
        /// Dirty blocks written back as part of the eviction.
        dirty_blocks: u32,
        /// The frame's hit count at eviction (thrashing signal).
        hits: u32,
    },
    /// The adaptive policy detected thrashing and raised a threshold.
    ThresholdAdapted {
        /// Cluster whose threshold changed.
        cluster: ClusterId,
        /// The new (raised) relocation threshold.
        threshold: u32,
    },
    /// An Origin-style page migration to a new home.
    Migration {
        /// The page's new home cluster.
        cluster: ClusterId,
        /// Page migrated.
        page: PageAddr,
    },
    /// A read-only page replicated into a cluster's local memory.
    Replication {
        /// Cluster gaining the replica.
        cluster: ClusterId,
        /// Page replicated.
        page: PageAddr,
    },
    /// A write collapsed a page's replica set.
    ReplicaCollapse {
        /// Cluster whose write collapsed the replicas.
        cluster: ClusterId,
        /// Page collapsed.
        page: PageAddr,
    },
}

impl Event {
    /// A stable snake_case tag for the variant (JSONL `"ev"` field,
    /// histogram keys).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Event::CacheHit { .. } => "cache_hit",
            Event::LocalUpgrade { .. } => "local_upgrade",
            Event::PeerTransfer { .. } => "peer_transfer",
            Event::NcHit { .. } => "nc_hit",
            Event::PcHit { .. } => "pc_hit",
            Event::LocalMiss { .. } => "local_miss",
            Event::RemoteRead { .. } => "remote_read",
            Event::RemoteWrite { .. } => "remote_write",
            Event::OwnershipRequest { .. } => "ownership_request",
            Event::Invalidation { .. } => "invalidation",
            Event::RemoteWriteback { .. } => "remote_writeback",
            Event::AbsorbedDowngrade { .. } => "absorbed_downgrade",
            Event::NcCapture { .. } => "nc_capture",
            Event::ForcedEviction { .. } => "forced_eviction",
            Event::Relocation { .. } => "relocation",
            Event::PageEviction { .. } => "page_eviction",
            Event::ThresholdAdapted { .. } => "threshold_adapted",
            Event::Migration { .. } => "migration",
            Event::Replication { .. } => "replication",
            Event::ReplicaCollapse { .. } => "replica_collapse",
        }
    }

    /// The cluster the event happened in (every variant has one).
    #[must_use]
    pub fn cluster(&self) -> ClusterId {
        match *self {
            Event::CacheHit { cluster, .. }
            | Event::LocalUpgrade { cluster, .. }
            | Event::PeerTransfer { cluster, .. }
            | Event::NcHit { cluster, .. }
            | Event::PcHit { cluster, .. }
            | Event::LocalMiss { cluster, .. }
            | Event::RemoteRead { cluster, .. }
            | Event::RemoteWrite { cluster, .. }
            | Event::OwnershipRequest { cluster, .. }
            | Event::Invalidation { cluster, .. }
            | Event::RemoteWriteback { cluster, .. }
            | Event::AbsorbedDowngrade { cluster, .. }
            | Event::NcCapture { cluster, .. }
            | Event::ForcedEviction { cluster, .. }
            | Event::Relocation { cluster, .. }
            | Event::PageEviction { cluster, .. }
            | Event::ThresholdAdapted { cluster, .. }
            | Event::Migration { cluster, .. }
            | Event::Replication { cluster, .. }
            | Event::ReplicaCollapse { cluster, .. } => cluster,
        }
    }

    /// The page the event concerns, when it is page-grained.
    #[must_use]
    pub fn page(&self) -> Option<PageAddr> {
        match *self {
            Event::PcHit { page, .. }
            | Event::Relocation { page, .. }
            | Event::PageEviction { page, .. }
            | Event::Migration { page, .. }
            | Event::Replication { page, .. }
            | Event::ReplicaCollapse { page, .. } => Some(page),
            _ => None,
        }
    }
}

/// One epoch of the sampled time series: the counters gained over a
/// window of shared references.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSample {
    /// Epoch number, 0-based.
    pub index: u64,
    /// First shared reference of the epoch (0-based, inclusive).
    pub start_ref: u64,
    /// One past the last shared reference of the epoch.
    pub end_ref: u64,
    /// Counters gained during this epoch (`Metrics::merge` of all epochs
    /// reproduces the run aggregate).
    pub delta: Metrics,
    /// Per-cluster counters gained during this epoch.
    pub per_cluster: Vec<ClusterCounts>,
    /// Each cluster's relocation threshold at epoch end (Fig-6 dynamics).
    pub thresholds: Vec<u32>,
}

impl EpochSample {
    /// References in this epoch.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.end_ref - self.start_ref
    }

    /// Whether the epoch is empty (only possible for a trailing flush).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end_ref == self.start_ref
    }
}

/// The observer interface the simulator core is generic over.
///
/// Implementations receive every [`Event`] and every [`EpochSample`]; the
/// associated `ENABLED` constant lets the compiler erase all emission
/// sites when observation is off (see [`NoProbe`]).
pub trait Probe {
    /// Whether emission sites are compiled in. Implementations that
    /// observe must leave this `true` (the default).
    const ENABLED: bool = true;

    /// Called at every structured event. `at` is the number of shared
    /// references processed so far (1-based: the current reference).
    fn event(&mut self, at: u64, event: &Event) {
        let _ = (at, event);
    }

    /// Called at every closed epoch (and once more by
    /// [`System::finish`](crate::System::finish) for the partial tail).
    fn epoch(&mut self, sample: &EpochSample) {
        let _ = sample;
    }
}

/// The default probe: observation off, emission sites compiled away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoProbe;

impl Probe for NoProbe {
    const ENABLED: bool = false;
}

/// Fans every observation out to two probes (e.g. a [`StatsSink`]
/// alongside a JSONL event log).
///
/// [`StatsSink`]: crate::obs::StatsSink
#[derive(Debug, Clone, Default)]
pub struct Tee<A, B>(
    /// First receiver.
    pub A,
    /// Second receiver.
    pub B,
);

impl<A: Probe, B: Probe> Probe for Tee<A, B> {
    const ENABLED: bool = true;

    fn event(&mut self, at: u64, event: &Event) {
        self.0.event(at, event);
        self.1.event(at, event);
    }

    fn epoch(&mut self, sample: &EpochSample) {
        self.0.epoch(sample);
        self.1.epoch(sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noprobe_is_disabled() {
        // Read through a generic fn so the assertion isn't on a literal
        // constant: this is exactly how `System::emit` sees the flag.
        fn enabled<P: Probe>(_: &P) -> bool {
            P::ENABLED
        }
        assert!(!enabled(&NoProbe));
        assert!(enabled(&crate::obs::StatsSink::new()));
    }

    #[test]
    fn kinds_are_unique() {
        let events = [
            Event::CacheHit {
                cluster: ClusterId(0),
                write: false,
            },
            Event::LocalUpgrade {
                cluster: ClusterId(0),
                block: BlockAddr(0),
            },
            Event::Relocation {
                cluster: ClusterId(0),
                page: PageAddr(0),
            },
            Event::ThresholdAdapted {
                cluster: ClusterId(0),
                threshold: 40,
            },
        ];
        let mut kinds: Vec<&str> = events.iter().map(Event::kind).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
    }

    #[test]
    fn tee_forwards_to_both() {
        #[derive(Default)]
        struct Count(u64, u64);
        impl Probe for Count {
            fn event(&mut self, _at: u64, _e: &Event) {
                self.0 += 1;
            }
            fn epoch(&mut self, _s: &EpochSample) {
                self.1 += 1;
            }
        }
        let mut tee = Tee(Count::default(), Count::default());
        tee.event(
            1,
            &Event::CacheHit {
                cluster: ClusterId(0),
                write: false,
            },
        );
        tee.epoch(&EpochSample {
            index: 0,
            start_ref: 0,
            end_ref: 1,
            delta: Metrics::new(),
            per_cluster: vec![],
            thresholds: vec![],
        });
        assert_eq!((tee.0 .0, tee.0 .1), (1, 1));
        assert_eq!((tee.1 .0, tee.1 .1), (1, 1));
    }
}
