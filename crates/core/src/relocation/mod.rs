//! Page-relocation control: *where the counters live*.
//!
//! R-NUMA attaches capacity-miss counters to directory entries (one per
//! page per cluster — accurate but non-scalable, full-map-only; see
//! `dsm_directory::RnumaCounters`). The paper's alternative attaches
//! **victimization counters to the sets of the network victim cache**
//! ([`VxpCounters`]): scalable, directory-agnostic, and colocated with the
//! implicit relocation candidates (the tags in the set).

mod vxp;

pub use vxp::VxpCounters;
