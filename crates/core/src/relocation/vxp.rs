//! Per-set victimization counters attached to the network victim cache
//! (the paper's `vxp` mechanism, Section 3.4).

/// One saturating victimization counter per victim-NC set.
///
/// Every capacity miss is preceded by a victimization somewhere in the
/// cluster hierarchy, so counting arrivals at the victim NC approximates
/// R-NUMA's capacity-miss counts without touching the directory. With the
/// NC indexed by page address, all blocks of a page hit the same counter,
/// and when a counter crosses the node's threshold the set's
/// *predominant tag* (see `VictimNc::predominant_page`) names the page to
/// relocate.
///
/// Scalability: the counter count equals the NC set count (64 for a 16-KB,
/// 4-way NC) — independent of the machine size and of the number of pages,
/// versus R-NUMA's `clusters x pages` bytes.
///
/// # Example
///
/// ```
/// use dsm_core::relocation::VxpCounters;
/// let mut c = VxpCounters::new(4);
/// assert_eq!(c.record_victimization(2), 1);
/// assert_eq!(c.record_victimization(2), 2);
/// c.reset(2);
/// assert_eq!(c.count(2), 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VxpCounters {
    counts: Vec<u32>,
}

impl VxpCounters {
    /// Creates counters for an NC of `sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero.
    #[must_use]
    pub fn new(sets: usize) -> Self {
        assert!(sets > 0, "need at least one set");
        VxpCounters {
            counts: vec![0; sets],
        }
    }

    /// Number of counters (one per set).
    #[must_use]
    pub fn sets(&self) -> usize {
        self.counts.len()
    }

    /// Records a victimization arriving at `set`; returns the new count.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn record_victimization(&mut self, set: usize) -> u32 {
        let c = &mut self.counts[set];
        *c = c.saturating_add(1);
        *c
    }

    /// The paper's optional refinement: decrement on a late invalidation
    /// when no cache or NC in the node holds the block (the next miss will
    /// be a coherence miss, so the earlier victimization should not count).
    /// Saturates at zero. Returns the new count.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn record_late_invalidation(&mut self, set: usize) -> u32 {
        let c = &mut self.counts[set];
        *c = c.saturating_sub(1);
        *c
    }

    /// The current count for `set`.
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    #[must_use]
    pub fn count(&self, set: usize) -> u32 {
        self.counts[set]
    }

    /// Resets `set`'s counter (after a relocation decision).
    ///
    /// # Panics
    ///
    /// Panics if `set` is out of range.
    pub fn reset(&mut self, set: usize) {
        self.counts[set] = 0;
    }

    /// Hardware cost in counters — the scalability claim: equal to the NC
    /// set count, independent of machine and memory size.
    #[must_use]
    pub fn counter_cost(&self) -> usize {
        self.counts.len()
    }

    /// A snapshot of every per-set counter, for the profiling view.
    #[must_use]
    pub fn counts(&self) -> &[u32] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_per_set_independently() {
        let mut c = VxpCounters::new(3);
        c.record_victimization(0);
        c.record_victimization(0);
        c.record_victimization(2);
        assert_eq!(c.count(0), 2);
        assert_eq!(c.count(1), 0);
        assert_eq!(c.count(2), 1);
    }

    #[test]
    fn reset_clears_one_set() {
        let mut c = VxpCounters::new(2);
        c.record_victimization(0);
        c.record_victimization(1);
        c.reset(0);
        assert_eq!(c.count(0), 0);
        assert_eq!(c.count(1), 1);
    }

    #[test]
    fn late_invalidation_decrements_saturating() {
        let mut c = VxpCounters::new(1);
        assert_eq!(c.record_late_invalidation(0), 0);
        c.record_victimization(0);
        c.record_victimization(0);
        assert_eq!(c.record_late_invalidation(0), 1);
    }

    #[test]
    fn cost_is_set_count() {
        assert_eq!(VxpCounters::new(64).counter_cost(), 64);
    }

    #[test]
    #[should_panic(expected = "at least one set")]
    fn zero_sets_panics() {
        let _ = VxpCounters::new(0);
    }
}
