//! Convenience harness: run a workload on a system, collect a report.

use dsm_trace::{Scale, Workload};
use dsm_types::{ConfigError, Geometry, Topology};
use serde::{Deserialize, Serialize};

use crate::config::SystemSpec;
use crate::metrics::Metrics;
use crate::system::System;

/// The result of running one workload on one system configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report {
    /// The configuration name (`base`, `vb16`, `ncp5`, ...).
    pub system: String,
    /// The workload name (`fft`, `radix`, ...).
    pub workload: String,
    /// Shared-data footprint of the workload in bytes.
    pub data_bytes: u64,
    /// Trace length in references.
    pub refs: u64,
    /// Raw event counts.
    pub metrics: Metrics,
    /// Cluster read miss ratio (fraction of shared refs).
    pub read_miss_ratio: f64,
    /// Cluster write miss ratio.
    pub write_miss_ratio: f64,
    /// Relocation overhead in equivalent miss ratio (x225/30).
    pub relocation_overhead: f64,
    /// Remote read stall, bus cycles (Equation 1).
    pub remote_read_stall: u64,
    /// Remote data traffic, block transfers.
    pub remote_traffic: u64,
}

/// Runs `workload` at `scale` on a system built from `spec` with the
/// paper's topology and geometry.
///
/// # Errors
///
/// Returns [`ConfigError`] if the spec is invalid for this workload (e.g.
/// a fraction page cache too small to hold one page).
///
/// # Example
///
/// ```
/// use dsm_core::runner::run_workload;
/// use dsm_core::SystemSpec;
/// use dsm_trace::{Scale, workloads::Fft, Workload};
///
/// let fft = Fft::with_points(1 << 8);
/// let report = run_workload(&SystemSpec::vb(), &fft, Scale::full())?;
/// assert!(report.refs > 0);
/// # Ok::<(), dsm_types::ConfigError>(())
/// ```
pub fn run_workload(
    spec: &SystemSpec,
    workload: &dyn Workload,
    scale: Scale,
) -> Result<Report, ConfigError> {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    run_workload_on(spec, workload, scale, topo, geo)
}

/// [`run_workload`] with explicit topology/geometry.
///
/// # Errors
///
/// As [`run_workload`].
pub fn run_workload_on(
    spec: &SystemSpec,
    workload: &dyn Workload,
    scale: Scale,
    topo: Topology,
    geo: Geometry,
) -> Result<Report, ConfigError> {
    let data_bytes = workload.shared_bytes();
    let mut system = System::new(spec.clone(), topo, geo, data_bytes)?;
    let trace = workload.generate(&topo, scale);
    let refs = trace.len() as u64;
    system.run(trace);
    Ok(report_of(&system, workload.name(), data_bytes, refs))
}

/// Runs a pre-generated trace (so several systems can share one trace —
/// how the paper compares configurations).
///
/// # Errors
///
/// As [`run_workload`].
pub fn run_trace(
    spec: &SystemSpec,
    workload_name: &str,
    data_bytes: u64,
    trace: &[dsm_types::MemRef],
    topo: Topology,
    geo: Geometry,
) -> Result<Report, ConfigError> {
    let mut system = System::new(spec.clone(), topo, geo, data_bytes)?;
    system.run(trace.iter().copied());
    Ok(report_of(&system, workload_name, data_bytes, trace.len() as u64))
}

fn report_of(system: &System, workload: &str, data_bytes: u64, refs: u64) -> Report {
    let m = system.metrics().clone();
    let model = system.model();
    Report {
        system: system.name().to_owned(),
        workload: workload.to_owned(),
        data_bytes,
        refs,
        read_miss_ratio: m.read_miss_ratio(),
        write_miss_ratio: m.write_miss_ratio(),
        relocation_overhead: m.relocation_overhead_ratio(model),
        remote_read_stall: m.remote_read_stall(model),
        remote_traffic: m.remote_traffic(),
        metrics: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemSpec;
    use dsm_trace::workloads::Fft;

    #[test]
    fn run_produces_consistent_report() {
        let fft = Fft::with_points(1 << 8);
        let r = run_workload(&SystemSpec::base(), &fft, Scale::full()).unwrap();
        assert_eq!(r.system, "base");
        assert_eq!(r.workload, "fft");
        assert_eq!(r.refs, r.metrics.shared_refs);
        assert!(r.read_miss_ratio >= 0.0);
        assert_eq!(r.relocation_overhead, 0.0);
    }

    #[test]
    fn shared_trace_comparison_is_fair() {
        use dsm_types::{Geometry, Topology};
        let fft = Fft::with_points(1 << 8);
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let trace = fft.generate(&topo, Scale::full());
        let a = run_trace(&SystemSpec::base(), "fft", fft.shared_bytes(), &trace, topo, geo)
            .unwrap();
        let b = run_trace(&SystemSpec::vb(), "fft", fft.shared_bytes(), &trace, topo, geo)
            .unwrap();
        assert_eq!(a.refs, b.refs);
        // A victim NC can only help the cluster miss ratio.
        assert!(b.read_miss_ratio <= a.read_miss_ratio + 1e-12);
    }
}
