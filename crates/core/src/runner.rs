//! Convenience harness: run a workload on a system, collect a report.

use crate::config::SystemSpec;
use crate::metrics::Metrics;
use crate::obs::{json::Json, metrics_json};
use crate::probe::Probe;
use crate::shard::ShardTuning;
use crate::system::System;
use dsm_trace::{Scale, SharedTrace, Workload};
use dsm_types::{ConfigError, DsmError, Geometry, Topology};

/// The result of running one workload on one system configuration.
///
/// Equality compares only the simulation outcome: [`Report::wall_s`] is
/// host timing, not simulated state, and is excluded so that repeated
/// (or parallel) runs of the same point compare equal.
#[derive(Debug, Clone)]
pub struct Report {
    /// The configuration name (`base`, `vb16`, `ncp5`, ...).
    pub system: String,
    /// The workload name (`fft`, `radix`, ...).
    pub workload: String,
    /// Shared-data footprint of the workload in bytes.
    pub data_bytes: u64,
    /// Trace length in references.
    pub refs: u64,
    /// Raw event counts.
    pub metrics: Metrics,
    /// Cluster read miss ratio (fraction of shared refs).
    pub read_miss_ratio: f64,
    /// Cluster write miss ratio.
    pub write_miss_ratio: f64,
    /// Relocation overhead in equivalent miss ratio (x225/30).
    pub relocation_overhead: f64,
    /// Remote read stall, bus cycles (Equation 1).
    pub remote_read_stall: u64,
    /// Remote data traffic, block transfers.
    pub remote_traffic: u64,
    /// Directory storage cost per block in bits (full map: O(clusters);
    /// Dir-i-B: O(pointers)).
    pub directory_bits_per_block: u32,
    /// Wall-clock seconds spent simulating this point (0.0 when the
    /// report was assembled by [`report_of`] outside a timed runner).
    pub wall_s: f64,
}

impl PartialEq for Report {
    fn eq(&self, other: &Report) -> bool {
        // Exhaustive destructuring so a new field cannot silently escape
        // the comparison; `wall_s` is deliberately ignored (see above).
        let Report {
            system,
            workload,
            data_bytes,
            refs,
            metrics,
            read_miss_ratio,
            write_miss_ratio,
            relocation_overhead,
            remote_read_stall,
            remote_traffic,
            directory_bits_per_block,
            wall_s: _,
        } = self;
        *system == other.system
            && *workload == other.workload
            && *data_bytes == other.data_bytes
            && *refs == other.refs
            && *metrics == other.metrics
            && *read_miss_ratio == other.read_miss_ratio
            && *write_miss_ratio == other.write_miss_ratio
            && *relocation_overhead == other.relocation_overhead
            && *remote_read_stall == other.remote_read_stall
            && *remote_traffic == other.remote_traffic
            && *directory_bits_per_block == other.directory_bits_per_block
    }
}

impl Report {
    /// Serializes the report — identity, figures of merit, and the full
    /// metric breakdown — as a JSON object for `results/*.json` exports.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .set("system", self.system.as_str())
            .set("workload", self.workload.as_str())
            .set("data_bytes", self.data_bytes)
            .set("refs", self.refs)
            .set("read_miss_ratio", self.read_miss_ratio)
            .set("write_miss_ratio", self.write_miss_ratio)
            .set("relocation_overhead", self.relocation_overhead)
            .set("remote_read_stall", self.remote_read_stall)
            .set("remote_traffic", self.remote_traffic)
            .set("directory_bits_per_block", self.directory_bits_per_block)
            .set("metrics", metrics_json(&self.metrics))
            .set("wall_s", self.wall_s)
    }

    /// Rebuilds a report from its [`Report::to_json`] serialization — the
    /// inverse used when a sweep journal is resumed. Re-serializing the
    /// result is byte-identical to the original, so journaled points merge
    /// into exports indistinguishably from freshly-run ones.
    ///
    /// # Errors
    ///
    /// Returns [`DsmError`] (bad input) if a field is missing, has the
    /// wrong type, or a metrics counter name is unknown.
    pub fn from_json(json: &Json) -> Result<Report, DsmError> {
        fn str_field(json: &Json, key: &str) -> Result<String, DsmError> {
            json.get(key)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| DsmError::bad_input(format!("missing string field '{key}'")))
        }
        fn u64_field(json: &Json, key: &str) -> Result<u64, DsmError> {
            json.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| DsmError::bad_input(format!("missing integer field '{key}'")))
        }
        fn f64_field(json: &Json, key: &str) -> Result<f64, DsmError> {
            json.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| DsmError::bad_input(format!("missing number field '{key}'")))
        }
        let mut metrics = Metrics::new();
        let entries = json
            .get("metrics")
            .and_then(Json::as_object)
            .ok_or_else(|| DsmError::bad_input("missing object field 'metrics'"))?;
        for (name, value) in entries {
            let value = value
                .as_u64()
                .ok_or_else(|| DsmError::bad_input(format!("metric '{name}' is not a counter")))?;
            if !metrics.set_field(name, value) {
                return Err(DsmError::bad_input(format!("unknown metric '{name}'")));
            }
        }
        let bits = u64_field(json, "directory_bits_per_block")?;
        Ok(Report {
            system: str_field(json, "system")?,
            workload: str_field(json, "workload")?,
            data_bytes: u64_field(json, "data_bytes")?,
            refs: u64_field(json, "refs")?,
            metrics,
            read_miss_ratio: f64_field(json, "read_miss_ratio")?,
            write_miss_ratio: f64_field(json, "write_miss_ratio")?,
            relocation_overhead: f64_field(json, "relocation_overhead")?,
            remote_read_stall: u64_field(json, "remote_read_stall")?,
            remote_traffic: u64_field(json, "remote_traffic")?,
            directory_bits_per_block: u32::try_from(bits)
                .map_err(|_| DsmError::bad_input("directory_bits_per_block out of range"))?,
            wall_s: f64_field(json, "wall_s")?,
        })
    }
}

// Reports cross sweep-worker boundaries by value; keep them thread-safe.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Report>();
};

/// Runs `workload` at `scale` on a system built from `spec` with the
/// paper's topology and geometry.
///
/// # Errors
///
/// Returns [`ConfigError`] if the spec is invalid for this workload (e.g.
/// a fraction page cache too small to hold one page).
///
/// # Example
///
/// ```
/// use dsm_core::runner::run_workload;
/// use dsm_core::SystemSpec;
/// use dsm_trace::{Scale, workloads::Fft, Workload};
///
/// let fft = Fft::with_points(1 << 8);
/// let report = run_workload(&SystemSpec::vb(), &fft, Scale::full())?;
/// assert!(report.refs > 0);
/// # Ok::<(), dsm_types::ConfigError>(())
/// ```
pub fn run_workload(
    spec: &SystemSpec,
    workload: &dyn Workload,
    scale: Scale,
) -> Result<Report, ConfigError> {
    let topo = Topology::paper_default();
    let geo = Geometry::paper_default();
    run_workload_on(spec, workload, scale, topo, geo)
}

/// [`run_workload`] with explicit topology/geometry.
///
/// # Errors
///
/// As [`run_workload`].
pub fn run_workload_on(
    spec: &SystemSpec,
    workload: &dyn Workload,
    scale: Scale,
    topo: Topology,
    geo: Geometry,
) -> Result<Report, ConfigError> {
    let data_bytes = workload.shared_bytes();
    let mut system = System::new(spec.clone(), topo, geo, data_bytes)?;
    let refs = workload.generate(&topo, scale);
    let trace = SharedTrace::from_refs(topo, geo, &refs);
    let t0 = std::time::Instant::now();
    system.run_shared(&trace);
    let mut report = report_of(&system, workload.name(), data_bytes, trace.len() as u64);
    report.wall_s = t0.elapsed().as_secs_f64();
    Ok(report)
}

/// Runs a pre-built columnar trace (so several systems can share one
/// trace and its precomputed decomposition — how the paper compares
/// configurations). The system is built for the trace's topology and
/// geometry.
///
/// # Errors
///
/// As [`run_workload`].
pub fn run_trace(
    spec: &SystemSpec,
    workload_name: &str,
    data_bytes: u64,
    trace: &SharedTrace,
) -> Result<Report, ConfigError> {
    let mut system = System::new(
        spec.clone(),
        *trace.topology(),
        *trace.geometry(),
        data_bytes,
    )?;
    let t0 = std::time::Instant::now();
    system.run_shared(trace);
    let mut report = report_of(&system, workload_name, data_bytes, trace.len() as u64);
    report.wall_s = t0.elapsed().as_secs_f64();
    Ok(report)
}

/// [`run_trace`] replaying through [`System::run_sharded`]: the replay is
/// partitioned across up to `shard_workers` threads when the trace's
/// sharing structure allows it, falling back to the single-threaded
/// oracle path otherwise (see the [`crate::shard`] module docs). The
/// report is identical to [`run_trace`]'s for any worker count; only
/// [`Report::wall_s`] (excluded from comparisons and exports) differs.
///
/// # Errors
///
/// As [`run_workload`].
pub fn run_trace_sharded(
    spec: &SystemSpec,
    workload_name: &str,
    data_bytes: u64,
    trace: &SharedTrace,
    shard_workers: usize,
) -> Result<Report, ConfigError> {
    let mut system = System::new(
        spec.clone(),
        *trace.topology(),
        *trace.geometry(),
        data_bytes,
    )?;
    // Revalidate the mapped backing file at the shard handoff: the
    // replay is about to fan the mapping out across worker threads, and
    // a file truncated since open would SIGBUS there instead of
    // erroring cleanly here (exit code 3 at the CLI).
    trace
        .revalidate_mapping()
        .map_err(|e| ConfigError::new(format!("trace mapping for {workload_name}: {e}")))?;
    let t0 = std::time::Instant::now();
    system.run_sharded_with(trace, shard_workers, ShardTuning::from_env());
    if let Some(r) = system.shard_report() {
        // Stderr only: the shard-plan line is the no-silent-fallback
        // probe CI greps for, and must stay out of the golden stdout.
        // `degraded` is appended so supervised recovery is visible to
        // the chaos harness without disturbing the grepped prefix.
        eprintln!(
            "shard plan [{workload_name}/{}]: engine={:?} workers={} rounds={} parallel={} serial={} degraded={}",
            spec.name,
            r.engine,
            r.workers,
            r.parallel_rounds,
            r.parallel_refs,
            r.serial_refs,
            r.degraded.map_or("none", |f| f.label())
        );
    }
    let mut report = report_of(&system, workload_name, data_bytes, trace.len() as u64);
    report.wall_s = t0.elapsed().as_secs_f64();
    Ok(report)
}

/// [`run_trace`] with an attached [`Probe`]: the trace runs through an
/// instrumented system and the probe is returned alongside the report for
/// inspection (event counts, epoch series, a drained JSONL sink, ...).
///
/// `epoch_window` enables the epoch sampler: every `window` shared
/// references the probe receives an [`crate::EpochSample`] carrying the
/// delta [`Metrics`] and per-cluster counts for that window. The final
/// partial epoch is flushed before the report is taken.
///
/// # Errors
///
/// As [`run_workload`].
pub fn run_trace_probed<P: Probe>(
    spec: &SystemSpec,
    workload_name: &str,
    data_bytes: u64,
    trace: &SharedTrace,
    probe: P,
    epoch_window: Option<u64>,
) -> Result<(Report, P), ConfigError> {
    let mut system = System::with_probe(
        spec.clone(),
        *trace.topology(),
        *trace.geometry(),
        data_bytes,
        probe,
    )?;
    if let Some(window) = epoch_window {
        system.set_epoch_window(window);
    }
    let t0 = std::time::Instant::now();
    system.run_shared(trace);
    system.finish();
    let mut report = report_of(&system, workload_name, data_bytes, trace.len() as u64);
    report.wall_s = t0.elapsed().as_secs_f64();
    let (probe, _) = system.into_probe();
    Ok((report, probe))
}

/// Builds a [`Report`] from a finished system (useful when the caller
/// keeps the [`System`] alive to inspect per-cluster state afterwards).
/// The caller owns timing, so [`Report::wall_s`] is left at 0.0.
#[must_use]
pub fn report_of<P: Probe>(
    system: &System<P>,
    workload: &str,
    data_bytes: u64,
    refs: u64,
) -> Report {
    let m = *system.metrics();
    let model = system.model();
    Report {
        system: system.name().to_owned(),
        workload: workload.to_owned(),
        data_bytes,
        refs,
        read_miss_ratio: m.read_miss_ratio(),
        write_miss_ratio: m.write_miss_ratio(),
        relocation_overhead: m.relocation_overhead_ratio(model),
        remote_read_stall: m.remote_read_stall(model),
        remote_traffic: m.remote_traffic(),
        directory_bits_per_block: system.directory_bits_per_block(),
        metrics: m,
        wall_s: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemSpec;
    use dsm_trace::workloads::Fft;

    #[test]
    fn run_produces_consistent_report() {
        let fft = Fft::with_points(1 << 8);
        let r = run_workload(&SystemSpec::base(), &fft, Scale::full()).unwrap();
        assert_eq!(r.system, "base");
        assert_eq!(r.workload, "fft");
        assert_eq!(r.refs, r.metrics.shared_refs);
        assert!(r.read_miss_ratio >= 0.0);
        assert_eq!(r.relocation_overhead, 0.0);
        // Full map on the paper's 8 clusters: 8 presence bits + owner.
        assert_eq!(r.directory_bits_per_block, 8 + 7);
    }

    #[test]
    fn report_carries_directory_cost() {
        let fft = Fft::with_points(1 << 8);
        let spec = SystemSpec::base().with_limited_directory(4);
        let r = run_workload(&spec, &fft, Scale::full()).unwrap();
        // Dir-4-B: four 6-bit pointers + count + broadcast + owner.
        assert_eq!(r.directory_bits_per_block, 4 * 6 + 12);
    }

    #[test]
    fn shared_trace_comparison_is_fair() {
        use dsm_types::{Geometry, Topology};
        let fft = Fft::with_points(1 << 8);
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let trace = SharedTrace::from_refs(topo, geo, &fft.generate(&topo, Scale::full()));
        let a = run_trace(&SystemSpec::base(), "fft", fft.shared_bytes(), &trace).unwrap();
        let b = run_trace(&SystemSpec::vb(), "fft", fft.shared_bytes(), &trace).unwrap();
        assert_eq!(a.refs, b.refs);
        // A victim NC can only help the cluster miss ratio.
        assert!(b.read_miss_ratio <= a.read_miss_ratio + 1e-12);
    }

    #[test]
    fn sharded_run_matches_oracle_report() {
        use dsm_types::{Geometry, Topology};
        let fft = Fft::with_points(1 << 8);
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let trace = SharedTrace::from_refs(topo, geo, &fft.generate(&topo, Scale::full()));
        let a = run_trace(&SystemSpec::vb(), "fft", fft.shared_bytes(), &trace).unwrap();
        let b = run_trace_sharded(&SystemSpec::vb(), "fft", fft.shared_bytes(), &trace, 4).unwrap();
        // Identical whether the plan sharded or fell back to the oracle.
        assert_eq!(a, b);
    }

    #[test]
    fn probed_run_matches_unprobed_and_collects_epochs() {
        use crate::obs::StatsSink;
        use dsm_types::{Geometry, Topology};
        let fft = Fft::with_points(1 << 8);
        let topo = Topology::paper_default();
        let geo = Geometry::paper_default();
        let trace = SharedTrace::from_refs(topo, geo, &fft.generate(&topo, Scale::full()));
        let plain = run_trace(&SystemSpec::vb(), "fft", fft.shared_bytes(), &trace).unwrap();
        let (probed, sink) = run_trace_probed(
            &SystemSpec::vb(),
            "fft",
            fft.shared_bytes(),
            &trace,
            StatsSink::new(),
            Some(1000),
        )
        .unwrap();
        // Instrumentation must not perturb the simulation.
        assert_eq!(plain, probed);
        assert!(!sink.epochs().is_empty());
        // Epoch deltas sum back to the final aggregate metrics.
        assert_eq!(sink.epoch_total(), probed.metrics);
    }

    #[test]
    fn wall_time_is_recorded_but_not_compared() {
        let fft = Fft::with_points(1 << 8);
        let a = run_workload(&SystemSpec::base(), &fft, Scale::full()).unwrap();
        let b = run_workload(&SystemSpec::base(), &fft, Scale::full()).unwrap();
        assert!(a.wall_s > 0.0, "runner must time the simulation");
        // Two timed runs almost surely differ in wall clock, yet the
        // reports — the simulation outcome — must compare equal.
        assert_eq!(a, b);
        let mut c = a.clone();
        c.wall_s = a.wall_s + 1.0;
        assert_eq!(a, c);
    }

    #[test]
    fn report_serializes_to_json() {
        let fft = Fft::with_points(1 << 8);
        let r = run_workload(&SystemSpec::base(), &fft, Scale::full()).unwrap();
        let json = r.to_json().render();
        assert!(json.starts_with(r#"{"system":"base","workload":"fft""#));
        assert!(json.contains(r#""metrics":{"#));
        assert!(json.contains(&format!(r#""refs":{}"#, r.refs)));
    }

    #[test]
    fn report_json_roundtrip_is_byte_identical() {
        let fft = Fft::with_points(1 << 8);
        let r = run_workload(&SystemSpec::vb(), &fft, Scale::full()).unwrap();
        let rendered = r.to_json().render();
        let parsed = Json::parse(&rendered).unwrap();
        let back = Report::from_json(&parsed).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_json().render(), rendered);
    }

    #[test]
    fn report_from_json_rejects_malformed_input() {
        let missing = Json::obj().set("system", "base");
        assert!(Report::from_json(&missing).is_err());
        let fft = Fft::with_points(1 << 8);
        let r = run_workload(&SystemSpec::base(), &fft, Scale::full()).unwrap();
        let bad_metric = r
            .to_json()
            .set("metrics", Json::obj().set("no_such_counter", 1u64));
        let err = Report::from_json(&bad_metric).unwrap_err();
        assert!(err.to_string().contains("no_such_counter"), "{err}");
    }
}
