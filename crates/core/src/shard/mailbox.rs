//! Bounded single-producer/single-consumer mailboxes for sharded replay.
//!
//! Workers stream per-chunk metric deltas to the committer through these
//! queues. The implementation stays inside `forbid(unsafe_code)`: a fixed
//! ring of `Mutex<Option<T>>` slots with a sender-local tail cursor and a
//! receiver-local head cursor. With exactly one producer and one consumer
//! each side only ever locks the single slot at its own cursor, so a lock
//! is uncontended unless the queue is empty (receiver) or full (sender)
//! at that slot. Neither [`Sender::send`] nor [`Receiver::recv`]
//! allocates: the ring is sized once at [`channel`] time and
//! backpressure is a spin with `thread::yield_now()`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread;
use std::time::Instant;

/// The outcome of a [`Receiver::recv_deadline`] wait.
#[derive(Debug, PartialEq, Eq)]
pub enum RecvDeadline<T> {
    /// A message arrived before the deadline.
    Msg(T),
    /// The sender dropped and every in-flight message has been drained.
    Closed,
    /// The deadline passed with the ring still empty — the producer has
    /// stalled (or is merely slow; the caller's watchdog decides).
    TimedOut,
}

/// Ring storage shared by the two endpoints.
#[derive(Debug)]
struct Ring<T> {
    slots: Box<[Mutex<Option<T>>]>,
    tx_closed: AtomicBool,
    rx_closed: AtomicBool,
}

impl<T> Ring<T> {
    /// Locks slot `index % capacity`, recovering from poisoning (a
    /// panicked peer must not wedge the other endpoint).
    fn lock(&self, index: usize) -> MutexGuard<'_, Option<T>> {
        let slot = &self.slots[index % self.slots.len()];
        slot.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// The producing endpoint of a bounded SPSC mailbox.
#[derive(Debug)]
pub struct Sender<T> {
    ring: Arc<Ring<T>>,
    tail: usize,
}

/// The consuming endpoint of a bounded SPSC mailbox.
#[derive(Debug)]
pub struct Receiver<T> {
    ring: Arc<Ring<T>>,
    head: usize,
}

/// Creates a bounded SPSC mailbox holding at most `capacity` messages.
///
/// # Panics
///
/// Panics if `capacity` is zero.
#[must_use]
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "mailbox capacity must be positive");
    let ring = Arc::new(Ring {
        slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        tx_closed: AtomicBool::new(false),
        rx_closed: AtomicBool::new(false),
    });
    (
        Sender {
            ring: Arc::clone(&ring),
            tail: 0,
        },
        Receiver { ring, head: 0 },
    )
}

impl<T> Sender<T> {
    /// Delivers `value`, spinning (with yields) while the ring is full.
    ///
    /// # Errors
    ///
    /// Returns the value back if the receiver has been dropped.
    pub fn send(&mut self, value: T) -> Result<(), T> {
        loop {
            if self.ring.rx_closed.load(Ordering::Acquire) {
                return Err(value);
            }
            let mut slot = self.ring.lock(self.tail);
            if slot.is_none() {
                *slot = Some(value);
                self.tail += 1;
                return Ok(());
            }
            drop(slot);
            thread::yield_now();
        }
    }

    /// Whether the receiving endpoint has been dropped — every future
    /// [`Sender::send`] would fail. Lets a deliberately-stalled worker
    /// (fault injection) notice the watchdog's teardown without
    /// consuming a message slot.
    #[must_use]
    pub fn is_closed(&self) -> bool {
        self.ring.rx_closed.load(Ordering::Acquire)
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        self.ring.tx_closed.store(true, Ordering::Release);
    }
}

impl<T> Receiver<T> {
    /// Takes the message at the head cursor, if one is present.
    fn take_head(&mut self) -> Option<T> {
        let taken = self.ring.lock(self.head).take();
        if taken.is_some() {
            self.head += 1;
        }
        taken
    }

    /// Receives the next message, spinning (with yields) while the ring
    /// is empty. Returns `None` once the sender has been dropped and
    /// every in-flight message has been drained.
    pub fn recv(&mut self) -> Option<T> {
        loop {
            if let Some(v) = self.take_head() {
                return Some(v);
            }
            if self.ring.tx_closed.load(Ordering::Acquire) {
                // The sender may have filled the head slot between our
                // empty observation and its close; one final look sees
                // any such message (the close stores after the send).
                return self.take_head();
            }
            thread::yield_now();
        }
    }

    /// Takes the next message if one is already present (never blocks).
    pub fn try_recv(&mut self) -> Option<T> {
        self.take_head()
    }

    /// As [`Receiver::recv`], but gives up once `deadline` passes — the
    /// committer's stall watchdog. The clock is checked every 64 spins
    /// so the empty-ring fast path stays a lock-and-yield loop.
    pub fn recv_deadline(&mut self, deadline: Instant) -> RecvDeadline<T> {
        let mut spins: u32 = 0;
        loop {
            if let Some(v) = self.take_head() {
                return RecvDeadline::Msg(v);
            }
            if self.ring.tx_closed.load(Ordering::Acquire) {
                // Same close-race final look as `recv`.
                return match self.take_head() {
                    Some(v) => RecvDeadline::Msg(v),
                    None => RecvDeadline::Closed,
                };
            }
            spins = spins.wrapping_add(1);
            if spins.is_multiple_of(64) && Instant::now() >= deadline {
                return RecvDeadline::TimedOut;
            }
            thread::yield_now();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.ring.rx_closed.store(true, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order() {
        let (mut tx, mut rx) = channel(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(rx.recv(), Some(i));
        }
        assert_eq!(rx.try_recv(), None);
    }

    #[test]
    fn recv_returns_none_after_sender_drops() {
        let (tx, mut rx) = channel::<u32>(2);
        drop(tx);
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (mut tx, rx) = channel(2);
        drop(rx);
        assert_eq!(tx.send(7), Err(7));
    }

    #[test]
    fn tail_message_survives_close_race() {
        let (mut tx, mut rx) = channel(1);
        tx.send(42).unwrap();
        drop(tx); // close after the send: recv must still see 42
        assert_eq!(rx.recv(), Some(42));
        assert_eq!(rx.recv(), None);
    }

    #[test]
    fn capacity_one_streams_across_threads() {
        const N: u64 = 10_000;
        let (mut tx, mut rx) = channel(1);
        std::thread::scope(|scope| {
            scope.spawn(move || {
                for i in 0..N {
                    tx.send(i).unwrap();
                }
            });
            let mut expect = 0;
            while let Some(v) = rx.recv() {
                assert_eq!(v, expect);
                expect += 1;
            }
            assert_eq!(expect, N);
        });
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = channel::<u8>(0);
    }

    #[test]
    fn sender_observes_receiver_drop() {
        let (tx, rx) = channel::<u8>(2);
        assert!(!tx.is_closed());
        drop(rx);
        assert!(tx.is_closed());
    }

    #[test]
    fn recv_deadline_times_out_on_empty_ring() {
        use std::time::Duration;
        let (_tx, mut rx) = channel::<u8>(2);
        let deadline = Instant::now() + Duration::from_millis(10);
        assert_eq!(rx.recv_deadline(deadline), RecvDeadline::TimedOut);
    }

    #[test]
    fn recv_deadline_delivers_and_closes() {
        use std::time::Duration;
        let (mut tx, mut rx) = channel(2);
        tx.send(9).unwrap();
        let far = Instant::now() + Duration::from_secs(30);
        assert_eq!(rx.recv_deadline(far), RecvDeadline::Msg(9));
        drop(tx);
        assert_eq!(rx.recv_deadline(far), RecvDeadline::Closed);
    }
}
