//! Sharded trace replay: partition the machine by home cluster and
//! replay disjoint partitions on worker threads.
//!
//! [`SharedTrace::shard_plan`] splits the cluster set into connected
//! components of the page-sharing graph (clusters belong to the same
//! component iff some page is accessed by both). Under pure first-touch
//! placement every page a component's processors touch is homed *inside*
//! that component, so the machine state its references can reach —
//! cluster units (caches, NC, PC, bus), directory entries, placement
//! slots, R-NUMA counters — is disjoint from every other component's.
//! Each worker replays its components in trace order against a pristine
//! clone of the system; the results are merged back in ascending shard
//! order. Because the per-shard replays are exact and the aggregates are
//! plain sums, the outcome is **identical to [`System::run_shared`] for
//! any worker count** — the single-threaded path stays the oracle
//! (`tests/sharded_equiv.rs` pins the identity).
//!
//! Workers stream per-chunk [`Metrics`] deltas to the calling thread
//! through bounded SPSC [`mailbox`]es; the committer folds them as they
//! arrive (sums are order-independent) and the merged structural state
//! is reconciled against the streamed totals at join.
//!
//! # Fallback
//!
//! Sharding requires static first-touch homes and a pristine system.
//! [`System::run_sharded`] transparently falls back to
//! [`System::run_shared`] (returning a parallelism of 1) when any of
//! these hold:
//!
//! * fewer than two workers were requested;
//! * the system runs OS page policies (migration/replication moves
//!   homes, coupling clusters across components);
//! * the placement map is already populated or counters are non-zero
//!   (a prior run on the same system: clones would not be pristine);
//! * the trace's sharing graph has a single component (fully coupled
//!   workloads — nothing to parallelize without breaking exactness).

pub mod mailbox;

use dsm_trace::{SharedTrace, BATCH};
use dsm_types::DecodedRef;

use crate::metrics::Metrics;
use crate::system::System;

/// A message streamed from a shard worker to the committer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMsg {
    /// The counters gained since the worker's previous chunk.
    Chunk(Metrics),
}

/// Knobs for [`System::run_sharded_with`] — exposed so tests can force
/// tiny chunks and mailboxes (backpressure) without slowing real runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTuning {
    /// References a worker replays between streamed metric chunks.
    pub chunk_refs: usize,
    /// Bounded mailbox capacity, in messages, per worker.
    pub mailbox_capacity: usize,
}

impl Default for ShardTuning {
    fn default() -> Self {
        ShardTuning {
            chunk_refs: 1 << 16,
            mailbox_capacity: 64,
        }
    }
}

impl System {
    /// Replays `trace` like [`System::run_shared`], but partitioned
    /// across up to `workers` threads (see the [module docs](self) for
    /// the partitioning and its exactness argument). Returns the number
    /// of worker threads actually used; `1` means the run fell back to
    /// the single-threaded oracle path.
    ///
    /// Only the unprobed system offers this: probes observe a single
    /// interleaved event stream, which a partitioned replay does not
    /// produce.
    ///
    /// # Panics
    ///
    /// Panics if `trace` was built under a different topology or
    /// geometry than this system.
    pub fn run_sharded(&mut self, trace: &SharedTrace, workers: usize) -> usize {
        self.run_sharded_with(trace, workers, ShardTuning::default())
    }

    /// [`System::run_sharded`] with explicit streaming knobs.
    ///
    /// # Panics
    ///
    /// Panics if `trace` was built under a different topology or
    /// geometry than this system, or if `tuning.chunk_refs` or
    /// `tuning.mailbox_capacity` is zero.
    pub fn run_sharded_with(
        &mut self,
        trace: &SharedTrace,
        workers: usize,
        tuning: ShardTuning,
    ) -> usize {
        assert_eq!(
            trace.topology(),
            &self.topo,
            "trace topology does not match system topology"
        );
        assert_eq!(
            trace.geometry(),
            &self.geo,
            "trace geometry does not match system geometry"
        );
        assert!(tuning.chunk_refs > 0, "chunk_refs must be positive");
        let eligible = workers >= 2
            && self.migrep.is_none()
            && self.home.placement().placed_pages() == 0
            && self.metrics == Metrics::default();
        if !eligible {
            self.run_shared(trace);
            return 1;
        }
        let plan = trace.shard_plan();
        if plan.len() < 2 {
            self.run_shared(trace);
            return 1;
        }
        let threads = workers.min(plan.len());

        let mut worker_systems: Vec<System> = Vec::with_capacity(threads);
        let mut streamed = Metrics::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            let mut receivers = Vec::with_capacity(threads);
            for t in 0..threads {
                let mut sys = self.clone();
                let (mut tx, rx) = mailbox::channel(tuning.mailbox_capacity);
                receivers.push(rx);
                let plan = &plan;
                handles.push(scope.spawn(move || {
                    // Round-robin: thread `t` owns shards t, t+threads, ...
                    // replayed in ascending shard (= earliest-trace) order.
                    for s in (t..plan.len()).step_by(threads) {
                        replay_indices(&mut sys, trace, &plan.shards()[s], tuning, &mut tx);
                    }
                    sys
                }));
            }
            // Drain mailboxes worker-by-worker. Sums are commutative, so
            // the drain order cannot affect the totals; draining one
            // worker to completion never deadlocks another (each send
            // only waits on its own mailbox's committer cursor).
            for rx in &mut receivers {
                while let Some(ShardMsg::Chunk(delta)) = rx.recv() {
                    streamed.merge(&delta);
                }
            }
            for handle in handles {
                match handle.join() {
                    Ok(sys) => worker_systems.push(sys),
                    Err(panic) => std::panic::resume_unwind(panic),
                }
            }
        });

        // Merge in ascending thread order. Every piece of state is
        // either a commutative sum (metrics, per-cluster counts) or
        // touched by exactly one shard (cluster units, directory
        // entries, placement slots, R-NUMA counters), so this
        // reconstructs the oracle's final state exactly.
        let mut total = Metrics::new();
        for w in &worker_systems {
            total.merge(&w.metrics);
        }
        debug_assert_eq!(
            streamed, total,
            "streamed chunk deltas disagree with merged worker metrics"
        );
        self.metrics.merge(&total);
        for w in &mut worker_systems {
            for (mine, theirs) in self.per_cluster.iter_mut().zip(&w.per_cluster) {
                mine.merge(theirs);
            }
            self.dir.absorb_disjoint(&w.dir);
            self.rnuma.absorb_disjoint(&w.rnuma);
            for (page, cluster) in w.home.placement().iter() {
                self.home.preassign(page, cluster);
            }
        }
        for c in 0..self.clusters.len() {
            if let Some(s) = plan.shard_of_cluster(c) {
                let owner = s % threads;
                std::mem::swap(
                    &mut self.clusters[c],
                    &mut worker_systems[owner].clusters[c],
                );
            }
        }
        threads
    }
}

/// Replays one shard's trace positions on `sys`, streaming a metrics
/// delta roughly every `tuning.chunk_refs` references. The final partial
/// chunk is flushed by the caller's sender drop closing the mailbox
/// after the last explicit send here.
fn replay_indices(
    sys: &mut System,
    trace: &SharedTrace,
    indices: &[u32],
    tuning: ShardTuning,
    tx: &mut mailbox::Sender<ShardMsg>,
) {
    // Prefetch one window ahead like `System::run_shared`: after
    // gathering window N, peek window N+1's columns and prefetch the
    // machine lines it will touch, overlapping window N's processing
    // with window N+1's memory latency. Processing order is unchanged.
    let mut batch = [DecodedRef::default(); BATCH];
    let mut last = *sys.metrics();
    let mut since_flush = 0;
    let mut pos = 0;
    loop {
        let n = trace.decode_gather(&indices[pos..], &mut batch);
        if n == 0 {
            break;
        }
        trace.peek_gather(&indices[pos + n..], BATCH, |cl, lp, block| {
            sys.prefetch_line(cl, lp, block);
        });
        for d in &batch[..n] {
            sys.process_decoded(*d);
        }
        pos += n;
        since_flush += n;
        if since_flush >= tuning.chunk_refs {
            since_flush = 0;
            let delta = sys.metrics().delta(&last);
            last = *sys.metrics();
            // A dropped receiver only loses telemetry; the worker's own
            // counters remain the authoritative copy merged at join.
            let _ = tx.send(ShardMsg::Chunk(delta));
        }
    }
    let delta = sys.metrics().delta(&last);
    if delta != Metrics::default() {
        let _ = tx.send(ShardMsg::Chunk(delta));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemSpec;
    use dsm_types::{Addr, Geometry, MemRef, ProcId, Topology};

    fn two_component_trace(topo: Topology, geo: Geometry) -> SharedTrace {
        // Clusters {0} and {1} touch disjoint pages: two components.
        let page = geo.page_bytes();
        let mut refs = Vec::new();
        for i in 0..200u64 {
            refs.push(MemRef::read(ProcId(0), Addr(i % 8 * page)));
            refs.push(MemRef::write(ProcId(4), Addr((100 + i % 8) * page)));
        }
        SharedTrace::from_refs(topo, geo, &refs)
    }

    #[test]
    fn sharded_matches_oracle_and_reports_parallelism() {
        let topo = Topology::new(2, 4).unwrap();
        let geo = Geometry::paper_default();
        let trace = two_component_trace(topo, geo);
        let mut oracle = System::new(SystemSpec::vb(), topo, geo, 0).unwrap();
        oracle.run_shared(&trace);
        let mut sharded = System::new(SystemSpec::vb(), topo, geo, 0).unwrap();
        let used = sharded.run_sharded(&trace, 2);
        assert_eq!(used, 2);
        assert_eq!(sharded.metrics(), oracle.metrics());
    }

    #[test]
    fn single_component_falls_back() {
        let topo = Topology::new(2, 4).unwrap();
        let geo = Geometry::paper_default();
        // Both clusters read page 0: one component.
        let refs = vec![
            MemRef::read(ProcId(0), Addr(0)),
            MemRef::read(ProcId(4), Addr(0)),
        ];
        let trace = SharedTrace::from_refs(topo, geo, &refs);
        let mut sys = System::new(SystemSpec::base(), topo, geo, 0).unwrap();
        assert_eq!(sys.run_sharded(&trace, 4), 1);
        assert_eq!(sys.metrics().shared_refs, 2);
    }

    #[test]
    fn used_system_falls_back() {
        let topo = Topology::new(2, 4).unwrap();
        let geo = Geometry::paper_default();
        let trace = two_component_trace(topo, geo);
        let mut sys = System::new(SystemSpec::base(), topo, geo, 0).unwrap();
        sys.run_shared(&trace); // placement now populated
        assert_eq!(sys.run_sharded(&trace, 2), 1);
    }

    #[test]
    fn tiny_mailbox_and_chunks_do_not_deadlock() {
        let topo = Topology::new(2, 4).unwrap();
        let geo = Geometry::paper_default();
        let trace = two_component_trace(topo, geo);
        let mut oracle = System::new(SystemSpec::base(), topo, geo, 0).unwrap();
        oracle.run_shared(&trace);
        let mut sys = System::new(SystemSpec::base(), topo, geo, 0).unwrap();
        let tuning = ShardTuning {
            chunk_refs: 1,
            mailbox_capacity: 1,
        };
        assert_eq!(sys.run_sharded_with(&trace, 2, tuning), 2);
        assert_eq!(sys.metrics(), oracle.metrics());
    }
}
