//! Sharded trace replay: two engines, one byte-identity guarantee.
//!
//! Both engines reproduce [`System::run_shared`]'s final state
//! **exactly, for any worker count** — the single-threaded path stays
//! the oracle (`tests/sharded_equiv.rs` pins the identity). Which
//! engine runs is decided by the trace's sharing structure:
//!
//! * **Component engine** (this module): [`SharedTrace::shard_plan`]
//!   splits the cluster set into connected components of the
//!   page-sharing graph. Under pure first-touch placement each
//!   component's reachable machine state — cluster units (caches, NC,
//!   PC, bus), directory entries, placement slots, R-NUMA counters —
//!   is disjoint from every other component's, so components replay
//!   concurrently with no coordination and merge back in ascending
//!   shard order.
//!
//! * **Rounds engine** ([`rounds`]): when the sharing graph is a single
//!   component (the paper's all-to-all kernels: FFT transpose, radix
//!   permutation), clusters are partitioned *within* the component and
//!   the trace is cut into conservative time-stepped rounds — maximal
//!   runs whose references provably stay inside one partition replay in
//!   parallel, everything else replays serially on the main system.
//!
//! Workers stream per-chunk [`Metrics`] deltas to the calling thread
//! through bounded SPSC [`mailbox`]es, tagged with their round and
//! intra-round sequence number; the committer drains workers in
//! ascending part order, folding chunks in the deterministic
//! `(round, issuing part, seq)` order, and the merged structural state
//! is reconciled against the streamed totals at join. The engine,
//! worker count and parallel/serial split of the last sharded run are
//! recorded in [`System::shard_report`] so callers and CI can assert
//! that a workload really ran parallel instead of silently falling
//! back.
//!
//! # Fallback
//!
//! Sharding requires static first-touch homes and a pristine system.
//! [`System::run_sharded`] transparently falls back to
//! [`System::run_shared`] (returning a parallelism of 1) when any of
//! these hold:
//!
//! * fewer than two workers were requested;
//! * the system runs OS page policies (migration/replication moves
//!   homes, coupling clusters across partitions);
//! * the placement map is already populated or counters are non-zero
//!   (a prior run on the same system: clones would not be pristine);
//! * the rounds planner finds no run of independent references long
//!   enough to be worth a round (degenerate or fully serial traces).

//! # Supervision
//!
//! Workers run under `catch_unwind`, and the committer drains mailboxes
//! with a deadline-based watchdog ([`ShardTuning::watchdog_ms`]). On any
//! worker failure — a panic, a stall (no chunk within the watchdog
//! window), or an abandoned range — the supervisor tears the shard run
//! down and replays the trace on the single-threaded oracle from the
//! pristine pre-run state, so the output is byte-identical to an
//! unfaulted run. The degradation is never silent: the cause is
//! recorded in [`ShardReport::degraded`] and echoed on stderr. The
//! injection sites that exercise this machinery live in
//! [`crate::fault`] and cost one relaxed atomic load when disarmed.

pub mod mailbox;
pub mod rounds;

use dsm_trace::{SharedTrace, BATCH};
use dsm_types::{DecodedRef, FaultPlan, FaultSite};

use crate::metrics::Metrics;
use crate::system::System;

use mailbox::RecvDeadline;
use std::time::{Duration, Instant};

/// A message streamed from a shard worker to the committer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMsg {
    /// The counters gained since the worker's previous chunk.
    Chunk {
        /// The parallel round this chunk belongs to (the component
        /// engine tags its per-component replays with the shard
        /// number). Combined with the drain order — ascending worker
        /// within a round — and `seq`, chunks fold in the deterministic
        /// `(round, issuing part, seq)` order.
        round: u32,
        /// Position of this chunk within its worker's round, from 0.
        seq: u32,
        /// The counters gained since the worker's previous chunk.
        delta: Metrics,
    },
}

/// Knobs for [`System::run_sharded_with`] — exposed so tests can force
/// tiny chunks and mailboxes (backpressure) without slowing real runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTuning {
    /// References a worker replays between streamed metric chunks.
    pub chunk_refs: usize,
    /// Bounded mailbox capacity, in messages, per worker.
    pub mailbox_capacity: usize,
    /// Smallest run of independent references the rounds engine will
    /// turn into a parallel round; shorter runs fold into the
    /// surrounding serial segment (a round costs a system clone per
    /// worker plus a merge, which tiny runs cannot amortize).
    pub min_parallel_refs: usize,
    /// Stall watchdog: the longest the committer waits for any single
    /// chunk before declaring the producing worker stalled and
    /// degrading to the oracle. A healthy worker streams a chunk every
    /// `chunk_refs` references — milliseconds — so the default (60s)
    /// only fires on genuine wedges.
    pub watchdog_ms: u64,
}

impl Default for ShardTuning {
    fn default() -> Self {
        ShardTuning {
            chunk_refs: 1 << 16,
            mailbox_capacity: 64,
            min_parallel_refs: 1 << 15,
            watchdog_ms: 60_000,
        }
    }
}

impl ShardTuning {
    /// The default tuning with the stall watchdog overridden by the
    /// `DSM_SHARD_WATCHDOG_MS` environment variable when it holds a
    /// positive integer (the chaos harness shortens it so injected
    /// stalls resolve in milliseconds instead of a minute).
    #[must_use]
    pub fn from_env() -> ShardTuning {
        let mut tuning = ShardTuning::default();
        if let Some(ms) = std::env::var("DSM_SHARD_WATCHDOG_MS")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
        {
            tuning.watchdog_ms = ms;
        }
        tuning
    }
}

/// Which sharded-replay engine a run used (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardEngine {
    /// Independent sharing components replayed concurrently.
    Components,
    /// Intra-component time-stepped rounds ([`rounds`]).
    Rounds,
}

/// Why a sharded run degraded to the single-threaded oracle — the
/// supervisor's diagnosis, recorded in [`ShardReport::degraded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardFault {
    /// A worker thread panicked mid-replay.
    WorkerPanic,
    /// A worker produced no chunk within [`ShardTuning::watchdog_ms`].
    MailboxStall,
    /// A worker abandoned its range without panicking (its chunk send
    /// failed — the committer side of its mailbox vanished).
    WorkerIncomplete,
}

impl ShardFault {
    /// The stable label printed in the shard-plan stderr line and
    /// matched by the chaos harness.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ShardFault::WorkerPanic => "worker-panic",
            ShardFault::MailboxStall => "mailbox-stall",
            ShardFault::WorkerIncomplete => "worker-incomplete",
        }
    }
}

/// How a sharded replay executed — the record behind
/// [`System::shard_report`], used to assert that a workload engaged a
/// parallel engine rather than silently falling back to the oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardReport {
    /// The engine that ran.
    pub engine: ShardEngine,
    /// Worker threads actually engaged (1 = serial oracle path).
    pub workers: usize,
    /// Parallel rounds executed (0 for the component engine, which
    /// needs no rounds — components never interact).
    pub parallel_rounds: usize,
    /// References replayed inside parallel rounds.
    pub parallel_refs: u64,
    /// References replayed serially on the main system (0 for the
    /// component engine: every reference replays on a worker).
    pub serial_refs: u64,
    /// `Some` when the supervisor tore the sharded run down and
    /// re-ran the trace on the oracle; the engine field then names the
    /// engine that was *attempted* while workers/refs describe the
    /// oracle replay that actually produced the output.
    pub degraded: Option<ShardFault>,
}

impl System {
    /// Replays `trace` like [`System::run_shared`], but partitioned
    /// across up to `workers` threads (see the [module docs](self) for
    /// the partitioning and its exactness argument). Returns the number
    /// of worker threads actually used; `1` means the run fell back to
    /// the single-threaded oracle path.
    ///
    /// Only the unprobed system offers this: probes observe a single
    /// interleaved event stream, which a partitioned replay does not
    /// produce.
    ///
    /// # Panics
    ///
    /// Panics if `trace` was built under a different topology or
    /// geometry than this system.
    pub fn run_sharded(&mut self, trace: &SharedTrace, workers: usize) -> usize {
        self.run_sharded_with(trace, workers, ShardTuning::default())
    }

    /// [`System::run_sharded`] with explicit streaming knobs.
    ///
    /// # Panics
    ///
    /// Panics if `trace` was built under a different topology or
    /// geometry than this system, or if `tuning.chunk_refs` or
    /// `tuning.mailbox_capacity` is zero.
    pub fn run_sharded_with(
        &mut self,
        trace: &SharedTrace,
        workers: usize,
        tuning: ShardTuning,
    ) -> usize {
        // The process-wide fault plan is read once here and threaded
        // down, so workers never consult the global mid-replay.
        self.run_sharded_inner(trace, workers, tuning, crate::fault::shard_plan())
    }

    /// [`System::run_sharded_with`] with the fault plan passed
    /// explicitly — the unit tests' injection entry point (no global
    /// state, so parallel test threads cannot see each other's plans).
    pub(crate) fn run_sharded_inner(
        &mut self,
        trace: &SharedTrace,
        workers: usize,
        tuning: ShardTuning,
        fplan: Option<FaultPlan>,
    ) -> usize {
        assert_eq!(
            trace.topology(),
            &self.topo,
            "trace topology does not match system topology"
        );
        assert_eq!(
            trace.geometry(),
            &self.geo,
            "trace geometry does not match system geometry"
        );
        assert!(tuning.chunk_refs > 0, "chunk_refs must be positive");
        assert!(
            tuning.min_parallel_refs > 0,
            "min_parallel_refs must be positive"
        );
        let eligible = workers >= 2
            && self.migrep.is_none()
            && self.home.placement().placed_pages() == 0
            && self.metrics == Metrics::default();
        if !eligible {
            self.run_shared(trace);
            return 1;
        }
        let plan = trace.shard_plan();
        if plan.len() < 2 {
            // One sharing component: parallelize inside it with the
            // round-based engine instead of giving up.
            return self.run_rounds(trace, workers, tuning, fplan);
        }
        let threads = workers.min(plan.len());

        let mut worker_systems: Vec<System> = Vec::with_capacity(threads);
        let mut streamed = Metrics::new();
        let mut panicked = false;
        let mut stalled = false;
        let mut incomplete = false;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(threads);
            let mut receivers = Vec::with_capacity(threads);
            for t in 0..threads {
                let mut sys = self.clone();
                let (mut tx, rx) = mailbox::channel(tuning.mailbox_capacity);
                receivers.push(rx);
                let plan = &plan;
                handles.push(scope.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                        let part = u32::try_from(t).expect("worker count fits u32");
                        let mut completed = true;
                        // Round-robin: thread `t` owns shards t, t+threads, ...
                        // replayed in ascending shard (= earliest-trace) order.
                        for s in (t..plan.len()).step_by(threads) {
                            let round = u32::try_from(s).expect("shard count fits u32");
                            if !replay_indices(
                                &mut sys,
                                trace,
                                &plan.shards()[s],
                                tuning,
                                &mut tx,
                                round,
                                part,
                                fplan,
                            ) {
                                completed = false;
                                break;
                            }
                        }
                        (sys, completed)
                    }))
                }));
            }
            // Drain mailboxes worker-by-worker under the stall watchdog.
            // Sums are commutative, so the drain order cannot affect the
            // totals; draining one worker to completion never deadlocks
            // another (each send only waits on its own mailbox's
            // committer cursor).
            'drain: for rx in &mut receivers {
                loop {
                    let deadline = Instant::now() + Duration::from_millis(tuning.watchdog_ms);
                    match rx.recv_deadline(deadline) {
                        RecvDeadline::Msg(ShardMsg::Chunk { delta, .. }) => {
                            streamed.merge(&delta);
                        }
                        RecvDeadline::Closed => break,
                        RecvDeadline::TimedOut => {
                            stalled = true;
                            break 'drain;
                        }
                    }
                }
            }
            // On a stall, drop every receiver before joining: closed
            // mailboxes make the workers' sends fail, so blocked and
            // stalled workers alike abandon their ranges promptly
            // instead of wedging the join.
            if stalled {
                receivers.clear();
            }
            for handle in handles {
                match handle.join() {
                    Ok(Ok((sys, completed))) => {
                        incomplete |= !completed;
                        worker_systems.push(sys);
                    }
                    Ok(Err(_)) | Err(_) => panicked = true,
                }
            }
        });
        if let Some(cause) = diagnose(panicked, stalled, incomplete) {
            // `self` has not been touched yet (workers replayed clones),
            // so the oracle re-run starts from the pristine state.
            return self.degrade_to_oracle(trace, ShardEngine::Components, cause);
        }

        // Merge in ascending thread order. Every piece of state is
        // either a commutative sum (metrics, per-cluster counts) or
        // touched by exactly one shard (cluster units, directory
        // entries, placement slots, R-NUMA counters), so this
        // reconstructs the oracle's final state exactly.
        let mut total = Metrics::new();
        for w in &worker_systems {
            total.merge(&w.metrics);
        }
        debug_assert_eq!(
            streamed, total,
            "streamed chunk deltas disagree with merged worker metrics"
        );
        self.metrics.merge(&total);
        for w in &mut worker_systems {
            for (mine, theirs) in self.per_cluster.iter_mut().zip(&w.per_cluster) {
                mine.merge(theirs);
            }
            self.dir.absorb_disjoint(&w.dir);
            self.rnuma.absorb_disjoint(&w.rnuma);
            for (page, cluster) in w.home.placement().iter() {
                self.home.preassign(page, cluster);
            }
        }
        for c in 0..self.clusters.len() {
            if let Some(s) = plan.shard_of_cluster(c) {
                let owner = s % threads;
                std::mem::swap(
                    &mut self.clusters[c],
                    &mut worker_systems[owner].clusters[c],
                );
            }
        }
        self.shard_report = Some(ShardReport {
            engine: ShardEngine::Components,
            workers: threads,
            parallel_rounds: 0,
            parallel_refs: trace.len() as u64,
            serial_refs: 0,
            degraded: None,
        });
        threads
    }

    /// Supervised recovery: replays `trace` on the single-threaded
    /// oracle after a sharded run failed. The caller guarantees `self`
    /// is back in its pristine pre-run state (the component engine
    /// never mutated it; the rounds engine restores a saved clone), so
    /// the result is byte-identical to a run that never sharded. The
    /// degradation is recorded in the shard report and echoed on
    /// stderr — never silent.
    pub(crate) fn degrade_to_oracle(
        &mut self,
        trace: &SharedTrace,
        engine: ShardEngine,
        cause: ShardFault,
    ) -> usize {
        eprintln!(
            "shard supervisor: {} during {:?} replay; degrading to the single-threaded oracle",
            cause.label(),
            engine
        );
        self.run_shared(trace);
        self.shard_report = Some(ShardReport {
            engine,
            workers: 1,
            parallel_rounds: 0,
            parallel_refs: 0,
            serial_refs: trace.len() as u64,
            degraded: Some(cause),
        });
        1
    }
}

/// Folds the supervisor's three failure observations into the single
/// reported cause, most-specific first: a panic outranks a stall
/// (a stalling watchdog teardown routinely *causes* secondary
/// incomplete workers), and a stall outranks a bare abandoned range.
pub(crate) fn diagnose(panicked: bool, stalled: bool, incomplete: bool) -> Option<ShardFault> {
    if panicked {
        Some(ShardFault::WorkerPanic)
    } else if stalled {
        Some(ShardFault::MailboxStall)
    } else if incomplete {
        Some(ShardFault::WorkerIncomplete)
    } else {
        None
    }
}

/// Consults the fault plan at one chunk boundary, before the send.
/// Returns `false` when the worker must abandon its range (an injected
/// send failure, or a stall whose watchdog teardown arrived).
///
/// The stall site sleeps in small steps until the committer's watchdog
/// closes the mailbox (the normal resolution) or the plan's
/// `stall_ms` budget elapses — whichever is first — so a stall shorter
/// than the watchdog window is absorbed and the run completes
/// normally, exactly like a real transient hiccup.
fn chunk_fault_gate(
    tx: &mailbox::Sender<ShardMsg>,
    round: u32,
    part: u32,
    seq: u32,
    fplan: Option<FaultPlan>,
) -> bool {
    let Some(plan) = fplan else { return true };
    if !plan.fires_at(round, part, seq) {
        return true;
    }
    match plan.site {
        FaultSite::WorkerPanic => {
            panic!("injected worker panic at r{round}.p{part}.s{seq}")
        }
        FaultSite::MailboxSendFail => false,
        FaultSite::MailboxStall => {
            let start = Instant::now();
            while !tx.is_closed() && start.elapsed() < Duration::from_millis(plan.stall_ms) {
                std::thread::sleep(Duration::from_millis(2));
            }
            !tx.is_closed()
        }
        _ => true,
    }
}

/// Replays one shard's trace positions on `sys`, streaming a metrics
/// delta roughly every `tuning.chunk_refs` references, tagged with
/// `round` and an intra-round sequence number. The final partial chunk
/// is flushed by the caller's sender drop closing the mailbox after the
/// last explicit send here.
///
/// Returns `true` when the whole range replayed; `false` when the
/// worker abandoned it (an injected fault, or a real send failure —
/// the committer vanished), in which case the supervisor degrades the
/// run to the oracle and this system's partial state is discarded.
#[allow(clippy::too_many_arguments)] // one internal call site per engine
fn replay_indices(
    sys: &mut System,
    trace: &SharedTrace,
    indices: &[u32],
    tuning: ShardTuning,
    tx: &mut mailbox::Sender<ShardMsg>,
    round: u32,
    part: u32,
    fplan: Option<FaultPlan>,
) -> bool {
    // Prefetch one window ahead like `System::run_shared`: after
    // gathering window N, peek window N+1's columns and prefetch the
    // machine lines it will touch, overlapping window N's processing
    // with window N+1's memory latency. Processing order is unchanged.
    let mut batch = [DecodedRef::default(); BATCH];
    let mut last = *sys.metrics();
    let mut since_flush = 0;
    let mut pos = 0;
    let mut seq: u32 = 0;
    loop {
        let n = trace.decode_gather(&indices[pos..], &mut batch);
        if n == 0 {
            break;
        }
        trace.peek_gather(&indices[pos + n..], BATCH, |cl, lp, block| {
            sys.prefetch_line(cl, lp, block);
        });
        for d in &batch[..n] {
            sys.process_decoded(*d);
        }
        pos += n;
        since_flush += n;
        if since_flush >= tuning.chunk_refs {
            since_flush = 0;
            let delta = sys.metrics().delta(&last);
            last = *sys.metrics();
            if !chunk_fault_gate(tx, round, part, seq, fplan) {
                return false;
            }
            if tx.send(ShardMsg::Chunk { round, seq, delta }).is_err() {
                // The committer vanished (watchdog teardown): this
                // worker's state can no longer be merged — abandon so
                // the supervisor degrades instead of silently dropping
                // the counters.
                return false;
            }
            seq = seq.wrapping_add(1);
        }
    }
    // The final flush consults the gate even when the residual delta is
    // empty, so a plan aimed at the last chunk of a short range still
    // fires deterministically.
    if !chunk_fault_gate(tx, round, part, seq, fplan) {
        return false;
    }
    let delta = sys.metrics().delta(&last);
    if delta != Metrics::default() && tx.send(ShardMsg::Chunk { round, seq, delta }).is_err() {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemSpec;
    use dsm_types::{Addr, Geometry, MemRef, ProcId, Topology};

    fn two_component_trace(topo: Topology, geo: Geometry) -> SharedTrace {
        // Clusters {0} and {1} touch disjoint pages: two components.
        let page = geo.page_bytes();
        let mut refs = Vec::new();
        for i in 0..200u64 {
            refs.push(MemRef::read(ProcId(0), Addr(i % 8 * page)));
            refs.push(MemRef::write(ProcId(4), Addr((100 + i % 8) * page)));
        }
        SharedTrace::from_refs(topo, geo, &refs)
    }

    #[test]
    fn sharded_matches_oracle_and_reports_parallelism() {
        let topo = Topology::new(2, 4).unwrap();
        let geo = Geometry::paper_default();
        let trace = two_component_trace(topo, geo);
        let mut oracle = System::new(SystemSpec::vb(), topo, geo, 0).unwrap();
        oracle.run_shared(&trace);
        let mut sharded = System::new(SystemSpec::vb(), topo, geo, 0).unwrap();
        let used = sharded.run_sharded(&trace, 2);
        assert_eq!(used, 2);
        assert_eq!(sharded.metrics(), oracle.metrics());
    }

    #[test]
    fn trivial_single_component_runs_serially_with_a_report() {
        let topo = Topology::new(2, 4).unwrap();
        let geo = Geometry::paper_default();
        // Both clusters read page 0: one component, and far too short
        // for the rounds engine to cut a parallel round out of.
        let refs = vec![
            MemRef::read(ProcId(0), Addr(0)),
            MemRef::read(ProcId(4), Addr(0)),
        ];
        let trace = SharedTrace::from_refs(topo, geo, &refs);
        let mut sys = System::new(SystemSpec::base(), topo, geo, 0).unwrap();
        assert_eq!(sys.run_sharded(&trace, 4), 1);
        assert_eq!(sys.metrics().shared_refs, 2);
        let report = sys.shard_report().unwrap();
        assert_eq!(report.engine, ShardEngine::Rounds);
        assert_eq!(report.workers, 1);
        assert_eq!(report.parallel_rounds, 0);
    }

    #[test]
    fn used_system_falls_back() {
        let topo = Topology::new(2, 4).unwrap();
        let geo = Geometry::paper_default();
        let trace = two_component_trace(topo, geo);
        let mut sys = System::new(SystemSpec::base(), topo, geo, 0).unwrap();
        sys.run_shared(&trace); // placement now populated
        assert_eq!(sys.run_sharded(&trace, 2), 1);
    }

    #[test]
    fn tiny_mailbox_and_chunks_do_not_deadlock() {
        let topo = Topology::new(2, 4).unwrap();
        let geo = Geometry::paper_default();
        let trace = two_component_trace(topo, geo);
        let mut oracle = System::new(SystemSpec::base(), topo, geo, 0).unwrap();
        oracle.run_shared(&trace);
        let mut sys = System::new(SystemSpec::base(), topo, geo, 0).unwrap();
        let tuning = ShardTuning {
            chunk_refs: 1,
            mailbox_capacity: 1,
            min_parallel_refs: 1,
            ..ShardTuning::default()
        };
        assert_eq!(sys.run_sharded_with(&trace, 2, tuning), 2);
        assert_eq!(sys.metrics(), oracle.metrics());
        let report = sys.shard_report().unwrap();
        assert_eq!(report.engine, ShardEngine::Components);
        assert_eq!(report.workers, 2);
        assert_eq!(report.parallel_refs, trace.len() as u64);
        assert_eq!(report.degraded, None);
    }

    fn plan(spec: &str) -> Option<FaultPlan> {
        Some(FaultPlan::from_spec(spec).unwrap())
    }

    /// Runs the faulted replay and asserts it degraded to the oracle
    /// with byte-identical state and the expected diagnosis.
    fn assert_degrades(tuning: ShardTuning, fplan: Option<FaultPlan>, expect: ShardFault) {
        let topo = Topology::new(2, 4).unwrap();
        let geo = Geometry::paper_default();
        let trace = two_component_trace(topo, geo);
        let mut oracle = System::new(SystemSpec::vb(), topo, geo, 0).unwrap();
        oracle.run_shared(&trace);
        let mut sys = System::new(SystemSpec::vb(), topo, geo, 0).unwrap();
        let used = sys.run_sharded_inner(&trace, 2, tuning, fplan);
        assert_eq!(used, 1, "degraded run reports the oracle's parallelism");
        assert_eq!(sys.metrics(), oracle.metrics(), "byte-identical recovery");
        for c in 0..topo.clusters() {
            assert_eq!(
                sys.cluster_counts(dsm_types::ClusterId(c)),
                oracle.cluster_counts(dsm_types::ClusterId(c)),
                "cluster {c}"
            );
        }
        let report = sys.shard_report().unwrap();
        assert_eq!(report.engine, ShardEngine::Components, "attempted engine");
        assert_eq!(report.workers, 1);
        assert_eq!(report.serial_refs, trace.len() as u64);
        assert_eq!(report.degraded, Some(expect));
    }

    #[test]
    fn injected_worker_panic_degrades_byte_identical() {
        // 400 refs < chunk_refs, so the final flush is chunk seq 0 of
        // shard (round) 0 on thread (part) 0: guaranteed to fire.
        assert_degrades(
            ShardTuning::default(),
            plan("worker-panic@r0.p0.s0"),
            ShardFault::WorkerPanic,
        );
    }

    #[test]
    fn injected_send_failure_degrades_byte_identical() {
        assert_degrades(
            ShardTuning::default(),
            plan("mailbox-send-fail@r1.p1.s0"),
            ShardFault::WorkerIncomplete,
        );
    }

    #[test]
    fn injected_stall_trips_watchdog_and_degrades() {
        let tuning = ShardTuning {
            watchdog_ms: 50,
            ..ShardTuning::default()
        };
        // Default 120s stall budget: only the watchdog can resolve it.
        assert_degrades(
            tuning,
            plan("mailbox-stall@r0.p0.s0"),
            ShardFault::MailboxStall,
        );
    }

    #[test]
    fn stall_shorter_than_watchdog_is_absorbed() {
        let topo = Topology::new(2, 4).unwrap();
        let geo = Geometry::paper_default();
        let trace = two_component_trace(topo, geo);
        let mut oracle = System::new(SystemSpec::base(), topo, geo, 0).unwrap();
        oracle.run_shared(&trace);
        let mut sys = System::new(SystemSpec::base(), topo, geo, 0).unwrap();
        // A 20ms stall against the 60s default watchdog: the worker
        // resumes and the run completes parallel, undegraded.
        let used = sys.run_sharded_inner(
            &trace,
            2,
            ShardTuning::default(),
            plan("mailbox-stall@r0.p0.s0:20"),
        );
        assert_eq!(used, 2);
        assert_eq!(sys.metrics(), oracle.metrics());
        assert_eq!(sys.shard_report().unwrap().degraded, None);
    }

    #[test]
    fn io_site_plans_do_not_touch_the_shard_path() {
        let topo = Topology::new(2, 4).unwrap();
        let geo = Geometry::paper_default();
        let trace = two_component_trace(topo, geo);
        let mut sys = System::new(SystemSpec::base(), topo, geo, 0).unwrap();
        let used = sys.run_sharded_inner(&trace, 2, ShardTuning::default(), plan("journal-io:2"));
        assert_eq!(used, 2);
        assert_eq!(sys.shard_report().unwrap().degraded, None);
    }
}
