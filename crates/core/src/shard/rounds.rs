//! Intra-component sharded replay: conservative time-stepped rounds.
//!
//! The component engine in the parent module needs the trace's sharing
//! graph to split into independent components; the paper's all-to-all
//! kernels (FFT transpose, radix permutation) form one giant component
//! and used to fall back to the serial oracle. This engine parallelizes
//! *inside* a component while keeping the byte-identity guarantee, in
//! three steps:
//!
//! 1. **Partition.** [`SharedTrace::cluster_partition`] splits the
//!    active clusters (and, under first-touch placement, every page
//!    they home) across up to `workers` parts, balanced by reference
//!    count.
//!
//! 2. **Plan.** A single forward scan classifies each reference against
//!    a conservative static model of the directory: per block, a
//!    superset of the sharer clusters and of the clusters that may hold
//!    the block exclusive/dirty (plus, for limited-pointer directories,
//!    a may-have-overflowed-to-broadcast bit), and per cluster, the set
//!    of parts whose blocks it may hold *dirty* (so a victim write-back
//!    could reach a foreign directory). The reference's possible
//!    coherence footprint — requester, home, forwarded owners,
//!    invalidated sharers, per [`RemoteDirOp::footprint`] — is reduced
//!    to the parts it touches; a reference whose footprint stays inside
//!    its issuing cluster's own part is *round-safe*. Maximal runs of
//!    round-safe references at least `min_parallel_refs` long become
//!    parallel **rounds**; everything else stays in serial segments.
//!
//! 3. **Execute.** Serial segments replay in trace order on the main
//!    system ([`System::replay_range`]), which is trivially
//!    oracle-exact. For each round, every engaged worker clones the
//!    main system and replays just its part's references; because the
//!    round's references only touch state owned by their own part, the
//!    workers' mutations are disjoint and any interleaving equals the
//!    oracle order. The merge takes each worker's metrics delta, its
//!    own clusters' units and counters, and — for every page homed in
//!    its part — the placement slot, the per-block directory entries
//!    ([`DirectoryUnit::copy_entry_from`]) and the R-NUMA counters
//!    ([`dsm_directory::RnumaCounters::adopt_pages`]), in ascending
//!    part order.
//!
//! Workers stream [`ShardMsg::Chunk`] deltas through the bounded SPSC
//! mailboxes tagged `(round, seq)`; the committer drains workers in
//! ascending part order within a round, so chunks are folded in the
//! deterministic `(round, issuing part, seq)` order and reconciled
//! against the merged worker state at join.
//!
//! Conservatism, not speculation: the static model only ever
//! *over*-approximates sharers/owners (reads widen it, writes collapse
//! it to the writer), so a reference classified round-safe provably
//! cannot observe or mutate another part's state, and no rollback is
//! ever needed. The price is that genuinely communicating phases (the
//! transposes, the permutation) replay serially — exactly the
//! irreducible cross-cluster coherence.

use dsm_protocol::RemoteDirOp;
use dsm_trace::{SharedTrace, BATCH};
use dsm_types::{BlockAddr, ClusterSet, DecodedRef};

use super::mailbox::RecvDeadline;
use super::{diagnose, mailbox, replay_indices, ShardEngine, ShardMsg, ShardReport, ShardTuning};
use crate::config::DirectorySpec;
use crate::metrics::Metrics;
use crate::system::System;
use dsm_types::FaultPlan;
use std::time::{Duration, Instant};

/// Sentinel in the per-reference classification column: not round-safe.
const CONFLICT: u8 = u8::MAX;

/// One piece of the planned replay schedule.
enum Segment {
    /// Replay `[start, end)` on the main system, in trace order.
    Serial { start: usize, end: usize },
    /// One parallel round: `lists[p]` holds part `p`'s reference
    /// indices, ascending.
    Round { lists: Vec<Vec<u32>> },
}

/// The static schedule for one trace: alternating serial segments and
/// parallel rounds, plus the split accounting for reports.
struct RoundPlan {
    segments: Vec<Segment>,
    parallel_refs: u64,
    serial_refs: u64,
    rounds: usize,
}

/// Classifies every reference and cuts the trace into segments. See the
/// module docs for the model; `part_table` maps cluster → part
/// (`usize::MAX` = never issues).
fn plan_rounds(
    trace: &SharedTrace,
    part_table: &[usize],
    parts: usize,
    pc_present: bool,
    limited_pointers: Option<usize>,
    min_parallel_refs: usize,
) -> RoundPlan {
    let n = trace.len();
    let clusters = part_table.len();
    let part_bit: Vec<u64> = part_table
        .iter()
        .map(|&p| if p == usize::MAX { 0 } else { 1u64 << p })
        .collect();
    // Per-block conservative directory model, grown on demand.
    let mut sharers: Vec<u64> = Vec::new(); // superset of presence, as cluster mask
    let mut owners: Vec<u64> = Vec::new(); // superset of exclusive/dirty holders
    let mut maybe_broadcast: Vec<bool> = Vec::new(); // limited-pointer overflow
                                                     // Per-cluster: parts whose blocks this cluster may hold dirty (a
                                                     // victim write-back or downgrade could reach their directories).
                                                     // With a page cache, any remote reference can additionally leave
                                                     // per-page state (and later relocation traffic) behind, so every
                                                     // remote reference taints; without one, only remote writes do.
    let mut dirty_parts: Vec<u64> = vec![0; clusters];

    let mut safe_part = vec![CONFLICT; n];
    let mut batch = [DecodedRef::default(); BATCH];
    let mut start = 0usize;
    while start < n {
        let got = trace.decode_batch(start, &mut batch);
        if got == 0 {
            break;
        }
        for (k, d) in batch[..got].iter().enumerate() {
            let c = usize::from(d.cluster.0);
            let h = usize::from(d.home.0);
            let blk = usize::try_from(d.block.0).expect("block index fits usize");
            if blk >= sharers.len() {
                let target = (blk + 1).next_power_of_two().max(1024);
                sharers.resize(target, 0);
                owners.resize(target, 0);
                if limited_pointers.is_some() {
                    maybe_broadcast.resize(target, false);
                }
            }
            let bcast = limited_pointers.is_some() && maybe_broadcast[blk];
            let op = RemoteDirOp {
                requester: d.cluster,
                home: d.home,
                write: d.write,
            };
            let footprint = op.footprint(
                ClusterSet::from_mask(sharers[blk]),
                ClusterSet::from_mask(owners[blk]),
                bcast,
                u16::try_from(clusters).expect("cluster count fits u16"),
            );
            let mut touched = dirty_parts[c];
            let mut fp = footprint.mask();
            while fp != 0 {
                touched |= part_bit[fp.trailing_zeros() as usize];
                fp &= fp - 1;
            }
            if touched == part_bit[c] {
                safe_part[start + k] = u8::try_from(part_table[c]).expect("part index fits u8");
            }
            // Advance the model (classification used the pre-state).
            let cbit = 1u64 << c;
            if d.write {
                if limited_pointers.is_some() {
                    maybe_broadcast[blk] = false; // entry collapses to the writer
                }
                sharers[blk] = cbit;
                owners[blk] = cbit;
            } else {
                if let Some(ptrs) = limited_pointers {
                    if (sharers[blk] | cbit).count_ones() as usize > ptrs {
                        maybe_broadcast[blk] = true;
                    }
                }
                sharers[blk] |= cbit;
                if c == h {
                    // A local read with no other sharers is granted
                    // exclusive-clean; only local reads can.
                    owners[blk] |= cbit;
                }
            }
            if c != h && (d.write || pc_present) {
                dirty_parts[c] |= part_bit[h];
            }
        }
        start += got;
    }

    // Cut into segments: runs of round-safe references of at least
    // `min_parallel_refs` become rounds, everything else folds into the
    // surrounding serial segment (tiny rounds cost more in clone+merge
    // than they save).
    let mut segments = Vec::new();
    let mut parallel_refs = 0u64;
    let mut serial_refs = 0u64;
    let mut rounds = 0usize;
    let mut emitted = 0usize;
    let mut i = 0usize;
    while i < n {
        if safe_part[i] == CONFLICT {
            i += 1;
            continue;
        }
        let run_start = i;
        while i < n && safe_part[i] != CONFLICT {
            i += 1;
        }
        if i - run_start >= min_parallel_refs {
            if run_start > emitted {
                serial_refs += (run_start - emitted) as u64;
                segments.push(Segment::Serial {
                    start: emitted,
                    end: run_start,
                });
            }
            let mut lists = vec![Vec::new(); parts];
            for (j, &p) in safe_part.iter().enumerate().take(i).skip(run_start) {
                lists[usize::from(p)].push(u32::try_from(j).expect("trace indices fit u32"));
            }
            parallel_refs += (i - run_start) as u64;
            rounds += 1;
            segments.push(Segment::Round { lists });
            emitted = i;
        }
    }
    if emitted < n {
        serial_refs += (n - emitted) as u64;
        segments.push(Segment::Serial {
            start: emitted,
            end: n,
        });
    }
    RoundPlan {
        segments,
        parallel_refs,
        serial_refs,
        rounds,
    }
}

impl System {
    /// Replays a single-component trace with the round-based engine
    /// (see the module docs). Returns the number of workers engaged;
    /// `1` means the planner found no parallel round worth running and
    /// the whole trace replayed on the serial oracle path (the
    /// [`System::shard_report`] still records the split). The caller
    /// (`run_sharded_with`) has already verified eligibility: a
    /// pristine system with static homes.
    pub(crate) fn run_rounds(
        &mut self,
        trace: &SharedTrace,
        workers: usize,
        tuning: ShardTuning,
        fplan: Option<FaultPlan>,
    ) -> usize {
        let partition = trace.cluster_partition(workers.max(1));
        let parts = partition.parts();
        let serial_only = |sys: &mut System| {
            sys.run_shared(trace);
            sys.shard_report = Some(ShardReport {
                engine: ShardEngine::Rounds,
                workers: 1,
                parallel_rounds: 0,
                parallel_refs: 0,
                serial_refs: trace.len() as u64,
                degraded: None,
            });
        };
        if parts < 2 {
            serial_only(self);
            return 1;
        }
        let pc_present = self.spec.pc.is_some();
        let limited_pointers = match self.spec.directory {
            DirectorySpec::FullMap => None,
            DirectorySpec::LimitedPointer { pointers } => Some(pointers),
        };
        let plan = plan_rounds(
            trace,
            partition.part_table(),
            parts,
            pc_present,
            limited_pointers,
            tuning.min_parallel_refs,
        );
        if plan.rounds == 0 {
            serial_only(self);
            return 1;
        }

        // The serial segments mutate `self` mid-plan, so supervised
        // recovery needs the pristine pre-run state saved up front —
        // one clone, only on the (already clone-heavy) parallel path.
        let pristine = self.clone();
        let bpp = self.geo.page_bytes() / self.geo.block_bytes();
        let mut streamed = Metrics::new();
        let mut expected = Metrics::new();
        let mut round_no: u32 = 0;
        let mut fault = None;
        for seg in &plan.segments {
            match seg {
                Segment::Serial { start, end } => self.replay_range(trace, *start, *end),
                Segment::Round { lists } => {
                    round_no += 1;
                    let base_metrics = self.metrics;
                    let mut results: Vec<(usize, System)> = Vec::new();
                    let mut panicked = false;
                    let mut stalled = false;
                    let mut incomplete = false;
                    let me: &System = &*self;
                    std::thread::scope(|scope| {
                        let mut handles = Vec::new();
                        let mut receivers = Vec::new();
                        for (p, list) in lists.iter().enumerate() {
                            if list.is_empty() {
                                continue;
                            }
                            let (mut tx, rx) = mailbox::channel(tuning.mailbox_capacity);
                            receivers.push(rx);
                            let round = round_no;
                            handles.push(scope.spawn(move || {
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                                    let mut sys = me.clone();
                                    let part = u32::try_from(p).expect("part index fits u32");
                                    let done = replay_indices(
                                        &mut sys, trace, list, tuning, &mut tx, round, part, fplan,
                                    );
                                    (p, sys, done)
                                }))
                            }));
                        }
                        // Drain in ascending part order under the stall
                        // watchdog: chunks fold in (round, part, seq)
                        // order, and draining one worker to completion
                        // cannot stall another (each send waits only on
                        // its own mailbox).
                        'drain: for rx in &mut receivers {
                            loop {
                                let deadline =
                                    Instant::now() + Duration::from_millis(tuning.watchdog_ms);
                                match rx.recv_deadline(deadline) {
                                    RecvDeadline::Msg(ShardMsg::Chunk { delta, .. }) => {
                                        streamed.merge(&delta);
                                    }
                                    RecvDeadline::Closed => break,
                                    RecvDeadline::TimedOut => {
                                        stalled = true;
                                        break 'drain;
                                    }
                                }
                            }
                        }
                        // Closed mailboxes unstick blocked and stalled
                        // workers alike (their sends fail → abandon).
                        if stalled {
                            receivers.clear();
                        }
                        for handle in handles {
                            match handle.join() {
                                Ok(Ok((p, sys, done))) => {
                                    incomplete |= !done;
                                    results.push((p, sys));
                                }
                                Ok(Err(_)) | Err(_) => panicked = true,
                            }
                        }
                    });
                    fault = diagnose(panicked, stalled, incomplete);
                    if fault.is_some() {
                        break;
                    }
                    // Merge in ascending part order. Round-safe
                    // references only touch state owned by their part,
                    // so each piece has exactly one authoritative copy.
                    for (p, wsys) in &mut results {
                        let delta = wsys.metrics.delta(&base_metrics);
                        expected.merge(&delta);
                        self.metrics.merge(&delta);
                        for c in partition.clusters_of(*p) {
                            std::mem::swap(&mut self.clusters[c], &mut wsys.clusters[c]);
                            self.per_cluster[c] = wsys.per_cluster[c];
                        }
                        for (page, cl) in wsys.home.placement().iter() {
                            if partition.part_of_cluster(usize::from(cl.0)) != Some(*p) {
                                continue;
                            }
                            self.home.preassign(page, cl);
                            let first = page.0 * bpp;
                            for b in first..first + bpp {
                                self.dir.copy_entry_from(&wsys.dir, BlockAddr(b));
                            }
                        }
                        let placement = wsys.home.placement();
                        self.rnuma.adopt_pages(&wsys.rnuma, |pg| {
                            placement.peek_home(pg).is_some_and(|cl| {
                                partition.part_of_cluster(usize::from(cl.0)) == Some(*p)
                            })
                        });
                    }
                }
            }
        }
        if let Some(cause) = fault {
            // Discard the partially-replayed state and re-run from the
            // saved pristine system: byte-identical to the oracle.
            *self = pristine;
            return self.degrade_to_oracle(trace, ShardEngine::Rounds, cause);
        }
        debug_assert_eq!(
            streamed, expected,
            "streamed chunk deltas disagree with merged worker metrics"
        );
        self.shard_report = Some(ShardReport {
            engine: ShardEngine::Rounds,
            workers: parts,
            parallel_rounds: plan.rounds,
            parallel_refs: plan.parallel_refs,
            serial_refs: plan.serial_refs,
            degraded: None,
        });
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemSpec;
    use dsm_types::{Addr, Geometry, MemRef, ProcId, Topology};

    /// A single-component trace with phase structure: every cluster
    /// works its own pages (round-safe), with a cross-cluster page
    /// shared by everyone making it one component (and punctuating the
    /// local phases with conflicts).
    fn phased_trace(topo: Topology, geo: Geometry) -> SharedTrace {
        let page = geo.page_bytes();
        let ppc = topo.procs_per_cluster();
        let mut refs = Vec::new();
        for phase in 0..4u64 {
            for i in 0..300u64 {
                for c in 0..u64::from(topo.clusters()) {
                    let p = ProcId(u16::try_from(c).unwrap() * ppc);
                    let a = Addr((1000 * c + i % 16) * page + (i * 64) % page);
                    if i % 3 == 0 {
                        refs.push(MemRef::write(p, a));
                    } else {
                        refs.push(MemRef::read(p, a));
                    }
                }
            }
            // Everyone reads the shared page: cross-part conflicts.
            for c in 0..u64::from(topo.clusters()) {
                let p = ProcId(u16::try_from(c).unwrap() * ppc);
                refs.push(MemRef::read(p, Addr(999_999 * page + phase * 64)));
            }
        }
        SharedTrace::from_refs(topo, geo, &refs)
    }

    fn tiny_tuning() -> ShardTuning {
        ShardTuning {
            chunk_refs: 64,
            mailbox_capacity: 4,
            min_parallel_refs: 64,
            ..ShardTuning::default()
        }
    }

    #[test]
    fn rounds_engine_matches_oracle_on_single_component() {
        let topo = Topology::new(4, 4).unwrap();
        let geo = Geometry::paper_default();
        let trace = phased_trace(topo, geo);
        for spec in [
            SystemSpec::base(),
            SystemSpec::vb(),
            SystemSpec::base().with_limited_directory(4),
        ] {
            let mut oracle = System::new(spec.clone(), topo, geo, 0).unwrap();
            oracle.run_shared(&trace);
            let mut sharded = System::new(spec.clone(), topo, geo, 0).unwrap();
            let used = sharded.run_sharded_with(&trace, 4, tiny_tuning());
            assert!(used >= 2, "{}: rounds engine should engage", spec.name);
            let report = sharded.shard_report().unwrap();
            assert_eq!(report.engine, ShardEngine::Rounds, "{}", spec.name);
            assert!(report.parallel_rounds >= 1, "{}", spec.name);
            assert_eq!(sharded.metrics(), oracle.metrics(), "{}", spec.name);
            for c in 0..topo.clusters() {
                assert_eq!(
                    sharded.cluster_counts(dsm_types::ClusterId(c)),
                    oracle.cluster_counts(dsm_types::ClusterId(c)),
                    "{} cluster {c}",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn planner_split_covers_the_whole_trace() {
        let topo = Topology::new(4, 4).unwrap();
        let geo = Geometry::paper_default();
        let trace = phased_trace(topo, geo);
        let mut sys = System::new(SystemSpec::base(), topo, geo, 0).unwrap();
        sys.run_sharded_with(&trace, 4, tiny_tuning());
        let report = sys.shard_report().unwrap();
        assert_eq!(
            report.parallel_refs + report.serial_refs,
            trace.len() as u64
        );
        assert!(report.parallel_refs > 0);
        assert!(report.serial_refs > 0);
    }

    #[test]
    fn rounds_fault_degrades_to_oracle_byte_identical() {
        use super::super::ShardFault;
        use dsm_types::FaultPlan;
        let topo = Topology::new(4, 4).unwrap();
        let geo = Geometry::paper_default();
        let trace = phased_trace(topo, geo);
        let mut oracle = System::new(SystemSpec::vb(), topo, geo, 0).unwrap();
        oracle.run_shared(&trace);
        // The rounds engine numbers rounds from 1; chunk_refs=64 means
        // part 0's first chunk (seq 0) of round 1 fires early.
        for (spec, tuning, expect) in [
            (
                "worker-panic@r1.p0.s0",
                tiny_tuning(),
                ShardFault::WorkerPanic,
            ),
            (
                "mailbox-stall@r1.p0.s0",
                ShardTuning {
                    watchdog_ms: 50,
                    ..tiny_tuning()
                },
                ShardFault::MailboxStall,
            ),
            (
                "mailbox-send-fail@r1.p1.s0",
                tiny_tuning(),
                ShardFault::WorkerIncomplete,
            ),
        ] {
            let fplan = Some(FaultPlan::from_spec(spec).unwrap());
            let mut sys = System::new(SystemSpec::vb(), topo, geo, 0).unwrap();
            let used = sys.run_sharded_inner(&trace, 4, tuning, fplan);
            assert_eq!(used, 1, "{spec}: degraded run is serial");
            assert_eq!(sys.metrics(), oracle.metrics(), "{spec}: byte-identical");
            for c in 0..topo.clusters() {
                assert_eq!(
                    sys.cluster_counts(dsm_types::ClusterId(c)),
                    oracle.cluster_counts(dsm_types::ClusterId(c)),
                    "{spec}: cluster {c}"
                );
            }
            let report = sys.shard_report().unwrap();
            assert_eq!(report.engine, ShardEngine::Rounds, "{spec}");
            assert_eq!(report.degraded, Some(expect), "{spec}");
            assert_eq!(report.serial_refs, trace.len() as u64, "{spec}");
        }
    }

    #[test]
    fn trivial_trace_reports_a_serial_plan() {
        let topo = Topology::new(2, 4).unwrap();
        let geo = Geometry::paper_default();
        let refs = vec![
            MemRef::read(ProcId(0), Addr(0)),
            MemRef::read(ProcId(4), Addr(0)),
        ];
        let trace = SharedTrace::from_refs(topo, geo, &refs);
        let mut sys = System::new(SystemSpec::base(), topo, geo, 0).unwrap();
        assert_eq!(sys.run_sharded(&trace, 4), 1);
        let report = sys.shard_report().unwrap();
        assert_eq!(report.engine, ShardEngine::Rounds);
        assert_eq!(report.parallel_rounds, 0);
        assert_eq!(report.serial_refs, 2);
    }
}
