//! The machine-level simulator: clusters, directory, and the reference
//! processing state machine.

use dsm_cache::{CacheState, Eviction};
use dsm_directory::{DirectoryUnit, HomeMap, RnumaCounters};
use dsm_protocol::mesir;
use dsm_trace::{SharedTrace, BATCH};
use dsm_types::{
    AddrParts, BlockAddr, ClusterId, ClusterSet, ConfigError, DecodedRef, DenseMap, DsmError,
    Geometry, LocalProcId, MemOp, MemRef, PageAddr, Topology,
};

use crate::cluster::ClusterUnit;
use crate::config::{CounterSource, MigRepSpec, SystemSpec};
use crate::metrics::{ClusterCounts, Metrics};
use crate::model::{Latencies, LatencyModel};
use crate::nc::{NcEviction, NcUnit};
use crate::page_cache::PcBlockState;
use crate::probe::{EpochSample, Event, NoProbe, Probe};

/// A complete simulated machine under one [`SystemSpec`].
///
/// The simulator is trace-driven and event-count based, mirroring the
/// paper's methodology: each shared reference is classified (cache hit,
/// peer transfer, NC hit, PC hit, or remote access), coherence state is
/// maintained exactly (MESIR caches, network/page caches, full-map
/// directory), and the latency model of Tables 1-2 turns the counts into
/// the remote read stall of Equation 1.
///
/// # Example
///
/// ```
/// use dsm_core::{System, SystemSpec};
/// use dsm_types::{Addr, Geometry, MemRef, ProcId, Topology};
///
/// let mut sys = System::new(
///     SystemSpec::vb(),
///     Topology::paper_default(),
///     Geometry::paper_default(),
///     0, // data-set size only matters for fraction-sized page caches
/// )?;
/// sys.process(MemRef::read(ProcId(0), Addr(0x1000)));
/// assert_eq!(sys.metrics().shared_refs, 1);
/// # Ok::<(), dsm_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct System<P: Probe = NoProbe> {
    // `pub(crate)` so the sibling `check` and `shard` modules can walk
    // (and, for `shard`, merge) the machine state; external code still
    // goes through the accessors.
    pub(crate) spec: SystemSpec,
    pub(crate) topo: Topology,
    pub(crate) geo: Geometry,
    pub(crate) home: HomeMap,
    pub(crate) dir: DirectoryUnit,
    pub(crate) rnuma: RnumaCounters,
    pub(crate) clusters: Vec<ClusterUnit>,
    pub(crate) metrics: Metrics,
    pub(crate) per_cluster: Vec<ClusterCounts>,
    pub(crate) migrep: Option<MigRepState>,
    /// How the most recent `run_sharded` call executed (`None` until
    /// one runs) — the probe the no-silent-fallback assertions read.
    pub(crate) shard_report: Option<crate::shard::ShardReport>,
    model: LatencyModel,
    probe: P,
    epoch: Option<EpochState>,
    /// Invariant-check cadence for [`System::run_shared_checked`] (0 =
    /// check only at end of trace). Never read on the unchecked paths.
    check_every: u64,
}

/// Live state of the epoch sampler (see [`System::set_epoch_window`]).
#[derive(Debug, Clone)]
struct EpochState {
    window: u64,
    index: u64,
    start_ref: u64,
    last_metrics: Metrics,
    last_per_cluster: Vec<ClusterCounts>,
}

/// A point-in-time fill snapshot of one cluster's structures (see
/// [`System::occupancy`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterOccupancy {
    /// Valid blocks across the cluster's processor caches.
    pub cache_blocks: usize,
    /// Blocks resident in the network cache (0 without an NC).
    pub nc_blocks: usize,
    /// Pages resident in the page cache (0 without a PC).
    pub pc_pages: usize,
    /// Page-cache frame capacity (0 without a PC).
    pub pc_capacity: usize,
    /// Bus transactions the cluster has carried so far.
    pub bus_transactions: u64,
}

/// A machine-wide occupancy snapshot: per-cluster structure fill plus
/// live directory entries (see [`System::occupancy`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OccupancySnapshot {
    /// One fill snapshot per cluster, in cluster order.
    pub clusters: Vec<ClusterOccupancy>,
    /// Blocks with live directory state (either organization).
    pub directory_tracked_blocks: usize,
}

impl OccupancySnapshot {
    /// Serializes the snapshot for `profile --out` / rollup exports.
    #[must_use]
    pub fn to_json(&self) -> crate::obs::json::Json {
        use crate::obs::json::Json;
        let clusters = self
            .clusters
            .iter()
            .map(|c| {
                Json::obj()
                    .set("cache_blocks", c.cache_blocks as u64)
                    .set("nc_blocks", c.nc_blocks as u64)
                    .set("pc_pages", c.pc_pages as u64)
                    .set("pc_capacity", c.pc_capacity as u64)
                    .set("bus_transactions", c.bus_transactions)
            })
            .collect();
        Json::obj().set("clusters", Json::Arr(clusters)).set(
            "directory_tracked_blocks",
            self.directory_tracked_blocks as u64,
        )
    }
}

/// Runtime state of the Origin-style OS page policies.
#[derive(Debug, Clone)]
pub(crate) struct MigRepState {
    spec: MigRepSpec,
    /// Per-page per-cluster remote-miss counters (same hardware R-NUMA
    /// assumes, repurposed for the OS policy).
    counters: RnumaCounters,
    /// Pages that have ever been written (not read-only; replication is
    /// withheld and migration applies instead).
    written_pages: DenseMap<u32>,
    /// Replicated pages: the set of clusters holding a replica.
    replicas: DenseMap<ClusterSet>,
}

impl System {
    /// Builds an unobserved system (the [`NoProbe`] default: every
    /// emission site compiles away). `data_bytes` is the application's
    /// data-set size, needed to resolve fraction-sized page caches
    /// (`ncp5` etc.); pass 0 for systems without one.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the spec is inconsistent or a
    /// fraction-sized page cache resolves to zero frames.
    pub fn new(
        spec: SystemSpec,
        topo: Topology,
        geo: Geometry,
        data_bytes: u64,
    ) -> Result<Self, ConfigError> {
        System::with_probe(spec, topo, geo, data_bytes, NoProbe)
    }
}

impl<P: Probe> System<P> {
    /// Builds a system observed by `probe`. See [`System::new`] for the
    /// other parameters; see [`System::set_epoch_window`] to also enable
    /// epoch sampling.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the spec is inconsistent or a
    /// fraction-sized page cache resolves to zero frames.
    pub fn with_probe(
        spec: SystemSpec,
        topo: Topology,
        geo: Geometry,
        data_bytes: u64,
        probe: P,
    ) -> Result<Self, ConfigError> {
        spec.validate()?;
        let pc_frames = match &spec.pc {
            Some(pc) => Some(pc.size.frames(data_bytes, &geo)?),
            None => None,
        };
        let clusters = (0..topo.clusters())
            .map(|_| ClusterUnit::build(&spec, &topo, geo, pc_frames))
            .collect::<Result<Vec<_>, _>>()?;
        let model = LatencyModel::new(Latencies::paper_default(), spec.technology());
        let migrep = spec.migrep.map(|spec| MigRepState {
            spec,
            counters: RnumaCounters::new(),
            written_pages: DenseMap::new(),
            replicas: DenseMap::new(),
        });
        Ok(System {
            home: HomeMap::new(geo),
            dir: match spec.directory {
                crate::config::DirectorySpec::FullMap => DirectoryUnit::full_map(topo.clusters()),
                crate::config::DirectorySpec::LimitedPointer { pointers } => {
                    DirectoryUnit::limited(topo.clusters(), pointers)
                }
            },
            rnuma: RnumaCounters::new(),
            per_cluster: vec![ClusterCounts::default(); usize::from(topo.clusters())],
            clusters,
            metrics: Metrics::new(),
            migrep,
            shard_report: None,
            model,
            spec,
            topo,
            geo,
            probe,
            epoch: None,
            check_every: 0,
        })
    }

    /// Enables epoch sampling: every `window` shared references the
    /// probe's [`Probe::epoch`] receives the counters gained since the
    /// previous sample (plus per-cluster deltas and live thresholds).
    /// Call [`System::finish`] after the trace to flush the partial tail.
    ///
    /// Sampling only fires for probes with `ENABLED = true`.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn set_epoch_window(&mut self, window: u64) {
        assert!(window > 0, "epoch window must be positive");
        self.epoch = Some(EpochState {
            window,
            index: 0,
            start_ref: self.metrics.shared_refs,
            last_metrics: self.metrics,
            last_per_cluster: self.per_cluster.clone(),
        });
    }

    /// Flushes the open (partial) epoch, if any. Idempotent; call once
    /// after the last reference of a run.
    pub fn finish(&mut self) {
        if P::ENABLED {
            self.flush_epoch();
        }
    }

    /// The probe observing this system.
    #[must_use]
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Mutable access to the probe (e.g. to flush a buffered sink).
    #[must_use]
    pub fn probe_mut(&mut self) -> &mut P {
        &mut self.probe
    }

    /// Consumes the system, returning the probe and final metrics.
    #[must_use]
    pub fn into_probe(self) -> (P, Metrics) {
        (self.probe, self.metrics)
    }

    /// Forwards one event to the probe. Compiles to nothing under
    /// [`NoProbe`] — `P::ENABLED` is a constant the optimizer folds.
    #[inline(always)]
    fn emit(&mut self, event: Event) {
        if P::ENABLED {
            self.probe.event(self.metrics.shared_refs, &event);
        }
    }

    /// Closes the current epoch if the window has elapsed.
    #[inline]
    fn maybe_epoch(&mut self) {
        let due = match &self.epoch {
            Some(st) => self.metrics.shared_refs - st.start_ref >= st.window,
            None => false,
        };
        if due {
            self.flush_epoch();
        }
    }

    /// Emits the currently-open epoch (when non-empty) and starts the
    /// next one.
    fn flush_epoch(&mut self) {
        let Some(mut st) = self.epoch.take() else {
            return;
        };
        if self.metrics.shared_refs > st.start_ref {
            let sample = EpochSample {
                index: st.index,
                start_ref: st.start_ref,
                end_ref: self.metrics.shared_refs,
                delta: self.metrics.delta(&st.last_metrics),
                per_cluster: self
                    .per_cluster
                    .iter()
                    .zip(&st.last_per_cluster)
                    .map(|(now, was)| now.delta(was))
                    .collect(),
                thresholds: self
                    .clusters
                    .iter()
                    .map(|c| c.threshold.threshold())
                    .collect(),
            };
            st.index += 1;
            st.start_ref = self.metrics.shared_refs;
            st.last_metrics = self.metrics;
            st.last_per_cluster = self.per_cluster.clone();
            self.probe.epoch(&sample);
        }
        self.epoch = Some(st);
    }

    /// The configuration this system was built from.
    #[must_use]
    pub fn spec(&self) -> &SystemSpec {
        &self.spec
    }

    /// The configuration's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Accumulated event counts.
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The latency model in force (Tables 1-2).
    #[must_use]
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// How the most recent `run_sharded` call on this system executed:
    /// which engine ran, how many workers engaged, and the
    /// parallel/serial split. `None` until a sharded run happens.
    /// Callers (and CI) use this to assert that a workload did *not*
    /// silently fall back to the single-threaded oracle.
    #[must_use]
    pub fn shard_report(&self) -> Option<crate::shard::ShardReport> {
        self.shard_report
    }

    /// The machine topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The address-space geometry.
    #[must_use]
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Directory storage cost per block in bits under this system's
    /// directory organization (full map: O(clusters); Dir-i-B:
    /// O(pointers)).
    #[must_use]
    pub fn directory_bits_per_block(&self) -> u32 {
        self.dir.bits_per_block()
    }

    /// Read-only view of one cluster (tests and diagnostics).
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn cluster(&self, cluster: ClusterId) -> &ClusterUnit {
        &self.clusters[usize::from(cluster.0)]
    }

    /// Per-cluster event counts (locality/imbalance analysis).
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    #[must_use]
    pub fn cluster_counts(&self, cluster: ClusterId) -> &ClusterCounts {
        &self.per_cluster[usize::from(cluster.0)]
    }

    /// Snapshots how full the machine's structures are right now:
    /// per-cluster processor-cache/NC blocks, page-cache frames and bus
    /// transactions, plus live directory entries. Read-on-demand (the
    /// structures already track their fill), so taking a snapshot costs
    /// nothing on the per-reference path; the directory walk is
    /// O(blocks) and meant for end-of-run diagnostics.
    #[must_use]
    pub fn occupancy(&self) -> OccupancySnapshot {
        let clusters = self
            .clusters
            .iter()
            .map(|cl| {
                let cache_blocks = (0..cl.bus.procs())
                    .map(|p| cl.bus.cache(LocalProcId(p as u16)).len())
                    .sum();
                ClusterOccupancy {
                    cache_blocks,
                    nc_blocks: cl.nc.occupied_blocks(),
                    pc_pages: cl.pc.as_ref().map_or(0, |pc| pc.len()),
                    pc_capacity: cl.pc.as_ref().map_or(0, |pc| pc.capacity()),
                    bus_transactions: cl.bus.stats().transactions(),
                }
            })
            .collect();
        OccupancySnapshot {
            clusters,
            directory_tracked_blocks: self.dir.tracked_blocks(),
        }
    }

    /// Processes an entire trace.
    ///
    /// Compatibility shim over [`System::run_shared`]: collects the
    /// references and builds a [`SharedTrace`] internally. Callers
    /// replaying a trace more than once (sweeps) should build the
    /// `SharedTrace` themselves and call [`System::run_shared`] so the
    /// decomposition columns are computed once, not per configuration.
    ///
    /// # Panics
    ///
    /// Panics if a reference's processor is outside the topology.
    pub fn run<I: IntoIterator<Item = MemRef>>(&mut self, trace: I) {
        let refs: Vec<MemRef> = trace.into_iter().collect();
        let shared = SharedTrace::from_refs(self.topo, self.geo, &refs);
        self.run_shared(&shared);
    }

    /// Replays a columnar trace, consuming the precomputed decomposition
    /// columns in batches of [`BATCH`] [`DecodedRef`]s — no per-reference
    /// address arithmetic, processor splitting, or page-table hashing.
    ///
    /// The precomputed `home` column encodes pure first-touch placement,
    /// so the batched path requires page homes to be static: a system
    /// running OS migration/replication policies, or one whose placement
    /// map is already populated (a prior `run` on the same system),
    /// falls back to the per-reference path with live home lookups. The
    /// two paths are metric-identical (see `tests/sharedtrace_equiv.rs`).
    ///
    /// # Panics
    ///
    /// Panics if `trace` was built under a different topology or
    /// geometry than this system.
    pub fn run_shared(&mut self, trace: &SharedTrace) {
        assert_eq!(
            trace.topology(),
            &self.topo,
            "trace topology does not match system topology"
        );
        assert_eq!(
            trace.geometry(),
            &self.geo,
            "trace geometry does not match system geometry"
        );
        let static_homes = self.migrep.is_none() && self.home.placement().placed_pages() == 0;
        if !static_homes {
            for r in trace.iter() {
                self.process(r);
            }
            return;
        }
        // Prefetch one batch ahead: after decoding batch N, peek batch
        // N+1's columns (registers only, no DecodedRef materialization)
        // and issue prefetches for the machine lines it will touch —
        // processor-cache tag rows, directory entries, NC lines — so
        // batch N's processing overlaps batch N+1's memory latency.
        // Processing order is unchanged; prefetches are hints. The peek
        // deliberately avoids a second decoded buffer: double-buffering
        // forces both batches' lanes through the stack, which measures
        // slower than re-reading the columns.
        let mut batch = [DecodedRef::default(); BATCH];
        let mut start = 0;
        loop {
            let n = trace.decode_batch(start, &mut batch);
            if n == 0 {
                break;
            }
            trace.peek_batch(start + n, BATCH, |cl, lp, block| {
                self.prefetch_line(cl, lp, block);
            });
            for d in &batch[..n] {
                self.process_decoded(*d);
            }
            start += n;
        }
    }

    /// Replays the half-open trace range `[start, end)` with the same
    /// batched decode + one-batch-ahead prefetch discipline as
    /// [`System::run_shared`] — the serial-segment primitive of the
    /// intra-component sharded engine (`crate::shard::rounds`). Requires
    /// static homes, which the sharded engine's eligibility check
    /// already guarantees.
    pub(crate) fn replay_range(&mut self, trace: &SharedTrace, start: usize, end: usize) {
        debug_assert!(end <= trace.len());
        let mut batch = [DecodedRef::default(); BATCH];
        let mut pos = start;
        while pos < end {
            let want = (end - pos).min(BATCH);
            let n = trace.decode_batch(pos, &mut batch[..want]);
            if n == 0 {
                break;
            }
            // Peeking past `end` only issues prefetch hints for lines
            // the next segment will touch; state is unchanged.
            trace.peek_batch(pos + n, BATCH, |cl, lp, block| {
                self.prefetch_line(cl, lp, block);
            });
            for d in &batch[..n] {
                self.process_decoded(*d);
            }
            pos += n;
        }
    }

    /// Issues prefetch hints for the machine lines a reference issued by
    /// local processor `lp` of cluster `cl` against `block` will touch
    /// when processed: the processor's cache tag row, the directory
    /// entry, and the cluster's NC line. Called one batch ahead of
    /// processing; never changes state.
    #[inline]
    pub(crate) fn prefetch_line(&self, cl: ClusterId, lp: LocalProcId, block: BlockAddr) {
        self.dir.prefetch(block);
        let c = &self.clusters[usize::from(cl.0)];
        c.bus.prefetch(lp, block);
        c.nc.prefetch(block);
    }

    /// Sets the invariant-check cadence for
    /// [`System::run_shared_checked`]: the coherence invariants are
    /// validated after every `every` references (plus once at end of
    /// trace). `0` restores the default end-of-trace-only check.
    ///
    /// This knob is only read by the checked replay path; the unchecked
    /// [`System::run_shared`] hot path never looks at it, so leaving
    /// checks off costs nothing.
    pub fn set_check_level(&mut self, every: u64) {
        self.check_every = every;
    }

    /// Replays a trace like [`System::run_shared`], validating the
    /// coherence invariants at the cadence set by
    /// [`System::set_check_level`] and once after the last reference.
    ///
    /// Runs on the per-reference path (metric-identical to the batched
    /// path; see `tests/sharedtrace_equiv.rs`), so a violation can be
    /// reported with the exact reference that exposed it.
    ///
    /// # Errors
    ///
    /// Returns [`DsmError`] with kind `BadInput` if the trace was built
    /// under a different topology or geometry, or `InvariantViolation`
    /// (with the offending reference and epoch attached as context) if
    /// the machine state is inconsistent.
    pub fn run_shared_checked(&mut self, trace: &SharedTrace) -> Result<(), DsmError> {
        if trace.topology() != &self.topo {
            return Err(DsmError::bad_input(format!(
                "trace topology {} does not match system topology {}",
                trace.topology(),
                self.topo
            )));
        }
        if trace.geometry() != &self.geo {
            return Err(DsmError::bad_input(
                "trace geometry does not match system geometry",
            ));
        }
        let every = self.check_every;
        let mut last: Option<(u64, MemRef)> = None;
        for (i, r) in trace.iter().enumerate() {
            self.process(r);
            let i = i as u64;
            last = Some((i, r));
            if every > 0 && (i + 1).is_multiple_of(every) {
                self.check_invariants()
                    .map_err(|e| self.attach_reference_context(e, i, r))?;
            }
        }
        self.check_invariants().map_err(|e| match last {
            Some((i, r)) => self
                .attach_reference_context(e, i, r)
                .context("end of trace"),
            None => e.context("end of trace (empty)"),
        })
    }

    /// Wraps an invariant violation with the reference that exposed it
    /// and, when epoch sampling is on, the current epoch index.
    fn attach_reference_context(&self, e: DsmError, index: u64, r: MemRef) -> DsmError {
        let AddrParts { block, page, .. } = self.geo.decompose(r.addr);
        let (cl, lp) = self.topo.split_of(r.proc);
        let op = if r.op.is_write() { "write" } else { "read" };
        let epoch = match &self.epoch {
            Some(st) => format!(", epoch {}", st.index),
            None => String::new(),
        };
        e.context(format!(
            "after ref {index}: {op} by proc {} (cluster {}, local proc {}) \
             at addr {:#x} ({block}, {page}){epoch}",
            r.proc.0, cl.0, lp.0, r.addr.0
        ))
    }

    /// Deliberately corrupts the directory by dropping `cluster`'s
    /// presence bit for `block`, leaving any cached copies untracked.
    /// Exists solely so tests can prove the invariant checker catches
    /// real corruption; full-map directories only.
    ///
    /// # Panics
    ///
    /// Panics on a limited-pointer directory.
    #[doc(hidden)]
    pub fn corrupt_directory_drop_presence(&mut self, block: BlockAddr, cluster: ClusterId) {
        self.dir.drop_presence(block, cluster);
    }

    /// Processes one pre-decoded reference on the static-home fast path
    /// (no OS page policies, placement driven purely by first touch).
    /// Mirrors [`System::process`] with the derivations and the
    /// migration branches removed; the first-touch flag keeps the live
    /// placement map populated for eviction home lookups and
    /// victimization accounting.
    #[inline]
    pub(crate) fn process_decoded(&mut self, d: DecodedRef) {
        debug_assert!(self.migrep.is_none());
        if d.first_touch {
            self.home.preassign(d.page, d.home);
        }
        self.metrics.shared_refs += 1;
        self.per_cluster[usize::from(d.cluster.0)].refs += 1;
        if d.write {
            self.metrics.writes += 1;
            self.process_write(d.cluster, d.lproc, d.block, d.page, d.remote());
        } else {
            self.metrics.reads += 1;
            self.process_read(d.cluster, d.lproc, d.block, d.page, d.remote());
        }
        if P::ENABLED {
            self.maybe_epoch();
        }
    }

    /// Processes one shared-memory reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference's processor is outside the topology.
    pub fn process(&mut self, r: MemRef) {
        let AddrParts { block, page, .. } = self.geo.decompose(r.addr);
        let (cl, lp) = self.topo.split_of(r.proc);
        let home = self.home.home_of_page(page, cl);
        let mut remote = home != cl;

        // Origin-style OS policies: local replicas serve remote reads;
        // any write to a replicated page collapses its replicas first.
        if r.op.is_write() {
            if self.migrep.is_some() {
                // A page only loses replication eligibility when a write
                // is *sharing-relevant*: the page is remote to the writer,
                // or another cluster currently holds (a block of) it.
                // First-touch initialization writes stay invisible, as an
                // OS policy driven by remote-miss counters would see them.
                let shared_elsewhere = remote || self.dir.has_sharer_other_than(block, cl);
                let mut collapsed = false;
                if let Some(mr) = self.migrep.as_mut() {
                    collapsed = mr.replicas.remove(page.0).is_some();
                    if shared_elsewhere {
                        *mr.written_pages.entry_or_default(page.0) += 1;
                    }
                }
                if collapsed {
                    self.metrics.replica_collapses += 1;
                    self.emit(Event::ReplicaCollapse { cluster: cl, page });
                }
            }
        } else if remote {
            if let Some(mr) = self.migrep.as_ref() {
                if mr.replicas.get(page.0).is_some_and(|set| set.contains(cl)) {
                    remote = false;
                }
            }
        }

        self.metrics.shared_refs += 1;
        self.per_cluster[usize::from(cl.0)].refs += 1;
        match r.op {
            MemOp::Read => {
                self.metrics.reads += 1;
                self.process_read(cl, lp, block, page, remote);
            }
            MemOp::Write => {
                self.metrics.writes += 1;
                self.process_write(cl, lp, block, page, remote);
            }
        }
        if P::ENABLED {
            self.maybe_epoch();
        }
    }

    fn process_read(
        &mut self,
        cl: ClusterId,
        lp: LocalProcId,
        block: BlockAddr,
        page: PageAddr,
        remote: bool,
    ) {
        let ci = usize::from(cl.0);

        // 1. Own cache (single tag-array scan: probe + LRU refresh).
        if self.clusters[ci].bus.try_read_hit(lp, block) {
            self.metrics.read_hits += 1;
            self.emit(Event::CacheHit {
                cluster: cl,
                write: false,
            });
            return;
        }

        // 2. Peer cache on the cluster bus.
        if let Some((supplier, _)) = self.clusters[ci].bus.find_supplier(lp, block) {
            let res = self.clusters[ci].bus.peer_read_supply(lp, supplier, block);
            self.metrics.peer_transfers += 1;
            self.emit(Event::PeerTransfer {
                cluster: cl,
                block,
                write: false,
            });
            if res.dirty_downgrade {
                self.handle_downgrade_writeback(ci, cl, block, remote);
            }
            if let Some(ev) = res.eviction {
                self.handle_cache_eviction(ci, cl, ev);
            }
            return;
        }

        // 3. Network cache (caches remote data only).
        if remote {
            if let Some(hit) = self.clusters[ci].nc.read_lookup(block) {
                self.metrics.nc_read_hits += 1;
                self.per_cluster[ci].nc_hits += 1;
                self.emit(Event::NcHit {
                    cluster: cl,
                    block,
                    write: false,
                    dirty: hit.dirty,
                });
                // A dirty NC copy means this cluster owns the block, so the
                // cache may install it Modified without a directory
                // transaction; a clean one installs the MESIR R state.
                let state = if hit.dirty {
                    CacheState::Modified
                } else {
                    CacheState::RemoteMaster
                };
                if let Some(ev) = self.clusters[ci].bus.fill(lp, block, state) {
                    self.handle_cache_eviction(ci, cl, ev);
                }
                return;
            }

            // 4. Page cache.
            if self.clusters[ci].pc.is_some() {
                let state = self.clusters[ci]
                    .pc
                    .as_mut()
                    .expect("checked")
                    .lookup_block(block);
                if let Some(st) = state {
                    if st.is_valid() {
                        self.metrics.pc_read_hits += 1;
                        self.per_cluster[ci].pc_hits += 1;
                        self.emit(Event::PcHit {
                            cluster: cl,
                            page,
                            block,
                            write: false,
                        });
                        let pc = self.clusters[ci].pc.as_mut().expect("checked");
                        pc.record_hit(page);
                        let fill = match st {
                            PcBlockState::Dirty => {
                                // Ownership moves up to the cache.
                                pc.set_block(block, PcBlockState::Invalid);
                                CacheState::Modified
                            }
                            PcBlockState::Clean => CacheState::RemoteMaster,
                            PcBlockState::Invalid => unreachable!("checked validity"),
                        };
                        if let Some(ev) = self.clusters[ci].bus.fill(lp, block, fill) {
                            self.handle_cache_eviction(ci, cl, ev);
                        }
                        return;
                    }
                    // Page resident, block invalid: fall through to the
                    // home; the fill below revalidates the PC block.
                }
            }
        }

        // 5. Home memory via the directory.
        let grant = self.dir.read(block, cl);
        if let Some(owner) = grant.downgraded_owner {
            self.apply_remote_downgrade(owner, block);
        }
        if remote {
            self.per_cluster[ci].remote_reads += 1;
            if grant.prior_presence {
                self.metrics.remote_read_capacity += 1;
            } else {
                self.metrics.remote_read_necessary += 1;
            }
            self.emit(Event::RemoteRead {
                cluster: cl,
                block,
                capacity: grant.prior_presence,
            });
            if let Some(e) = self.clusters[ci].nc.on_remote_fill(block, false) {
                self.handle_nc_eviction(ci, cl, e);
            }
            if let Some(pc) = self.clusters[ci].pc.as_mut() {
                if pc.has_page(page) {
                    pc.set_block(block, PcBlockState::Clean);
                }
            }
            self.maybe_relocate_directory(ci, cl, page, grant.prior_presence);
            self.maybe_migrep(cl, page);
        } else {
            self.metrics.local_misses += 1;
            self.emit(Event::LocalMiss { cluster: cl, block });
            if grant.exclusive {
                // Local exclusive-clean (E) grants carry silent-write
                // permission; the directory must treat the cluster as owner.
                self.dir.grant_exclusive(block, cl);
            }
        }
        let state = mesir::read_fill_state(remote, grant.exclusive);
        if let Some(ev) = self.clusters[ci].bus.fill(lp, block, state) {
            self.handle_cache_eviction(ci, cl, ev);
        }
    }

    fn process_write(
        &mut self,
        cl: ClusterId,
        lp: LocalProcId,
        block: BlockAddr,
        page: PageAddr,
        remote: bool,
    ) {
        let ci = usize::from(cl.0);
        // Single tag-array scan: probes the writer's cache, refreshes LRU
        // on a hit and applies the silent E -> M transition inline. The
        // extra LRU refresh before an upgrade is invisible to replacement
        // order (the upgrade refreshes again with a later tick).
        let own = self.clusters[ci].bus.write_probe(lp, block);

        match own {
            CacheState::Modified | CacheState::Exclusive => {
                self.metrics.write_hits += 1;
                self.emit(Event::CacheHit {
                    cluster: cl,
                    write: true,
                });
            }
            CacheState::Shared | CacheState::RemoteMaster | CacheState::Owned => {
                // Upgrade: the data is here, only ownership is needed (an
                // `O` holder is already the directory owner).
                if self.dir.is_owner(block, cl) {
                    self.clusters[ci].bus.upgrade(lp, block);
                    self.metrics.local_upgrades += 1;
                    self.emit(Event::LocalUpgrade { cluster: cl, block });
                } else {
                    let grant = self.dir.write(block, cl);
                    // An upgrade is a coherence transaction, never a
                    // capacity miss (the cluster still holds the block).
                    self.count_remote_write(ci, cl, block, remote, false);
                    self.apply_invalidations(grant.invalidate, block);
                    self.clusters[ci].bus.upgrade(lp, block);
                }
                self.after_local_write(ci, cl, block, remote);
            }
            CacheState::Invalid => {
                self.process_write_miss(ci, cl, lp, block, page, remote);
            }
        }
    }

    fn process_write_miss(
        &mut self,
        ci: usize,
        cl: ClusterId,
        lp: LocalProcId,
        block: BlockAddr,
        page: PageAddr,
        remote: bool,
    ) {
        // 1. Peer caches.
        if let Some((_, sstate)) = self.clusters[ci].bus.find_supplier(lp, block) {
            if !(sstate.is_dirty() || self.dir.is_owner(block, cl)) {
                // Peer copies are clean and the cluster does not own the
                // block: acquire ownership first (data stays on the bus).
                let grant = self.dir.write(block, cl);
                if remote {
                    self.metrics.remote_ownership_requests += 1;
                    self.per_cluster[ci].remote_writes += 1;
                    self.emit(Event::OwnershipRequest { cluster: cl, block });
                }
                self.apply_invalidations(grant.invalidate, block);
            }
            let res = self.clusters[ci].bus.peer_write_supply(lp, block);
            self.metrics.peer_transfers += 1;
            self.emit(Event::PeerTransfer {
                cluster: cl,
                block,
                write: true,
            });
            self.after_local_write(ci, cl, block, remote);
            if let Some(ev) = res.eviction {
                self.handle_cache_eviction(ci, cl, ev);
            }
            return;
        }

        // 2. Network cache.
        if remote {
            if let Some(hit) = self.clusters[ci].nc.write_lookup(block) {
                self.metrics.nc_write_hits += 1;
                self.per_cluster[ci].nc_hits += 1;
                self.emit(Event::NcHit {
                    cluster: cl,
                    block,
                    write: true,
                    dirty: hit.dirty,
                });
                if !hit.dirty && !self.dir.is_owner(block, cl) {
                    let grant = self.dir.write(block, cl);
                    self.metrics.remote_ownership_requests += 1;
                    self.per_cluster[ci].remote_writes += 1;
                    self.emit(Event::OwnershipRequest { cluster: cl, block });
                    self.apply_invalidations(grant.invalidate, block);
                }
                if let Some(pc) = self.clusters[ci].pc.as_mut() {
                    pc.invalidate_block(block);
                }
                if let Some(ev) = self.clusters[ci].bus.fill(lp, block, CacheState::Modified) {
                    self.handle_cache_eviction(ci, cl, ev);
                }
                return;
            }

            // 3. Page cache.
            if self.clusters[ci].pc.is_some() {
                let state = self.clusters[ci]
                    .pc
                    .as_mut()
                    .expect("checked")
                    .lookup_block(block);
                if let Some(st) = state {
                    if st.is_valid() {
                        self.metrics.pc_write_hits += 1;
                        self.per_cluster[ci].pc_hits += 1;
                        self.emit(Event::PcHit {
                            cluster: cl,
                            page,
                            block,
                            write: true,
                        });
                        {
                            let pc = self.clusters[ci].pc.as_mut().expect("checked");
                            pc.record_hit(page);
                            pc.set_block(block, PcBlockState::Invalid);
                        }
                        if st == PcBlockState::Clean && !self.dir.is_owner(block, cl) {
                            let grant = self.dir.write(block, cl);
                            self.metrics.remote_ownership_requests += 1;
                            self.per_cluster[ci].remote_writes += 1;
                            self.emit(Event::OwnershipRequest { cluster: cl, block });
                            self.apply_invalidations(grant.invalidate, block);
                        }
                        if let Some(ev) =
                            self.clusters[ci].bus.fill(lp, block, CacheState::Modified)
                        {
                            self.handle_cache_eviction(ci, cl, ev);
                        }
                        return;
                    }
                }
            }
        }

        // 4. Home memory.
        let grant = self.dir.write(block, cl);
        if remote {
            self.count_remote_write(ci, cl, block, true, grant.prior_presence);
            if let Some(e) = self.clusters[ci].nc.on_remote_fill(block, true) {
                self.handle_nc_eviction(ci, cl, e);
            }
            if let Some(pc) = self.clusters[ci].pc.as_mut() {
                if pc.has_page(page) {
                    pc.invalidate_block(block);
                }
            }
            self.maybe_relocate_directory(ci, cl, page, grant.prior_presence);
            self.maybe_migrep(cl, page);
        } else {
            self.metrics.local_misses += 1;
            self.emit(Event::LocalMiss { cluster: cl, block });
        }
        self.apply_invalidations(grant.invalidate, block);
        if let Some(ev) = self.clusters[ci].bus.fill(lp, block, CacheState::Modified) {
            self.handle_cache_eviction(ci, cl, ev);
        }
    }

    fn count_remote_write(
        &mut self,
        ci: usize,
        cl: ClusterId,
        block: BlockAddr,
        remote: bool,
        capacity: bool,
    ) {
        if !remote {
            self.metrics.local_misses += 1;
            self.emit(Event::LocalMiss { cluster: cl, block });
            return;
        }
        self.per_cluster[ci].remote_writes += 1;
        if capacity {
            self.metrics.remote_write_capacity += 1;
        } else {
            self.metrics.remote_write_necessary += 1;
        }
        self.emit(Event::RemoteWrite {
            cluster: cl,
            block,
            capacity,
        });
    }

    /// A local processor now holds `block` in `M`: scrub stale NC/PC
    /// copies.
    ///
    /// For the victim organization (and no NC at all) a write to a
    /// locally-homed block has nothing to scrub: victim captures,
    /// downgrade absorptions, and page relocations are all gated on the
    /// block's home being elsewhere, so neither the victim NC nor the PC
    /// can hold it, and `on_local_write` is a pure remove. Skipping both
    /// tag scans is then exact — and it is the per-reference bookkeeping
    /// the write-upgrade path was paying on every local write. Inclusion
    /// and infinite NCs *allocate* a shadow entry here (occupying a frame
    /// behind the cache's `M`), so their call must always go through —
    /// as must every call under OS migration, where homes move: a block
    /// captured while remote can become locally homed later, so
    /// "locally homed" no longer implies "not in the NC".
    fn after_local_write(&mut self, ci: usize, cl: ClusterId, block: BlockAddr, remote: bool) {
        if !remote
            && self.migrep.is_none()
            && matches!(self.clusters[ci].nc, NcUnit::None | NcUnit::Victim(_))
        {
            debug_assert!(
                !self.clusters[ci].nc.contains(block),
                "under static homes a victim NC never holds locally-homed blocks"
            );
            return;
        }
        if let Some(e) = self.clusters[ci].nc.on_local_write(block) {
            self.handle_nc_eviction(ci, cl, e);
        }
        if let Some(pc) = self.clusters[ci].pc.as_mut() {
            pc.invalidate_block(block);
        }
    }

    /// Directory-ordered invalidations at other clusters, delivered in
    /// ascending cluster order straight from the presence mask.
    fn apply_invalidations(&mut self, targets: ClusterSet, block: BlockAddr) {
        let decrement = self
            .spec
            .pc
            .as_ref()
            .is_some_and(|p| p.decrement_on_invalidation);
        for t in targets {
            let ti = usize::from(t.0);
            let inv = self.clusters[ti].bus.invalidate_all(block);
            self.metrics.invalidations += inv.copies_invalidated as u64;
            let had_nc_copy = self.clusters[ti].nc.invalidate(block);
            if had_nc_copy {
                self.metrics.invalidations += 1;
            }
            let mut had_pc_copy = false;
            if let Some(pc) = self.clusters[ti].pc.as_mut() {
                if pc.invalidate_block(block).is_valid() {
                    self.metrics.invalidations += 1;
                    had_pc_copy = true;
                }
            }
            if inv.copies_invalidated > 0 || had_nc_copy || had_pc_copy {
                self.emit(Event::Invalidation {
                    cluster: t,
                    block,
                    copies: u32::try_from(inv.copies_invalidated).unwrap_or(u32::MAX),
                });
            }
            // The paper's optional vxp refinement: a late invalidation with
            // no copy anywhere in the node means the earlier victimization
            // will be followed by a coherence miss, so correct the count.
            if decrement && inv.copies_invalidated == 0 && !had_nc_copy {
                if let Some(set) = self.clusters[ti].nc.set_of(block) {
                    if let Some(vxp) = self.clusters[ti].vxp.as_mut() {
                        vxp.record_late_invalidation(set);
                    }
                }
            }
        }
    }

    /// Directory-ordered downgrade of a dirty owner (a remote read found
    /// the block dirty at `owner`): the dirty copy becomes clean-shared,
    /// the home having been updated as part of the three-hop transaction.
    fn apply_remote_downgrade(&mut self, owner: ClusterId, block: BlockAddr) {
        let oi = usize::from(owner.0);
        let _had_dirty_cache = self.clusters[oi].bus.downgrade_to_shared(block);
        self.clusters[oi].nc.on_external_downgrade(block);
        if let Some(pc) = self.clusters[oi].pc.as_mut() {
            if pc.block_state(block) == Some(PcBlockState::Dirty) {
                pc.set_block(block, PcBlockState::Clean);
            }
        }
    }

    /// A dirty downgrade write-back (peer read of an `M` block) is on this
    /// cluster's bus.
    fn handle_downgrade_writeback(
        &mut self,
        ci: usize,
        cl: ClusterId,
        block: BlockAddr,
        remote: bool,
    ) {
        if !remote {
            // Local memory absorbs it at bus speed.
            self.dir.writeback(block, cl);
            return;
        }
        if self.clusters[ci].nc.on_downgrade_writeback(block) {
            self.metrics.absorbed_downgrades += 1;
            self.emit(Event::AbsorbedDowngrade { cluster: cl, block });
            return;
        }
        // No NC: try the page cache, else update the remote home.
        if let Some(pc) = self.clusters[ci].pc.as_mut() {
            let page = self.geo.page_of_block(block);
            if pc.has_page(page) {
                pc.set_block(block, PcBlockState::Dirty);
                self.metrics.absorbed_downgrades += 1;
                self.emit(Event::AbsorbedDowngrade { cluster: cl, block });
                return;
            }
        }
        self.metrics.remote_writebacks += 1;
        self.emit(Event::RemoteWriteback { cluster: cl, block });
        self.dir.writeback(block, cl);
    }

    /// A block victimized from a processor cache.
    fn handle_cache_eviction(&mut self, ci: usize, cl: ClusterId, ev: Eviction) {
        match ev.state {
            CacheState::Modified | CacheState::Owned => {
                let home = self.home.home_of_block(ev.block, cl);
                if home == cl {
                    // Local write-back: home memory updated at bus speed.
                    self.dir.writeback(ev.block, cl);
                    return;
                }
                let out = self.clusters[ci].nc.on_victim(ev.block, true);
                if out.accepted {
                    self.metrics.nc_captures += 1;
                    self.emit(Event::NcCapture {
                        cluster: cl,
                        block: ev.block,
                        dirty: true,
                        set: out.set,
                    });
                    self.record_vxp_victimization(ci, cl, out.set);
                    if let Some(e) = out.eviction {
                        self.handle_nc_eviction(ci, cl, e);
                    }
                } else {
                    self.writeback_toward_home(ci, cl, ev.block);
                }
            }
            CacheState::RemoteMaster => {
                // MESIR replacement transaction: hand mastership to a
                // sharer, else offer the last clean copy to the victim NC.
                if self.clusters[ci].bus.promote_sharer(ev.block) {
                    return;
                }
                let out = self.clusters[ci].nc.on_victim(ev.block, false);
                if out.accepted {
                    self.metrics.nc_captures += 1;
                    self.emit(Event::NcCapture {
                        cluster: cl,
                        block: ev.block,
                        dirty: false,
                        set: out.set,
                    });
                    self.record_vxp_victimization(ci, cl, out.set);
                    if let Some(e) = out.eviction {
                        self.handle_nc_eviction(ci, cl, e);
                    }
                }
                // Not accepted: the clean copy is dropped. If the page
                // cache holds the page, its clean copy remains the
                // cluster's backstop automatically.
            }
            // Clean local (E) and non-master (S) victims die silently
            // under MESI/MESIR.
            _ => {}
        }
    }

    /// A block leaving the network cache.
    fn handle_nc_eviction(&mut self, ci: usize, cl: ClusterId, e: NcEviction) {
        if e.force_cache_eviction {
            let inv = self.clusters[ci].bus.invalidate_all(e.block);
            self.metrics.forced_evictions += inv.copies_invalidated as u64;
            if inv.copies_invalidated > 0 {
                self.emit(Event::ForcedEviction {
                    cluster: cl,
                    block: e.block,
                });
            }
        }
        if e.dirty {
            self.writeback_toward_home(ci, cl, e.block);
        } else if let Some(pc) = self.clusters[ci].pc.as_mut() {
            // A clean block leaving the cluster can seed the page cache if
            // its slot is currently invalid.
            if pc.block_state(e.block) == Some(PcBlockState::Invalid)
                && self.dir.owner_of(e.block).is_none_or(|o| o == cl)
            {
                pc.set_block(e.block, PcBlockState::Clean);
            }
        }
    }

    /// Routes a dirty block leaving the cache/NC level: into the page
    /// cache when the page is resident, else across the network to the
    /// home.
    fn writeback_toward_home(&mut self, ci: usize, cl: ClusterId, block: BlockAddr) {
        if let Some(pc) = self.clusters[ci].pc.as_mut() {
            let page = self.geo.page_of_block(block);
            if pc.has_page(page) {
                pc.set_block(block, PcBlockState::Dirty);
                return;
            }
        }
        self.metrics.remote_writebacks += 1;
        self.emit(Event::RemoteWriteback { cluster: cl, block });
        self.dir.writeback(block, cl);
    }

    /// A victimization landed in victim-NC set `set`: drive the `vxp`
    /// relocation counters.
    fn record_vxp_victimization(&mut self, ci: usize, cl: ClusterId, set: Option<usize>) {
        if self.clusters[ci].vxp.is_none() {
            return;
        }
        let Some(set) = set else { return };
        let threshold = self.clusters[ci].threshold.threshold();
        let vxp = self.clusters[ci].vxp.as_mut().expect("checked");
        if vxp.record_victimization(set) < threshold {
            return;
        }
        vxp.reset(set);
        let Some(page) = self.clusters[ci].nc.predominant_page(set) else {
            return;
        };
        // Only remote pages not already resident are candidates.
        let Some(home) = self.home.placement().peek_home(page) else {
            return;
        };
        if home == cl {
            return;
        }
        if self.clusters[ci]
            .pc
            .as_ref()
            .is_some_and(|pc| pc.has_page(page))
        {
            return;
        }
        self.relocate_page(ci, cl, page);
    }

    /// Origin-style OS policy: after enough remote misses from `cl` to
    /// `page`, replicate (read-only pages) or migrate (written pages).
    fn maybe_migrep(&mut self, cl: ClusterId, page: PageAddr) {
        #[derive(PartialEq)]
        enum Action {
            None,
            Migrate,
            Replicate,
        }
        let action = {
            let Some(mr) = self.migrep.as_mut() else {
                return;
            };
            let count = mr.counters.increment(page, cl);
            if count < mr.spec.threshold {
                Action::None
            } else {
                mr.counters.reset(page, cl);
                let read_only = !mr.written_pages.contains_key(page.0);
                if read_only && mr.spec.replication {
                    mr.replicas.entry_or_default(page.0).insert(cl);
                    Action::Replicate
                } else if mr.spec.migration {
                    Action::Migrate
                } else {
                    Action::None
                }
            }
        };
        match action {
            Action::Migrate => {
                self.home.preassign(page, cl);
                self.metrics.migrations += 1;
                self.emit(Event::Migration { cluster: cl, page });
            }
            Action::Replicate => {
                self.metrics.replications += 1;
                self.emit(Event::Replication { cluster: cl, page });
            }
            Action::None => {}
        }
    }

    /// R-NUMA-style relocation accounting at the directory.
    fn maybe_relocate_directory(
        &mut self,
        ci: usize,
        cl: ClusterId,
        page: PageAddr,
        capacity_miss: bool,
    ) {
        if !capacity_miss {
            return;
        }
        let Some(pc_spec) = &self.spec.pc else { return };
        if pc_spec.counters != CounterSource::Directory {
            return;
        }
        if self.clusters[ci]
            .pc
            .as_ref()
            .is_some_and(|pc| pc.has_page(page))
        {
            return;
        }
        let count = self.rnuma.increment(page, cl);
        if count >= self.clusters[ci].threshold.threshold() {
            self.rnuma.reset(page, cl);
            self.relocate_page(ci, cl, page);
        }
    }

    /// Relocates `page` into cluster `cl`'s page cache.
    fn relocate_page(&mut self, ci: usize, cl: ClusterId, page: PageAddr) {
        self.metrics.relocations += 1;
        self.per_cluster[ci].relocations += 1;
        self.emit(Event::Relocation { cluster: cl, page });
        let first = self.geo.first_block_of_page(page);
        let n = self.geo.blocks_per_page();
        // Blocks dirty anywhere (including in this cluster's own caches)
        // start Invalid; the rest arrive as clean copies of home memory.
        let states: Vec<PcBlockState> = (0..n)
            .map(|i| {
                let b = BlockAddr(first.0 + i);
                if self.dir.owner_of(b).is_some() {
                    PcBlockState::Invalid
                } else {
                    PcBlockState::Clean
                }
            })
            .collect();
        let evicted = self.clusters[ci]
            .pc
            .as_mut()
            .expect("relocation requires a page cache")
            .insert_page(page, |i| states[usize::try_from(i).expect("page index")]);
        if let Some(ev) = evicted {
            self.handle_pc_page_eviction(ci, cl, ev);
        }
    }

    /// A page lost its page-cache frame: thrashing bookkeeping, dirty
    /// write-backs, and the paper's re-mapping evictions (the cluster must
    /// drop every copy of the evicted page's blocks).
    fn handle_pc_page_eviction(
        &mut self,
        ci: usize,
        cl: ClusterId,
        ev: crate::page_cache::EvictedPage,
    ) {
        self.emit(Event::PageEviction {
            cluster: cl,
            page: ev.page,
            dirty_blocks: u32::try_from(ev.dirty_blocks.len()).unwrap_or(u32::MAX),
            hits: ev.hits,
        });
        if self.clusters[ci].threshold.on_frame_reuse(ev.hits) {
            self.clusters[ci]
                .pc
                .as_mut()
                .expect("page cache present")
                .reset_hit_counters();
            let threshold = self.clusters[ci].threshold.threshold();
            self.emit(Event::ThresholdAdapted {
                cluster: cl,
                threshold,
            });
        }
        self.rnuma.reset(ev.page, cl);
        for &b in &ev.dirty_blocks {
            self.metrics.remote_writebacks += 1;
            self.emit(Event::RemoteWriteback {
                cluster: cl,
                block: b,
            });
            self.dir.writeback(b, cl);
        }
        let first = self.geo.first_block_of_page(ev.page);
        for i in 0..self.geo.blocks_per_page() {
            let b = BlockAddr(first.0 + i);
            let inv = self.clusters[ci].bus.invalidate_all(b);
            if inv.copies_invalidated > 0 {
                self.metrics.forced_evictions += inv.copies_invalidated as u64;
                self.emit(Event::ForcedEviction {
                    cluster: cl,
                    block: b,
                });
                if inv.had_dirty {
                    self.metrics.remote_writebacks += 1;
                    self.emit(Event::RemoteWriteback {
                        cluster: cl,
                        block: b,
                    });
                    self.dir.writeback(b, cl);
                }
            }
            if let Some(hit) = self.clusters[ci].nc.purge(b) {
                self.metrics.forced_evictions += 1;
                self.emit(Event::ForcedEviction {
                    cluster: cl,
                    block: b,
                });
                if hit.dirty {
                    self.metrics.remote_writebacks += 1;
                    self.emit(Event::RemoteWriteback {
                        cluster: cl,
                        block: b,
                    });
                    self.dir.writeback(b, cl);
                }
            }
        }
    }
}

// Thread-safety audit for the parallel sweep engine: a `System` owns no
// shared-mutable or thread-affine state, so `System<P>` is `Send`/`Sync`
// exactly when its probe is, and specs/reports move freely between
// workers. Compile-time assertions so a future field (e.g. an `Rc` or a
// raw pointer) cannot silently make sweeps unbuildable.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_sync<T: Sync>() {}
    assert_send::<System>();
    assert_sync::<System>();
    assert_send::<System<crate::obs::StatsSink>>();
    assert_send::<SystemSpec>();
    assert_sync::<SystemSpec>();
    assert_send::<Metrics>();
    assert_sync::<Metrics>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PcSize;
    use dsm_types::{Addr, ProcId};

    fn sys(spec: SystemSpec) -> System {
        System::new(
            spec,
            Topology::paper_default(),
            Geometry::paper_default(),
            8 * 1024 * 1024,
        )
        .unwrap()
    }

    fn read(p: u16, a: u64) -> MemRef {
        MemRef::read(ProcId(p), Addr(a))
    }

    fn write(p: u16, a: u64) -> MemRef {
        MemRef::write(ProcId(p), Addr(a))
    }

    #[test]
    fn first_touch_makes_data_local() {
        let mut s = sys(SystemSpec::base());
        s.process(read(0, 0x1000));
        let m = s.metrics();
        assert_eq!(m.shared_refs, 1);
        assert_eq!(m.local_misses, 1);
        assert_eq!(m.remote_read_misses(), 0);
    }

    #[test]
    fn remote_read_after_foreign_first_touch() {
        let mut s = sys(SystemSpec::base());
        s.process(read(0, 0x1000)); // cluster 0 homes the page
        s.process(read(4, 0x1000)); // processor 4 = cluster 1: remote
        let m = s.metrics();
        assert_eq!(m.remote_read_necessary, 1);
        assert_eq!(m.remote_read_capacity, 0);
    }

    #[test]
    fn repeated_access_hits_cache() {
        let mut s = sys(SystemSpec::base());
        s.process(read(0, 0x1000));
        s.process(read(0, 0x1000));
        s.process(read(0, 0x1008)); // same block
        assert_eq!(s.metrics().read_hits, 2);
    }

    #[test]
    fn peer_supplies_within_cluster() {
        let mut s = sys(SystemSpec::base());
        s.process(read(4, 0x1000)); // P4 (cluster 1) fetches remote? No: first touch -> local
        s.process(read(5, 0x1000)); // P5 same cluster: peer transfer
        let m = s.metrics();
        assert_eq!(m.peer_transfers, 1);
    }

    #[test]
    fn write_then_remote_read_downgrades() {
        let mut s = sys(SystemSpec::base());
        s.process(write(0, 0x1000)); // cluster 0 owns dirty
        s.process(read(4, 0x1000)); // cluster 1 reads: 3-hop downgrade
        let m = s.metrics();
        assert_eq!(m.remote_read_necessary, 1);
        // Cluster 0's copy is now clean-shared: a write by cluster 0 needs
        // a directory transaction that invalidates cluster 1's copy.
        s.process(write(0, 0x1000));
        assert!(s.metrics().invalidations >= 1, "{:?}", s.metrics());
    }

    #[test]
    fn remote_write_invalidates_sharers() {
        let mut s = sys(SystemSpec::base());
        s.process(read(0, 0x1000));
        s.process(read(4, 0x1000));
        s.process(write(8, 0x1000)); // cluster 2 writes: invalidate clusters 0, 1
        let m = s.metrics();
        assert!(m.invalidations >= 2, "invalidations = {}", m.invalidations);
        // Cluster 1 re-read is a necessary (coherence) miss.
        s.process(read(4, 0x1000));
        assert_eq!(s.metrics().remote_read_necessary, 2);
    }

    #[test]
    fn victim_nc_captures_and_serves() {
        let mut s = sys(SystemSpec::vb());
        // Cluster 1 (P4) reads a block homed at cluster 0.
        s.process(read(0, 0x1000));
        s.process(read(4, 0x1000));
        assert_eq!(s.metrics().remote_read_necessary, 1);
        // Blocks 0x1000 and conflicting addresses: the paper cache is
        // 16 KB 2-way = 128 sets x 64 B; conflict stride = 8 KB... evict
        // P4's copy by filling its set with two more blocks mapping to the
        // same set, all homed at cluster 0 first.
        s.process(read(0, 0x1000 + 8 * 1024));
        s.process(read(0, 0x1000 + 16 * 1024));
        s.process(read(4, 0x1000 + 8 * 1024));
        s.process(read(4, 0x1000 + 16 * 1024)); // evicts 0x1000 (R) -> victim NC
        let before = s.metrics().remote_read_misses();
        s.process(read(4, 0x1000)); // NC hit, not a remote miss
        let m = s.metrics();
        assert_eq!(m.nc_read_hits, 1);
        assert_eq!(m.remote_read_misses(), before);
        assert!(m.nc_captures >= 1);
    }

    #[test]
    fn base_system_pays_remote_capacity_miss() {
        let mut s = sys(SystemSpec::base());
        s.process(read(0, 0x1000));
        s.process(read(4, 0x1000));
        s.process(read(0, 0x1000 + 8 * 1024));
        s.process(read(0, 0x1000 + 16 * 1024));
        s.process(read(4, 0x1000 + 8 * 1024));
        s.process(read(4, 0x1000 + 16 * 1024));
        s.process(read(4, 0x1000)); // conflict-evicted: full remote miss
        let m = s.metrics();
        assert_eq!(m.remote_read_capacity, 1, "{m:?}");
    }

    #[test]
    fn infinite_nc_reduces_to_necessary_misses() {
        let mut s = sys(SystemSpec::ncs());
        for round in 0..3 {
            for blk in 0..100u64 {
                s.process(read(0, blk * 64)); // homes everything at cluster 0
                s.process(read(4, blk * 64));
                let _ = round;
            }
        }
        let m = s.metrics();
        // First round: 100 necessary misses at cluster 1; afterwards the
        // infinite NC (or caches) serve everything.
        assert_eq!(m.remote_read_necessary, 100);
        assert_eq!(m.remote_read_capacity, 0);
    }

    #[test]
    fn page_cache_relocation_fires_at_threshold() {
        use crate::config::{CounterSource, PcSpec, ThresholdPolicy};
        // A page cache without an NC, so conflict misses reach the
        // directory counters directly.
        let spec = SystemSpec {
            name: "pc-only".into(),
            cache: crate::config::CacheSpec::default(),
            nc: crate::config::NcSpec::None,
            pc: Some(PcSpec {
                size: PcSize::Bytes(64 * 4096),
                counters: CounterSource::Directory,
                threshold: ThresholdPolicy::Fixed(4),
                decrement_on_invalidation: false,
            }),
            dirty_shared: false,
            migrep: None,
            directory: crate::config::DirectorySpec::FullMap,
        };
        let mut s = sys(spec);
        // Cluster 0 homes page 0 (blocks 0..64).
        for b in 0..64u64 {
            s.process(read(0, b * 64));
        }
        // Cluster 1 (P4) conflict-thrashes block 0 against two blocks that
        // share its 2-way cache set (8-KB stride) but are local to it;
        // every re-read of block 0 is a remote capacity miss.
        for _ in 0..8 {
            s.process(read(4, 0));
            s.process(read(4, 8 * 1024));
            s.process(read(4, 16 * 1024));
        }
        let m = s.metrics();
        assert!(m.remote_read_capacity >= 4, "{m:?}");
        assert_eq!(m.relocations, 1, "{m:?}");
        // After relocation, further re-reads hit the page cache.
        assert!(m.pc_read_hits > 0, "{m:?}");
    }

    #[test]
    fn stall_uses_system_latency() {
        let mut ncd = sys(SystemSpec::ncd());
        ncd.process(read(0, 0));
        ncd.process(read(4, 0));
        // One necessary remote miss at 33 cycles (DRAM NC tag check).
        assert_eq!(ncd.metrics().remote_read_stall(ncd.model()), 33);

        let mut base = sys(SystemSpec::base());
        base.process(read(0, 0));
        base.process(read(4, 0));
        assert_eq!(base.metrics().remote_read_stall(base.model()), 30);
    }

    #[test]
    fn dirty_shared_o_state_avoids_downgrade_writeback() {
        // MESIR: a peer read of an M block puts a write-back on the bus
        // that the victim NC must absorb (pollution).
        let mut mesir = sys(SystemSpec::vb());
        mesir.process(read(0, 0x1000)); // homed at cluster 0
        mesir.process(write(4, 0x1000)); // cluster 1 dirty
        mesir.process(read(5, 0x1000)); // peer read: M -> S + write-back
        assert_eq!(mesir.metrics().absorbed_downgrades, 1);
        let block = BlockAddr(0x1000 / 64);
        assert!(
            mesir.cluster(ClusterId(1)).nc.contains(block),
            "pollution copy"
        );

        // MOESI-R: the supplier keeps the dirty data in state O; nothing
        // reaches the NC or the network.
        let mut moesi = sys(SystemSpec::vb().with_dirty_shared());
        moesi.process(read(0, 0x1000));
        moesi.process(write(4, 0x1000));
        moesi.process(read(5, 0x1000));
        assert_eq!(moesi.metrics().absorbed_downgrades, 0);
        assert_eq!(moesi.metrics().remote_writebacks, 0);
        assert!(!moesi.cluster(ClusterId(1)).nc.contains(block));
        assert_eq!(
            moesi
                .cluster(ClusterId(1))
                .bus
                .state_of(LocalProcId(0), block),
            CacheState::Owned
        );
    }

    #[test]
    fn owned_victim_is_captured_like_modified() {
        let mut s = sys(SystemSpec::vb().with_dirty_shared());
        s.process(read(0, 0x1000));
        s.process(write(4, 0x1000)); // M at P4
        s.process(read(5, 0x1000)); // P4 -> O, P5 -> S
                                    // Conflict-evict P4's O copy (8-KB aliases, locally homed).
        s.process(write(4, 0x1000 + 8 * 1024));
        s.process(write(4, 0x1000 + 16 * 1024));
        let block = BlockAddr(0x1000 / 64);
        assert!(
            s.cluster(ClusterId(1)).nc.contains(block),
            "the dirty O victim must land in the victim NC"
        );
        assert_eq!(s.metrics().remote_writebacks, 0);
    }

    #[test]
    fn vxp_invalidation_decrement_corrects_counters() {
        let spec = SystemSpec::vxp(PcSize::Bytes(64 * 4096), 1000).with_invalidation_decrement();
        let mut s = sys(spec);
        // Cluster 0 homes page 1; cluster 1 victimizes block 0x1000 into
        // its NC (capture), then loses even the NC copy to set overflow.
        s.process(read(0, 0x1000));
        s.process(read(4, 0x1000));
        // Evict from P4's cache into the NC: 8-KB cache aliases...
        s.process(read(0, 0x1000 + 8 * 1024));
        s.process(read(0, 0x1000 + 16 * 1024));
        s.process(read(4, 0x1000 + 8 * 1024));
        s.process(read(4, 0x1000 + 16 * 1024));
        let block = BlockAddr(0x1000 / 64);
        let set = s.cluster(ClusterId(1)).nc.set_of(block).unwrap();
        let count_after_victim = s.cluster(ClusterId(1)).vxp.as_ref().unwrap().count(set);
        assert!(count_after_victim >= 1);
        // Push the block out of the NC too: page-indexed, 4 ways per set,
        // so four more victims of the same page overflow it. Fill P4's
        // cache sets with other blocks of page 1 and evict them.
        for i in 1..=4u64 {
            let a = 0x1000 + i * 64;
            s.process(read(0, a));
            s.process(read(4, a));
            s.process(read(4, a + 8 * 1024));
            s.process(read(4, a + 16 * 1024));
        }
        assert!(!s.cluster(ClusterId(1)).nc.contains(block));
        let before = s.cluster(ClusterId(1)).vxp.as_ref().unwrap().count(set);
        // A remote write now invalidates: no copy in cluster 1 -> decrement.
        s.process(write(8, 0x1000));
        let after = s.cluster(ClusterId(1)).vxp.as_ref().unwrap().count(set);
        assert_eq!(after, before - 1, "late invalidation must decrement");
    }

    #[test]
    fn rnuma_counters_require_full_map_directory() {
        // The paper's scalability critique, enforced: R-NUMA's directory
        // counters cannot exist without full-map presence information.
        let spec = SystemSpec::ncp(PcSize::Bytes(512 * 1024)).with_limited_directory(4);
        assert!(System::new(
            spec,
            Topology::paper_default(),
            Geometry::paper_default(),
            0
        )
        .is_err());
    }

    #[test]
    fn vxp_works_under_a_limited_pointer_directory() {
        // ... while vxp's victim-set counters do not care.
        let spec = SystemSpec::vxp(PcSize::Bytes(64 * 4096), 4).with_limited_directory(4);
        let mut s = sys(spec);
        s.process(read(0, 0x1000));
        for round in 0..30u64 {
            let a = 0x1000 + (round % 4) * 64;
            s.process(read(4, a));
            s.process(read(4, a + 8 * 1024));
            s.process(read(4, a + 16 * 1024));
        }
        let m = s.metrics();
        assert!(m.relocations >= 1, "{m:?}");
        let page = s.geometry().page_of(Addr(0x1000));
        assert!(
            s.cluster(ClusterId(1)).pc.as_ref().unwrap().has_page(page),
            "{m:?}"
        );
    }

    #[test]
    fn limited_directory_broadcast_still_coherent() {
        // Overflow the 2-pointer directory with 4 sharing clusters, then
        // write: every stale copy must still be invalidated (by broadcast).
        let spec = SystemSpec::base().with_limited_directory(2);
        let mut s = sys(spec);
        for p in [0u16, 4, 8, 12] {
            s.process(read(p, 0x2000));
        }
        s.process(write(16, 0x2000)); // cluster 4 writes
        let block = BlockAddr(0x2000 / 64);
        for c in 0..4u16 {
            assert!(
                !s.cluster(ClusterId(c)).bus.any_valid(block),
                "cluster {c} kept a stale copy past a broadcast invalidation"
            );
        }
    }

    #[test]
    fn origin_replicates_read_only_pages() {
        let mut spec = SystemSpec::origin();
        spec.migrep.as_mut().unwrap().threshold = 3;
        let mut s = sys(spec);
        s.process(read(0, 0x1000)); // homed at cluster 0
                                    // Cluster 1 suffers repeated conflict misses to the read-only page.
        for _ in 0..4 {
            s.process(read(4, 0x1000));
            s.process(read(4, 0x1000 + 8 * 1024));
            s.process(read(4, 0x1000 + 16 * 1024));
        }
        let m = s.metrics();
        assert_eq!(m.replications, 1, "{m:?}");
        assert_eq!(m.migrations, 0);
        // After replication, cluster 1's misses to the page are local.
        let local_before = s.metrics().local_misses;
        s.process(read(4, 0x1000 + 8 * 1024)); // keep thrashing
        s.process(read(4, 0x1000 + 16 * 1024));
        s.process(read(4, 0x1000));
        assert!(s.metrics().local_misses > local_before, "{:?}", s.metrics());
    }

    #[test]
    fn origin_migrates_written_pages() {
        let mut spec = SystemSpec::origin();
        spec.migrep.as_mut().unwrap().threshold = 3;
        let mut s = sys(spec);
        s.process(read(0, 0x1000)); // homed at cluster 0
        s.process(write(4, 0x1000)); // page is written: not replicable
        for _ in 0..4 {
            s.process(read(4, 0x1000));
            s.process(read(4, 0x1000 + 8 * 1024));
            s.process(read(4, 0x1000 + 16 * 1024));
        }
        let m = s.metrics();
        assert_eq!(m.migrations, 1, "{m:?}");
        assert_eq!(m.replications, 0);
        // The page now lives at cluster 1: further misses are local.
        let remote_before = s.metrics().remote_read_misses();
        s.process(read(4, 0x1000 + 8 * 1024));
        s.process(read(4, 0x1000 + 16 * 1024));
        s.process(read(4, 0x1000));
        assert_eq!(s.metrics().remote_read_misses(), remote_before);
    }

    #[test]
    fn write_collapses_replicas() {
        let mut spec = SystemSpec::origin();
        spec.migrep.as_mut().unwrap().threshold = 2;
        let mut s = sys(spec);
        s.process(read(0, 0x1000));
        for _ in 0..3 {
            s.process(read(4, 0x1000));
            s.process(read(4, 0x1000 + 8 * 1024));
            s.process(read(4, 0x1000 + 16 * 1024));
        }
        assert_eq!(s.metrics().replications, 1);
        s.process(write(8, 0x1000)); // cluster 2 writes the replicated page
        assert_eq!(s.metrics().replica_collapses, 1);
        // Cluster 1's next miss to it is remote again (coherence miss).
        let remote_before = s.metrics().remote_read_misses();
        s.process(read(4, 0x1000));
        assert_eq!(s.metrics().remote_read_misses(), remote_before + 1);
    }

    #[test]
    fn writeback_traffic_counted_without_nc() {
        let mut s = sys(SystemSpec::base());
        // Cluster 1 writes a remote block, then conflict-evicts it.
        s.process(read(0, 0x1000));
        s.process(write(4, 0x1000));
        s.process(write(4, 0x1000 + 8 * 1024));
        s.process(write(4, 0x1000 + 16 * 1024)); // evicts dirty 0x1000
        let m = s.metrics();
        assert!(m.remote_writebacks >= 1, "{m:?}");
    }

    #[test]
    fn victim_nc_absorbs_writeback_traffic() {
        let mut s = sys(SystemSpec::vb());
        s.process(read(0, 0x1000));
        s.process(write(4, 0x1000));
        s.process(write(4, 0x1000 + 8 * 1024));
        s.process(write(4, 0x1000 + 16 * 1024));
        let m = s.metrics();
        assert_eq!(m.remote_writebacks, 0, "{m:?}");
        assert!(m.nc_captures >= 1);
    }
}
