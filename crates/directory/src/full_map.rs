//! The full-map, non-notifying inter-cluster directory.

use dsm_types::{BlockAddr, ClusterId, ClusterSet};

/// The directory's answer to an inter-cluster read request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadGrant {
    /// The requester's presence bit was already set — the cluster had this
    /// block before and silently dropped it, so the miss is a
    /// **capacity/conflict miss** (R-NUMA's relocation signal). When clear,
    /// the miss is *necessary* (cold or post-invalidation coherence).
    pub prior_presence: bool,
    /// Another cluster held the block dirty and was downgraded to a clean
    /// sharer to service this read (a three-hop transaction in a real
    /// machine; the paper's model charges the same constant remote latency).
    pub downgraded_owner: Option<ClusterId>,
    /// No other cluster holds a copy: the requester may cache the block
    /// with cluster-level mastership (`E` for local data, `R` for remote).
    pub exclusive: bool,
}

/// The directory's answer to an inter-cluster write(-ownership) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteGrant {
    /// Same capacity-miss signal as [`ReadGrant::prior_presence`].
    pub prior_presence: bool,
    /// Clusters whose copies must be invalidated (excludes the requester),
    /// as the presence mask itself — expanded lazily, in ascending cluster
    /// order, by [`ClusterSet::iter`]. No per-write allocation.
    pub invalidate: ClusterSet,
    /// The previous dirty owner, if the block was dirty elsewhere (its data
    /// is forwarded to the requester; also listed in `invalidate`).
    pub previous_owner: Option<ClusterId>,
}

/// Sentinel for "no dirty owner" in [`Entry::owner`]. Valid owners are
/// cluster ids `0..64`, so `u8::MAX` can never collide.
const NO_OWNER: u8 = u8::MAX;

/// Hardware-shaped directory entry: a presence word plus the dirty owner
/// packed into one sentinel-encoded byte (9 bytes of state instead of the
/// 12 an `Option<ClusterId>` padded alongside a `u64` used to take).
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// One bit per cluster. In a non-notifying protocol bits persist across
    /// clean replacements.
    presence: u64,
    /// The cluster holding the block dirty ([`NO_OWNER`] if none).
    owner: u8,
}

impl Default for Entry {
    fn default() -> Self {
        Entry {
            presence: 0,
            owner: NO_OWNER,
        }
    }
}

impl Entry {
    #[inline]
    fn owner(self) -> Option<ClusterId> {
        if self.owner == NO_OWNER {
            None
        } else {
            Some(ClusterId(u16::from(self.owner)))
        }
    }

    #[inline]
    fn set_owner(&mut self, owner: Option<ClusterId>) {
        self.owner = match owner {
            // Cluster ids are bounded by the 64-bit presence word, so the
            // cast cannot truncate.
            #[allow(clippy::cast_possible_truncation)]
            Some(c) => c.0 as u8,
            None => NO_OWNER,
        };
    }
}

/// A full-map directory with per-cluster presence bits and a dirty-owner
/// field, keyed by block address.
///
/// The directory is home-based conceptually, but since every home memory
/// behaves identically in the model, one map serves the whole machine; the
/// caller decides which requests are *remote* by comparing the requester's
/// cluster with the block's home (see [`crate::HomeMap`]).
///
/// Two deliberate R-NUMA behaviours:
///
/// * presence bits are **not** cleared on clean replacement (non-notifying);
/// * presence bits are **kept** when a dirty block is written back
///   ([`FullMapDirectory::writeback`]), so the next miss by the same cluster
///   still registers as a capacity miss. This is the paper's "bits remain
///   turned on after a dirty block is written back" modification, and can be
///   disabled with [`FullMapDirectory::set_keep_presence_on_writeback`].
#[derive(Debug, Clone)]
pub struct FullMapDirectory {
    clusters: u16,
    /// Directory state indexed directly by block number. Workload address
    /// spaces are dense (bounded by the shared segment), so a flat array
    /// is both smaller than a hash table at full occupancy and turns the
    /// two-to-three directory probes on every miss into single indexed
    /// loads — the directory is the hottest map in the simulator.
    entries: Vec<Entry>,
    keep_presence_on_writeback: bool,
}

impl FullMapDirectory {
    /// Creates a directory for `clusters` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero or exceeds 64 (the presence bit-field
    /// width).
    #[must_use]
    pub fn new(clusters: u16) -> Self {
        assert!(
            (1..=64).contains(&clusters),
            "cluster count {clusters} must be in 1..=64"
        );
        FullMapDirectory {
            clusters,
            entries: Vec::new(),
            keep_presence_on_writeback: true,
        }
    }

    /// The entry for `block`, growing the table as needed (amortized by
    /// power-of-two doubling; block numbers are dense, so the table tops
    /// out near the shared footprint in blocks).
    #[inline]
    fn entry_mut(&mut self, block: BlockAddr) -> &mut Entry {
        let i = usize::try_from(block.0).expect("block index fits usize");
        if i >= self.entries.len() {
            let target = (i + 1).next_power_of_two().max(1024);
            self.entries.resize(target, Entry::default());
        }
        &mut self.entries[i]
    }

    /// Read-only entry lookup (no growth); absent blocks read as default.
    #[inline]
    fn entry(&self, block: BlockAddr) -> Option<Entry> {
        self.entries.get(usize::try_from(block.0).ok()?).copied()
    }

    /// Controls whether presence bits survive a dirty write-back (default
    /// `true`, the R-NUMA modification).
    pub fn set_keep_presence_on_writeback(&mut self, keep: bool) {
        self.keep_presence_on_writeback = keep;
    }

    /// Number of clusters this directory serves.
    #[must_use]
    pub fn clusters(&self) -> u16 {
        self.clusters
    }

    /// Directory storage cost per block in bits: one presence bit per
    /// cluster plus the 6-bit owner + valid bit — the O(N) scaling the
    /// limited-pointer organization avoids.
    #[must_use]
    pub fn bits_per_block(&self) -> u32 {
        u32::from(self.clusters) + 7
    }

    /// Hints `block`'s entry line into L1 — the directory is the hottest
    /// map in the simulator, and the flat array makes the target address
    /// a single index computation. Blocks beyond the table are ignored
    /// (the entry would be grown on the real access).
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        if let Ok(i) = usize::try_from(block.0) {
            dsm_types::prefetch_slice(&self.entries, i);
        }
    }

    fn bit(&self, cluster: ClusterId) -> u64 {
        assert!(
            cluster.0 < self.clusters,
            "cluster {cluster} out of range (have {})",
            self.clusters
        );
        1u64 << cluster.0
    }

    /// Processes a read request from `requester` for `block`.
    pub fn read(&mut self, block: BlockAddr, requester: ClusterId) -> ReadGrant {
        let bit = self.bit(requester);
        let entry = self.entry_mut(block);
        let prior_presence = entry.presence & bit != 0;
        let mut downgraded_owner = None;
        if let Some(owner) = entry.owner() {
            if owner != requester {
                // Owner supplies data and is downgraded to a clean sharer;
                // its presence bit stays set.
                downgraded_owner = Some(owner);
            }
            entry.set_owner(None);
        }
        entry.presence |= bit;
        let exclusive = entry.presence == bit;
        ReadGrant {
            prior_presence,
            downgraded_owner,
            exclusive,
        }
    }

    /// Processes a write(-ownership) request from `requester` for `block`.
    ///
    /// All other clusters with copies are invalidated; the requester becomes
    /// the dirty owner and the only cluster with a presence bit.
    pub fn write(&mut self, block: BlockAddr, requester: ClusterId) -> WriteGrant {
        let bit = self.bit(requester);
        let entry = self.entry_mut(block);
        let prior_presence = entry.presence & bit != 0;
        let previous_owner = entry.owner().filter(|&o| o != requester);
        let invalidate = ClusterSet::from_mask(entry.presence & !bit);
        entry.presence = bit;
        entry.set_owner(Some(requester));
        WriteGrant {
            prior_presence,
            invalidate,
            previous_owner,
        }
    }

    /// Records that `cluster` wrote the dirty block back to its home
    /// memory (a dirty replacement that left the cluster entirely).
    ///
    /// Ownership is cleared; the presence bit is kept or dropped according
    /// to [`FullMapDirectory::set_keep_presence_on_writeback`]. A write-back
    /// from a non-owner (stale, e.g. racing with an intervening request) is
    /// ignored, as in real directories.
    pub fn writeback(&mut self, block: BlockAddr, cluster: ClusterId) {
        let bit = self.bit(cluster);
        let keep = self.keep_presence_on_writeback;
        if let Some(entry) = self
            .entries
            .get_mut(usize::try_from(block.0).unwrap_or(usize::MAX))
        {
            if entry.owner() == Some(cluster) {
                entry.set_owner(None);
                if !keep {
                    entry.presence &= !bit;
                }
            }
        }
    }

    /// Whether `cluster` currently holds dirty ownership of `block` (it may
    /// write without a directory transaction).
    #[must_use]
    pub fn is_owner(&self, block: BlockAddr, cluster: ClusterId) -> bool {
        self.entry(block)
            .is_some_and(|e| e.owner() == Some(cluster))
    }

    /// The cluster holding `block` dirty, if any.
    #[must_use]
    pub fn owner_of(&self, block: BlockAddr) -> Option<ClusterId> {
        self.entry(block).and_then(Entry::owner)
    }

    /// Records an exclusive-clean (`E`) grant: `cluster` received the only
    /// copy machine-wide and may silently transition it to `Modified`, so
    /// the directory must treat it as the owner. Standard MESI-directory
    /// behaviour for local data; remote clean fills take MESIR's `R`
    /// instead, which does not allow silent writes.
    ///
    /// # Panics
    ///
    /// Panics if other clusters also hold presence bits (an `E` grant
    /// would be incoherent).
    pub fn grant_exclusive(&mut self, block: BlockAddr, cluster: ClusterId) {
        let bit = self.bit(cluster);
        let entry = self.entry_mut(block);
        assert!(
            entry.presence & !bit == 0,
            "exclusive grant of {block} to {cluster} with other sharers present"
        );
        entry.presence = bit;
        entry.set_owner(Some(cluster));
    }

    /// Whether `cluster`'s presence bit is set (possibly stale).
    #[must_use]
    pub fn has_presence(&self, block: BlockAddr, cluster: ClusterId) -> bool {
        let bit = self.bit(cluster);
        self.entry(block).is_some_and(|e| e.presence & bit != 0)
    }

    /// Clusters whose presence bit is set for `block`, as the presence
    /// mask itself (no allocation).
    #[must_use]
    pub fn sharer_set(&self, block: BlockAddr) -> ClusterSet {
        self.entry(block)
            .map_or_else(ClusterSet::new, |e| ClusterSet::from_mask(e.presence))
    }

    /// Whether any cluster other than `cluster` has a presence bit for
    /// `block` — the per-write sharing question, answered with two mask
    /// operations instead of materializing a sharer list.
    #[must_use]
    pub fn has_sharer_other_than(&self, block: BlockAddr, cluster: ClusterId) -> bool {
        self.sharer_set(block).contains_other_than(cluster)
    }

    /// Clusters whose presence bit is set for `block`.
    #[must_use]
    pub fn sharers(&self, block: BlockAddr) -> Vec<ClusterId> {
        self.sharer_set(block).iter().collect()
    }

    /// Explicitly clears `cluster`'s presence bit (a *notifying* protocol's
    /// replacement hint; unused by the paper's base system but provided for
    /// experimentation).
    pub fn drop_presence(&mut self, block: BlockAddr, cluster: ClusterId) {
        let bit = self.bit(cluster);
        if let Some(entry) = self
            .entries
            .get_mut(usize::try_from(block.0).unwrap_or(usize::MAX))
        {
            entry.presence &= !bit;
        }
    }

    /// Number of blocks with live directory state (a presence bit or a
    /// dirty owner). O(blocks); diagnostics only, never on the hot path.
    #[must_use]
    pub fn tracked_blocks(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.presence != 0 || e.owner != NO_OWNER)
            .count()
    }

    /// Merges `other`'s live entries into this directory. The two
    /// directories must track **disjoint** block sets (the sharded-replay
    /// invariant: each shard owns the blocks of its own pages); a block
    /// live in both trips a debug assertion, and in release the absorbed
    /// entry wins.
    ///
    /// # Panics
    ///
    /// Panics if the directories serve different cluster counts.
    pub fn absorb_disjoint(&mut self, other: &FullMapDirectory) {
        assert_eq!(
            self.clusters, other.clusters,
            "cannot merge directories of different machines"
        );
        for (i, e) in other.entries.iter().enumerate() {
            if e.presence == 0 && e.owner == NO_OWNER {
                continue;
            }
            let slot = self.entry_mut(BlockAddr(i as u64));
            debug_assert!(
                slot.presence == 0 && slot.owner == NO_OWNER,
                "block {i} tracked by both directories"
            );
            *slot = *e;
        }
    }

    /// Overwrites this directory's entry for `block` with `other`'s — the
    /// per-ownership entry copy of the intra-component sharded merge,
    /// where `other` (the owning worker's clone) is authoritative for
    /// every block homed in its partition. A block `other` never grew
    /// storage for is reset to the empty entry here too, so the copy is
    /// exact rather than additive.
    ///
    /// # Panics
    ///
    /// Panics if the directories describe different machines.
    pub fn copy_entry_from(&mut self, other: &FullMapDirectory, block: BlockAddr) {
        assert_eq!(
            self.clusters, other.clusters,
            "cannot copy entries across different machines"
        );
        match other.entry(block) {
            Some(e) if e.presence != 0 || e.owner != NO_OWNER => *self.entry_mut(block) = e,
            // Empty (or never-grown) on the authoritative side: clear
            // our slot if we have one, without growing the table.
            _ => {
                if let Some(slot) = usize::try_from(block.0)
                    .ok()
                    .and_then(|i| self.entries.get_mut(i))
                {
                    *slot = Entry::default();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: ClusterId = ClusterId(0);
    const C1: ClusterId = ClusterId(1);
    const C2: ClusterId = ClusterId(2);
    const B: BlockAddr = BlockAddr(42);

    #[test]
    fn first_read_is_cold_and_exclusive() {
        let mut d = FullMapDirectory::new(4);
        let g = d.read(B, C0);
        assert!(!g.prior_presence);
        assert!(g.exclusive);
        assert!(g.downgraded_owner.is_none());
    }

    #[test]
    fn second_cluster_read_is_shared() {
        let mut d = FullMapDirectory::new(4);
        d.read(B, C0);
        let g = d.read(B, C1);
        assert!(!g.prior_presence);
        assert!(!g.exclusive);
    }

    #[test]
    fn reread_after_silent_drop_flags_capacity_miss() {
        let mut d = FullMapDirectory::new(4);
        d.read(B, C0);
        // C0 silently replaces the clean block (non-notifying), then misses.
        let g = d.read(B, C0);
        assert!(g.prior_presence);
        assert!(g.exclusive, "still the only cluster with a presence bit");
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut d = FullMapDirectory::new(4);
        d.read(B, C0);
        d.read(B, C1);
        let g = d.write(B, C2);
        assert_eq!(g.invalidate, [C0, C1].into_iter().collect::<ClusterSet>());
        assert_eq!(g.invalidate.iter().collect::<Vec<_>>(), vec![C0, C1]);
        assert!(g.previous_owner.is_none());
        assert!(d.is_owner(B, C2));
        assert_eq!(d.sharers(B), vec![C2]);
    }

    #[test]
    fn read_downgrades_dirty_owner() {
        let mut d = FullMapDirectory::new(4);
        d.write(B, C0);
        let g = d.read(B, C1);
        assert_eq!(g.downgraded_owner, Some(C0));
        assert!(!d.is_owner(B, C0));
        // Both clusters now have presence bits.
        assert_eq!(d.sharers(B), vec![C0, C1]);
    }

    #[test]
    fn owner_reread_does_not_self_downgrade() {
        let mut d = FullMapDirectory::new(4);
        d.write(B, C0);
        let g = d.read(B, C0);
        assert!(g.downgraded_owner.is_none());
        assert!(g.prior_presence);
        // Ownership is dropped on a read request (the block is clean now).
        assert!(!d.is_owner(B, C0));
    }

    #[test]
    fn write_after_write_transfers_ownership() {
        let mut d = FullMapDirectory::new(4);
        d.write(B, C0);
        let g = d.write(B, C1);
        assert_eq!(g.previous_owner, Some(C0));
        assert_eq!(g.invalidate, ClusterSet::from_mask(1));
        assert!(d.is_owner(B, C1));
    }

    #[test]
    fn invalidation_clears_presence_so_next_miss_is_necessary() {
        let mut d = FullMapDirectory::new(4);
        d.read(B, C0);
        d.write(B, C1); // invalidates C0
        let g = d.read(B, C0);
        assert!(
            !g.prior_presence,
            "post-invalidation miss must be a necessary (coherence) miss"
        );
    }

    #[test]
    fn writeback_keeps_presence_by_default() {
        let mut d = FullMapDirectory::new(4);
        d.write(B, C0);
        d.writeback(B, C0);
        assert!(!d.is_owner(B, C0));
        assert!(d.has_presence(B, C0));
        let g = d.read(B, C0);
        assert!(g.prior_presence, "R-NUMA counts this as a capacity miss");
    }

    #[test]
    fn writeback_can_drop_presence_when_configured() {
        let mut d = FullMapDirectory::new(4);
        d.set_keep_presence_on_writeback(false);
        d.write(B, C0);
        d.writeback(B, C0);
        assert!(!d.has_presence(B, C0));
    }

    #[test]
    fn stale_writeback_from_non_owner_is_ignored() {
        let mut d = FullMapDirectory::new(4);
        d.write(B, C0);
        d.write(B, C1); // ownership moved
        d.writeback(B, C0); // stale
        assert!(d.is_owner(B, C1));
    }

    #[test]
    fn drop_presence_clears_bit() {
        let mut d = FullMapDirectory::new(4);
        d.read(B, C0);
        d.drop_presence(B, C0);
        assert!(!d.has_presence(B, C0));
        let g = d.read(B, C0);
        assert!(!g.prior_presence);
    }

    #[test]
    fn tracked_blocks_counts_entries() {
        let mut d = FullMapDirectory::new(4);
        assert_eq!(d.tracked_blocks(), 0);
        d.read(BlockAddr(1), C0);
        d.read(BlockAddr(2), C0);
        assert_eq!(d.tracked_blocks(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cluster_panics() {
        let mut d = FullMapDirectory::new(2);
        d.read(B, ClusterId(2));
    }

    #[test]
    #[should_panic(expected = "must be in 1..=64")]
    fn too_many_clusters_panics() {
        let _ = FullMapDirectory::new(65);
    }

    #[test]
    fn sharer_set_and_other_than_match_sharers() {
        let mut d = FullMapDirectory::new(8);
        d.read(B, C0);
        d.read(B, C2);
        assert_eq!(d.sharer_set(B).iter().collect::<Vec<_>>(), d.sharers(B));
        assert!(d.has_sharer_other_than(B, C0));
        assert!(d.has_sharer_other_than(B, C1));
        let lone = BlockAddr(7);
        d.read(lone, C1);
        assert!(!d.has_sharer_other_than(lone, C1));
        assert!(!d.has_sharer_other_than(BlockAddr(99), C0));
    }

    /// The sentinel-packed `owner: u8` must round-trip every legal owner
    /// value exactly as the old `Option<ClusterId>` field did.
    #[test]
    fn packed_owner_roundtrips_all_cluster_ids() {
        let mut e = Entry::default();
        assert_eq!(e.owner(), None);
        for c in 0..64u16 {
            e.set_owner(Some(ClusterId(c)));
            assert_eq!(e.owner(), Some(ClusterId(c)));
        }
        e.set_owner(None);
        assert_eq!(e.owner(), None);
        // The packing buys real space: presence word + sentinel byte.
        assert!(std::mem::size_of::<Entry>() <= 16);
        assert_eq!(std::mem::size_of::<Option<ClusterId>>(), 4);
    }

    /// Directory-level equivalence of the packed-owner representation:
    /// drive the same request sequence and check owner visibility at every
    /// step against a shadow `Option<ClusterId>`.
    #[test]
    fn packed_owner_tracks_shadow_option_through_protocol() {
        let mut d = FullMapDirectory::new(4);
        let mut shadow: Option<ClusterId> = None;
        let steps: [(u8, ClusterId); 8] = [
            (b'w', C0),
            (b'r', C1),
            (b'w', C2),
            (b'w', C1),
            (b'b', C1),
            (b'r', C0),
            (b'w', C0),
            (b'b', C0),
        ];
        for (op, c) in steps {
            match op {
                b'w' => {
                    d.write(B, c);
                    shadow = Some(c);
                }
                b'r' => {
                    d.read(B, c);
                    shadow = None;
                }
                _ => {
                    if shadow == Some(c) {
                        shadow = None;
                    }
                    d.writeback(B, c);
                }
            }
            assert_eq!(d.owner_of(B), shadow, "after {} {c}", op as char);
        }
    }
}
