//! The full-map, non-notifying inter-cluster directory.

use std::collections::HashMap;

use dsm_types::{BlockAddr, ClusterId};

/// The directory's answer to an inter-cluster read request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadGrant {
    /// The requester's presence bit was already set — the cluster had this
    /// block before and silently dropped it, so the miss is a
    /// **capacity/conflict miss** (R-NUMA's relocation signal). When clear,
    /// the miss is *necessary* (cold or post-invalidation coherence).
    pub prior_presence: bool,
    /// Another cluster held the block dirty and was downgraded to a clean
    /// sharer to service this read (a three-hop transaction in a real
    /// machine; the paper's model charges the same constant remote latency).
    pub downgraded_owner: Option<ClusterId>,
    /// No other cluster holds a copy: the requester may cache the block
    /// with cluster-level mastership (`E` for local data, `R` for remote).
    pub exclusive: bool,
}

/// The directory's answer to an inter-cluster write(-ownership) request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteGrant {
    /// Same capacity-miss signal as [`ReadGrant::prior_presence`].
    pub prior_presence: bool,
    /// Clusters whose copies must be invalidated (excludes the requester).
    pub invalidate: Vec<ClusterId>,
    /// The previous dirty owner, if the block was dirty elsewhere (its data
    /// is forwarded to the requester; also listed in `invalidate`).
    pub previous_owner: Option<ClusterId>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    /// One bit per cluster. In a non-notifying protocol bits persist across
    /// clean replacements.
    presence: u64,
    /// The cluster holding the block dirty, if any.
    owner: Option<ClusterId>,
}

/// A full-map directory with per-cluster presence bits and a dirty-owner
/// field, keyed by block address.
///
/// The directory is home-based conceptually, but since every home memory
/// behaves identically in the model, one map serves the whole machine; the
/// caller decides which requests are *remote* by comparing the requester's
/// cluster with the block's home (see [`crate::HomeMap`]).
///
/// Two deliberate R-NUMA behaviours:
///
/// * presence bits are **not** cleared on clean replacement (non-notifying);
/// * presence bits are **kept** when a dirty block is written back
///   ([`FullMapDirectory::writeback`]), so the next miss by the same cluster
///   still registers as a capacity miss. This is the paper's "bits remain
///   turned on after a dirty block is written back" modification, and can be
///   disabled with [`FullMapDirectory::set_keep_presence_on_writeback`].
#[derive(Debug, Clone)]
pub struct FullMapDirectory {
    clusters: u16,
    entries: HashMap<u64, Entry>,
    keep_presence_on_writeback: bool,
}

impl FullMapDirectory {
    /// Creates a directory for `clusters` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero or exceeds 64 (the presence bit-field
    /// width).
    #[must_use]
    pub fn new(clusters: u16) -> Self {
        assert!(
            (1..=64).contains(&clusters),
            "cluster count {clusters} must be in 1..=64"
        );
        FullMapDirectory {
            clusters,
            entries: HashMap::new(),
            keep_presence_on_writeback: true,
        }
    }

    /// Controls whether presence bits survive a dirty write-back (default
    /// `true`, the R-NUMA modification).
    pub fn set_keep_presence_on_writeback(&mut self, keep: bool) {
        self.keep_presence_on_writeback = keep;
    }

    /// Number of clusters this directory serves.
    #[must_use]
    pub fn clusters(&self) -> u16 {
        self.clusters
    }

    fn bit(&self, cluster: ClusterId) -> u64 {
        assert!(
            cluster.0 < self.clusters,
            "cluster {cluster} out of range (have {})",
            self.clusters
        );
        1u64 << cluster.0
    }

    /// Processes a read request from `requester` for `block`.
    pub fn read(&mut self, block: BlockAddr, requester: ClusterId) -> ReadGrant {
        let bit = self.bit(requester);
        let entry = self.entries.entry(block.0).or_default();
        let prior_presence = entry.presence & bit != 0;
        let mut downgraded_owner = None;
        if let Some(owner) = entry.owner {
            if owner != requester {
                // Owner supplies data and is downgraded to a clean sharer;
                // its presence bit stays set.
                downgraded_owner = Some(owner);
            }
            entry.owner = None;
        }
        entry.presence |= bit;
        let exclusive = entry.presence == bit;
        ReadGrant {
            prior_presence,
            downgraded_owner,
            exclusive,
        }
    }

    /// Processes a write(-ownership) request from `requester` for `block`.
    ///
    /// All other clusters with copies are invalidated; the requester becomes
    /// the dirty owner and the only cluster with a presence bit.
    pub fn write(&mut self, block: BlockAddr, requester: ClusterId) -> WriteGrant {
        let bit = self.bit(requester);
        let entry = self.entries.entry(block.0).or_default();
        let prior_presence = entry.presence & bit != 0;
        let previous_owner = entry.owner.filter(|&o| o != requester);
        let mut invalidate = Vec::new();
        let others = entry.presence & !bit;
        for c in 0..self.clusters {
            if others & (1u64 << c) != 0 {
                invalidate.push(ClusterId(c));
            }
        }
        entry.presence = bit;
        entry.owner = Some(requester);
        WriteGrant {
            prior_presence,
            invalidate,
            previous_owner,
        }
    }

    /// Records that `cluster` wrote the dirty block back to its home
    /// memory (a dirty replacement that left the cluster entirely).
    ///
    /// Ownership is cleared; the presence bit is kept or dropped according
    /// to [`FullMapDirectory::set_keep_presence_on_writeback`]. A write-back
    /// from a non-owner (stale, e.g. racing with an intervening request) is
    /// ignored, as in real directories.
    pub fn writeback(&mut self, block: BlockAddr, cluster: ClusterId) {
        let bit = self.bit(cluster);
        if let Some(entry) = self.entries.get_mut(&block.0) {
            if entry.owner == Some(cluster) {
                entry.owner = None;
                if !self.keep_presence_on_writeback {
                    entry.presence &= !bit;
                }
            }
        }
    }

    /// Whether `cluster` currently holds dirty ownership of `block` (it may
    /// write without a directory transaction).
    #[must_use]
    pub fn is_owner(&self, block: BlockAddr, cluster: ClusterId) -> bool {
        self.entries
            .get(&block.0)
            .is_some_and(|e| e.owner == Some(cluster))
    }

    /// The cluster holding `block` dirty, if any.
    #[must_use]
    pub fn owner_of(&self, block: BlockAddr) -> Option<ClusterId> {
        self.entries.get(&block.0).and_then(|e| e.owner)
    }

    /// Records an exclusive-clean (`E`) grant: `cluster` received the only
    /// copy machine-wide and may silently transition it to `Modified`, so
    /// the directory must treat it as the owner. Standard MESI-directory
    /// behaviour for local data; remote clean fills take MESIR's `R`
    /// instead, which does not allow silent writes.
    ///
    /// # Panics
    ///
    /// Panics if other clusters also hold presence bits (an `E` grant
    /// would be incoherent).
    pub fn grant_exclusive(&mut self, block: BlockAddr, cluster: ClusterId) {
        let bit = self.bit(cluster);
        let entry = self.entries.entry(block.0).or_default();
        assert!(
            entry.presence & !bit == 0,
            "exclusive grant of {block} to {cluster} with other sharers present"
        );
        entry.presence = bit;
        entry.owner = Some(cluster);
    }

    /// Whether `cluster`'s presence bit is set (possibly stale).
    #[must_use]
    pub fn has_presence(&self, block: BlockAddr, cluster: ClusterId) -> bool {
        let bit = self.bit(cluster);
        self.entries
            .get(&block.0)
            .is_some_and(|e| e.presence & bit != 0)
    }

    /// Clusters whose presence bit is set for `block`.
    #[must_use]
    pub fn sharers(&self, block: BlockAddr) -> Vec<ClusterId> {
        let Some(entry) = self.entries.get(&block.0) else {
            return Vec::new();
        };
        (0..self.clusters)
            .filter(|c| entry.presence & (1u64 << c) != 0)
            .map(ClusterId)
            .collect()
    }

    /// Explicitly clears `cluster`'s presence bit (a *notifying* protocol's
    /// replacement hint; unused by the paper's base system but provided for
    /// experimentation).
    pub fn drop_presence(&mut self, block: BlockAddr, cluster: ClusterId) {
        let bit = self.bit(cluster);
        if let Some(entry) = self.entries.get_mut(&block.0) {
            entry.presence &= !bit;
        }
    }

    /// Number of blocks with directory state allocated.
    #[must_use]
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C0: ClusterId = ClusterId(0);
    const C1: ClusterId = ClusterId(1);
    const C2: ClusterId = ClusterId(2);
    const B: BlockAddr = BlockAddr(42);

    #[test]
    fn first_read_is_cold_and_exclusive() {
        let mut d = FullMapDirectory::new(4);
        let g = d.read(B, C0);
        assert!(!g.prior_presence);
        assert!(g.exclusive);
        assert!(g.downgraded_owner.is_none());
    }

    #[test]
    fn second_cluster_read_is_shared() {
        let mut d = FullMapDirectory::new(4);
        d.read(B, C0);
        let g = d.read(B, C1);
        assert!(!g.prior_presence);
        assert!(!g.exclusive);
    }

    #[test]
    fn reread_after_silent_drop_flags_capacity_miss() {
        let mut d = FullMapDirectory::new(4);
        d.read(B, C0);
        // C0 silently replaces the clean block (non-notifying), then misses.
        let g = d.read(B, C0);
        assert!(g.prior_presence);
        assert!(g.exclusive, "still the only cluster with a presence bit");
    }

    #[test]
    fn write_invalidates_other_sharers() {
        let mut d = FullMapDirectory::new(4);
        d.read(B, C0);
        d.read(B, C1);
        let g = d.write(B, C2);
        assert_eq!(g.invalidate, vec![C0, C1]);
        assert!(g.previous_owner.is_none());
        assert!(d.is_owner(B, C2));
        assert_eq!(d.sharers(B), vec![C2]);
    }

    #[test]
    fn read_downgrades_dirty_owner() {
        let mut d = FullMapDirectory::new(4);
        d.write(B, C0);
        let g = d.read(B, C1);
        assert_eq!(g.downgraded_owner, Some(C0));
        assert!(!d.is_owner(B, C0));
        // Both clusters now have presence bits.
        assert_eq!(d.sharers(B), vec![C0, C1]);
    }

    #[test]
    fn owner_reread_does_not_self_downgrade() {
        let mut d = FullMapDirectory::new(4);
        d.write(B, C0);
        let g = d.read(B, C0);
        assert!(g.downgraded_owner.is_none());
        assert!(g.prior_presence);
        // Ownership is dropped on a read request (the block is clean now).
        assert!(!d.is_owner(B, C0));
    }

    #[test]
    fn write_after_write_transfers_ownership() {
        let mut d = FullMapDirectory::new(4);
        d.write(B, C0);
        let g = d.write(B, C1);
        assert_eq!(g.previous_owner, Some(C0));
        assert_eq!(g.invalidate, vec![C0]);
        assert!(d.is_owner(B, C1));
    }

    #[test]
    fn invalidation_clears_presence_so_next_miss_is_necessary() {
        let mut d = FullMapDirectory::new(4);
        d.read(B, C0);
        d.write(B, C1); // invalidates C0
        let g = d.read(B, C0);
        assert!(
            !g.prior_presence,
            "post-invalidation miss must be a necessary (coherence) miss"
        );
    }

    #[test]
    fn writeback_keeps_presence_by_default() {
        let mut d = FullMapDirectory::new(4);
        d.write(B, C0);
        d.writeback(B, C0);
        assert!(!d.is_owner(B, C0));
        assert!(d.has_presence(B, C0));
        let g = d.read(B, C0);
        assert!(g.prior_presence, "R-NUMA counts this as a capacity miss");
    }

    #[test]
    fn writeback_can_drop_presence_when_configured() {
        let mut d = FullMapDirectory::new(4);
        d.set_keep_presence_on_writeback(false);
        d.write(B, C0);
        d.writeback(B, C0);
        assert!(!d.has_presence(B, C0));
    }

    #[test]
    fn stale_writeback_from_non_owner_is_ignored() {
        let mut d = FullMapDirectory::new(4);
        d.write(B, C0);
        d.write(B, C1); // ownership moved
        d.writeback(B, C0); // stale
        assert!(d.is_owner(B, C1));
    }

    #[test]
    fn drop_presence_clears_bit() {
        let mut d = FullMapDirectory::new(4);
        d.read(B, C0);
        d.drop_presence(B, C0);
        assert!(!d.has_presence(B, C0));
        let g = d.read(B, C0);
        assert!(!g.prior_presence);
    }

    #[test]
    fn tracked_blocks_counts_entries() {
        let mut d = FullMapDirectory::new(4);
        assert_eq!(d.tracked_blocks(), 0);
        d.read(BlockAddr(1), C0);
        d.read(BlockAddr(2), C0);
        assert_eq!(d.tracked_blocks(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_cluster_panics() {
        let mut d = FullMapDirectory::new(2);
        d.read(B, ClusterId(2));
    }

    #[test]
    #[should_panic(expected = "must be in 1..=64")]
    fn too_many_clusters_panics() {
        let _ = FullMapDirectory::new(65);
    }
}
