//! Inter-cluster coherence directory and page placement for the
//! clustered-DSM simulator.
//!
//! Three pieces:
//!
//! * [`FullMapDirectory`] — a full-map, home-based directory keeping one
//!   presence bit per cluster per block plus the dirty-owner cluster. It is
//!   *non-notifying*: clean replacements are not reported, so a set presence
//!   bit at request time means the cluster once had the block and lost it to
//!   capacity/conflict — exactly the signal R-NUMA uses to classify a miss
//!   as a capacity miss rather than a *necessary* (cold/coherence) miss.
//! * [`FirstTouchPlacement`] / [`HomeMap`] — first-touch page placement
//!   (the paper's policy, after Marchetti et al.), assigning each page's
//!   home to the cluster of the first processor to touch it, with explicit
//!   pre-assignment support for the paper's LU fix.
//! * [`RnumaCounters`] — R-NUMA's per-page-per-cluster capacity-miss
//!   counters that drive page relocation into the page cache.
//!
//! # Example
//!
//! ```
//! use dsm_directory::FullMapDirectory;
//! use dsm_types::{BlockAddr, ClusterId};
//!
//! let mut dir = FullMapDirectory::new(8);
//! let b = BlockAddr(100);
//! let grant = dir.read(b, ClusterId(2));
//! assert!(grant.exclusive);          // first reader machine-wide
//! assert!(!grant.prior_presence);    // a necessary (cold) miss
//! let again = dir.read(b, ClusterId(2));
//! assert!(again.prior_presence);     // non-notifying: this is a capacity miss
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod full_map;
pub mod limited;
pub mod placement;
pub mod rnuma;
pub mod unit;

pub use full_map::{FullMapDirectory, ReadGrant, WriteGrant};
pub use limited::LimitedPointerDirectory;
pub use placement::{FirstTouchPlacement, HomeMap};
pub use rnuma::RnumaCounters;
pub use unit::DirectoryUnit;
