//! A limited-pointer directory (Dir-i-B) — the non-full-map organization
//! the paper invokes when arguing that `vxp` scales where R-NUMA's
//! counters do not.
//!
//! Each entry tracks at most `i` sharer pointers; on overflow the entry
//! degrades to a *broadcast* state where sharer identity is lost:
//! invalidations go to every cluster, and — crucially for R-NUMA — the
//! "was this cluster already a sharer?" question can no longer be
//! answered, so capacity misses cannot be distinguished from necessary
//! ones. The paper: R-NUMA "only works with full-map, centralized
//! directories ... Another appeal of our relocation mechanism is that it
//! does not require a full-map directory implementation. As such, even
//! systems based on limited pointer or linked lists protocols (like
//! NUMA-Q) could make efficient use of the page caches."

use dsm_types::{BlockAddr, ClusterId, ClusterSet, DenseMap};

use crate::full_map::{ReadGrant, WriteGrant};

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    /// Up to `pointers` sharer ids (the set's population count is the
    /// number of pointers in use); meaningless once `broadcast` is set.
    sharers: ClusterSet,
    /// Pointer overflow: identity lost, invalidations must broadcast.
    broadcast: bool,
    owner: Option<ClusterId>,
}

/// A Dir-i-B limited-pointer directory with the same request interface as
/// [`crate::FullMapDirectory`], so the system simulator can swap them.
///
/// Behavioural differences that matter to the paper's argument:
///
/// * after pointer overflow, [`ReadGrant::prior_presence`] is reported as
///   `false` even for clusters that did hold the block — R-NUMA's
///   capacity-miss classification silently degrades;
/// * writes to overflowed entries return an invalidation list containing
///   *every* other cluster (broadcast), inflating invalidation traffic.
#[derive(Debug, Clone)]
pub struct LimitedPointerDirectory {
    clusters: u16,
    pointers: usize,
    entries: DenseMap<Entry>,
    keep_presence_on_writeback: bool,
}

impl LimitedPointerDirectory {
    /// Creates a Dir-i-B directory with `pointers` sharer slots per entry.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is not in `1..=64` or `pointers` is zero.
    #[must_use]
    pub fn new(clusters: u16, pointers: usize) -> Self {
        assert!(
            (1..=64).contains(&clusters),
            "cluster count {clusters} must be in 1..=64"
        );
        assert!(pointers > 0, "need at least one sharer pointer");
        LimitedPointerDirectory {
            clusters,
            pointers,
            entries: DenseMap::new(),
            keep_presence_on_writeback: true,
        }
    }

    /// Number of sharer pointers per entry.
    #[must_use]
    pub fn pointers(&self) -> usize {
        self.pointers
    }

    /// Number of clusters served.
    #[must_use]
    pub fn clusters(&self) -> u16 {
        self.clusters
    }

    fn check(&self, cluster: ClusterId) {
        assert!(
            cluster.0 < self.clusters,
            "cluster {cluster} out of range (have {})",
            self.clusters
        );
    }

    /// Processes a read request (compare
    /// [`crate::FullMapDirectory::read`]).
    pub fn read(&mut self, block: BlockAddr, requester: ClusterId) -> ReadGrant {
        self.check(requester);
        let pointers = self.pointers;
        let entry = self.entries.entry_or_default(block.0);
        // After overflow the entry cannot say who shared: presence
        // information is lost (the R-NUMA degradation).
        let prior_presence = !entry.broadcast && entry.sharers.contains(requester);
        let mut downgraded_owner = None;
        if let Some(owner) = entry.owner {
            if owner != requester {
                downgraded_owner = Some(owner);
            }
            entry.owner = None;
        }
        if !entry.broadcast && !entry.sharers.contains(requester) {
            if entry.sharers.len() < pointers {
                entry.sharers.insert(requester);
            } else {
                entry.broadcast = true;
                entry.sharers = ClusterSet::new();
            }
        }
        let exclusive = !entry.broadcast && entry.sharers.mask() == 1u64 << requester.0;
        ReadGrant {
            prior_presence,
            downgraded_owner,
            exclusive,
        }
    }

    /// Processes a write(-ownership) request (compare
    /// [`crate::FullMapDirectory::write`]).
    pub fn write(&mut self, block: BlockAddr, requester: ClusterId) -> WriteGrant {
        self.check(requester);
        let clusters = self.clusters;
        let entry = self.entries.entry_or_default(block.0);
        let prior_presence = !entry.broadcast && entry.sharers.contains(requester);
        let previous_owner = entry.owner.filter(|&o| o != requester);
        let invalidate = if entry.broadcast {
            // Identity lost: broadcast to everyone else (false
            // invalidations included).
            ClusterSet::all(clusters).without(requester)
        } else {
            entry.sharers.without(requester)
        };
        entry.broadcast = false;
        entry.sharers = ClusterSet::from_mask(1u64 << requester.0);
        entry.owner = Some(requester);
        WriteGrant {
            prior_presence,
            invalidate,
            previous_owner,
        }
    }

    /// Records a dirty write-back (compare
    /// [`crate::FullMapDirectory::writeback`]).
    pub fn writeback(&mut self, block: BlockAddr, cluster: ClusterId) {
        self.check(cluster);
        let keep = self.keep_presence_on_writeback;
        if let Some(entry) = self.entries.get_mut(block.0) {
            if entry.owner == Some(cluster) {
                entry.owner = None;
                if !keep {
                    entry.sharers.remove(cluster);
                }
            }
        }
    }

    /// Whether `cluster` holds dirty ownership.
    #[must_use]
    pub fn is_owner(&self, block: BlockAddr, cluster: ClusterId) -> bool {
        self.entries
            .get(block.0)
            .is_some_and(|e| e.owner == Some(cluster))
    }

    /// The dirty owner, if any.
    #[must_use]
    pub fn owner_of(&self, block: BlockAddr) -> Option<ClusterId> {
        self.entries.get(block.0).and_then(|e| e.owner)
    }

    /// The set of clusters the directory would invalidate for `block`
    /// (every cluster under broadcast), without allocating.
    #[must_use]
    pub fn sharer_set(&self, block: BlockAddr) -> ClusterSet {
        match self.entries.get(block.0) {
            None => ClusterSet::new(),
            Some(e) if e.broadcast => ClusterSet::all(self.clusters),
            Some(e) => e.sharers,
        }
    }

    /// Whether any cluster besides `cluster` would receive an
    /// invalidation for `block`. Under broadcast this is conservative —
    /// identity is lost, so everyone else counts.
    #[must_use]
    pub fn has_sharer_other_than(&self, block: BlockAddr, cluster: ClusterId) -> bool {
        self.sharer_set(block).contains_other_than(cluster)
    }

    /// Clusters the directory would invalidate for `block` (all of them
    /// under broadcast).
    #[must_use]
    pub fn sharers(&self, block: BlockAddr) -> Vec<ClusterId> {
        self.sharer_set(block).iter().collect()
    }

    /// Records an exclusive-clean grant (compare
    /// [`crate::FullMapDirectory::grant_exclusive`]).
    ///
    /// # Panics
    ///
    /// Panics if other sharers are tracked.
    pub fn grant_exclusive(&mut self, block: BlockAddr, cluster: ClusterId) {
        self.check(cluster);
        let entry = self.entries.entry_or_default(block.0);
        assert!(
            !entry.broadcast && entry.sharers.without(cluster).is_empty(),
            "exclusive grant of {block} to {cluster} with other sharers tracked"
        );
        entry.sharers = ClusterSet::from_mask(1u64 << cluster.0);
        entry.owner = Some(cluster);
    }

    /// Whether the entry has overflowed to broadcast mode.
    #[must_use]
    pub fn is_broadcast(&self, block: BlockAddr) -> bool {
        self.entries.get(block.0).is_some_and(|e| e.broadcast)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockAddr = BlockAddr(42);

    fn dir() -> LimitedPointerDirectory {
        LimitedPointerDirectory::new(8, 2)
    }

    #[test]
    fn tracks_exactly_like_full_map_below_overflow() {
        let mut d = dir();
        let g = d.read(B, ClusterId(0));
        assert!(g.exclusive && !g.prior_presence);
        let g = d.read(B, ClusterId(1));
        assert!(!g.exclusive);
        // Re-read: presence still known (no overflow yet).
        let g = d.read(B, ClusterId(0));
        assert!(g.prior_presence);
        assert_eq!(d.sharers(B), vec![ClusterId(0), ClusterId(1)]);
    }

    #[test]
    fn overflow_degrades_to_broadcast() {
        let mut d = dir();
        d.read(B, ClusterId(0));
        d.read(B, ClusterId(1));
        d.read(B, ClusterId(2)); // third sharer: overflow
        assert!(d.is_broadcast(B));
        assert_eq!(d.sharers(B).len(), 8);
        // Presence information is gone: cluster 0's re-read looks cold.
        let g = d.read(B, ClusterId(0));
        assert!(
            !g.prior_presence,
            "broadcast entries cannot classify capacity misses"
        );
    }

    #[test]
    fn broadcast_write_invalidates_everyone() {
        let mut d = dir();
        d.read(B, ClusterId(0));
        d.read(B, ClusterId(1));
        d.read(B, ClusterId(2));
        let g = d.write(B, ClusterId(3));
        assert_eq!(g.invalidate.len(), 7, "{:?}", g.invalidate);
        assert!(!g.invalidate.contains(ClusterId(3)));
        // Write resets the entry to a precise single pointer.
        assert!(!d.is_broadcast(B));
        assert_eq!(d.sharers(B), vec![ClusterId(3)]);
        assert!(d.is_owner(B, ClusterId(3)));
    }

    #[test]
    fn precise_write_invalidates_only_pointers() {
        let mut d = dir();
        d.read(B, ClusterId(0));
        d.read(B, ClusterId(1));
        let g = d.write(B, ClusterId(5));
        let inv: Vec<ClusterId> = g.invalidate.iter().collect();
        assert_eq!(inv, vec![ClusterId(0), ClusterId(1)]);
    }

    #[test]
    fn dirty_owner_downgrade() {
        let mut d = dir();
        d.write(B, ClusterId(0));
        let g = d.read(B, ClusterId(1));
        assert_eq!(g.downgraded_owner, Some(ClusterId(0)));
        assert!(!d.is_owner(B, ClusterId(0)));
    }

    #[test]
    fn writeback_clears_owner_keeps_pointer() {
        let mut d = dir();
        d.write(B, ClusterId(0));
        d.writeback(B, ClusterId(0));
        assert!(d.owner_of(B).is_none());
        let g = d.read(B, ClusterId(0));
        assert!(g.prior_presence, "pointer survives the write-back");
    }

    #[test]
    fn grant_exclusive_sets_owner() {
        let mut d = dir();
        d.read(B, ClusterId(2));
        d.grant_exclusive(B, ClusterId(2));
        assert!(d.is_owner(B, ClusterId(2)));
    }

    #[test]
    #[should_panic(expected = "other sharers tracked")]
    fn grant_exclusive_rejects_shared_entries() {
        let mut d = dir();
        d.read(B, ClusterId(0));
        d.read(B, ClusterId(1));
        d.grant_exclusive(B, ClusterId(0));
    }

    #[test]
    #[should_panic(expected = "at least one sharer pointer")]
    fn zero_pointers_panics() {
        let _ = LimitedPointerDirectory::new(8, 0);
    }

    #[test]
    fn memory_cost_is_pointer_bound() {
        // The point of Dir-i-B: entry size is O(i log N), not O(N).
        let d = LimitedPointerDirectory::new(64, 4);
        assert_eq!(d.pointers(), 4);
    }
}
