//! A limited-pointer directory (Dir-i-B) — the non-full-map organization
//! the paper invokes when arguing that `vxp` scales where R-NUMA's
//! counters do not.
//!
//! Each entry tracks at most `i` sharer pointers; on overflow the entry
//! degrades to a *broadcast* state where sharer identity is lost:
//! invalidations go to every cluster, and — crucially for R-NUMA — the
//! "was this cluster already a sharer?" question can no longer be
//! answered, so capacity misses cannot be distinguished from necessary
//! ones. The paper: R-NUMA "only works with full-map, centralized
//! directories ... Another appeal of our relocation mechanism is that it
//! does not require a full-map directory implementation. As such, even
//! systems based on limited pointer or linked lists protocols (like
//! NUMA-Q) could make efficient use of the page caches."
//!
//! # Entry representation
//!
//! Entries are stored the way Dir-i-B hardware stores them: `i` 6-bit
//! pointer fields plus a broadcast bit, packed in one `u64` — not a
//! full presence-bit vector. The layout (LSB first):
//!
//! ```text
//! bits  0..48   eight 6-bit pointer slots, filled in insertion order
//! bits 48..52   pointer count (0..=8)
//! bit  52       broadcast (pointer overflow; slot contents meaningless)
//! bit  53       owner valid
//! bits 54..60   dirty-owner cluster id
//! ```
//!
//! The per-block storage cost this models is `6i + 12` bits (`i` 6-bit
//! pointers, 4-bit count, broadcast bit, 6-bit owner + valid bit) —
//! O(i log N) against the full map's O(N); see
//! [`LimitedPointerDirectory::bits_per_block`].

use dsm_types::{BlockAddr, ClusterId, ClusterSet, DenseMap};

use crate::full_map::{ReadGrant, WriteGrant};

/// Width of one pointer slot: 6 bits addresses up to 64 clusters, the
/// presence-word limit of the coherence layer.
const SLOT_BITS: u64 = 6;
const SLOT_MASK: u64 = (1 << SLOT_BITS) - 1;
/// Pointer slots available in the packed word (bits 0..48).
const MAX_POINTERS: usize = 8;
const COUNT_SHIFT: u64 = 48;
const COUNT_MASK: u64 = 0xf;
const BROADCAST_BIT: u64 = 1 << 52;
const OWNER_VALID_BIT: u64 = 1 << 53;
const OWNER_SHIFT: u64 = 54;

/// One Dir-i-B entry, packed as the hardware would pack it (see the
/// module docs for the bit layout). `0` is the absent/empty entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Entry(u64);

impl Entry {
    fn count(self) -> usize {
        ((self.0 >> COUNT_SHIFT) & COUNT_MASK) as usize
    }

    fn set_count(&mut self, count: usize) {
        debug_assert!(count <= MAX_POINTERS);
        self.0 = (self.0 & !(COUNT_MASK << COUNT_SHIFT)) | ((count as u64) << COUNT_SHIFT);
    }

    fn broadcast(self) -> bool {
        self.0 & BROADCAST_BIT != 0
    }

    fn set_broadcast(&mut self, on: bool) {
        if on {
            self.0 |= BROADCAST_BIT;
        } else {
            self.0 &= !BROADCAST_BIT;
        }
    }

    fn owner(self) -> Option<ClusterId> {
        if self.0 & OWNER_VALID_BIT != 0 {
            Some(ClusterId(((self.0 >> OWNER_SHIFT) & SLOT_MASK) as u16))
        } else {
            None
        }
    }

    fn set_owner(&mut self, owner: Option<ClusterId>) {
        self.0 &= !(OWNER_VALID_BIT | (SLOT_MASK << OWNER_SHIFT));
        if let Some(o) = owner {
            self.0 |= OWNER_VALID_BIT | (u64::from(o.0) << OWNER_SHIFT);
        }
    }

    fn slot(self, k: usize) -> ClusterId {
        ClusterId(((self.0 >> (k as u64 * SLOT_BITS)) & SLOT_MASK) as u16)
    }

    /// Linear scan of the live pointer slots (at most eight 6-bit
    /// compares — cheaper than it reads).
    fn contains(self, cluster: ClusterId) -> bool {
        (0..self.count()).any(|k| self.slot(k) == cluster)
    }

    /// Appends `cluster` in the next free slot (caller checked capacity
    /// and absence).
    fn push(&mut self, cluster: ClusterId) {
        let k = self.count();
        debug_assert!(k < MAX_POINTERS && !self.contains(cluster));
        self.0 |= u64::from(cluster.0) << (k as u64 * SLOT_BITS);
        self.set_count(k + 1);
    }

    /// Drops every pointer (slot bits and count).
    fn clear_pointers(&mut self) {
        self.0 &= !((1u64 << COUNT_SHIFT) - 1);
        self.set_count(0);
    }

    /// Removes `cluster`'s pointer if present, compacting later slots
    /// down (insertion order of the survivors is preserved).
    fn remove(&mut self, cluster: ClusterId) {
        let n = self.count();
        let Some(at) = (0..n).find(|&k| self.slot(k) == cluster) else {
            return;
        };
        for k in at..n - 1 {
            let next = self.slot(k + 1);
            let shift = k as u64 * SLOT_BITS;
            self.0 = (self.0 & !(SLOT_MASK << shift)) | (u64::from(next.0) << shift);
        }
        let last = (n - 1) as u64 * SLOT_BITS;
        self.0 &= !(SLOT_MASK << last);
        self.set_count(n - 1);
    }

    /// The sharer set the pointers encode (identity-precise form only;
    /// callers handle broadcast).
    fn pointer_set(self) -> ClusterSet {
        let mut set = ClusterSet::new();
        for k in 0..self.count() {
            set.insert(self.slot(k));
        }
        set
    }
}

/// A Dir-i-B limited-pointer directory with the same request interface as
/// [`crate::FullMapDirectory`], so the system simulator can swap them.
///
/// Behavioural differences that matter to the paper's argument:
///
/// * after pointer overflow, [`ReadGrant::prior_presence`] is reported as
///   `false` even for clusters that did hold the block — R-NUMA's
///   capacity-miss classification silently degrades;
/// * writes to overflowed entries return an invalidation list containing
///   *every* other cluster (broadcast), inflating invalidation traffic.
#[derive(Debug, Clone)]
pub struct LimitedPointerDirectory {
    clusters: u16,
    pointers: usize,
    entries: DenseMap<Entry>,
    keep_presence_on_writeback: bool,
}

impl LimitedPointerDirectory {
    /// Creates a Dir-i-B directory with `pointers` sharer slots per entry.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is not in `1..=64`, or `pointers` is zero or
    /// exceeds the packed entry's eight slots.
    #[must_use]
    pub fn new(clusters: u16, pointers: usize) -> Self {
        assert!(
            (1..=64).contains(&clusters),
            "cluster count {clusters} must be in 1..=64"
        );
        assert!(pointers > 0, "need at least one sharer pointer");
        assert!(
            pointers <= MAX_POINTERS,
            "packed Dir-i-B entries hold at most {MAX_POINTERS} pointers (asked for {pointers})"
        );
        LimitedPointerDirectory {
            clusters,
            pointers,
            entries: DenseMap::new(),
            keep_presence_on_writeback: true,
        }
    }

    /// Number of sharer pointers per entry.
    #[must_use]
    pub fn pointers(&self) -> usize {
        self.pointers
    }

    /// Number of clusters served.
    #[must_use]
    pub fn clusters(&self) -> u16 {
        self.clusters
    }

    /// Directory storage cost per block in bits: `i` 6-bit pointers, the
    /// 4-bit count, the broadcast bit, and the 6-bit owner + valid bit —
    /// the O(i log N) scaling Dir-i-B buys over a full map.
    #[must_use]
    pub fn bits_per_block(&self) -> u32 {
        u32::try_from(self.pointers).expect("pointers <= 8") * 6 + 4 + 1 + 7
    }

    /// Number of blocks with live directory state (pointers, a broadcast
    /// mark, or a dirty owner) — the Dir-i-B counterpart of
    /// [`crate::FullMapDirectory::tracked_blocks`]. O(blocks);
    /// diagnostics only, never on the hot path.
    #[must_use]
    pub fn tracked_blocks(&self) -> usize {
        self.entries
            .values()
            .filter(|e| e.count() > 0 || e.broadcast() || e.owner().is_some())
            .count()
    }

    /// Merges `other`'s live entries into this directory. The two
    /// directories must track **disjoint** block sets (the sharded-replay
    /// invariant); a block live in both trips a debug assertion, and in
    /// release the absorbed entry wins.
    ///
    /// # Panics
    ///
    /// Panics if the directories differ in cluster count or pointer width.
    pub fn absorb_disjoint(&mut self, other: &LimitedPointerDirectory) {
        assert_eq!(
            (self.clusters, self.pointers),
            (other.clusters, other.pointers),
            "cannot merge directories of different shapes"
        );
        for (block, e) in other.entries.iter() {
            if e.count() == 0 && !e.broadcast() && e.owner().is_none() {
                continue;
            }
            debug_assert!(
                self.entries.get(block).is_none_or(|mine| mine.count() == 0
                    && !mine.broadcast()
                    && mine.owner().is_none()),
                "block {block} tracked by both directories"
            );
            self.entries.insert(block, *e);
        }
    }

    /// Overwrites this directory's entry for `block` with `other`'s — the
    /// per-ownership entry copy of the intra-component sharded merge,
    /// where `other` (the owning worker's clone) is authoritative for
    /// every block homed in its partition. A block `other` does not
    /// track is dropped here too, so the copy is exact.
    ///
    /// # Panics
    ///
    /// Panics if the directories differ in cluster count or pointer width.
    pub fn copy_entry_from(&mut self, other: &LimitedPointerDirectory, block: BlockAddr) {
        assert_eq!(
            (self.clusters, self.pointers),
            (other.clusters, other.pointers),
            "cannot copy entries across directories of different shapes"
        );
        match other.entries.get(block.0) {
            Some(e) => {
                self.entries.insert(block.0, *e);
            }
            None => {
                self.entries.remove(block.0);
            }
        }
    }

    fn check(&self, cluster: ClusterId) {
        assert!(
            cluster.0 < self.clusters,
            "cluster {cluster} out of range (have {})",
            self.clusters
        );
    }

    /// Hints `block`'s entry's home slot into L1 (compare
    /// [`crate::FullMapDirectory::prefetch`]).
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        self.entries.prefetch(block.0);
    }

    /// Processes a read request (compare
    /// [`crate::FullMapDirectory::read`]).
    pub fn read(&mut self, block: BlockAddr, requester: ClusterId) -> ReadGrant {
        self.check(requester);
        let pointers = self.pointers;
        let entry = self.entries.entry_or_default(block.0);
        // After overflow the entry cannot say who shared: presence
        // information is lost (the R-NUMA degradation).
        let prior_presence = !entry.broadcast() && entry.contains(requester);
        let mut downgraded_owner = None;
        if let Some(owner) = entry.owner() {
            if owner != requester {
                downgraded_owner = Some(owner);
            }
            entry.set_owner(None);
        }
        if !entry.broadcast() && !entry.contains(requester) {
            if entry.count() < pointers {
                entry.push(requester);
            } else {
                entry.set_broadcast(true);
                entry.clear_pointers();
            }
        }
        let exclusive = !entry.broadcast() && entry.count() == 1 && entry.slot(0) == requester;
        ReadGrant {
            prior_presence,
            downgraded_owner,
            exclusive,
        }
    }

    /// Processes a write(-ownership) request (compare
    /// [`crate::FullMapDirectory::write`]).
    pub fn write(&mut self, block: BlockAddr, requester: ClusterId) -> WriteGrant {
        self.check(requester);
        let clusters = self.clusters;
        let entry = self.entries.entry_or_default(block.0);
        let prior_presence = !entry.broadcast() && entry.contains(requester);
        let previous_owner = entry.owner().filter(|&o| o != requester);
        let invalidate = if entry.broadcast() {
            // Identity lost: broadcast to everyone else (false
            // invalidations included).
            ClusterSet::all(clusters).without(requester)
        } else {
            entry.pointer_set().without(requester)
        };
        entry.set_broadcast(false);
        entry.clear_pointers();
        entry.push(requester);
        entry.set_owner(Some(requester));
        WriteGrant {
            prior_presence,
            invalidate,
            previous_owner,
        }
    }

    /// Records a dirty write-back (compare
    /// [`crate::FullMapDirectory::writeback`]).
    pub fn writeback(&mut self, block: BlockAddr, cluster: ClusterId) {
        self.check(cluster);
        let keep = self.keep_presence_on_writeback;
        if let Some(entry) = self.entries.get_mut(block.0) {
            if entry.owner() == Some(cluster) {
                entry.set_owner(None);
                if !keep {
                    entry.remove(cluster);
                }
            }
        }
    }

    /// Whether `cluster` holds dirty ownership.
    #[must_use]
    pub fn is_owner(&self, block: BlockAddr, cluster: ClusterId) -> bool {
        self.entries
            .get(block.0)
            .is_some_and(|e| e.owner() == Some(cluster))
    }

    /// The dirty owner, if any.
    #[must_use]
    pub fn owner_of(&self, block: BlockAddr) -> Option<ClusterId> {
        self.entries.get(block.0).and_then(|e| e.owner())
    }

    /// The set of clusters the directory would invalidate for `block`
    /// (every cluster under broadcast), without allocating.
    #[must_use]
    pub fn sharer_set(&self, block: BlockAddr) -> ClusterSet {
        match self.entries.get(block.0) {
            None => ClusterSet::new(),
            Some(e) if e.broadcast() => ClusterSet::all(self.clusters),
            Some(e) => e.pointer_set(),
        }
    }

    /// Whether any cluster besides `cluster` would receive an
    /// invalidation for `block`. Under broadcast this is conservative —
    /// identity is lost, so everyone else counts.
    #[must_use]
    pub fn has_sharer_other_than(&self, block: BlockAddr, cluster: ClusterId) -> bool {
        self.sharer_set(block).contains_other_than(cluster)
    }

    /// Clusters the directory would invalidate for `block` (all of them
    /// under broadcast).
    #[must_use]
    pub fn sharers(&self, block: BlockAddr) -> Vec<ClusterId> {
        self.sharer_set(block).iter().collect()
    }

    /// Records an exclusive-clean grant (compare
    /// [`crate::FullMapDirectory::grant_exclusive`]).
    ///
    /// # Panics
    ///
    /// Panics if other sharers are tracked.
    pub fn grant_exclusive(&mut self, block: BlockAddr, cluster: ClusterId) {
        self.check(cluster);
        let entry = self.entries.entry_or_default(block.0);
        assert!(
            !entry.broadcast() && entry.pointer_set().without(cluster).is_empty(),
            "exclusive grant of {block} to {cluster} with other sharers tracked"
        );
        entry.clear_pointers();
        entry.push(cluster);
        entry.set_owner(Some(cluster));
    }

    /// Whether the entry has overflowed to broadcast mode.
    #[must_use]
    pub fn is_broadcast(&self, block: BlockAddr) -> bool {
        self.entries.get(block.0).is_some_and(|e| e.broadcast())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: BlockAddr = BlockAddr(42);

    fn dir() -> LimitedPointerDirectory {
        LimitedPointerDirectory::new(8, 2)
    }

    #[test]
    fn tracks_exactly_like_full_map_below_overflow() {
        let mut d = dir();
        let g = d.read(B, ClusterId(0));
        assert!(g.exclusive && !g.prior_presence);
        let g = d.read(B, ClusterId(1));
        assert!(!g.exclusive);
        // Re-read: presence still known (no overflow yet).
        let g = d.read(B, ClusterId(0));
        assert!(g.prior_presence);
        assert_eq!(d.sharers(B), vec![ClusterId(0), ClusterId(1)]);
    }

    #[test]
    fn overflow_degrades_to_broadcast() {
        let mut d = dir();
        d.read(B, ClusterId(0));
        d.read(B, ClusterId(1));
        d.read(B, ClusterId(2)); // third sharer: overflow
        assert!(d.is_broadcast(B));
        assert_eq!(d.sharers(B).len(), 8);
        // Presence information is gone: cluster 0's re-read looks cold.
        let g = d.read(B, ClusterId(0));
        assert!(
            !g.prior_presence,
            "broadcast entries cannot classify capacity misses"
        );
    }

    #[test]
    fn broadcast_write_invalidates_everyone() {
        let mut d = dir();
        d.read(B, ClusterId(0));
        d.read(B, ClusterId(1));
        d.read(B, ClusterId(2));
        let g = d.write(B, ClusterId(3));
        assert_eq!(g.invalidate.len(), 7, "{:?}", g.invalidate);
        assert!(!g.invalidate.contains(ClusterId(3)));
        // Write resets the entry to a precise single pointer.
        assert!(!d.is_broadcast(B));
        assert_eq!(d.sharers(B), vec![ClusterId(3)]);
        assert!(d.is_owner(B, ClusterId(3)));
    }

    #[test]
    fn precise_write_invalidates_only_pointers() {
        let mut d = dir();
        d.read(B, ClusterId(0));
        d.read(B, ClusterId(1));
        let g = d.write(B, ClusterId(5));
        let inv: Vec<ClusterId> = g.invalidate.iter().collect();
        assert_eq!(inv, vec![ClusterId(0), ClusterId(1)]);
    }

    #[test]
    fn dirty_owner_downgrade() {
        let mut d = dir();
        d.write(B, ClusterId(0));
        let g = d.read(B, ClusterId(1));
        assert_eq!(g.downgraded_owner, Some(ClusterId(0)));
        assert!(!d.is_owner(B, ClusterId(0)));
    }

    #[test]
    fn writeback_clears_owner_keeps_pointer() {
        let mut d = dir();
        d.write(B, ClusterId(0));
        d.writeback(B, ClusterId(0));
        assert!(d.owner_of(B).is_none());
        let g = d.read(B, ClusterId(0));
        assert!(g.prior_presence, "pointer survives the write-back");
    }

    #[test]
    fn grant_exclusive_sets_owner() {
        let mut d = dir();
        d.read(B, ClusterId(2));
        d.grant_exclusive(B, ClusterId(2));
        assert!(d.is_owner(B, ClusterId(2)));
    }

    #[test]
    #[should_panic(expected = "other sharers tracked")]
    fn grant_exclusive_rejects_shared_entries() {
        let mut d = dir();
        d.read(B, ClusterId(0));
        d.read(B, ClusterId(1));
        d.grant_exclusive(B, ClusterId(0));
    }

    #[test]
    #[should_panic(expected = "at least one sharer pointer")]
    fn zero_pointers_panics() {
        let _ = LimitedPointerDirectory::new(8, 0);
    }

    #[test]
    #[should_panic(expected = "at most 8 pointers")]
    fn nine_pointers_overflow_the_packed_word() {
        let _ = LimitedPointerDirectory::new(64, 9);
    }

    #[test]
    fn memory_cost_is_pointer_bound() {
        // The point of Dir-i-B: entry size is O(i log N), not O(N).
        let d = LimitedPointerDirectory::new(64, 4);
        assert_eq!(d.pointers(), 4);
        assert_eq!(d.bits_per_block(), 4 * 6 + 12);
        // Dir-2-B on the paper's 8-cluster machine: 24 bits.
        assert_eq!(dir().bits_per_block(), 24);
    }

    #[test]
    fn packed_entry_slots_roundtrip() {
        let mut e = Entry::default();
        for c in [5u16, 63, 0, 17] {
            e.push(ClusterId(c));
        }
        assert_eq!(e.count(), 4);
        assert_eq!(
            (0..4).map(|k| e.slot(k).0).collect::<Vec<_>>(),
            vec![5, 63, 0, 17],
            "slots preserve insertion order"
        );
        assert!(e.contains(ClusterId(63)) && !e.contains(ClusterId(6)));
        e.remove(ClusterId(63));
        assert_eq!(
            (0..3).map(|k| e.slot(k).0).collect::<Vec<_>>(),
            vec![5, 0, 17],
            "removal compacts later slots down"
        );
        e.set_owner(Some(ClusterId(40)));
        e.set_broadcast(true);
        assert_eq!(e.owner(), Some(ClusterId(40)));
        assert!(e.broadcast());
        e.set_owner(None);
        assert_eq!(e.owner(), None);
        assert!(e.broadcast(), "owner bits do not disturb broadcast");
    }

    /// The old identity-precise representation: a full `ClusterSet` plus
    /// flags. Kept as a shadow model to prove the packed pointer-field
    /// entry is observationally equivalent.
    #[derive(Debug, Clone, Copy, Default)]
    struct ShadowEntry {
        sharers: ClusterSet,
        broadcast: bool,
        owner: Option<ClusterId>,
    }

    #[derive(Debug)]
    struct ShadowDir {
        clusters: u16,
        pointers: usize,
        entries: dsm_types::FxHashMap<u64, ShadowEntry>,
    }

    impl ShadowDir {
        fn new(clusters: u16, pointers: usize) -> Self {
            ShadowDir {
                clusters,
                pointers,
                entries: dsm_types::FxHashMap::default(),
            }
        }

        fn read(&mut self, block: BlockAddr, requester: ClusterId) -> ReadGrant {
            let pointers = self.pointers;
            let entry = self.entries.entry(block.0).or_default();
            let prior_presence = !entry.broadcast && entry.sharers.contains(requester);
            let mut downgraded_owner = None;
            if let Some(owner) = entry.owner {
                if owner != requester {
                    downgraded_owner = Some(owner);
                }
                entry.owner = None;
            }
            if !entry.broadcast && !entry.sharers.contains(requester) {
                if entry.sharers.len() < pointers {
                    entry.sharers.insert(requester);
                } else {
                    entry.broadcast = true;
                    entry.sharers = ClusterSet::new();
                }
            }
            let exclusive = !entry.broadcast && entry.sharers.mask() == 1u64 << requester.0;
            ReadGrant {
                prior_presence,
                downgraded_owner,
                exclusive,
            }
        }

        fn write(&mut self, block: BlockAddr, requester: ClusterId) -> WriteGrant {
            let clusters = self.clusters;
            let entry = self.entries.entry(block.0).or_default();
            let prior_presence = !entry.broadcast && entry.sharers.contains(requester);
            let previous_owner = entry.owner.filter(|&o| o != requester);
            let invalidate = if entry.broadcast {
                ClusterSet::all(clusters).without(requester)
            } else {
                entry.sharers.without(requester)
            };
            entry.broadcast = false;
            entry.sharers = ClusterSet::from_mask(1u64 << requester.0);
            entry.owner = Some(requester);
            WriteGrant {
                prior_presence,
                invalidate,
                previous_owner,
            }
        }

        fn writeback(&mut self, block: BlockAddr, cluster: ClusterId) {
            if let Some(entry) = self.entries.get_mut(&block.0) {
                if entry.owner == Some(cluster) {
                    entry.owner = None;
                }
            }
        }

        fn sharer_set(&self, block: BlockAddr) -> ClusterSet {
            match self.entries.get(&block.0) {
                None => ClusterSet::new(),
                Some(e) if e.broadcast => ClusterSet::all(self.clusters),
                Some(e) => e.sharers,
            }
        }
    }

    #[test]
    fn packed_entries_shadow_the_cluster_set_representation() {
        // Randomized op sequence against both representations; every
        // grant and every observable query must agree exactly.
        for &(clusters, pointers) in &[(8u16, 2usize), (8, 4), (64, 4), (3, 1), (64, 8)] {
            let mut packed = LimitedPointerDirectory::new(clusters, pointers);
            let mut shadow = ShadowDir::new(clusters, pointers);
            let mut state = 0x9e37_79b9_7f4a_7c15u64;
            let mut rng = move || {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                state >> 33
            };
            for step in 0..4000 {
                let block = BlockAddr(rng() % 13);
                let cl = ClusterId((rng() % u64::from(clusters)) as u16);
                match rng() % 4 {
                    0 | 1 => {
                        let a = packed.read(block, cl);
                        let b = shadow.read(block, cl);
                        assert_eq!(
                            (a.prior_presence, a.downgraded_owner, a.exclusive),
                            (b.prior_presence, b.downgraded_owner, b.exclusive),
                            "read grant diverged at step {step}"
                        );
                    }
                    2 => {
                        let a = packed.write(block, cl);
                        let b = shadow.write(block, cl);
                        assert_eq!(
                            (a.prior_presence, a.invalidate, a.previous_owner),
                            (b.prior_presence, b.invalidate, b.previous_owner),
                            "write grant diverged at step {step}"
                        );
                    }
                    _ => {
                        packed.writeback(block, cl);
                        shadow.writeback(block, cl);
                    }
                }
                assert_eq!(
                    packed.sharer_set(block),
                    shadow.sharer_set(block),
                    "sharer set diverged at step {step}"
                );
                assert_eq!(
                    packed.owner_of(block),
                    shadow.entries.get(&block.0).and_then(|e| e.owner),
                    "owner diverged at step {step}"
                );
                assert_eq!(
                    packed.has_sharer_other_than(block, cl),
                    shadow.sharer_set(block).contains_other_than(cl),
                    "has_sharer_other_than diverged at step {step}"
                );
            }
        }
    }
}
