//! First-touch page placement and the block -> home-cluster map.

use dsm_types::{BlockAddr, ClusterId, DenseMap, Geometry, PageAddr};

/// First-touch page placement: each page's home memory is the cluster of
/// the first processor that references it.
///
/// The SPLASH-2 codes are optimized so that first-touch is near-optimal at
/// minimizing remote accesses (the paper cites Marchetti et al.). The paper
/// also fixes LU, whose master processor initializes the whole matrix inside
/// the parallel section — that fix is expressed here as *pre-assignment*:
/// [`FirstTouchPlacement::preassign`] pins a page's home before the trace
/// runs.
///
/// # Example
///
/// ```
/// use dsm_directory::FirstTouchPlacement;
/// use dsm_types::{ClusterId, PageAddr};
///
/// let mut p = FirstTouchPlacement::new();
/// assert_eq!(p.home_of(PageAddr(9), ClusterId(3)), ClusterId(3));
/// // Later touches by other clusters do not move the page.
/// assert_eq!(p.home_of(PageAddr(9), ClusterId(5)), ClusterId(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FirstTouchPlacement {
    homes: DenseMap<ClusterId>,
}

impl FirstTouchPlacement {
    /// Creates an empty placement map.
    #[must_use]
    pub fn new() -> Self {
        FirstTouchPlacement::default()
    }

    /// Returns the home of `page`, assigning it to `toucher` on first touch.
    pub fn home_of(&mut self, page: PageAddr, toucher: ClusterId) -> ClusterId {
        *self.homes.entry_or_insert_with(page.0, || toucher)
    }

    /// The home of `page` if already assigned.
    #[must_use]
    pub fn peek_home(&self, page: PageAddr) -> Option<ClusterId> {
        self.homes.get(page.0).copied()
    }

    /// Pins `page`'s home to `cluster` regardless of who touches it first
    /// (overwrites any existing assignment).
    pub fn preassign(&mut self, page: PageAddr, cluster: ClusterId) {
        self.homes.insert(page.0, cluster);
    }

    /// Number of pages placed so far.
    #[must_use]
    pub fn placed_pages(&self) -> usize {
        self.homes.len()
    }

    /// Iterates over `(page, home)` assignments (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (PageAddr, ClusterId)> + '_ {
        self.homes.iter().map(|(p, &c)| (PageAddr(p), c))
    }
}

/// Combines first-touch placement with the address-space geometry to answer
/// the question the simulator asks on every reference: *which cluster is
/// home for this block, and is that the requester?*
#[derive(Debug, Clone)]
pub struct HomeMap {
    geometry: Geometry,
    placement: FirstTouchPlacement,
}

impl HomeMap {
    /// Creates a home map over `geometry` with empty first-touch state.
    #[must_use]
    pub fn new(geometry: Geometry) -> Self {
        HomeMap {
            geometry,
            placement: FirstTouchPlacement::new(),
        }
    }

    /// The geometry in use.
    #[must_use]
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Home cluster of the page containing `block`, first-touch assigning
    /// it to `toucher` if unplaced.
    pub fn home_of_block(&mut self, block: BlockAddr, toucher: ClusterId) -> ClusterId {
        let page = self.geometry.page_of_block(block);
        self.placement.home_of(page, toucher)
    }

    /// Home cluster of `page`, first-touch assigning it to `toucher` if
    /// unplaced — for callers that already decomposed the address.
    pub fn home_of_page(&mut self, page: PageAddr, toucher: ClusterId) -> ClusterId {
        self.placement.home_of(page, toucher)
    }

    /// Whether `block` is remote for `cluster` (assigning on first touch,
    /// in which case it is local by definition).
    pub fn is_remote(&mut self, block: BlockAddr, cluster: ClusterId) -> bool {
        self.home_of_block(block, cluster) != cluster
    }

    /// Pins the home of `page` (the paper's LU initialization fix).
    pub fn preassign(&mut self, page: PageAddr, cluster: ClusterId) {
        self.placement.preassign(page, cluster);
    }

    /// The underlying placement map.
    #[must_use]
    pub fn placement(&self) -> &FirstTouchPlacement {
        &self.placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_assigns_and_sticks() {
        let mut p = FirstTouchPlacement::new();
        assert_eq!(p.peek_home(PageAddr(1)), None);
        assert_eq!(p.home_of(PageAddr(1), ClusterId(2)), ClusterId(2));
        assert_eq!(p.home_of(PageAddr(1), ClusterId(7)), ClusterId(2));
        assert_eq!(p.peek_home(PageAddr(1)), Some(ClusterId(2)));
        assert_eq!(p.placed_pages(), 1);
    }

    #[test]
    fn preassign_overrides_first_touch() {
        let mut p = FirstTouchPlacement::new();
        p.preassign(PageAddr(5), ClusterId(4));
        assert_eq!(p.home_of(PageAddr(5), ClusterId(0)), ClusterId(4));
    }

    #[test]
    fn preassign_overwrites_existing() {
        let mut p = FirstTouchPlacement::new();
        p.home_of(PageAddr(5), ClusterId(0));
        p.preassign(PageAddr(5), ClusterId(4));
        assert_eq!(p.peek_home(PageAddr(5)), Some(ClusterId(4)));
    }

    #[test]
    fn iter_lists_assignments() {
        let mut p = FirstTouchPlacement::new();
        p.home_of(PageAddr(1), ClusterId(0));
        p.home_of(PageAddr(2), ClusterId(1));
        let mut v: Vec<_> = p.iter().collect();
        v.sort_by_key(|(pg, _)| pg.0);
        assert_eq!(
            v,
            vec![(PageAddr(1), ClusterId(0)), (PageAddr(2), ClusterId(1))]
        );
    }

    #[test]
    fn home_map_blocks_share_their_pages_home() {
        let mut hm = HomeMap::new(Geometry::paper_default());
        // Block 0 and block 63 are both in page 0; block 64 is in page 1.
        assert_eq!(hm.home_of_block(BlockAddr(0), ClusterId(3)), ClusterId(3));
        assert_eq!(hm.home_of_block(BlockAddr(63), ClusterId(5)), ClusterId(3));
        assert_eq!(hm.home_of_block(BlockAddr(64), ClusterId(5)), ClusterId(5));
    }

    #[test]
    fn is_remote_discriminates() {
        let mut hm = HomeMap::new(Geometry::paper_default());
        assert!(!hm.is_remote(BlockAddr(0), ClusterId(1))); // first touch -> local
        assert!(hm.is_remote(BlockAddr(0), ClusterId(2)));
        assert!(!hm.is_remote(BlockAddr(0), ClusterId(1)));
    }

    #[test]
    fn home_map_preassign() {
        let mut hm = HomeMap::new(Geometry::paper_default());
        hm.preassign(PageAddr(0), ClusterId(6));
        assert!(hm.is_remote(BlockAddr(0), ClusterId(0)));
        assert!(!hm.is_remote(BlockAddr(0), ClusterId(6)));
    }
}
