//! First-touch page placement and the block -> home-cluster map.

use dsm_types::{BlockAddr, ClusterId, Geometry, PageAddr};

/// First-touch page placement: each page's home memory is the cluster of
/// the first processor that references it.
///
/// The SPLASH-2 codes are optimized so that first-touch is near-optimal at
/// minimizing remote accesses (the paper cites Marchetti et al.). The paper
/// also fixes LU, whose master processor initializes the whole matrix inside
/// the parallel section — that fix is expressed here as *pre-assignment*:
/// [`FirstTouchPlacement::preassign`] pins a page's home before the trace
/// runs.
///
/// # Example
///
/// ```
/// use dsm_directory::FirstTouchPlacement;
/// use dsm_types::{ClusterId, PageAddr};
///
/// let mut p = FirstTouchPlacement::new();
/// assert_eq!(p.home_of(PageAddr(9), ClusterId(3)), ClusterId(3));
/// // Later touches by other clusters do not move the page.
/// assert_eq!(p.home_of(PageAddr(9), ClusterId(5)), ClusterId(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FirstTouchPlacement {
    /// Home cluster per page, indexed directly by page number
    /// ([`NO_HOME`] = unplaced). Page spaces are dense and small
    /// (shared footprint / page size), and the eviction path consults
    /// this map on every dirty victim — a flat byte array keeps that
    /// lookup to one indexed load.
    homes: Vec<u8>,
    placed: usize,
}

/// Sentinel for an unplaced page. Cluster ids are bounded by the 64-bit
/// directory presence word, so `u8::MAX` can never collide.
const NO_HOME: u8 = u8::MAX;

impl FirstTouchPlacement {
    /// Creates an empty placement map.
    #[must_use]
    pub fn new() -> Self {
        FirstTouchPlacement::default()
    }

    #[inline]
    fn slot_mut(&mut self, page: PageAddr) -> &mut u8 {
        let i = usize::try_from(page.0).expect("page index fits usize");
        if i >= self.homes.len() {
            let target = (i + 1).next_power_of_two().max(1024);
            self.homes.resize(target, NO_HOME);
        }
        &mut self.homes[i]
    }

    /// Returns the home of `page`, assigning it to `toucher` on first touch.
    pub fn home_of(&mut self, page: PageAddr, toucher: ClusterId) -> ClusterId {
        let slot = self.slot_mut(page);
        if *slot == NO_HOME {
            // Cluster ids are bounded by the 64-bit presence word, so the
            // cast cannot truncate.
            #[allow(clippy::cast_possible_truncation)]
            {
                *slot = toucher.0 as u8;
            }
            self.placed += 1;
            return toucher;
        }
        ClusterId(u16::from(*slot))
    }

    /// The home of `page` if already assigned.
    #[must_use]
    pub fn peek_home(&self, page: PageAddr) -> Option<ClusterId> {
        let i = usize::try_from(page.0).ok()?;
        match self.homes.get(i) {
            Some(&c) if c != NO_HOME => Some(ClusterId(u16::from(c))),
            _ => None,
        }
    }

    /// Pins `page`'s home to `cluster` regardless of who touches it first
    /// (overwrites any existing assignment).
    pub fn preassign(&mut self, page: PageAddr, cluster: ClusterId) {
        let slot = self.slot_mut(page);
        let fresh = *slot == NO_HOME;
        // Cluster ids are bounded by the 64-bit presence word.
        #[allow(clippy::cast_possible_truncation)]
        {
            *slot = cluster.0 as u8;
        }
        if fresh {
            self.placed += 1;
        }
    }

    /// Number of pages placed so far.
    #[must_use]
    pub fn placed_pages(&self) -> usize {
        self.placed
    }

    /// Iterates over `(page, home)` assignments (ascending page order).
    pub fn iter(&self) -> impl Iterator<Item = (PageAddr, ClusterId)> + '_ {
        self.homes
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != NO_HOME)
            .map(|(p, &c)| (PageAddr(p as u64), ClusterId(u16::from(c))))
    }
}

/// Combines first-touch placement with the address-space geometry to answer
/// the question the simulator asks on every reference: *which cluster is
/// home for this block, and is that the requester?*
#[derive(Debug, Clone)]
pub struct HomeMap {
    geometry: Geometry,
    placement: FirstTouchPlacement,
}

impl HomeMap {
    /// Creates a home map over `geometry` with empty first-touch state.
    #[must_use]
    pub fn new(geometry: Geometry) -> Self {
        HomeMap {
            geometry,
            placement: FirstTouchPlacement::new(),
        }
    }

    /// The geometry in use.
    #[must_use]
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// Home cluster of the page containing `block`, first-touch assigning
    /// it to `toucher` if unplaced.
    pub fn home_of_block(&mut self, block: BlockAddr, toucher: ClusterId) -> ClusterId {
        let page = self.geometry.page_of_block(block);
        self.placement.home_of(page, toucher)
    }

    /// Home cluster of `page`, first-touch assigning it to `toucher` if
    /// unplaced — for callers that already decomposed the address.
    pub fn home_of_page(&mut self, page: PageAddr, toucher: ClusterId) -> ClusterId {
        self.placement.home_of(page, toucher)
    }

    /// Whether `block` is remote for `cluster` (assigning on first touch,
    /// in which case it is local by definition).
    pub fn is_remote(&mut self, block: BlockAddr, cluster: ClusterId) -> bool {
        self.home_of_block(block, cluster) != cluster
    }

    /// Pins the home of `page` (the paper's LU initialization fix).
    pub fn preassign(&mut self, page: PageAddr, cluster: ClusterId) {
        self.placement.preassign(page, cluster);
    }

    /// The underlying placement map.
    #[must_use]
    pub fn placement(&self) -> &FirstTouchPlacement {
        &self.placement
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_touch_assigns_and_sticks() {
        let mut p = FirstTouchPlacement::new();
        assert_eq!(p.peek_home(PageAddr(1)), None);
        assert_eq!(p.home_of(PageAddr(1), ClusterId(2)), ClusterId(2));
        assert_eq!(p.home_of(PageAddr(1), ClusterId(7)), ClusterId(2));
        assert_eq!(p.peek_home(PageAddr(1)), Some(ClusterId(2)));
        assert_eq!(p.placed_pages(), 1);
    }

    #[test]
    fn preassign_overrides_first_touch() {
        let mut p = FirstTouchPlacement::new();
        p.preassign(PageAddr(5), ClusterId(4));
        assert_eq!(p.home_of(PageAddr(5), ClusterId(0)), ClusterId(4));
    }

    #[test]
    fn preassign_overwrites_existing() {
        let mut p = FirstTouchPlacement::new();
        p.home_of(PageAddr(5), ClusterId(0));
        p.preassign(PageAddr(5), ClusterId(4));
        assert_eq!(p.peek_home(PageAddr(5)), Some(ClusterId(4)));
    }

    #[test]
    fn iter_lists_assignments() {
        let mut p = FirstTouchPlacement::new();
        p.home_of(PageAddr(1), ClusterId(0));
        p.home_of(PageAddr(2), ClusterId(1));
        let mut v: Vec<_> = p.iter().collect();
        v.sort_by_key(|(pg, _)| pg.0);
        assert_eq!(
            v,
            vec![(PageAddr(1), ClusterId(0)), (PageAddr(2), ClusterId(1))]
        );
    }

    #[test]
    fn home_map_blocks_share_their_pages_home() {
        let mut hm = HomeMap::new(Geometry::paper_default());
        // Block 0 and block 63 are both in page 0; block 64 is in page 1.
        assert_eq!(hm.home_of_block(BlockAddr(0), ClusterId(3)), ClusterId(3));
        assert_eq!(hm.home_of_block(BlockAddr(63), ClusterId(5)), ClusterId(3));
        assert_eq!(hm.home_of_block(BlockAddr(64), ClusterId(5)), ClusterId(5));
    }

    #[test]
    fn is_remote_discriminates() {
        let mut hm = HomeMap::new(Geometry::paper_default());
        assert!(!hm.is_remote(BlockAddr(0), ClusterId(1))); // first touch -> local
        assert!(hm.is_remote(BlockAddr(0), ClusterId(2)));
        assert!(!hm.is_remote(BlockAddr(0), ClusterId(1)));
    }

    #[test]
    fn home_map_preassign() {
        let mut hm = HomeMap::new(Geometry::paper_default());
        hm.preassign(PageAddr(0), ClusterId(6));
        assert!(hm.is_remote(BlockAddr(0), ClusterId(0)));
        assert!(!hm.is_remote(BlockAddr(0), ClusterId(6)));
    }
}
