//! R-NUMA's directory-controlled page relocation counters.

use dsm_types::{ClusterId, FxHashMap, PageAddr};

/// Per-page, per-cluster **capacity-miss counters**, as proposed by R-NUMA
/// (Falsafi & Wood) and used by the paper's `ncp`/`vbp`/`vpp` systems.
///
/// The directory increments the counter for `(page, cluster)` whenever a
/// remote miss from `cluster` to a block of `page` is classified as a
/// capacity miss (the requester's presence bit was already set). When the
/// count crosses the cluster's relocation threshold, the page becomes a
/// candidate for relocation into that cluster's page cache, and the counter
/// is reset.
///
/// The paper criticizes this scheme's memory cost: with full-map storage a
/// 256-cluster machine needs 256 one-byte counters per 4-KB page — a 6.67 %
/// overhead ([`RnumaCounters::memory_overhead_ratio`]) — and it only works
/// with centralized full-map directories. The alternative (victim-cache
/// set counters) lives in `dsm-core::relocation`.
///
/// # Example
///
/// ```
/// use dsm_directory::RnumaCounters;
/// use dsm_types::{ClusterId, PageAddr};
///
/// let mut c = RnumaCounters::new();
/// assert_eq!(c.increment(PageAddr(1), ClusterId(0)), 1);
/// assert_eq!(c.increment(PageAddr(1), ClusterId(0)), 2);
/// assert_eq!(c.count(PageAddr(1), ClusterId(1)), 0); // independent per cluster
/// c.reset(PageAddr(1), ClusterId(0));
/// assert_eq!(c.count(PageAddr(1), ClusterId(0)), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RnumaCounters {
    counts: FxHashMap<(u64, u16), u32>,
}

impl RnumaCounters {
    /// Creates an empty counter table.
    #[must_use]
    pub fn new() -> Self {
        RnumaCounters::default()
    }

    /// Increments the capacity-miss count for `(page, cluster)` and returns
    /// the new value.
    pub fn increment(&mut self, page: PageAddr, cluster: ClusterId) -> u32 {
        let c = self.counts.entry((page.0, cluster.0)).or_insert(0);
        *c = c.saturating_add(1);
        *c
    }

    /// Decrements the count (the paper's optional invalidation-driven
    /// correction), saturating at zero. Returns the new value.
    pub fn decrement(&mut self, page: PageAddr, cluster: ClusterId) -> u32 {
        match self.counts.get_mut(&(page.0, cluster.0)) {
            Some(c) => {
                *c = c.saturating_sub(1);
                *c
            }
            None => 0,
        }
    }

    /// The current count for `(page, cluster)`.
    #[must_use]
    pub fn count(&self, page: PageAddr, cluster: ClusterId) -> u32 {
        self.counts.get(&(page.0, cluster.0)).copied().unwrap_or(0)
    }

    /// Resets the counter after a relocation (or eviction from the page
    /// cache).
    pub fn reset(&mut self, page: PageAddr, cluster: ClusterId) {
        self.counts.remove(&(page.0, cluster.0));
    }

    /// Number of live (nonzero) counters — the paper's point that "very
    /// little of this memory is actually used".
    #[must_use]
    pub fn live_counters(&self) -> usize {
        self.counts.values().filter(|&&c| c > 0).count()
    }

    /// Replaces this table's counters for every page `owned` selects
    /// with `other`'s counters for those pages, leaving the rest
    /// untouched — the per-ownership merge of the intra-component
    /// sharded replay, where `other` (the owning worker's clone) is
    /// authoritative for the pages homed in its partition.
    pub fn adopt_pages(&mut self, other: &RnumaCounters, mut owned: impl FnMut(PageAddr) -> bool) {
        self.counts.retain(|&(page, _), _| !owned(PageAddr(page)));
        for (&(page, cluster), &count) in &other.counts {
            if owned(PageAddr(page)) {
                self.counts.insert((page, cluster), count);
            }
        }
    }

    /// Merges `other`'s counters into this table; the two must cover
    /// disjoint `(page, cluster)` pairs (the sharded-replay merge step,
    /// where first-touch homing keeps each shard's pages private to it).
    pub fn absorb_disjoint(&mut self, other: &RnumaCounters) {
        for (&key, &count) in &other.counts {
            let prev = self.counts.insert(key, count);
            debug_assert!(
                prev.is_none(),
                "page {} / cluster {} counted by both shards",
                key.0,
                key.1
            );
        }
    }

    /// The memory overhead of a *full-map* hardware realization of this
    /// scheme: one counter byte per cluster per page, expressed as a
    /// fraction of the memory left for data. For 256 clusters and 4-KB
    /// pages this is the paper's 6.67 % (256 / 3840).
    ///
    /// # Panics
    ///
    /// Panics if `clusters >= page_bytes` (the counters would consume the
    /// whole page).
    #[must_use]
    pub fn memory_overhead_ratio(clusters: u32, page_bytes: u32) -> f64 {
        assert!(clusters < page_bytes, "counters exceed the page");
        f64::from(clusters) / f64::from(page_bytes - clusters)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: PageAddr = PageAddr(7);
    const C: ClusterId = ClusterId(3);

    #[test]
    fn starts_at_zero() {
        let c = RnumaCounters::new();
        assert_eq!(c.count(P, C), 0);
        assert_eq!(c.live_counters(), 0);
    }

    #[test]
    fn increments_independently_per_pair() {
        let mut c = RnumaCounters::new();
        c.increment(P, C);
        c.increment(P, C);
        c.increment(P, ClusterId(0));
        c.increment(PageAddr(8), C);
        assert_eq!(c.count(P, C), 2);
        assert_eq!(c.count(P, ClusterId(0)), 1);
        assert_eq!(c.count(PageAddr(8), C), 1);
        assert_eq!(c.live_counters(), 3);
    }

    #[test]
    fn reset_clears_pair_only() {
        let mut c = RnumaCounters::new();
        c.increment(P, C);
        c.increment(P, ClusterId(0));
        c.reset(P, C);
        assert_eq!(c.count(P, C), 0);
        assert_eq!(c.count(P, ClusterId(0)), 1);
    }

    #[test]
    fn decrement_saturates_at_zero() {
        let mut c = RnumaCounters::new();
        assert_eq!(c.decrement(P, C), 0);
        c.increment(P, C);
        assert_eq!(c.decrement(P, C), 0);
        assert_eq!(c.decrement(P, C), 0);
    }

    #[test]
    fn absorb_disjoint_unions_counters() {
        let mut a = RnumaCounters::new();
        a.increment(P, C);
        a.increment(P, C);
        let mut b = RnumaCounters::new();
        b.increment(PageAddr(8), ClusterId(0));
        a.absorb_disjoint(&b);
        assert_eq!(a.count(P, C), 2);
        assert_eq!(a.count(PageAddr(8), ClusterId(0)), 1);
        assert_eq!(a.live_counters(), 2);
    }

    #[test]
    fn adopt_pages_replaces_owned_counters_exactly() {
        let mut main = RnumaCounters::new();
        main.increment(P, C); // stale counter on an owned page
        main.increment(PageAddr(9), C); // unowned: must survive
        let mut worker = RnumaCounters::new();
        worker.increment(P, C);
        worker.increment(P, C);
        worker.increment(P, ClusterId(0));
        worker.increment(PageAddr(9), ClusterId(0)); // unowned: ignored
        main.adopt_pages(&worker, |page| page == P);
        assert_eq!(main.count(P, C), 2);
        assert_eq!(main.count(P, ClusterId(0)), 1);
        assert_eq!(main.count(PageAddr(9), C), 1);
        assert_eq!(main.count(PageAddr(9), ClusterId(0)), 0);
    }

    #[test]
    fn paper_overhead_figure() {
        let ratio = RnumaCounters::memory_overhead_ratio(256, 4096);
        assert!((ratio - 0.0667).abs() < 0.001, "got {ratio}");
    }
}
