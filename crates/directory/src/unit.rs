//! A directory of either organization, behind one dispatch type.

use dsm_types::{BlockAddr, ClusterId, ClusterSet};

use crate::full_map::{FullMapDirectory, ReadGrant, WriteGrant};
use crate::limited::LimitedPointerDirectory;

/// Either a full-map or a limited-pointer directory, with the request
/// interface the system simulator uses. Lets the `vxp`-scales-where-R-NUMA-
/// cannot claim be tested by swapping the directory under an otherwise
/// identical machine.
#[derive(Debug, Clone)]
pub enum DirectoryUnit {
    /// Full-map presence bits (required by R-NUMA's counters).
    FullMap(FullMapDirectory),
    /// Dir-i-B limited pointers (NUMA-Q-class scalability).
    LimitedPointer(LimitedPointerDirectory),
}

impl DirectoryUnit {
    /// A full-map directory for `clusters` clusters.
    #[must_use]
    pub fn full_map(clusters: u16) -> Self {
        DirectoryUnit::FullMap(FullMapDirectory::new(clusters))
    }

    /// A Dir-i-B directory with `pointers` sharer slots.
    #[must_use]
    pub fn limited(clusters: u16, pointers: usize) -> Self {
        DirectoryUnit::LimitedPointer(LimitedPointerDirectory::new(clusters, pointers))
    }

    /// Whether presence information is exact (full map) — the property
    /// R-NUMA's capacity-miss counters depend on.
    #[must_use]
    pub fn is_full_map(&self) -> bool {
        matches!(self, DirectoryUnit::FullMap(_))
    }

    /// Directory storage cost per block in bits under this organization
    /// (full map: O(clusters); Dir-i-B: O(pointers)).
    #[must_use]
    pub fn bits_per_block(&self) -> u32 {
        match self {
            DirectoryUnit::FullMap(d) => d.bits_per_block(),
            DirectoryUnit::LimitedPointer(d) => d.bits_per_block(),
        }
    }

    /// Hints `block`'s entry into L1 ahead of the request replay will
    /// make for it — the batch-ahead prefetch hook.
    #[inline]
    pub fn prefetch(&self, block: BlockAddr) {
        match self {
            DirectoryUnit::FullMap(d) => d.prefetch(block),
            DirectoryUnit::LimitedPointer(d) => d.prefetch(block),
        }
    }

    /// Processes a read request.
    pub fn read(&mut self, block: BlockAddr, requester: ClusterId) -> ReadGrant {
        match self {
            DirectoryUnit::FullMap(d) => d.read(block, requester),
            DirectoryUnit::LimitedPointer(d) => d.read(block, requester),
        }
    }

    /// Processes a write(-ownership) request.
    pub fn write(&mut self, block: BlockAddr, requester: ClusterId) -> WriteGrant {
        match self {
            DirectoryUnit::FullMap(d) => d.write(block, requester),
            DirectoryUnit::LimitedPointer(d) => d.write(block, requester),
        }
    }

    /// Records a dirty write-back.
    pub fn writeback(&mut self, block: BlockAddr, cluster: ClusterId) {
        match self {
            DirectoryUnit::FullMap(d) => d.writeback(block, cluster),
            DirectoryUnit::LimitedPointer(d) => d.writeback(block, cluster),
        }
    }

    /// Whether `cluster` holds dirty ownership.
    #[must_use]
    pub fn is_owner(&self, block: BlockAddr, cluster: ClusterId) -> bool {
        match self {
            DirectoryUnit::FullMap(d) => d.is_owner(block, cluster),
            DirectoryUnit::LimitedPointer(d) => d.is_owner(block, cluster),
        }
    }

    /// The dirty owner, if any.
    #[must_use]
    pub fn owner_of(&self, block: BlockAddr) -> Option<ClusterId> {
        match self {
            DirectoryUnit::FullMap(d) => d.owner_of(block),
            DirectoryUnit::LimitedPointer(d) => d.owner_of(block),
        }
    }

    /// Clusters the directory would invalidate for `block`.
    #[must_use]
    pub fn sharers(&self, block: BlockAddr) -> Vec<ClusterId> {
        match self {
            DirectoryUnit::FullMap(d) => d.sharers(block),
            DirectoryUnit::LimitedPointer(d) => d.sharers(block),
        }
    }

    /// The sharer set for `block` as a presence mask (no allocation).
    #[must_use]
    pub fn sharer_set(&self, block: BlockAddr) -> ClusterSet {
        match self {
            DirectoryUnit::FullMap(d) => d.sharer_set(block),
            DirectoryUnit::LimitedPointer(d) => d.sharer_set(block),
        }
    }

    /// Whether any cluster other than `cluster` shares `block` — the
    /// per-write question on the migration/replication path, answered
    /// without materializing a sharer list.
    #[must_use]
    pub fn has_sharer_other_than(&self, block: BlockAddr, cluster: ClusterId) -> bool {
        match self {
            DirectoryUnit::FullMap(d) => d.has_sharer_other_than(block, cluster),
            DirectoryUnit::LimitedPointer(d) => d.has_sharer_other_than(block, cluster),
        }
    }

    /// Records an exclusive-clean grant.
    pub fn grant_exclusive(&mut self, block: BlockAddr, cluster: ClusterId) {
        match self {
            DirectoryUnit::FullMap(d) => d.grant_exclusive(block, cluster),
            DirectoryUnit::LimitedPointer(d) => d.grant_exclusive(block, cluster),
        }
    }

    /// Number of blocks with live directory state, under either
    /// organization — the occupancy hook the profiling layer snapshots.
    /// O(blocks); diagnostics only, never on the hot path.
    #[must_use]
    pub fn tracked_blocks(&self) -> usize {
        match self {
            DirectoryUnit::FullMap(d) => d.tracked_blocks(),
            DirectoryUnit::LimitedPointer(d) => d.tracked_blocks(),
        }
    }

    /// Merges `other`'s live entries into this directory; the two must
    /// track disjoint block sets (the sharded-replay merge step).
    ///
    /// # Panics
    ///
    /// Panics if the directories are of different organizations or shapes.
    pub fn absorb_disjoint(&mut self, other: &DirectoryUnit) {
        match (self, other) {
            (DirectoryUnit::FullMap(a), DirectoryUnit::FullMap(b)) => a.absorb_disjoint(b),
            (DirectoryUnit::LimitedPointer(a), DirectoryUnit::LimitedPointer(b)) => {
                a.absorb_disjoint(b);
            }
            _ => panic!("cannot merge directories of different organizations"),
        }
    }

    /// Overwrites this directory's entry for `block` with `other`'s
    /// (dropping it if `other` does not track the block) — the exact
    /// per-ownership entry copy of the intra-component sharded merge.
    ///
    /// # Panics
    ///
    /// Panics if the directories are of different organizations or shapes.
    pub fn copy_entry_from(&mut self, other: &DirectoryUnit, block: BlockAddr) {
        match (self, other) {
            (DirectoryUnit::FullMap(a), DirectoryUnit::FullMap(b)) => a.copy_entry_from(b, block),
            (DirectoryUnit::LimitedPointer(a), DirectoryUnit::LimitedPointer(b)) => {
                a.copy_entry_from(b, block);
            }
            _ => panic!("cannot copy entries across directories of different organizations"),
        }
    }

    /// Silently clears `cluster`'s presence bit — a deliberate corruption
    /// primitive for exercising the coherence invariant checker (the
    /// protocol itself never forgets a sharer). Full-map only.
    ///
    /// # Panics
    ///
    /// Panics on a limited-pointer directory, whose packed entries have no
    /// per-cluster bit to drop.
    pub fn drop_presence(&mut self, block: BlockAddr, cluster: ClusterId) {
        match self {
            DirectoryUnit::FullMap(d) => d.drop_presence(block, cluster),
            DirectoryUnit::LimitedPointer(_) => {
                panic!("presence corruption is only defined for full-map directories")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_parity_below_overflow() {
        // For <= `pointers` sharers, both organizations answer identically.
        let mut fm = DirectoryUnit::full_map(4);
        let mut lp = DirectoryUnit::limited(4, 4);
        let b = BlockAddr(9);
        for c in [0u16, 1, 0, 2] {
            let a = fm.read(b, ClusterId(c));
            let x = lp.read(b, ClusterId(c));
            assert_eq!(a, x, "read by C{c}");
        }
        let a = fm.write(b, ClusterId(3));
        let x = lp.write(b, ClusterId(3));
        assert_eq!(a, x);
        assert_eq!(fm.sharers(b), lp.sharers(b));
        assert_eq!(fm.owner_of(b), lp.owner_of(b));
        assert!(fm.has_sharer_other_than(b, ClusterId(0)));
        assert!(!fm.has_sharer_other_than(b, ClusterId(3)));
    }

    #[test]
    fn kind_query() {
        assert!(DirectoryUnit::full_map(8).is_full_map());
        assert!(!DirectoryUnit::limited(8, 2).is_full_map());
    }

    #[test]
    fn copy_entry_overwrites_and_clears() {
        for (mut main, mut owner) in [
            (DirectoryUnit::full_map(4), DirectoryUnit::full_map(4)),
            (DirectoryUnit::limited(4, 2), DirectoryUnit::limited(4, 2)),
        ] {
            let b = BlockAddr(7);
            // Main holds a stale view; the owner's clone diverged.
            main.read(b, ClusterId(0));
            owner.read(b, ClusterId(0));
            owner.write(b, ClusterId(2));
            main.copy_entry_from(&owner, b);
            assert_eq!(main.owner_of(b), Some(ClusterId(2)));
            assert_eq!(main.sharers(b), vec![ClusterId(2)]);
            // A block the owner never touched is cleared on copy.
            let c = BlockAddr(8);
            main.write(c, ClusterId(1));
            main.copy_entry_from(&owner, c);
            assert_eq!(main.owner_of(c), None);
            assert!(main.sharers(c).is_empty());
        }
    }
}
