//! The cluster bus: processor caches plus snooping operations.

use dsm_cache::{CacheShape, CacheState, Eviction, ProcCache};
use dsm_types::{BlockAddr, LocalProcId};

use crate::mesir;
use crate::transaction::{InvalidationResult, PeerReadSupply, PeerWriteSupply};

/// The processor caches of one cluster and the snooping-bus operations over
/// them.
///
/// `BusCluster` is pure *mechanism*: it answers snoops, moves blocks between
/// caches, applies MESIR transitions and reports victimizations. All policy
/// — whether a miss goes to the network cache, the page cache or the remote
/// home; what happens to victims — is decided by the system simulator in
/// `dsm-core`, which sequences these operations.
#[derive(Debug, Clone)]
pub struct BusCluster {
    caches: Vec<ProcCache>,
    dirty_shared: bool,
    stats: BusStats,
}

/// Per-bus transaction counters, maintained by every snooping operation.
///
/// These are the cluster-bus component of the observability layer: the
/// system simulator's probes count *machine* events (misses, relocations);
/// these count the *bus transactions* underneath them, per cluster, so a
/// stats view can show which cluster's bus is hot and what kind of traffic
/// loads it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Read hits serviced within one cache (LRU refresh only).
    pub read_hits: u64,
    /// Silent write hits in `M`/`E`.
    pub write_hits: u64,
    /// Cache-to-cache read supplies over the bus.
    pub peer_read_supplies: u64,
    /// Cache-to-cache write supplies (with peer invalidation).
    pub peer_write_supplies: u64,
    /// Write upgrades broadcast on the bus.
    pub upgrades: u64,
    /// Block fills from outside the processor caches (NC, PC, home).
    pub fills: u64,
    /// External (directory-ordered) invalidation broadcasts.
    pub external_invalidations: u64,
    /// External downgrades of a dirty owner.
    pub downgrades: u64,
    /// MESIR replacement hand-offs (`S -> R` promotions).
    pub promotions: u64,
}

impl BusStats {
    /// Total bus transactions (everything except in-cache read/write hits,
    /// which never arbitrate for the bus).
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.peer_read_supplies
            + self.peer_write_supplies
            + self.upgrades
            + self.fills
            + self.external_invalidations
            + self.downgrades
            + self.promotions
    }
}

impl BusCluster {
    /// Creates a cluster of `procs` processors, each with a cache of the
    /// given shape.
    ///
    /// # Panics
    ///
    /// Panics if `procs` is zero.
    #[must_use]
    pub fn new(procs: usize, shape: CacheShape) -> Self {
        assert!(procs > 0, "a cluster needs at least one processor");
        BusCluster {
            caches: (0..procs).map(|_| ProcCache::new(shape)).collect(),
            dirty_shared: false,
            stats: BusStats::default(),
        }
    }

    /// Enables the MOESI-R variant: peer reads downgrade `M` suppliers to
    /// the dirty-shared `O` state instead of cleaning them with a
    /// write-back (the paper’s evaluated-and-rejected option).
    pub fn set_dirty_shared(&mut self, enabled: bool) {
        self.dirty_shared = enabled;
    }

    /// Whether the MOESI-R dirty-shared variant is enabled.
    #[must_use]
    pub fn dirty_shared(&self) -> bool {
        self.dirty_shared
    }

    /// Number of processors on this bus.
    #[must_use]
    pub fn procs(&self) -> usize {
        self.caches.len()
    }

    /// Immutable access to one processor's cache.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range.
    #[must_use]
    pub fn cache(&self, proc: LocalProcId) -> &ProcCache {
        &self.caches[usize::from(proc.0)]
    }

    fn cache_mut(&mut self, proc: LocalProcId) -> &mut ProcCache {
        &mut self.caches[usize::from(proc.0)]
    }

    /// Hints `proc`'s tag row for `block` into L1 — the first probe
    /// every reference makes. Unknown processors are ignored.
    #[inline]
    pub fn prefetch(&self, proc: LocalProcId, block: BlockAddr) {
        if let Some(c) = self.caches.get(usize::from(proc.0)) {
            c.prefetch(block);
        }
    }

    /// The state `proc` holds `block` in (`Invalid` if absent); no LRU
    /// effect.
    #[must_use]
    #[inline]
    pub fn state_of(&self, proc: LocalProcId, block: BlockAddr) -> CacheState {
        self.cache(proc).state_of(block)
    }

    /// Records a read hit in `proc`'s own cache (refreshes LRU).
    ///
    /// # Panics
    ///
    /// Panics (debug) if the block is not resident.
    pub fn read_hit(&mut self, proc: LocalProcId, block: BlockAddr) {
        self.stats.read_hits += 1;
        let s = self.cache_mut(proc).touch(block);
        debug_assert!(s.is_valid(), "read_hit on absent block {block}");
    }

    /// Single-scan read-hit attempt: if `proc` holds `block` in a valid
    /// state, refreshes its LRU position, counts a read hit and returns
    /// `true`; on a miss returns `false` with no state change. Equivalent
    /// to `state_of` followed by `read_hit`, with one tag-array scan
    /// instead of two.
    #[inline]
    pub fn try_read_hit(&mut self, proc: LocalProcId, block: BlockAddr) -> bool {
        if self.cache_mut(proc).touch(block).is_valid() {
            self.stats.read_hits += 1;
            true
        } else {
            false
        }
    }

    /// Single-scan write probe: returns the state `proc` held `block` in
    /// before the probe (`Invalid` on a miss), refreshing LRU on a hit. If
    /// that state allows a silent write (`M`/`E`) the `E -> M` transition
    /// is applied and a write hit is counted; for `S`/`R`/`O` the caller
    /// follows up with an upgrade, for `Invalid` with the miss path.
    /// Equivalent to `state_of` + `write_hit_exclusive` on the silent-write
    /// path, with one tag-array scan instead of three.
    #[inline]
    pub fn write_probe(&mut self, proc: LocalProcId, block: BlockAddr) -> CacheState {
        let s = self.cache_mut(proc).write_probe(block);
        if s.allows_silent_write() {
            self.stats.write_hits += 1;
        }
        s
    }

    /// Records a write hit in `M`/`E` (silent `E -> M` transition, LRU
    /// refresh).
    ///
    /// # Panics
    ///
    /// Panics if the block is not resident in a state allowing a silent
    /// write.
    pub fn write_hit_exclusive(&mut self, proc: LocalProcId, block: BlockAddr) {
        self.stats.write_hits += 1;
        let cache = self.cache_mut(proc);
        let s = cache.touch(block);
        assert!(
            s.allows_silent_write(),
            "write_hit_exclusive on block {block} in state {s}"
        );
        if s == CacheState::Exclusive {
            cache.set_state(block, CacheState::Modified);
        }
    }

    /// Finds a peer cache that can supply `block` to `requester` over the
    /// bus. Masters (`M`/`E`/`R`) win over plain sharers, matching bus
    /// priority rules. Returns the supplier and its current state.
    #[must_use]
    pub fn find_supplier(
        &self,
        requester: LocalProcId,
        block: BlockAddr,
    ) -> Option<(LocalProcId, CacheState)> {
        let mut sharer = None;
        for (i, cache) in self.caches.iter().enumerate() {
            let proc = LocalProcId(i as u16);
            if proc == requester {
                continue;
            }
            let s = cache.state_of(block);
            if s.is_master() {
                return Some((proc, s));
            }
            if s.is_valid() && sharer.is_none() {
                sharer = Some((proc, s));
            }
        }
        sharer
    }

    /// Services a read miss cache-to-cache: `supplier` puts the data on the
    /// bus (downgrading per MESIR), `requester` fills in `Shared`.
    ///
    /// # Panics
    ///
    /// Panics if the supplier does not hold the block.
    pub fn peer_read_supply(
        &mut self,
        requester: LocalProcId,
        supplier: LocalProcId,
        block: BlockAddr,
    ) -> PeerReadSupply {
        self.stats.peer_read_supplies += 1;
        let current = self.cache(supplier).state_of(block);
        assert!(
            current.is_valid(),
            "supplier {supplier} lacks block {block}"
        );
        let (next, dirty_downgrade) = if self.dirty_shared {
            mesir::supplier_next_state_dirty_shared(current)
        } else {
            mesir::supplier_next_state(current)
        };
        if next != current {
            self.cache_mut(supplier).set_state(block, next);
        }
        let eviction = self
            .cache_mut(requester)
            .fill(block, mesir::peer_read_fill_state());
        PeerReadSupply {
            supplier,
            dirty_downgrade,
            eviction,
        }
    }

    /// Services a write miss whose data can come from inside the cluster:
    /// every peer copy is invalidated (one may supply dirty data) and the
    /// requester fills in `Modified`.
    ///
    /// The caller must separately ensure the *cluster* owns the block
    /// machine-wide (directory transaction) when the peer copies are clean.
    pub fn peer_write_supply(
        &mut self,
        requester: LocalProcId,
        block: BlockAddr,
    ) -> PeerWriteSupply {
        self.stats.peer_write_supplies += 1;
        let mut took_dirty_data = false;
        let mut peers_invalidated = 0;
        for (i, cache) in self.caches.iter_mut().enumerate() {
            if i == usize::from(requester.0) {
                continue;
            }
            let s = cache.invalidate(block);
            if s.is_valid() {
                peers_invalidated += 1;
                if s.is_dirty() {
                    took_dirty_data = true;
                }
            }
        }
        let eviction = self
            .cache_mut(requester)
            .fill(block, mesir::write_fill_state());
        PeerWriteSupply {
            took_dirty_data,
            peers_invalidated,
            eviction,
        }
    }

    /// Performs a write **upgrade**: `proc` holds the block in a
    /// non-writable valid state (`S`/`R`); peers' copies are invalidated and
    /// `proc` moves to `Modified`. Returns the number of peer copies
    /// invalidated.
    ///
    /// # Panics
    ///
    /// Panics if `proc` does not hold the block in a valid state.
    pub fn upgrade(&mut self, proc: LocalProcId, block: BlockAddr) -> usize {
        self.stats.upgrades += 1;
        let s = self.cache(proc).state_of(block);
        assert!(s.is_valid(), "upgrade on absent block {block}");
        let mut invalidated = 0;
        for (i, cache) in self.caches.iter_mut().enumerate() {
            if i == usize::from(proc.0) {
                continue;
            }
            if cache.invalidate(block).is_valid() {
                invalidated += 1;
            }
        }
        let cache = self.cache_mut(proc);
        cache.touch(block);
        cache.set_state(block, CacheState::Modified);
        invalidated
    }

    /// Fills `block` into `proc`'s cache in `state` (data arrived from the
    /// network cache, page cache or remote home). Returns the victimized
    /// block, if the fill evicted one.
    pub fn fill(
        &mut self,
        proc: LocalProcId,
        block: BlockAddr,
        state: CacheState,
    ) -> Option<Eviction> {
        self.stats.fills += 1;
        self.cache_mut(proc).fill(block, state)
    }

    /// Invalidates every processor-cache copy of `block` (an external,
    /// directory-initiated invalidation).
    pub fn invalidate_all(&mut self, block: BlockAddr) -> InvalidationResult {
        self.stats.external_invalidations += 1;
        let mut result = InvalidationResult::default();
        for cache in &mut self.caches {
            let s = cache.invalidate(block);
            if s.is_valid() {
                result.copies_invalidated += 1;
                if s.is_dirty() {
                    result.had_dirty = true;
                }
            }
        }
        result
    }

    /// Downgrades a dirty (`M`) copy of `block` to `Shared` (a remote
    /// cluster's read reached the directory and the directory asked this
    /// cluster, the owner, to supply and clean the block). Returns `true`
    /// if a dirty copy was found. Tolerates absence: an `E` copy may have
    /// been silently replaced, in which case the home memory is already
    /// current. Clean (`E`) copies are downgraded to `Shared` as well.
    pub fn downgrade_to_shared(&mut self, block: BlockAddr) -> bool {
        self.stats.downgrades += 1;
        for cache in &mut self.caches {
            // Single scan per cache: the downgrade probe finds and
            // rewrites the master frame in one tag-array pass (PR-6
            // profiling flagged this path's double scan on radix).
            match cache.downgrade_master(block) {
                Some(CacheState::Modified | CacheState::Owned) => return true,
                Some(_) => return false, // Exclusive: memory already current
                None => {}
            }
        }
        false
    }

    /// MESIR replacement hand-off: after an `R` victimization, if a peer
    /// still holds the block `Shared`, one of them assumes mastership
    /// (`S -> R`) and the victim cache is *not* used. Returns `true` if a
    /// peer took mastership.
    pub fn promote_sharer(&mut self, block: BlockAddr) -> bool {
        for cache in &mut self.caches {
            // Single scan per cache (replacement path; see above).
            if cache.promote_if_shared(block) {
                self.stats.promotions += 1;
                return true;
            }
        }
        false
    }

    /// Whether any processor cache in the cluster holds `block`.
    #[must_use]
    pub fn any_valid(&self, block: BlockAddr) -> bool {
        self.caches.iter().any(|c| c.contains(block))
    }

    /// Number of processor caches holding `block`.
    #[must_use]
    pub fn copies(&self, block: BlockAddr) -> usize {
        self.caches.iter().filter(|c| c.contains(block)).count()
    }

    /// Accumulated bus-transaction counters.
    #[must_use]
    pub fn stats(&self) -> &BusStats {
        &self.stats
    }

    /// Resets the transaction counters (state is untouched).
    pub fn reset_stats(&mut self) {
        self.stats = BusStats::default();
    }

    /// Empties every cache (between-phase reset in experiments).
    pub fn clear(&mut self) {
        self.caches.iter_mut().for_each(ProcCache::clear);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_types::ConfigError;

    const P0: LocalProcId = LocalProcId(0);
    const P1: LocalProcId = LocalProcId(1);
    const P2: LocalProcId = LocalProcId(2);
    const B: BlockAddr = BlockAddr(8);

    fn cluster() -> Result<BusCluster, ConfigError> {
        Ok(BusCluster::new(4, CacheShape::new(1024, 64, 2)?))
    }

    #[test]
    fn new_cluster_is_empty() {
        let c = cluster().unwrap();
        assert_eq!(c.procs(), 4);
        assert!(!c.any_valid(B));
        assert_eq!(c.copies(B), 0);
    }

    #[test]
    #[should_panic(expected = "at least one processor")]
    fn zero_procs_panics() {
        let _ = BusCluster::new(0, CacheShape::new(1024, 64, 2).unwrap());
    }

    #[test]
    fn find_supplier_prefers_master() {
        let mut c = cluster().unwrap();
        c.fill(P1, B, CacheState::Shared);
        c.fill(P2, B, CacheState::RemoteMaster);
        let (supplier, state) = c.find_supplier(P0, B).unwrap();
        assert_eq!(supplier, P2);
        assert_eq!(state, CacheState::RemoteMaster);
    }

    #[test]
    fn find_supplier_ignores_requester() {
        let mut c = cluster().unwrap();
        c.fill(P0, B, CacheState::Modified);
        assert!(c.find_supplier(P0, B).is_none());
    }

    #[test]
    fn peer_read_supply_from_r_keeps_mastership() {
        let mut c = cluster().unwrap();
        c.fill(P1, B, CacheState::RemoteMaster);
        let r = c.peer_read_supply(P0, P1, B);
        assert!(!r.dirty_downgrade);
        assert_eq!(c.state_of(P1, B), CacheState::RemoteMaster);
        assert_eq!(c.state_of(P0, B), CacheState::Shared);
    }

    #[test]
    fn peer_read_supply_from_m_downgrades_dirty() {
        let mut c = cluster().unwrap();
        c.fill(P1, B, CacheState::Modified);
        let r = c.peer_read_supply(P0, P1, B);
        assert!(r.dirty_downgrade);
        assert_eq!(c.state_of(P1, B), CacheState::Shared);
        assert_eq!(c.state_of(P0, B), CacheState::Shared);
    }

    #[test]
    fn peer_read_supply_reports_eviction() {
        let mut c = cluster().unwrap();
        // Requester's set for block 8 (set 0 of 8 sets): blocks 0 and 16
        // also map to set 0? 1024B/64B/2-way -> 8 sets; blocks 8 % 8 = 0.
        c.fill(P0, BlockAddr(0), CacheState::Modified);
        c.fill(P0, BlockAddr(16), CacheState::Shared);
        c.fill(P1, B, CacheState::Exclusive);
        let r = c.peer_read_supply(P0, P1, B);
        let ev = r.eviction.unwrap();
        assert_eq!(ev.block, BlockAddr(0));
        assert!(ev.state.is_dirty());
    }

    #[test]
    fn peer_write_supply_invalidates_everyone() {
        let mut c = cluster().unwrap();
        c.fill(P1, B, CacheState::Shared);
        c.fill(P2, B, CacheState::RemoteMaster);
        let r = c.peer_write_supply(P0, B);
        assert_eq!(r.peers_invalidated, 2);
        assert!(!r.took_dirty_data);
        assert_eq!(c.state_of(P0, B), CacheState::Modified);
        assert_eq!(c.copies(B), 1);
    }

    #[test]
    fn peer_write_supply_takes_dirty_data() {
        let mut c = cluster().unwrap();
        c.fill(P1, B, CacheState::Modified);
        let r = c.peer_write_supply(P0, B);
        assert!(r.took_dirty_data);
        assert_eq!(r.peers_invalidated, 1);
    }

    #[test]
    fn upgrade_invalidates_peers_and_sets_m() {
        let mut c = cluster().unwrap();
        c.fill(P0, B, CacheState::Shared);
        c.fill(P1, B, CacheState::Shared);
        c.fill(P2, B, CacheState::RemoteMaster);
        let n = c.upgrade(P0, B);
        assert_eq!(n, 2);
        assert_eq!(c.state_of(P0, B), CacheState::Modified);
        assert_eq!(c.copies(B), 1);
    }

    #[test]
    #[should_panic(expected = "upgrade on absent block")]
    fn upgrade_absent_panics() {
        let mut c = cluster().unwrap();
        c.upgrade(P0, B);
    }

    #[test]
    fn write_hit_exclusive_transitions_e_to_m() {
        let mut c = cluster().unwrap();
        c.fill(P0, B, CacheState::Exclusive);
        c.write_hit_exclusive(P0, B);
        assert_eq!(c.state_of(P0, B), CacheState::Modified);
        // Idempotent for M.
        c.write_hit_exclusive(P0, B);
        assert_eq!(c.state_of(P0, B), CacheState::Modified);
    }

    #[test]
    #[should_panic(expected = "write_hit_exclusive")]
    fn write_hit_exclusive_rejects_shared() {
        let mut c = cluster().unwrap();
        c.fill(P0, B, CacheState::Shared);
        c.write_hit_exclusive(P0, B);
    }

    #[test]
    fn invalidate_all_reports_dirty() {
        let mut c = cluster().unwrap();
        c.fill(P0, B, CacheState::Modified);
        c.fill(P1, B, CacheState::Shared); // (not a protocol-legal mix, but mechanism-level)
        let r = c.invalidate_all(B);
        assert_eq!(r.copies_invalidated, 2);
        assert!(r.had_dirty);
        assert!(!c.any_valid(B));
    }

    #[test]
    fn promote_sharer_hands_off_mastership() {
        let mut c = cluster().unwrap();
        c.fill(P1, B, CacheState::Shared);
        assert!(c.promote_sharer(B));
        assert_eq!(c.state_of(P1, B), CacheState::RemoteMaster);
        // No more plain sharers -> false.
        assert!(!c.promote_sharer(BlockAddr(99)));
    }

    #[test]
    fn clear_empties_all_caches() {
        let mut c = cluster().unwrap();
        c.fill(P0, B, CacheState::Modified);
        c.clear();
        assert!(!c.any_valid(B));
    }

    #[test]
    fn stats_count_bus_transactions() {
        let mut c = cluster().unwrap();
        c.fill(P0, B, CacheState::Shared); // fill
        c.read_hit(P0, B); // hit: not a transaction
        c.upgrade(P0, B); // upgrade
        c.write_hit_exclusive(P0, B); // hit: not a transaction
        c.peer_read_supply(P1, P0, B); // supply
        c.invalidate_all(B); // external invalidation

        let s = *c.stats();
        assert_eq!(s.fills, 1);
        assert_eq!(s.read_hits, 1);
        assert_eq!(s.upgrades, 1);
        assert_eq!(s.write_hits, 1);
        assert_eq!(s.peer_read_supplies, 1);
        assert_eq!(s.external_invalidations, 1);
        // Transactions exclude the two in-cache hits.
        assert_eq!(s.transactions(), 4);

        c.reset_stats();
        assert_eq!(*c.stats(), BusStats::default());
    }
}
