//! The intra-cluster snooping bus and MESIR coherence protocol.
//!
//! A cluster in the paper is a small bus-based SMP: a handful of processors
//! with private write-back caches, snooping a shared bus, plus a
//! pseudo-processor that represents the rest of the machine and controls
//! the network cache. This crate models the *processor-cache side* of that
//! bus: lookups, cache-to-cache supply, upgrades/invalidations, fills and
//! victimizations under the paper's **MESIR** protocol (MESI plus the `R`
//! state — mastership of a remote clean block — so that clean remote
//! victims reach the bus and can be captured by a network victim cache).
//!
//! The network-cache and page-cache layers are *policies* built on top of
//! this mechanism and live in `dsm-core`; this crate deliberately knows
//! nothing about them. See [`mesir`] for the transition tables and
//! [`BusCluster`] for the operations the system simulator composes.
//!
//! # Example
//!
//! ```
//! use dsm_cache::{CacheShape, CacheState};
//! use dsm_protocol::BusCluster;
//! use dsm_types::{BlockAddr, LocalProcId};
//!
//! let shape = CacheShape::new(1024, 64, 2)?;
//! let mut cluster = BusCluster::new(4, shape);
//! let b = BlockAddr(10);
//! // P0 brings in a remote clean block: MESIR fills it in state R.
//! cluster.fill(LocalProcId(0), b, CacheState::RemoteMaster);
//! // P1 reads the same block: cache-to-cache supply, P1 gets S, P0 keeps R.
//! let (supplier, _) = cluster.find_supplier(LocalProcId(1), b).unwrap();
//! assert_eq!(supplier, LocalProcId(0));
//! # Ok::<(), dsm_types::ConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bus;
pub mod mesir;
pub mod remote;
pub mod transaction;

pub use bus::{BusCluster, BusStats};
pub use remote::RemoteDirOp;
pub use transaction::{InvalidationResult, PeerReadSupply, PeerWriteSupply};
