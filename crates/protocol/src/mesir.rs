//! MESIR transition helpers.
//!
//! The paper's protocol is "a minor departure from a standard bus protocol"
//! (Section 3.2): MESI plus a single new state `R` that marks *mastership
//! for a remote clean block*. The key transitions:
//!
//! | event | transition |
//! |---|---|
//! | read fill from outside the cluster, **remote** block | `I -> R` (first clean copy in the node takes mastership) |
//! | read fill from outside, **local** block, no other cluster caches it | `I -> E` |
//! | read fill from outside, local block, shared machine-wide | `I -> S` |
//! | read fill supplied by a peer cache | requester `I -> S`; supplier `M -> S` (write-back on bus), `E -> S`, `R -> R`, `S -> S` |
//! | write fill (any source) | requester `I -> M`; all peers `-> I` |
//! | write upgrade | `S/R/E -> M`; peers `-> I` |
//! | victimization | `M` -> write-back txn; `R` -> replacement txn (peer `S -> R` hand-off, else victim-cache capture); `E`/`S` -> silent |

use dsm_cache::CacheState;

/// The state a requester's cache installs on a **read** fill that came from
/// outside the processor caches (network cache, page cache, or home
/// memory).
///
/// * `remote` — the block's home is another cluster.
/// * `cluster_exclusive` — the directory granted the requesting *cluster*
///   the only copy machine-wide.
#[must_use]
pub fn read_fill_state(remote: bool, cluster_exclusive: bool) -> CacheState {
    if remote {
        // First clean copy of a remote block in the node: take mastership
        // so its eventual replacement reaches the bus (and the victim NC).
        CacheState::RemoteMaster
    } else if cluster_exclusive {
        CacheState::Exclusive
    } else {
        CacheState::Shared
    }
}

/// The state a requester installs on a read fill supplied cache-to-cache by
/// a peer in the same cluster: always `Shared` (the supplier keeps or takes
/// mastership).
#[must_use]
pub fn peer_read_fill_state() -> CacheState {
    CacheState::Shared
}

/// The supplier's next state after providing data for a peer's bus read.
///
/// Returns `(next_state, dirty_downgrade)`; `dirty_downgrade` is `true`
/// when the supplier held the block `Modified` and the downgrade puts the
/// (previously dirty) data on the bus — for a remote block this write-back
/// must be absorbed by the network cache or sent to the remote home.
#[must_use]
pub fn supplier_next_state(current: CacheState) -> (CacheState, bool) {
    match current {
        CacheState::Modified => (CacheState::Shared, true),
        CacheState::Exclusive => (CacheState::Shared, false),
        // R keeps mastership of the remote clean block.
        CacheState::RemoteMaster => (CacheState::RemoteMaster, false),
        // An O supplier keeps the dirty-shared copy (MOESI-R variant).
        CacheState::Owned => (CacheState::Owned, false),
        CacheState::Shared => (CacheState::Shared, false),
        CacheState::Invalid => {
            unreachable!("an invalid cache cannot supply data")
        }
    }
}

/// The supplier's next state under the **MOESI-R** variant (the optional
/// dirty-shared `O` state the paper evaluated): a `Modified` supplier
/// downgrades to `Owned` instead of `Shared`, keeping the dirty data in
/// its cache — no write-back reaches the bus, so nothing pollutes the
/// victim cache or travels to the remote home.
#[must_use]
pub fn supplier_next_state_dirty_shared(current: CacheState) -> (CacheState, bool) {
    match current {
        CacheState::Modified => (CacheState::Owned, false),
        other => supplier_next_state(other),
    }
}

/// The state installed on any write fill: `Modified`.
#[must_use]
pub fn write_fill_state() -> CacheState {
    CacheState::Modified
}

/// Whether victimizing a block in `state` generates a bus transaction that
/// can be captured by a network victim cache (the paper's replacement
/// transactions): dirty write-backs (`M`) and remote-clean-master
/// replacements (`R`).
#[must_use]
pub fn victim_reaches_bus(state: CacheState) -> bool {
    matches!(
        state,
        CacheState::Modified | CacheState::RemoteMaster | CacheState::Owned
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_read_fills_take_r() {
        assert_eq!(read_fill_state(true, true), CacheState::RemoteMaster);
        assert_eq!(read_fill_state(true, false), CacheState::RemoteMaster);
    }

    #[test]
    fn local_read_fills_follow_mesi() {
        assert_eq!(read_fill_state(false, true), CacheState::Exclusive);
        assert_eq!(read_fill_state(false, false), CacheState::Shared);
    }

    #[test]
    fn peer_fills_are_shared() {
        assert_eq!(peer_read_fill_state(), CacheState::Shared);
    }

    #[test]
    fn supplier_transitions() {
        assert_eq!(
            supplier_next_state(CacheState::Modified),
            (CacheState::Shared, true)
        );
        assert_eq!(
            supplier_next_state(CacheState::Exclusive),
            (CacheState::Shared, false)
        );
        assert_eq!(
            supplier_next_state(CacheState::RemoteMaster),
            (CacheState::RemoteMaster, false)
        );
        assert_eq!(
            supplier_next_state(CacheState::Shared),
            (CacheState::Shared, false)
        );
    }

    #[test]
    #[should_panic(expected = "invalid cache cannot supply")]
    fn invalid_supplier_is_a_bug() {
        let _ = supplier_next_state(CacheState::Invalid);
    }

    #[test]
    fn writes_fill_modified() {
        assert_eq!(write_fill_state(), CacheState::Modified);
    }

    #[test]
    fn only_master_dirty_or_r_victims_reach_the_bus() {
        assert!(victim_reaches_bus(CacheState::Modified));
        assert!(victim_reaches_bus(CacheState::RemoteMaster));
        assert!(victim_reaches_bus(CacheState::Owned));
        assert!(!victim_reaches_bus(CacheState::Shared));
        assert!(!victim_reaches_bus(CacheState::Exclusive));
        assert!(!victim_reaches_bus(CacheState::Invalid));
    }

    #[test]
    fn dirty_shared_variant_keeps_data_in_cache() {
        assert_eq!(
            supplier_next_state_dirty_shared(CacheState::Modified),
            (CacheState::Owned, false)
        );
        assert_eq!(
            supplier_next_state_dirty_shared(CacheState::Owned),
            (CacheState::Owned, false)
        );
        assert_eq!(
            supplier_next_state_dirty_shared(CacheState::RemoteMaster),
            (CacheState::RemoteMaster, false)
        );
    }
}
