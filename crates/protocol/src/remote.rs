//! Directory operations in serialized, location-free form.
//!
//! A sharded replay engine that partitions clusters across workers has
//! to decide, *before* executing a reference, which clusters' machine
//! state (processor caches, network cache, page cache, bus, directory
//! entries) the reference could possibly touch. That question is pure
//! coherence protocol — which peers a directory read or write visits —
//! so it lives here, next to the MESIR transition tables, expressed over
//! a serialized view of a directory entry ([`RemoteDirOp`] plus sharer /
//! owner sets) rather than over live directory storage.
//!
//! The sets passed in may be conservative *over*-approximations of the
//! true entry (supersets of the real sharers/owners); the returned
//! footprint is then a superset of the clusters actually touched, which
//! is exactly what a conservative scheduler needs.

use dsm_types::{ClusterId, ClusterSet};

/// One coherence request against a directory entry, serialized down to
/// the fields that determine its reach: who asks, where the page is
/// homed, and whether the access is a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RemoteDirOp {
    /// The cluster issuing the reference.
    pub requester: ClusterId,
    /// The home cluster of the referenced page (owns the directory
    /// entry and the backing memory).
    pub home: ClusterId,
    /// `true` for a store, `false` for a load.
    pub write: bool,
}

impl RemoteDirOp {
    /// Whether the request leaves the issuing cluster's bus at all
    /// (the home's directory entry lives on another cluster).
    #[must_use]
    pub fn is_remote(&self) -> bool {
        self.requester != self.home
    }

    /// The set of clusters this directory operation can touch, given a
    /// (possibly over-approximated) view of the entry's state:
    ///
    /// * the requester itself (its caches fill, its bus arbitrates);
    /// * the home (directory entry, backing memory, placement slot);
    /// * for a **read**: any cluster that may *own* the block — MESIR
    ///   forwards a read to the owner for a dirty supply or an
    ///   exclusivity downgrade, and never disturbs plain sharers;
    /// * for a **write**: every cluster that may hold a copy, since all
    ///   of them receive invalidations; under a limited-pointer
    ///   directory whose entry may have overflowed into broadcast mode
    ///   (`maybe_broadcast`), *every* cluster in the machine is a
    ///   potential invalidation target.
    ///
    /// If the input sets are supersets of the truth the result is a
    /// superset of the clusters actually visited, so a scheduler may
    /// safely run the op concurrently with anything outside the
    /// footprint.
    #[must_use]
    pub fn footprint(
        &self,
        sharers: ClusterSet,
        owners: ClusterSet,
        maybe_broadcast: bool,
        clusters: u16,
    ) -> ClusterSet {
        let mut reach = ClusterSet::new();
        reach.insert(self.requester);
        reach.insert(self.home);
        if self.write {
            if maybe_broadcast {
                return ClusterSet::all(clusters);
            }
            ClusterSet::from_mask(reach.mask() | sharers.mask())
        } else {
            ClusterSet::from_mask(reach.mask() | owners.mask())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(ids: &[u16]) -> ClusterSet {
        let mut s = ClusterSet::new();
        for &c in ids {
            s.insert(ClusterId(c));
        }
        s
    }

    #[test]
    fn reads_reach_owners_not_sharers() {
        let op = RemoteDirOp {
            requester: ClusterId(1),
            home: ClusterId(2),
            write: false,
        };
        assert!(op.is_remote());
        let fp = op.footprint(set(&[0, 3, 5]), set(&[3]), false, 8);
        assert_eq!(fp, set(&[1, 2, 3]));
    }

    #[test]
    fn writes_reach_every_sharer() {
        let op = RemoteDirOp {
            requester: ClusterId(0),
            home: ClusterId(0),
            write: true,
        };
        assert!(!op.is_remote());
        let fp = op.footprint(set(&[0, 4]), set(&[4]), false, 8);
        assert_eq!(fp, set(&[0, 4]));
    }

    #[test]
    fn possible_broadcast_reaches_the_whole_machine() {
        let op = RemoteDirOp {
            requester: ClusterId(6),
            home: ClusterId(1),
            write: true,
        };
        let fp = op.footprint(set(&[2]), set(&[2]), true, 8);
        assert_eq!(fp, ClusterSet::all(8));
        // Broadcast state only matters for writes; reads still forward
        // to the owner alone.
        let rd = RemoteDirOp { write: false, ..op };
        assert_eq!(rd.footprint(set(&[2]), set(&[2]), true, 8), set(&[1, 2, 6]));
    }

    #[test]
    fn local_private_op_touches_only_its_cluster() {
        let op = RemoteDirOp {
            requester: ClusterId(3),
            home: ClusterId(3),
            write: true,
        };
        let fp = op.footprint(set(&[3]), set(&[3]), false, 8);
        assert_eq!(fp, set(&[3]));
    }
}
