//! Result types for bus transactions.

use dsm_cache::Eviction;
use dsm_types::LocalProcId;

/// Outcome of a cache-to-cache read supply within the cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerReadSupply {
    /// The peer that put the data on the bus.
    pub supplier: LocalProcId,
    /// The supplier held the block `Modified`; its downgrade write-back is
    /// now on the bus and — for a remote block — must be absorbed by the
    /// network cache or forwarded to the remote home.
    pub dirty_downgrade: bool,
    /// Block victimized from the requester's cache by the fill, if any.
    pub eviction: Option<Eviction>,
}

/// Outcome of a write miss serviced inside the cluster (a peer held the
/// block; all peer copies are invalidated and the requester installs `M`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeerWriteSupply {
    /// A peer held the block `Modified` and supplied the dirty data.
    pub took_dirty_data: bool,
    /// Number of peer copies invalidated (excluding the requester).
    pub peers_invalidated: usize,
    /// Block victimized from the requester's cache by the fill, if any.
    pub eviction: Option<Eviction>,
}

/// Outcome of an externally-requested invalidation broadcast on the bus
/// (directory-initiated, when another cluster writes the block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InvalidationResult {
    /// Number of processor caches that held (and dropped) the block.
    pub copies_invalidated: usize,
    /// One of them held it `Modified` (its data is forfeited to the
    /// requester via the directory; no write-back is needed).
    pub had_dirty: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_cache::CacheState;
    use dsm_types::BlockAddr;

    #[test]
    fn defaults_and_construction() {
        let inv = InvalidationResult::default();
        assert_eq!(inv.copies_invalidated, 0);
        assert!(!inv.had_dirty);

        let s = PeerReadSupply {
            supplier: LocalProcId(1),
            dirty_downgrade: true,
            eviction: Some(Eviction {
                block: BlockAddr(3),
                state: CacheState::Modified,
            }),
        };
        assert_eq!(s.supplier, LocalProcId(1));
        assert!(s.eviction.unwrap().state.is_dirty());
    }
}
