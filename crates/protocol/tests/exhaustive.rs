//! Exhaustive small-model checking of the MESIR bus protocol: every
//! sequence of operations up to a fixed depth on a tiny cluster must
//! preserve the coherence invariants.

use dsm_cache::{CacheShape, CacheState};
use dsm_protocol::BusCluster;
use dsm_types::{BlockAddr, LocalProcId};

const PROCS: usize = 3;
const BLOCK: BlockAddr = BlockAddr(7);

/// The operation alphabet: everything the system layer can do to a bus
/// for one block, parameterized by processor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    /// A read by processor `p`: own hit, peer supply, or external fill.
    Read(usize),
    /// A write by processor `p`: silent hit, upgrade, peer write supply,
    /// or external fill in `M`.
    Write(usize, bool /* remote block */),
    /// External invalidation (another cluster wrote the block).
    Invalidate,
    /// External downgrade (another cluster read the dirty block).
    Downgrade,
}

fn all_ops() -> Vec<Op> {
    let mut ops = Vec::new();
    for p in 0..PROCS {
        ops.push(Op::Read(p));
        ops.push(Op::Write(p, false));
        ops.push(Op::Write(p, true));
    }
    ops.push(Op::Invalidate);
    ops.push(Op::Downgrade);
    ops
}

/// Applies one op the way `dsm_core::System` sequences bus calls
/// (simplified: external fills always succeed; the NC/PC/directory layers
/// are abstracted away).
fn apply(bus: &mut BusCluster, op: Op, remote_block: &mut bool) {
    match op {
        Op::Read(p) => {
            let p = LocalProcId(p as u16);
            if bus.state_of(p, BLOCK).is_valid() {
                bus.read_hit(p, BLOCK);
            } else if let Some((supplier, _)) = bus.find_supplier(p, BLOCK) {
                let _ = bus.peer_read_supply(p, supplier, BLOCK);
            } else {
                let state = if *remote_block {
                    CacheState::RemoteMaster
                } else {
                    CacheState::Exclusive
                };
                let _ = bus.fill(p, BLOCK, state);
            }
        }
        Op::Write(p, remote) => {
            let p = LocalProcId(p as u16);
            let own = bus.state_of(p, BLOCK);
            if own.allows_silent_write() {
                bus.write_hit_exclusive(p, BLOCK);
            } else if own.is_valid() {
                let _ = bus.upgrade(p, BLOCK);
            } else if bus.find_supplier(p, BLOCK).is_some() {
                let _ = bus.peer_write_supply(p, BLOCK);
            } else {
                let _ = bus.fill(p, BLOCK, CacheState::Modified);
                *remote_block = remote;
            }
        }
        Op::Invalidate => {
            let _ = bus.invalidate_all(BLOCK);
        }
        Op::Downgrade => {
            let _ = bus.downgrade_to_shared(BLOCK);
        }
    }
}

fn check_invariants(bus: &BusCluster, history: &[Op]) {
    let states: Vec<CacheState> = (0..PROCS)
        .map(|p| bus.state_of(LocalProcId(p as u16), BLOCK))
        .collect();
    let writable = states.iter().filter(|s| s.allows_silent_write()).count();
    let masters = states.iter().filter(|s| s.is_master()).count();
    let valid = states.iter().filter(|s| s.is_valid()).count();
    assert!(
        writable <= 1,
        "multiple writable copies after {history:?}: {states:?}"
    );
    if writable == 1 {
        assert_eq!(
            valid, 1,
            "M/E coexists with other copies after {history:?}: {states:?}"
        );
    }
    assert!(
        masters <= 1,
        "multiple bus masters after {history:?}: {states:?}"
    );
    // Sharers without a master are allowed only transiently after a
    // dirty downgrade or an M supplier transition — both leave S copies
    // with the master role surrendered to memory/NC. So no assertion on
    // masters == 0 with sharers present.
}

fn explore(bus: BusCluster, remote: bool, depth: usize, history: &mut Vec<Op>) {
    if depth == 0 {
        return;
    }
    for op in all_ops() {
        let mut next = bus.clone();
        let mut r = remote;
        history.push(op);
        apply(&mut next, op, &mut r);
        check_invariants(&next, history);
        explore(next, r, depth - 1, history);
        history.pop();
    }
}

#[test]
fn exhaustive_mesir_depth_four() {
    // 11 ops ^ 4 = 14,641 sequences (x clone cost): small enough to be
    // exhaustive, deep enough to reach every interesting state mix.
    let shape = CacheShape::from_sets_ways(1, 2, 64).unwrap();
    let bus = BusCluster::new(PROCS, shape);
    explore(bus, false, 4, &mut Vec::new());
}

#[test]
fn exhaustive_moesi_r_depth_four() {
    let shape = CacheShape::from_sets_ways(1, 2, 64).unwrap();
    let mut bus = BusCluster::new(PROCS, shape);
    bus.set_dirty_shared(true);
    explore(bus, false, 4, &mut Vec::new());
}

#[test]
fn exhaustive_depth_five_single_writer_only() {
    // One level deeper with the cheapest invariant only.
    fn explore5(bus: BusCluster, remote: bool, depth: usize) {
        if depth == 0 {
            return;
        }
        for op in all_ops() {
            let mut next = bus.clone();
            let mut r = remote;
            apply(&mut next, op, &mut r);
            let writable = (0..PROCS)
                .filter(|&p| {
                    next.state_of(LocalProcId(p as u16), BLOCK)
                        .allows_silent_write()
                })
                .count();
            assert!(writable <= 1);
            explore5(next, r, depth - 1);
        }
    }
    let shape = CacheShape::from_sets_ways(1, 2, 64).unwrap();
    explore5(BusCluster::new(PROCS, shape), false, 5);
}
