//! Sharing-pattern analysis of reference traces.
//!
//! The paper's results hinge on workload *character*: spatial locality,
//! read-only vs write-shared data, and how widely blocks are shared.
//! This module computes those properties from a trace, so a kernel's
//! fidelity to its SPLASH-2 original can be checked quantitatively (and
//! so users can characterize their own workloads before choosing an RDC
//! design).

use std::collections::HashMap;

use dsm_types::{Geometry, MemRef, Topology};

/// Per-block accounting used during analysis.
#[derive(Debug, Clone, Copy, Default)]
struct BlockInfo {
    readers: u64, // bitmask over 64 processors (the paper's 32 fit)
    writers: u64,
    refs: u32,
}

/// Sharing-pattern summary of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingAnalysis {
    /// Distinct blocks touched.
    pub blocks: u64,
    /// Distinct pages touched.
    pub pages: u64,
    /// Mean distinct processors referencing each touched block.
    pub avg_block_sharers: f64,
    /// Mean distinct processors referencing each touched page.
    pub avg_page_sharers: f64,
    /// Fraction of touched pages never written.
    pub read_only_page_fraction: f64,
    /// Fraction of touched blocks written by more than one processor
    /// (true write sharing, the invalidation driver).
    pub write_shared_block_fraction: f64,
    /// Fraction of each processor's successive references landing within
    /// a +/- 16-block (1-KB) neighbourhood of the previous one — a spatial
    /// locality measure (near 1.0 for streaming/stencil kernels, low for
    /// pointer-chasing ones).
    pub sequentiality: f64,
}

/// Analyzes `trace` under `geo`/`topo`.
///
/// # Panics
///
/// Panics if the topology has more than 64 processors (sharer sets are
/// bitmasks; the paper's machine has 32).
#[must_use]
pub fn analyze(trace: &[MemRef], geo: &Geometry, topo: &Topology) -> SharingAnalysis {
    assert!(
        topo.total_procs() <= 64,
        "analysis supports up to 64 processors"
    );
    let mut blocks: HashMap<u64, BlockInfo> = HashMap::new();
    let mut pages: HashMap<u64, (u64, bool)> = HashMap::new(); // sharers mask, written
    let mut last_block: Vec<Option<u64>> = vec![None; usize::from(topo.total_procs())];
    let mut sequential = 0u64;
    let mut steps = 0u64;

    for r in trace {
        let b = geo.block_of(r.addr).0;
        let p = geo.page_of(r.addr).0;
        let bit = 1u64 << r.proc.0;

        let info = blocks.entry(b).or_default();
        info.refs = info.refs.saturating_add(1);
        if r.op.is_write() {
            info.writers |= bit;
        } else {
            info.readers |= bit;
        }

        let page = pages.entry(p).or_insert((0, false));
        page.0 |= bit;
        page.1 |= r.op.is_write();

        let slot = &mut last_block[r.proc.index()];
        if let Some(prev) = *slot {
            steps += 1;
            if b.abs_diff(prev) <= 16 {
                sequential += 1;
            }
        }
        *slot = Some(b);
    }

    let nblocks = blocks.len() as f64;
    let npages = pages.len() as f64;
    let block_sharers: u64 = blocks
        .values()
        .map(|i| u64::from((i.readers | i.writers).count_ones()))
        .sum();
    let page_sharers: u64 = pages.values().map(|(m, _)| u64::from(m.count_ones())).sum();
    let read_only_pages = pages.values().filter(|(_, w)| !w).count() as f64;
    let write_shared = blocks
        .values()
        .filter(|i| i.writers.count_ones() > 1)
        .count() as f64;

    SharingAnalysis {
        blocks: blocks.len() as u64,
        pages: pages.len() as u64,
        avg_block_sharers: if nblocks > 0.0 {
            block_sharers as f64 / nblocks
        } else {
            0.0
        },
        avg_page_sharers: if npages > 0.0 {
            page_sharers as f64 / npages
        } else {
            0.0
        },
        read_only_page_fraction: if npages > 0.0 {
            read_only_pages / npages
        } else {
            0.0
        },
        write_shared_block_fraction: if nblocks > 0.0 {
            write_shared / nblocks
        } else {
            0.0
        },
        sequentiality: if steps > 0 {
            sequential as f64 / steps as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsm_types::{Addr, ProcId};

    fn geo() -> Geometry {
        Geometry::paper_default()
    }

    fn topo() -> Topology {
        Topology::paper_default()
    }

    #[test]
    fn empty_trace() {
        let a = analyze(&[], &geo(), &topo());
        assert_eq!(a.blocks, 0);
        assert_eq!(a.pages, 0);
        assert_eq!(a.sequentiality, 0.0);
    }

    #[test]
    fn read_only_page_detection() {
        let trace = vec![
            MemRef::read(ProcId(0), Addr(0)),
            MemRef::read(ProcId(4), Addr(64)),
            MemRef::write(ProcId(0), Addr(4096)),
        ];
        let a = analyze(&trace, &geo(), &topo());
        assert_eq!(a.pages, 2);
        assert!((a.read_only_page_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn write_sharing_detection() {
        let trace = vec![
            MemRef::write(ProcId(0), Addr(0)),
            MemRef::write(ProcId(5), Addr(8)), // same block, second writer
            MemRef::write(ProcId(1), Addr(64)), // sole writer
        ];
        let a = analyze(&trace, &geo(), &topo());
        assert_eq!(a.blocks, 2);
        assert!((a.write_shared_block_fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sharer_counts() {
        let trace = vec![
            MemRef::read(ProcId(0), Addr(0)),
            MemRef::read(ProcId(1), Addr(0)),
            MemRef::read(ProcId(2), Addr(0)),
            MemRef::read(ProcId(0), Addr(0)), // repeat does not recount
        ];
        let a = analyze(&trace, &geo(), &topo());
        assert!((a.avg_block_sharers - 3.0).abs() < 1e-12);
        assert!((a.avg_page_sharers - 3.0).abs() < 1e-12);
    }

    #[test]
    fn sequentiality_of_streams_vs_jumps() {
        // P0 streams three consecutive blocks; P1 jumps wildly.
        let trace = vec![
            MemRef::read(ProcId(0), Addr(0)),
            MemRef::read(ProcId(0), Addr(64)),
            MemRef::read(ProcId(0), Addr(128)),
            MemRef::read(ProcId(1), Addr(0)),
            MemRef::read(ProcId(1), Addr(1 << 20)),
            MemRef::read(ProcId(1), Addr(2 << 20)),
        ];
        let a = analyze(&trace, &geo(), &topo());
        // P0: 2/2 near steps; P1: 0/2.
        assert!((a.sequentiality - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kernel_characters_match_the_paper() {
        use crate::{Scale, WorkloadKind};
        let t = topo();
        let g = geo();
        let run = |k: WorkloadKind| {
            let w = k.dev_instance();
            analyze(&w.generate(&t, Scale::new(0.3).unwrap()), &g, &t)
        };
        let ocean = run(WorkloadKind::Ocean);
        let raytrace = run(WorkloadKind::Raytrace);
        let radix = run(WorkloadKind::Radix);
        // Regular streaming kernel vs pointer-chasing kernel.
        assert!(
            ocean.sequentiality > raytrace.sequentiality + 0.2,
            "ocean {} vs raytrace {}",
            ocean.sequentiality,
            raytrace.sequentiality
        );
        // Raytrace's scene is read-mostly.
        assert!(
            raytrace.read_only_page_fraction < 0.05,
            "init writes touch every page; fraction {}",
            raytrace.read_only_page_fraction
        );
        // Radix histogram rows are written by many processors.
        assert!(radix.write_shared_block_fraction > 0.0, "radix {:?}", radix);
    }
}
