//! Generates a benchmark reference trace and writes it in the `DSMT`
//! binary format (or prints its statistics).
//!
//! ```text
//! tracegen <benchmark> [--scale <f>] [--dev] [--out <file>] [--stats]
//! ```
//!
//! * `<benchmark>` — barnes | cholesky | fft | fmm | lu | ocean | radix |
//!   raytrace
//! * `--scale <f>` — trace-length factor in (0, 1], default 1.0
//! * `--dev` — use the reduced development-size instance
//! * `--out <file>` — write the trace (default: `<benchmark>.dsmt`)
//! * `--format <1|2>` — on-disk format: 1 = record-oriented v1,
//!   2 = columnar v2 (default)
//! * `--stats` — print trace statistics instead of writing a file

use std::fs::File;
use std::io::BufWriter;
use std::process::ExitCode;

use dsm_trace::{analyze, write_shared, write_trace, Scale, SharedTrace, TraceStats, WorkloadKind};
use dsm_types::{DsmError, Geometry, Topology};

fn usage() -> ExitCode {
    eprintln!(
        "usage: tracegen <benchmark> [--scale <f>] [--dev] [--out <file>] [--format <1|2>] [--stats] [--analyze]\n\
         benchmarks: barnes cholesky fft fmm lu ocean radix raytrace"
    );
    ExitCode::from(2)
}

fn parse_kind(name: &str) -> Option<WorkloadKind> {
    WorkloadKind::all()
        .into_iter()
        .find(|k| k.display_name().eq_ignore_ascii_case(name))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(name) = args.next() else {
        return usage();
    };
    let Some(kind) = parse_kind(&name) else {
        eprintln!("unknown benchmark '{name}'");
        return usage();
    };

    let mut scale = 1.0f64;
    let mut dev = false;
    let mut out: Option<String> = None;
    let mut stats = false;
    let mut analyze_flag = false;
    let mut format = 2u32;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => match args.next().map(|v| v.parse::<f64>()) {
                Some(Ok(v)) => scale = v,
                _ => return usage(),
            },
            "--dev" => dev = true,
            "--out" => match args.next() {
                Some(v) => out = Some(v),
                None => return usage(),
            },
            "--format" => match args.next().as_deref() {
                Some("1") => format = 1,
                Some("2") => format = 2,
                _ => return usage(),
            },
            "--stats" => stats = true,
            "--analyze" => analyze_flag = true,
            other => {
                eprintln!("unknown option '{other}'");
                return usage();
            }
        }
    }

    match run(kind, scale, dev, out, stats, analyze_flag, format) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}

#[allow(clippy::fn_params_excessive_bools)]
fn run(
    kind: WorkloadKind,
    scale: f64,
    dev: bool,
    out: Option<String>,
    stats: bool,
    analyze_flag: bool,
    format: u32,
) -> Result<(), DsmError> {
    let scale = Scale::new(scale).map_err(DsmError::from)?;
    let workload = if dev {
        kind.dev_instance()
    } else {
        kind.paper_instance()
    };
    let topo = Topology::paper_default();
    eprintln!(
        "tracegen: {} ({}), {:.2} MB shared, scale {}",
        workload.name(),
        workload.params(),
        workload.shared_bytes() as f64 / (1024.0 * 1024.0),
        scale.factor()
    );
    let trace = workload.generate(&topo, scale);

    if analyze_flag {
        let geo = Geometry::paper_default();
        let a = analyze(&trace, &geo, &topo);
        println!("blocks touched:        {}", a.blocks);
        println!("pages touched:         {}", a.pages);
        println!("avg block sharers:     {:.2}", a.avg_block_sharers);
        println!("avg page sharers:      {:.2}", a.avg_page_sharers);
        println!(
            "read-only pages:       {:.1} %",
            a.read_only_page_fraction * 100.0
        );
        println!(
            "write-shared blocks:   {:.1} %",
            a.write_shared_block_fraction * 100.0
        );
        println!("sequentiality:         {:.3}", a.sequentiality);
        if !stats {
            return Ok(());
        }
    }
    if stats {
        let geo = Geometry::paper_default();
        let s = TraceStats::compute(&trace, &geo, &topo);
        println!("refs:            {}", s.refs);
        println!("reads:           {}", s.reads);
        println!("writes:          {}", s.writes);
        println!("write fraction:  {:.4}", s.write_fraction());
        println!("blocks touched:  {}", s.blocks_touched);
        println!("pages touched:   {}", s.pages_touched);
        println!(
            "footprint:       {:.2} MB",
            s.footprint_bytes(&geo) as f64 / (1024.0 * 1024.0)
        );
        println!("refs per block:  {:.2}", s.refs_per_block());
        return Ok(());
    }

    let path = out.unwrap_or_else(|| format!("{}.dsmt", workload.name()));
    let file = File::create(&path)
        .map_err(|e| DsmError::bad_input(format!("cannot create {path}: {e}")))?;
    let result = if format == 2 {
        let shared = SharedTrace::from_refs(topo, Geometry::paper_default(), &trace);
        write_shared(BufWriter::new(file), &shared)
    } else {
        write_trace(BufWriter::new(file), &topo, &trace)
    };
    result.map_err(|e| DsmError::from(e).context(format!("writing {path}")))?;
    eprintln!(
        "tracegen: wrote {} references to {path} (format v{format})",
        trace.len()
    );
    Ok(())
}
