//! A compact binary on-disk format for reference traces.
//!
//! Trace-driven methodology separates *tracing* from *simulation*: the
//! paper's authors traced SPARC binaries once and replayed the traces
//! against every system configuration. This codec provides the same
//! workflow — generate once with the `tracegen` binary, replay many times
//! with `simulate` — and makes traces portable between machines.
//!
//! # Format (`DSMT`)
//!
//! All integers little-endian. Version 2 is the current columnar format,
//! mirroring [`SharedTrace`]'s struct-of-arrays layout; version 1 files
//! (row-oriented 11-byte records) remain readable.
//!
//! ```text
//! version 2 (columnar):
//! magic        4 bytes  "DSMT"
//! version      u16      2
//! clusters     u16
//! procs/cl     u16
//! block bytes  u64      geometry the trace was generated under
//! page bytes   u64
//! refs         u64      reference count
//! proc column  refs x u16
//! op bitmap    ceil(refs / 8) bytes, bit i set = reference i is a write
//! addr column  refs x u64
//!
//! version 1 (row-oriented, read-only compatibility):
//! magic        4 bytes  "DSMT"
//! version      u16      1
//! clusters     u16
//! procs/cl     u16
//! refs         u64      record count
//! records      refs x { proc: u16, op: u8 (0 = read, 1 = write), addr: u64 }
//! ```
//!
//! Version 1 carries no geometry; readers that need one
//! ([`read_shared`]) decompose v1 traces under
//! [`Geometry::paper_default`].

use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::Arc;

use dsm_types::{Addr, ConfigError, DsmError, Geometry, MemOp, MemRef, ProcId, Topology};

use crate::mmap::Mapping;
use crate::shared::{derive_columns, AddrColumn, DeriveError, SharedTrace};

const MAGIC: &[u8; 4] = b"DSMT";
const VERSION_V1: u16 = 1;
const VERSION_V2: u16 = 2;

/// Errors produced while reading a trace file.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The bytes are not a trace file, or an unsupported version.
    Format(String),
    /// The header's topology or geometry is invalid.
    Config(ConfigError),
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
            CodecError::Format(m) => write!(f, "malformed trace: {m}"),
            CodecError::Config(e) => write!(f, "invalid configuration in trace: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            CodecError::Config(e) => Some(e),
            CodecError::Format(_) => None,
        }
    }
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

impl From<CodecError> for DsmError {
    /// Classifies codec failures for exit codes: malformed bytes, invalid
    /// header configuration, and truncation (`UnexpectedEof`) are the
    /// input's fault; any other I/O failure (permissions, disk) is
    /// environmental and therefore internal.
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Io(io) if io.kind() == io::ErrorKind::UnexpectedEof => {
                DsmError::bad_input(format!("truncated trace: {io}"))
            }
            CodecError::Io(io) => DsmError::internal(format!("i/o error: {io}")),
            CodecError::Format(m) => DsmError::bad_input(format!("malformed trace: {m}")),
            CodecError::Config(c) => {
                DsmError::bad_input(format!("invalid configuration in trace: {c}"))
            }
        }
    }
}

/// Writes `trace` (generated for `topo`) to `w` in the version 1
/// row-oriented format. Kept for producing compatibility fixtures; new
/// traces should use [`write_shared`].
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_trace<W: Write>(
    mut w: W,
    topo: &Topology,
    trace: &[MemRef],
) -> Result<(), CodecError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION_V1.to_le_bytes())?;
    w.write_all(&topo.clusters().to_le_bytes())?;
    w.write_all(&topo.procs_per_cluster().to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(64 * 1024);
    for r in trace {
        buf.extend_from_slice(&r.proc.0.to_le_bytes());
        buf.push(u8::from(r.op.is_write()));
        buf.extend_from_slice(&r.addr.0.to_le_bytes());
        if buf.len() >= 64 * 1024 - 16 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

/// Writes `trace` to `w` in the version 2 columnar format, preserving the
/// topology and geometry it was decomposed under.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_shared<W: Write>(mut w: W, trace: &SharedTrace) -> Result<(), CodecError> {
    let topo = trace.topology();
    let geo = trace.geometry();
    let n = trace.len();
    w.write_all(MAGIC)?;
    w.write_all(&VERSION_V2.to_le_bytes())?;
    w.write_all(&topo.clusters().to_le_bytes())?;
    w.write_all(&topo.procs_per_cluster().to_le_bytes())?;
    w.write_all(&geo.block_bytes().to_le_bytes())?;
    w.write_all(&geo.page_bytes().to_le_bytes())?;
    w.write_all(&(n as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(64 * 1024);
    let flush_at = 64 * 1024 - 16;
    for i in 0..n {
        buf.extend_from_slice(&trace.get(i).proc.0.to_le_bytes());
        if buf.len() >= flush_at {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    let mut bits = 0u8;
    for i in 0..n {
        if trace.get(i).op.is_write() {
            bits |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            buf.push(bits);
            bits = 0;
            if buf.len() >= flush_at {
                w.write_all(&buf)?;
                buf.clear();
            }
        }
    }
    if !n.is_multiple_of(8) {
        buf.push(bits);
    }
    for i in 0..n {
        buf.extend_from_slice(&trace.get(i).addr.0.to_le_bytes());
        if buf.len() >= flush_at {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

fn read_exact<R: Read, const N: usize>(r: &mut R) -> Result<[u8; N], CodecError> {
    let mut b = [0u8; N];
    r.read_exact(&mut b)?;
    Ok(b)
}

/// A parsed `DSMT` header: the version-specific metadata preceding the
/// reference data.
enum Header {
    V1 {
        topo: Topology,
        count: usize,
    },
    V2 {
        topo: Topology,
        geo: Geometry,
        count: usize,
    },
}

fn read_header<R: Read>(r: &mut R) -> Result<Header, CodecError> {
    let magic = read_exact::<_, 4>(r)?;
    if &magic != MAGIC {
        return Err(CodecError::Format(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = u16::from_le_bytes(read_exact::<_, 2>(r)?);
    if version != VERSION_V1 && version != VERSION_V2 {
        return Err(CodecError::Format(format!("unsupported version {version}")));
    }
    let clusters = u16::from_le_bytes(read_exact::<_, 2>(r)?);
    let procs = u16::from_le_bytes(read_exact::<_, 2>(r)?);
    let topo = Topology::new(clusters, procs).map_err(CodecError::Config)?;
    let geo = if version == VERSION_V2 {
        let block = u64::from_le_bytes(read_exact::<_, 8>(r)?);
        let page = u64::from_le_bytes(read_exact::<_, 8>(r)?);
        Some(Geometry::new(block, page).map_err(CodecError::Config)?)
    } else {
        None
    };
    let count = u64::from_le_bytes(read_exact::<_, 8>(r)?);
    let count = usize::try_from(count)
        .map_err(|_| CodecError::Format("trace too large for this platform".into()))?;
    Ok(match geo {
        Some(geo) => Header::V2 { topo, geo, count },
        None => Header::V1 { topo, count },
    })
}

fn read_records_v1<R: Read>(
    r: &mut R,
    topo: &Topology,
    count: usize,
) -> Result<Vec<MemRef>, CodecError> {
    let mut trace = Vec::with_capacity(count.min(1 << 24));
    for i in 0..count {
        let proc = u16::from_le_bytes(read_exact::<_, 2>(r)?);
        let op = read_exact::<_, 1>(r)?[0];
        let addr = u64::from_le_bytes(read_exact::<_, 8>(r)?);
        if proc >= topo.total_procs() {
            return Err(CodecError::Format(format!(
                "record {i}: processor {proc} outside topology {topo}"
            )));
        }
        let op = match op {
            0 => MemOp::Read,
            1 => MemOp::Write,
            other => {
                return Err(CodecError::Format(format!(
                    "record {i}: bad op byte {other}"
                )))
            }
        };
        trace.push(MemRef::new(ProcId(proc), op, Addr(addr)));
    }
    Ok(trace)
}

fn read_columns_v2<R: Read>(
    r: &mut R,
    topo: &Topology,
    count: usize,
) -> Result<Vec<MemRef>, CodecError> {
    let cap = count.min(1 << 24);
    let mut procs = Vec::with_capacity(cap);
    for i in 0..count {
        let proc = u16::from_le_bytes(read_exact::<_, 2>(r)?);
        if proc >= topo.total_procs() {
            return Err(CodecError::Format(format!(
                "record {i}: processor {proc} outside topology {topo}"
            )));
        }
        procs.push(proc);
    }
    let mut writes = Vec::with_capacity(count.div_ceil(8).min(1 << 24));
    for _ in 0..count.div_ceil(8) {
        writes.push(read_exact::<_, 1>(r)?[0]);
    }
    let mut trace = Vec::with_capacity(cap);
    for (i, &proc) in procs.iter().enumerate() {
        let addr = u64::from_le_bytes(read_exact::<_, 8>(r)?);
        let op = if writes[i / 8] & (1 << (i % 8)) != 0 {
            MemOp::Write
        } else {
            MemOp::Read
        };
        trace.push(MemRef::new(ProcId(proc), op, Addr(addr)));
    }
    Ok(trace)
}

fn expect_eof<R: Read>(r: &mut R) -> Result<(), CodecError> {
    // Trailing garbage is an error: it usually means a truncated header
    // count or a concatenated file.
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok(()),
        _ => Err(CodecError::Format("trailing bytes after trace".into())),
    }
}

/// Reads a `DSMT` trace (version 1 or 2) from `r`, returning the topology
/// it was generated for and the reference stream. Version 2's geometry is
/// discarded; use [`read_shared`] to keep it.
///
/// # Errors
///
/// Returns [`CodecError`] on I/O failure, bad magic/version, an invalid
/// topology or geometry, or a reference naming a processor outside the
/// topology.
pub fn read_trace<R: Read>(mut r: R) -> Result<(Topology, Vec<MemRef>), CodecError> {
    let trace = match read_header(&mut r)? {
        Header::V1 { topo, count } => {
            let t = read_records_v1(&mut r, &topo, count)?;
            (topo, t)
        }
        Header::V2 { topo, count, .. } => {
            let t = read_columns_v2(&mut r, &topo, count)?;
            (topo, t)
        }
    };
    expect_eof(&mut r)?;
    Ok(trace)
}

/// Reads a `DSMT` trace (version 1 or 2) from `r` directly into the
/// columnar [`SharedTrace`] replay form. Version 1 files carry no
/// geometry and are decomposed under [`Geometry::paper_default`].
///
/// # Errors
///
/// As [`read_trace`], plus a configuration error if the topology exceeds
/// [`SharedTrace`]'s 256-cluster column width.
pub fn read_shared<R: Read>(mut r: R) -> Result<SharedTrace, CodecError> {
    let (topo, geo, refs) = match read_header(&mut r)? {
        Header::V1 { topo, count } => {
            let t = read_records_v1(&mut r, &topo, count)?;
            (topo, Geometry::paper_default(), t)
        }
        Header::V2 { topo, geo, count } => {
            let t = read_columns_v2(&mut r, &topo, count)?;
            (topo, geo, t)
        }
    };
    expect_eof(&mut r)?;
    SharedTrace::try_from_refs(topo, geo, &refs).map_err(CodecError::Config)
}

/// Maps `path` and parses it into a [`SharedTrace`] whose address column
/// borrows straight from the mapping — [`read_shared`] without the copy.
/// Loading cost is independent of trace size, and every process (or
/// sweep worker) mapping the same file shares one set of physical pages.
///
/// On platforms without the raw `mmap` path (or under `DSM_NO_MMAP=1`)
/// the mapping degrades to an owned read; the parse and the resulting
/// trace bytes are identical either way.
///
/// # Errors
///
/// As [`read_shared`]; a file shorter than its header promises is
/// reported as truncation (`UnexpectedEof`, exit code 3 at the CLI), a
/// longer one as trailing bytes.
pub fn open_shared_mapped(path: &Path) -> Result<SharedTrace, CodecError> {
    let map = Mapping::open(path)?;
    // A file that shrank between open and map (or a mapping whose backing
    // file was truncated by a concurrent writer) would SIGBUS on first
    // touch; fstat it again so the race becomes a clean decode error.
    map.revalidate()?;
    shared_from_mapping(Arc::new(map))
}

/// Parses an already-opened [`Mapping`] of a trace file — the
/// [`open_shared_mapped`] tail, exposed so tests and tools can feed
/// in-memory buffers through the exact mapped code path.
///
/// # Errors
///
/// As [`open_shared_mapped`].
pub fn shared_from_mapping(map: Arc<Mapping>) -> Result<SharedTrace, CodecError> {
    let bytes = map.bytes();
    let mut cursor = bytes;
    let header = read_header(&mut cursor)?;
    let (topo, geo, count) = match header {
        // v1 is row-oriented: there is no contiguous address column to
        // borrow. Parse it through the owned reader.
        Header::V1 { .. } => return read_shared(bytes),
        Header::V2 { topo, geo, count } => (topo, geo, count),
    };
    let header_len = bytes.len() - cursor.len();
    // Column extents, overflow-checked: a hostile header can claim
    // usize::MAX references.
    let (proc_bytes, addr_bytes) = match (count.checked_mul(2), count.checked_mul(8)) {
        (Some(p), Some(a)) => (p, a),
        _ => {
            return Err(CodecError::Format(
                "trace too large for this platform".into(),
            ))
        }
    };
    let op_off = header_len + proc_bytes;
    let addr_off = op_off + count.div_ceil(8);
    let total = match addr_off.checked_add(addr_bytes) {
        Some(t) => t,
        None => {
            return Err(CodecError::Format(
                "trace too large for this platform".into(),
            ))
        }
    };
    if bytes.len() < total {
        return Err(CodecError::Io(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!(
                "file is {} bytes but the header promises {total}",
                bytes.len()
            ),
        )));
    }
    if bytes.len() > total {
        return Err(CodecError::Format("trailing bytes after trace".into()));
    }
    let procs = &bytes[header_len..op_off];
    let ops = &bytes[op_off..addr_off];
    let derived = derive_columns(&topo, &geo, count, |i| {
        let proc = u16::from_le_bytes([procs[i * 2], procs[i * 2 + 1]]);
        let write = ops[i / 8] & (1 << (i % 8)) != 0;
        let mut a = [0u8; 8];
        a.copy_from_slice(&bytes[addr_off + i * 8..addr_off + i * 8 + 8]);
        (proc, write, u64::from_le_bytes(a))
    })
    .map_err(|e| match e {
        DeriveError::TooManyClusters(c) => CodecError::Config(ConfigError::new(format!(
            "SharedTrace cluster columns are one byte: {c} clusters exceed 256"
        ))),
        DeriveError::BadProc { index, proc } => CodecError::Format(format!(
            "record {index}: processor {proc} outside topology {topo}"
        )),
    })?;
    let addr = AddrColumn::Mapped {
        map: Arc::clone(&map),
        offset: addr_off,
        count,
    };
    Ok(SharedTrace::from_parts(topo, geo, addr, derived))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Topology, Vec<MemRef>) {
        let topo = Topology::new(2, 2).unwrap();
        let trace = vec![
            MemRef::read(ProcId(0), Addr(0x40)),
            MemRef::write(ProcId(3), Addr(0xdead_beef)),
            MemRef::read(ProcId(2), Addr(u64::MAX)),
        ];
        (topo, trace)
    }

    fn sample_shared() -> SharedTrace {
        let (topo, trace) = sample();
        SharedTrace::from_refs(topo, Geometry::paper_default(), &trace)
    }

    #[test]
    fn roundtrip() {
        let (topo, trace) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &topo, &trace).unwrap();
        let (topo2, trace2) = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(topo, topo2);
        assert_eq!(trace, trace2);
    }

    #[test]
    fn v2_roundtrip() {
        let shared = sample_shared();
        let mut bytes = Vec::new();
        write_shared(&mut bytes, &shared).unwrap();
        let back = read_shared(bytes.as_slice()).unwrap();
        assert_eq!(back.topology(), shared.topology());
        assert_eq!(back.geometry(), shared.geometry());
        assert_eq!(
            back.iter().collect::<Vec<_>>(),
            shared.iter().collect::<Vec<_>>()
        );
    }

    #[test]
    fn v2_reads_as_memrefs_too() {
        let shared = sample_shared();
        let mut bytes = Vec::new();
        write_shared(&mut bytes, &shared).unwrap();
        let (topo, trace) = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(&topo, shared.topology());
        assert_eq!(trace, sample().1);
    }

    #[test]
    fn v1_reads_into_shared_with_default_geometry() {
        let (topo, trace) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &topo, &trace).unwrap();
        let shared = read_shared(bytes.as_slice()).unwrap();
        assert_eq!(shared.geometry(), &Geometry::paper_default());
        assert_eq!(shared.iter().collect::<Vec<_>>(), trace);
    }

    #[test]
    fn v2_preserves_nondefault_geometry() {
        let (topo, trace) = sample();
        let geo = Geometry::new(128, 8192).unwrap();
        let shared = SharedTrace::from_refs(topo, geo, &trace);
        let mut bytes = Vec::new();
        write_shared(&mut bytes, &shared).unwrap();
        let back = read_shared(bytes.as_slice()).unwrap();
        assert_eq!(back.geometry(), &geo);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let topo = Topology::paper_default();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &topo, &[]).unwrap();
        let (_, trace) = read_trace(bytes.as_slice()).unwrap();
        assert!(trace.is_empty());

        let shared = SharedTrace::from_refs(topo, Geometry::paper_default(), &[]);
        let mut bytes = Vec::new();
        write_shared(&mut bytes, &shared).unwrap();
        assert!(read_shared(bytes.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn record_size_is_eleven_bytes() {
        let (topo, trace) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &topo, &trace).unwrap();
        assert_eq!(bytes.len(), 4 + 2 + 2 + 2 + 8 + trace.len() * 11);
    }

    #[test]
    fn v2_layout_is_columnar() {
        let shared = sample_shared();
        let mut bytes = Vec::new();
        write_shared(&mut bytes, &shared).unwrap();
        let n = shared.len();
        // header + proc column + op bitmap + addr column
        assert_eq!(
            bytes.len(),
            (4 + 2 + 2 + 2 + 8 + 8 + 8) + n * 2 + n.div_ceil(8) + n * 8
        );
        assert_eq!(&bytes[4..6], &2u16.to_le_bytes());
        // op bitmap: only reference 1 is a write.
        assert_eq!(bytes[34 + n * 2], 0b010);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOPE\x01\x00"[..]).unwrap_err();
        assert!(matches!(err, CodecError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &Topology::paper_default(), &[]).unwrap();
        bytes[4] = 9;
        assert!(matches!(
            read_trace(bytes.as_slice()).unwrap_err(),
            CodecError::Format(_)
        ));
    }

    #[test]
    fn rejects_truncated_records() {
        let (topo, trace) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &topo, &trace).unwrap();
        bytes.truncate(bytes.len() - 5);
        assert!(matches!(
            read_trace(bytes.as_slice()).unwrap_err(),
            CodecError::Io(_)
        ));
    }

    #[test]
    fn rejects_truncated_v2_columns() {
        let shared = sample_shared();
        let mut bytes = Vec::new();
        write_shared(&mut bytes, &shared).unwrap();
        bytes.truncate(bytes.len() - 5);
        assert!(matches!(
            read_shared(bytes.as_slice()).unwrap_err(),
            CodecError::Io(_)
        ));
    }

    #[test]
    fn rejects_out_of_range_processor() {
        let topo = Topology::new(1, 1).unwrap();
        // Hand-craft: valid header but proc 7.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"DSMT");
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&7u16.to_le_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("outside topology"), "{err}");
        let _ = topo;
    }

    #[test]
    fn rejects_out_of_range_processor_v2() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"DSMT");
        bytes.extend_from_slice(&2u16.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes()); // 1 cluster
        bytes.extend_from_slice(&1u16.to_le_bytes()); // 1 proc
        bytes.extend_from_slice(&64u64.to_le_bytes());
        bytes.extend_from_slice(&4096u64.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&7u16.to_le_bytes()); // proc column: proc 7
        bytes.push(0); // op bitmap
        bytes.extend_from_slice(&0u64.to_le_bytes()); // addr column
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("outside topology"), "{err}");
    }

    #[test]
    fn rejects_bad_op_byte() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"DSMT");
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.push(9);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("bad op byte"), "{err}");
    }

    #[test]
    fn rejects_trailing_bytes() {
        let (topo, trace) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &topo, &trace).unwrap();
        bytes.push(0);
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");

        let mut bytes = Vec::new();
        write_shared(&mut bytes, &sample_shared()).unwrap();
        bytes.push(0);
        let err = read_shared(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn rejects_bad_geometry_v2() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"DSMT");
        bytes.extend_from_slice(&2u16.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&63u64.to_le_bytes()); // not a power of two
        bytes.extend_from_slice(&4096u64.to_le_bytes());
        bytes.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            read_trace(bytes.as_slice()).unwrap_err(),
            CodecError::Config(_)
        ));
    }

    #[test]
    fn codec_errors_classify_into_dsm_errors() {
        use dsm_types::ErrorKind;
        let truncated: DsmError =
            CodecError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "eof")).into();
        assert_eq!(truncated.kind(), ErrorKind::BadInput);
        let denied: DsmError =
            CodecError::Io(io::Error::new(io::ErrorKind::PermissionDenied, "no")).into();
        assert_eq!(denied.kind(), ErrorKind::Internal);
        let malformed: DsmError = CodecError::Format("bad magic".into()).into();
        assert_eq!(malformed.kind(), ErrorKind::BadInput);
        assert!(malformed.to_string().contains("bad magic"));
        let config: DsmError = CodecError::Config(ConfigError::new("zero clusters")).into();
        assert_eq!(config.kind(), ErrorKind::BadInput);
    }

    /// A deterministic pseudo-random reference stream (xorshift) for the
    /// mapped-vs-owned equivalence checks.
    fn random_refs(seed: u64, n: u64) -> Vec<MemRef> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let proc = ProcId((x % 32) as u16);
                let addr = Addr((x >> 8) % (1 << 30));
                if x.is_multiple_of(4) {
                    MemRef::write(proc, addr)
                } else {
                    MemRef::read(proc, addr)
                }
            })
            .collect()
    }

    fn mapped_from(bytes: Vec<u8>) -> Result<SharedTrace, CodecError> {
        shared_from_mapping(Arc::new(Mapping::from_vec(bytes)))
    }

    #[test]
    fn mapped_parse_matches_owned_parse_on_random_traces() {
        use dsm_types::DecodedRef;
        for seed in [3, 17, 0xDEAD] {
            let refs = random_refs(seed, 777);
            let owned =
                SharedTrace::from_refs(Topology::paper_default(), Geometry::paper_default(), &refs);
            let mut bytes = Vec::new();
            write_shared(&mut bytes, &owned).unwrap();
            let mapped = mapped_from(bytes).unwrap();
            assert_eq!(mapped.storage_mode(), "mapped");
            assert_eq!(mapped.topology(), owned.topology());
            assert_eq!(mapped.geometry(), owned.geometry());
            assert_eq!(mapped.len(), owned.len());
            let mut a = [DecodedRef::default(); crate::BATCH];
            let mut b = [DecodedRef::default(); crate::BATCH];
            let mut start = 0;
            loop {
                let n = owned.decode_batch(start, &mut a);
                assert_eq!(mapped.decode_batch(start, &mut b), n);
                if n == 0 {
                    break;
                }
                assert_eq!(a[..n], b[..n], "batch at {start}, seed {seed}");
                start += n;
            }
        }
    }

    #[test]
    fn open_shared_mapped_reads_files_zero_copy() {
        let refs = random_refs(42, 300);
        let owned =
            SharedTrace::from_refs(Topology::paper_default(), Geometry::paper_default(), &refs);
        let mut bytes = Vec::new();
        write_shared(&mut bytes, &owned).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("dsm-codec-mmap-{}.dsmt", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let mapped = open_shared_mapped(&path).unwrap();
        assert_eq!(mapped.iter().collect::<Vec<_>>(), refs);
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        assert!(mapped.is_mapped());
        // The mapping outlives the directory entry: replay after unlink.
        std::fs::remove_file(&path).unwrap();
        assert_eq!(mapped.get(0), refs[0]);
    }

    #[test]
    fn mapped_v1_files_fall_back_to_the_owned_parser() {
        let (topo, trace) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &topo, &trace).unwrap();
        let shared = mapped_from(bytes).unwrap();
        assert_eq!(shared.storage_mode(), "owned");
        assert_eq!(shared.iter().collect::<Vec<_>>(), trace);
    }

    #[test]
    fn mapped_parse_rejects_truncation_as_eof() {
        let refs = random_refs(7, 100);
        let owned =
            SharedTrace::from_refs(Topology::paper_default(), Geometry::paper_default(), &refs);
        let mut bytes = Vec::new();
        write_shared(&mut bytes, &owned).unwrap();
        // Torn anywhere — mid-header, mid-proc-column, mid-addr-column —
        // must be a clean UnexpectedEof (exit code 3), never a panic.
        for keep in [3, 20, 34, 34 + 50, bytes.len() - 1] {
            let torn = bytes[..keep].to_vec();
            let err = mapped_from(torn).unwrap_err();
            match err {
                CodecError::Io(io) => assert_eq!(io.kind(), io::ErrorKind::UnexpectedEof),
                other => panic!("keep={keep}: expected Io(UnexpectedEof), got {other}"),
            }
        }
        let err: DsmError = mapped_from(bytes[..40].to_vec()).unwrap_err().into();
        assert_eq!(err.kind(), dsm_types::ErrorKind::BadInput);
    }

    #[test]
    fn mapped_parse_rejects_trailing_and_bad_records() {
        let refs = random_refs(9, 50);
        let owned =
            SharedTrace::from_refs(Topology::paper_default(), Geometry::paper_default(), &refs);
        let mut bytes = Vec::new();
        write_shared(&mut bytes, &owned).unwrap();
        let mut trailing = bytes.clone();
        trailing.push(0);
        let err = mapped_from(trailing).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        // Corrupt the proc column: processor 999 is outside the topology.
        let mut bad = bytes.clone();
        bad[34..36].copy_from_slice(&999u16.to_le_bytes());
        let err = mapped_from(bad).unwrap_err();
        assert!(err.to_string().contains("outside topology"), "{err}");
    }

    #[test]
    fn concurrent_readers_share_one_mapping() {
        use dsm_types::DecodedRef;
        let refs = random_refs(11, 500);
        let owned =
            SharedTrace::from_refs(Topology::paper_default(), Geometry::paper_default(), &refs);
        let mut bytes = Vec::new();
        write_shared(&mut bytes, &owned).unwrap();
        let mapped = mapped_from(bytes).unwrap();
        // Clones share the Arc'd mapping — the sweep-worker sharing shape.
        std::thread::scope(|s| {
            for _ in 0..4 {
                let trace = mapped.clone();
                let want = &refs;
                s.spawn(move || {
                    let mut out = [DecodedRef::default(); crate::BATCH];
                    let mut start = 0;
                    loop {
                        let n = trace.decode_batch(start, &mut out);
                        if n == 0 {
                            break;
                        }
                        for (k, d) in out[..n].iter().enumerate() {
                            let r = want[start + k];
                            assert_eq!(d.write, r.op.is_write());
                            assert_eq!(d.block, Geometry::paper_default().block_of(r.addr));
                        }
                        start += n;
                    }
                    assert_eq!(start, want.len());
                });
            }
        });
    }

    #[test]
    fn large_trace_roundtrips_through_buffering() {
        // Exercise the 64-KiB internal buffer boundary in both formats.
        let topo = Topology::paper_default();
        let trace: Vec<MemRef> = (0..10_000u64)
            .map(|i| {
                if i % 3 == 0 {
                    MemRef::write(ProcId((i % 32) as u16), Addr(i * 64))
                } else {
                    MemRef::read(ProcId((i % 32) as u16), Addr(i * 64))
                }
            })
            .collect();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &topo, &trace).unwrap();
        let (_, back) = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(trace, back);

        let shared = SharedTrace::from_refs(topo, Geometry::paper_default(), &trace);
        let mut bytes = Vec::new();
        write_shared(&mut bytes, &shared).unwrap();
        let back = read_shared(bytes.as_slice()).unwrap();
        assert_eq!(back.iter().collect::<Vec<_>>(), trace);
    }
}
