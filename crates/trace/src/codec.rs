//! A compact binary on-disk format for reference traces.
//!
//! Trace-driven methodology separates *tracing* from *simulation*: the
//! paper's authors traced SPARC binaries once and replayed the traces
//! against every system configuration. This codec provides the same
//! workflow — generate once with the `tracegen` binary, replay many times
//! with `simulate` — and makes traces portable between machines.
//!
//! # Format (`DSMT`, version 1)
//!
//! All integers little-endian:
//!
//! ```text
//! magic      4 bytes  "DSMT"
//! version    u16      1
//! clusters   u16
//! procs/cl   u16
//! refs       u64      record count
//! records    refs x { proc: u16, op: u8 (0 = read, 1 = write), addr: u64 }
//! ```

use std::io::{self, Read, Write};

use dsm_types::{Addr, ConfigError, MemOp, MemRef, ProcId, Topology};

const MAGIC: &[u8; 4] = b"DSMT";
const VERSION: u16 = 1;

/// Errors produced while reading a trace file.
#[derive(Debug)]
pub enum CodecError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The bytes are not a trace file, or an unsupported version.
    Format(String),
    /// The header's topology is invalid.
    Config(ConfigError),
}

impl core::fmt::Display for CodecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CodecError::Io(e) => write!(f, "i/o error: {e}"),
            CodecError::Format(m) => write!(f, "malformed trace: {m}"),
            CodecError::Config(e) => write!(f, "invalid topology in trace: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Io(e) => Some(e),
            CodecError::Config(e) => Some(e),
            CodecError::Format(_) => None,
        }
    }
}

impl From<io::Error> for CodecError {
    fn from(e: io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// Writes `trace` (generated for `topo`) to `w` in `DSMT` format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_trace<W: Write>(
    mut w: W,
    topo: &Topology,
    trace: &[MemRef],
) -> Result<(), CodecError> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&topo.clusters().to_le_bytes())?;
    w.write_all(&topo.procs_per_cluster().to_le_bytes())?;
    w.write_all(&(trace.len() as u64).to_le_bytes())?;
    let mut buf = Vec::with_capacity(64 * 1024);
    for r in trace {
        buf.extend_from_slice(&r.proc.0.to_le_bytes());
        buf.push(u8::from(r.op.is_write()));
        buf.extend_from_slice(&r.addr.0.to_le_bytes());
        if buf.len() >= 64 * 1024 - 16 {
            w.write_all(&buf)?;
            buf.clear();
        }
    }
    w.write_all(&buf)?;
    w.flush()?;
    Ok(())
}

fn read_exact<R: Read, const N: usize>(r: &mut R) -> Result<[u8; N], CodecError> {
    let mut b = [0u8; N];
    r.read_exact(&mut b)?;
    Ok(b)
}

/// Reads a `DSMT` trace from `r`, returning the topology it was generated
/// for and the reference stream.
///
/// # Errors
///
/// Returns [`CodecError`] on I/O failure, bad magic/version, an invalid
/// topology, or a reference naming a processor outside the topology.
pub fn read_trace<R: Read>(mut r: R) -> Result<(Topology, Vec<MemRef>), CodecError> {
    let magic = read_exact::<_, 4>(&mut r)?;
    if &magic != MAGIC {
        return Err(CodecError::Format(format!(
            "bad magic {magic:?}, expected {MAGIC:?}"
        )));
    }
    let version = u16::from_le_bytes(read_exact::<_, 2>(&mut r)?);
    if version != VERSION {
        return Err(CodecError::Format(format!("unsupported version {version}")));
    }
    let clusters = u16::from_le_bytes(read_exact::<_, 2>(&mut r)?);
    let procs = u16::from_le_bytes(read_exact::<_, 2>(&mut r)?);
    let topo = Topology::new(clusters, procs).map_err(CodecError::Config)?;
    let count = u64::from_le_bytes(read_exact::<_, 8>(&mut r)?);
    let count = usize::try_from(count)
        .map_err(|_| CodecError::Format("trace too large for this platform".into()))?;

    let mut trace = Vec::with_capacity(count.min(1 << 24));
    for i in 0..count {
        let proc = u16::from_le_bytes(read_exact::<_, 2>(&mut r)?);
        let op = read_exact::<_, 1>(&mut r)?[0];
        let addr = u64::from_le_bytes(read_exact::<_, 8>(&mut r)?);
        if proc >= topo.total_procs() {
            return Err(CodecError::Format(format!(
                "record {i}: processor {proc} outside topology {topo}"
            )));
        }
        let op = match op {
            0 => MemOp::Read,
            1 => MemOp::Write,
            other => {
                return Err(CodecError::Format(format!(
                    "record {i}: bad op byte {other}"
                )))
            }
        };
        trace.push(MemRef::new(ProcId(proc), op, Addr(addr)));
    }
    // Trailing garbage is an error: it usually means a truncated header
    // count or a concatenated file.
    let mut probe = [0u8; 1];
    match r.read(&mut probe)? {
        0 => Ok((topo, trace)),
        _ => Err(CodecError::Format("trailing bytes after trace".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Topology, Vec<MemRef>) {
        let topo = Topology::new(2, 2).unwrap();
        let trace = vec![
            MemRef::read(ProcId(0), Addr(0x40)),
            MemRef::write(ProcId(3), Addr(0xdead_beef)),
            MemRef::read(ProcId(2), Addr(u64::MAX)),
        ];
        (topo, trace)
    }

    #[test]
    fn roundtrip() {
        let (topo, trace) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &topo, &trace).unwrap();
        let (topo2, trace2) = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(topo, topo2);
        assert_eq!(trace, trace2);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let topo = Topology::paper_default();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &topo, &[]).unwrap();
        let (_, trace) = read_trace(bytes.as_slice()).unwrap();
        assert!(trace.is_empty());
    }

    #[test]
    fn record_size_is_eleven_bytes() {
        let (topo, trace) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &topo, &trace).unwrap();
        assert_eq!(bytes.len(), 4 + 2 + 2 + 2 + 8 + trace.len() * 11);
    }

    #[test]
    fn rejects_bad_magic() {
        let err = read_trace(&b"NOPE\x01\x00"[..]).unwrap_err();
        assert!(matches!(err, CodecError::Format(_)), "{err}");
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &Topology::paper_default(), &[]).unwrap();
        bytes[4] = 9;
        assert!(matches!(
            read_trace(bytes.as_slice()).unwrap_err(),
            CodecError::Format(_)
        ));
    }

    #[test]
    fn rejects_truncated_records() {
        let (topo, trace) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &topo, &trace).unwrap();
        bytes.truncate(bytes.len() - 5);
        assert!(matches!(
            read_trace(bytes.as_slice()).unwrap_err(),
            CodecError::Io(_)
        ));
    }

    #[test]
    fn rejects_out_of_range_processor() {
        let topo = Topology::new(1, 1).unwrap();
        // Hand-craft: valid header but proc 7.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"DSMT");
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&7u16.to_le_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("outside topology"), "{err}");
        let _ = topo;
    }

    #[test]
    fn rejects_bad_op_byte() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"DSMT");
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&1u64.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.push(9);
        bytes.extend_from_slice(&0u64.to_le_bytes());
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("bad op byte"), "{err}");
    }

    #[test]
    fn rejects_trailing_bytes() {
        let (topo, trace) = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &topo, &trace).unwrap();
        bytes.push(0);
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn large_trace_roundtrips_through_buffering() {
        // Exercise the 64-KiB internal buffer boundary.
        let topo = Topology::paper_default();
        let trace: Vec<MemRef> = (0..10_000u64)
            .map(|i| MemRef::read(ProcId((i % 32) as u16), Addr(i * 64)))
            .collect();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &topo, &trace).unwrap();
        let (_, back) = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(trace, back);
    }
}
