//! Interleaving per-processor reference streams into one global trace.

use dsm_types::{Addr, MemOp, MemRef, ProcId, Topology};

/// Round-robin interleaves per-processor streams: one reference from each
/// non-exhausted stream in processor order, repeatedly. This models the
/// lock-step progress a trace-driven simulator assumes between
/// synchronization points.
#[must_use]
pub fn round_robin(streams: Vec<Vec<MemRef>>) -> Vec<MemRef> {
    let total: usize = streams.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    round_robin_into(streams, &mut out);
    out
}

/// [`round_robin`], appending into an existing trace instead of
/// allocating. Exhausted streams are dropped from the scan set after
/// every pass, so skewed stream lengths (one long stream, many short
/// ones) cost O(total references), not O(streams × longest).
pub fn round_robin_into(streams: Vec<Vec<MemRef>>, out: &mut Vec<MemRef>) {
    let mut cursors = vec![0usize; streams.len()];
    let mut active: Vec<usize> = (0..streams.len())
        .filter(|&i| !streams[i].is_empty())
        .collect();
    while !active.is_empty() {
        // One reference from each live stream in processor order, then
        // drain the streams this pass exhausted.
        active.retain(|&i| {
            out.push(streams[i][cursors[i]]);
            cursors[i] += 1;
            cursors[i] < streams[i].len()
        });
    }
}

/// Collects one *phase* of a parallel program: every processor's references
/// between two barriers. [`PhaseBuilder::interleave_into`] merges them
/// round-robin and appends to the global trace, modelling the barrier (no
/// reference of phase *k+1* precedes any of phase *k*).
///
/// # Example
///
/// ```
/// use dsm_trace::PhaseBuilder;
/// use dsm_types::{Addr, MemOp, ProcId, Topology};
///
/// let topo = Topology::new(2, 1)?;
/// let mut trace = Vec::new();
/// let mut phase = PhaseBuilder::new(&topo);
/// phase.read(ProcId(0), Addr(0));
/// phase.read(ProcId(1), Addr(64));
/// phase.write(ProcId(0), Addr(0));
/// phase.interleave_into(&mut trace);
/// assert_eq!(trace.len(), 3);
/// assert_eq!(trace[0].proc, ProcId(0));
/// assert_eq!(trace[1].proc, ProcId(1));
/// # Ok::<(), dsm_types::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct PhaseBuilder {
    streams: Vec<Vec<MemRef>>,
}

impl PhaseBuilder {
    /// Creates an empty phase for the machine's processors.
    #[must_use]
    pub fn new(topo: &Topology) -> Self {
        PhaseBuilder {
            streams: vec![Vec::new(); usize::from(topo.total_procs())],
        }
    }

    /// Appends a reference by `proc`.
    ///
    /// # Panics
    ///
    /// Panics if `proc` is out of range for the topology.
    pub fn push(&mut self, proc: ProcId, op: MemOp, addr: Addr) {
        self.streams[proc.index()].push(MemRef::new(proc, op, addr));
    }

    /// Appends a read by `proc`.
    pub fn read(&mut self, proc: ProcId, addr: Addr) {
        self.push(proc, MemOp::Read, addr);
    }

    /// Appends a write by `proc`.
    pub fn write(&mut self, proc: ProcId, addr: Addr) {
        self.push(proc, MemOp::Write, addr);
    }

    /// Emits element-granularity reads of `count` elements of `elem_bytes`
    /// starting at `base` (a sequential sweep, the common regular pattern).
    pub fn read_run(&mut self, proc: ProcId, base: Addr, count: u64, elem_bytes: u64) {
        for i in 0..count {
            self.read(proc, base.offset(i * elem_bytes));
        }
    }

    /// Emits element-granularity writes, as [`PhaseBuilder::read_run`].
    pub fn write_run(&mut self, proc: ProcId, base: Addr, count: u64, elem_bytes: u64) {
        for i in 0..count {
            self.write(proc, base.offset(i * elem_bytes));
        }
    }

    /// Number of references buffered in this phase.
    #[must_use]
    pub fn len(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// Whether the phase is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.streams.iter().all(Vec::is_empty)
    }

    /// Interleaves the phase round-robin and appends it to `trace`,
    /// emptying the builder for reuse in the next phase.
    pub fn interleave_into(&mut self, trace: &mut Vec<MemRef>) {
        let streams = std::mem::take(&mut self.streams);
        let n = streams.len();
        trace.reserve_exact(streams.iter().map(Vec::len).sum());
        round_robin_into(streams, trace);
        self.streams = vec![Vec::new(); n];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(p: u16, a: u64) -> MemRef {
        MemRef::read(ProcId(p), Addr(a))
    }

    #[test]
    fn round_robin_alternates() {
        let out = round_robin(vec![vec![r(0, 0), r(0, 1)], vec![r(1, 10), r(1, 11)]]);
        let addrs: Vec<u64> = out.iter().map(|m| m.addr.0).collect();
        assert_eq!(addrs, vec![0, 10, 1, 11]);
    }

    #[test]
    fn round_robin_handles_uneven_streams() {
        let out = round_robin(vec![vec![r(0, 0)], vec![r(1, 10), r(1, 11), r(1, 12)]]);
        let addrs: Vec<u64> = out.iter().map(|m| m.addr.0).collect();
        assert_eq!(addrs, vec![0, 10, 11, 12]);
    }

    #[test]
    fn round_robin_skewed_streams_preserve_order() {
        // Many short streams around one long one: exhausted streams must
        // drop out without disturbing the processor-order interleave.
        let streams = vec![
            vec![r(0, 0)],
            (0..100).map(|i| r(1, 100 + i)).collect(),
            vec![],
            vec![r(3, 300), r(3, 301)],
        ];
        let out = round_robin(streams);
        assert_eq!(out.len(), 103);
        let addrs: Vec<u64> = out.iter().map(|m| m.addr.0).collect();
        assert_eq!(&addrs[..5], &[0, 100, 300, 101, 301]);
        assert_eq!(addrs[5..], (102..200).collect::<Vec<u64>>());
    }

    #[test]
    fn round_robin_into_appends() {
        let mut out = vec![r(9, 999)];
        round_robin_into(vec![vec![r(0, 0)], vec![r(1, 10)]], &mut out);
        let addrs: Vec<u64> = out.iter().map(|m| m.addr.0).collect();
        assert_eq!(addrs, vec![999, 0, 10]);
    }

    #[test]
    fn round_robin_empty() {
        assert!(round_robin(vec![]).is_empty());
        assert!(round_robin(vec![vec![], vec![]]).is_empty());
    }

    #[test]
    fn phase_builder_barriers() {
        let topo = Topology::new(2, 1).unwrap();
        let mut trace = Vec::new();
        let mut phase = PhaseBuilder::new(&topo);
        phase.read(ProcId(1), Addr(100));
        phase.interleave_into(&mut trace);
        // Second phase: all refs come after the first phase's.
        phase.read(ProcId(0), Addr(200));
        phase.interleave_into(&mut trace);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].addr, Addr(100));
        assert_eq!(trace[1].addr, Addr(200));
        assert!(phase.is_empty());
    }

    #[test]
    fn runs_emit_element_granularity() {
        let topo = Topology::new(1, 1).unwrap();
        let mut phase = PhaseBuilder::new(&topo);
        phase.read_run(ProcId(0), Addr(0), 4, 8);
        phase.write_run(ProcId(0), Addr(64), 2, 16);
        assert_eq!(phase.len(), 6);
        let mut trace = Vec::new();
        phase.interleave_into(&mut trace);
        assert_eq!(trace[3].addr, Addr(24));
        assert!(trace[4].op.is_write());
        assert_eq!(trace[5].addr, Addr(80));
    }
}
