//! Shared-address-space layout: page-aligned regions for workload arrays.

use dsm_types::{Addr, ConfigError};

/// A named, page-aligned span of the shared address space holding one of a
/// workload's arrays (the key array, a grid, the scene BVH, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    name: &'static str,
    base: u64,
    bytes: u64,
}

impl Region {
    /// The region's name (for diagnostics).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// First byte address.
    #[must_use]
    pub fn base(&self) -> Addr {
        Addr(self.base)
    }

    /// Size in bytes.
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The address `offset` bytes into the region.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is outside the region.
    #[must_use]
    pub fn at(&self, offset: u64) -> Addr {
        assert!(
            offset < self.bytes,
            "offset {offset} outside region '{}' of {} bytes",
            self.name,
            self.bytes
        );
        Addr(self.base + offset)
    }

    /// The address of element `index` of an array of `elem_bytes`-sized
    /// elements stored in this region.
    ///
    /// # Panics
    ///
    /// Panics if the element lies outside the region.
    #[must_use]
    pub fn elem(&self, index: u64, elem_bytes: u64) -> Addr {
        self.at(index * elem_bytes)
    }

    /// Whether `addr` falls inside this region.
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        addr.0 >= self.base && addr.0 < self.base + self.bytes
    }
}

/// Allocates page-aligned [`Region`]s bottom-up in the shared space.
///
/// # Example
///
/// ```
/// use dsm_trace::Layout;
/// let mut l = Layout::new(4096);
/// let keys = l.region("keys", 10_000)?;
/// let dest = l.region("dest", 10_000)?;
/// assert_eq!(keys.base().0, 0);
/// assert_eq!(dest.base().0 % 4096, 0);
/// assert!(l.total_bytes() >= 20_000);
/// # Ok::<(), dsm_types::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Layout {
    page_bytes: u64,
    next: u64,
}

impl Layout {
    /// Creates a layout with the given page alignment.
    ///
    /// # Panics
    ///
    /// Panics if `page_bytes` is not a nonzero power of two.
    #[must_use]
    pub fn new(page_bytes: u64) -> Self {
        assert!(
            page_bytes > 0 && page_bytes.is_power_of_two(),
            "page size must be a nonzero power of two"
        );
        Layout {
            page_bytes,
            next: 0,
        }
    }

    /// Reserves a page-aligned region of at least `bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `bytes` is zero.
    pub fn region(&mut self, name: &'static str, bytes: u64) -> Result<Region, ConfigError> {
        if bytes == 0 {
            return Err(ConfigError::new(format!("region '{name}' has zero size")));
        }
        let base = self.next;
        let padded = bytes.div_ceil(self.page_bytes) * self.page_bytes;
        self.next += padded;
        Ok(Region { name, base, bytes })
    }

    /// Total bytes reserved so far (including alignment padding).
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_are_page_aligned_and_disjoint() {
        let mut l = Layout::new(4096);
        let a = l.region("a", 100).unwrap();
        let b = l.region("b", 5000).unwrap();
        let c = l.region("c", 4096).unwrap();
        assert_eq!(a.base().0, 0);
        assert_eq!(b.base().0, 4096);
        assert_eq!(c.base().0, 4096 + 8192);
        assert_eq!(l.total_bytes(), 4096 + 8192 + 4096);
    }

    #[test]
    fn zero_size_region_rejected() {
        let mut l = Layout::new(4096);
        assert!(l.region("z", 0).is_err());
    }

    #[test]
    fn elem_addressing() {
        let mut l = Layout::new(4096);
        let r = l.region("arr", 80).unwrap();
        assert_eq!(r.elem(0, 8), Addr(0));
        assert_eq!(r.elem(9, 8), Addr(72));
    }

    #[test]
    #[should_panic(expected = "outside region")]
    fn elem_out_of_bounds_panics() {
        let mut l = Layout::new(4096);
        let r = l.region("arr", 80).unwrap();
        let _ = r.elem(10, 8);
    }

    #[test]
    fn contains_checks_bounds() {
        let mut l = Layout::new(4096);
        let _a = l.region("a", 4096).unwrap();
        let b = l.region("b", 100).unwrap();
        assert!(b.contains(Addr(4096)));
        assert!(b.contains(Addr(4195)));
        assert!(!b.contains(Addr(4196)));
        assert!(!b.contains(Addr(0)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_page_size_panics() {
        let _ = Layout::new(1000);
    }
}
