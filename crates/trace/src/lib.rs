//! Synthetic SPLASH-2-style shared-memory reference traces.
//!
//! The paper drives its simulator with SPARC V7 address traces of eight
//! SPLASH-2 benchmarks. Real SPLASH-2 binaries and a SPARC tracer are not
//! portable, so this crate substitutes **deterministic trace kernels**: for
//! each benchmark we re-implement the *shared-data access pattern* of the
//! algorithm — same data-set sizes (Table 3 of the paper), same phase
//! structure, same read/write mix and spatial/temporal locality character —
//! and emit the interleaved per-processor reference stream a tracer would
//! have produced. Trace-driven simulation only consumes the address stream,
//! so this preserves exactly the properties the paper's results depend on:
//! working-set size, spatial locality, regularity, and sharing.
//!
//! | Benchmark | Kernel | Character |
//! |---|---|---|
//! | [`workloads::Fft`] | six-step 64K-point FFT with all-to-all transposes | regular, high spatial locality |
//! | [`workloads::Lu`] | blocked 512x512 dense LU | regular, high spatial locality |
//! | [`workloads::Radix`] | 1M-key radix sort, scattered permutation writes | irregular, write-heavy, low locality |
//! | [`workloads::Ocean`] | 258x258 red-black multigrid stencils | regular, nearest-neighbour |
//! | [`workloads::Barnes`] | 16K-body tree-walk force computation | irregular reads, hot shared tree top |
//! | [`workloads::Fmm`] | 16K-body adaptive FMM interactions | irregular, large sparse working set |
//! | [`workloads::Cholesky`] | supernodal sparse factorization (tk15.0-sized) | irregular tasks, long sequential panel reads |
//! | [`workloads::Raytrace`] | BVH walk over a 35-MB scene | read-mostly, very sparse, low locality |
//!
//! # Example
//!
//! ```
//! use dsm_trace::{Scale, Workload};
//! use dsm_trace::workloads::Fft;
//! use dsm_types::Topology;
//!
//! let fft = Fft::with_points(1 << 8); // small instance for the example
//! let trace = fft.generate(&Topology::paper_default(), Scale::new(1.0)?);
//! assert!(!trace.is_empty());
//! # Ok::<(), dsm_types::ConfigError>(())
//! ```

// `deny`, not `forbid`: the `mmap` module opts back in for the raw
// mapping syscalls alone (see its module docs for the safety story).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod codec;
pub mod interleave;
pub mod layout;
pub mod mmap;
pub mod rng;
pub mod scale;
pub mod shared;
pub mod stats;
pub mod workload;
pub mod workloads;

pub use analysis::{analyze, SharingAnalysis};
pub use codec::{
    open_shared_mapped, read_shared, read_trace, shared_from_mapping, write_shared, write_trace,
    CodecError,
};
pub use interleave::PhaseBuilder;
pub use layout::{Layout, Region};
pub use mmap::Mapping;
pub use scale::Scale;
pub use shared::{ClusterPartition, ShardPlan, SharedTrace, BATCH};
pub use stats::TraceStats;
pub use workload::{Workload, WorkloadKind};
