//! Dependency-free read-only file mappings for zero-copy trace loading.
//!
//! The v2 trace codec is column-major, so a mapped trace file *is* the
//! columnar replay buffer: `SharedTrace` can borrow its address column
//! straight from the mapping instead of copying multi-gigabyte traces
//! through `read`. Sweep workers cloning a mapped trace share the same
//! physical pages read-only, and start-up cost drops to a page-table
//! update regardless of trace size.
//!
//! The workspace is dependency-free, so there is no `libc` to call. On
//! Linux x86-64 and AArch64 [`Mapping::open`] issues the `mmap`/`munmap`
//! syscalls directly with inline assembly; everywhere else (and under
//! the `DSM_NO_MMAP=1` escape hatch) it falls back to reading the file
//! into an owned buffer, so callers never need platform `cfg`s — only
//! the sharing/startup benefits differ, never the bytes observed.
//!
//! # Safety
//!
//! This is the only module in the crate allowed to use `unsafe` (the
//! crate is otherwise `deny(unsafe_code)`). The invariants are local:
//! a successful `mmap(PROT_READ, MAP_PRIVATE)` of `len` bytes yields
//! exactly `len` readable bytes that stay valid until the matching
//! `munmap` in [`Drop`]; the struct owns the region exclusively and
//! never hands out `&mut`. Truncating the file *after* mapping could
//! fault a reader (SIGBUS) — the simulator never rewrites trace files
//! it is replaying, and the CLI surface documents the same contract.
#![allow(unsafe_code)]

use std::fs::File;
use std::io;
use std::path::Path;

/// A read-only byte buffer backed either by a kernel file mapping or by
/// an owned in-memory copy — the storage behind mapped [`SharedTrace`]s.
///
/// [`SharedTrace`]: crate::SharedTrace
pub struct Mapping {
    ptr: *const u8,
    len: usize,
    backing: Backing,
    /// The mapped file, retained so [`Mapping::revalidate`] can fstat it
    /// long after open. `None` for owned backings (nothing to
    /// revalidate — the bytes are copied).
    file: Option<File>,
}

enum Backing {
    /// `ptr` came from `mmap`; `Drop` must `munmap` it.
    Kernel,
    /// `ptr` points into the vector (kept alive here). Covers platforms
    /// without the raw syscall path, `DSM_NO_MMAP=1`, and empty files.
    Owned(#[allow(dead_code)] Vec<u8>),
}

// SAFETY: the region is immutable for the life of the value (PROT_READ,
// or an owned buffer nothing else can reach), so shared references may
// cross threads freely — exactly how sweep workers share one trace.
unsafe impl Send for Mapping {}
// SAFETY: as above; `&Mapping` only ever yields `&[u8]`.
unsafe impl Sync for Mapping {}

impl Mapping {
    /// Maps `path` read-only, falling back to an owned read of the whole
    /// file on platforms without the raw syscall path or when the
    /// `DSM_NO_MMAP=1` environment override is set.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be opened,
    /// sized, mapped, or (on the fallback path) read.
    pub fn open(path: &Path) -> io::Result<Mapping> {
        let file = File::open(path)?;
        let len = usize::try_from(file.metadata()?.len())
            .map_err(|_| io::Error::other("file too large to map on this platform"))?;
        if len == 0 || no_mmap_override() {
            drop(file);
            return Ok(Mapping::from_vec(std::fs::read(path)?));
        }
        sys::map_file(file, len)
    }

    /// Wraps an owned buffer in the `Mapping` interface — the storage the
    /// platform fallback produces, and what tests use to exercise the
    /// owned arm without touching the filesystem.
    #[must_use]
    pub fn from_vec(bytes: Vec<u8>) -> Mapping {
        Mapping {
            ptr: bytes.as_ptr(),
            len: bytes.len(),
            backing: Backing::Owned(bytes),
            file: None,
        }
    }

    /// Re-checks (fstat) that the mapped file still covers the mapped
    /// length. Reading pages of a file that shrank after mapping faults
    /// the process (SIGBUS), so callers revalidate at parse time and
    /// again before handing the mapping to shard workers, turning a
    /// concurrent truncation into a clean error instead of a crash.
    /// Owned backings hold a private copy and always pass. The window
    /// between this check and the read is irreducible without copying;
    /// the check catches the realistic failure (the file was rewritten
    /// between spill and replay) deterministically.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be fstat'ed or is now
    /// shorter than the mapped length (also injected under a
    /// `mmap-truncate` [`dsm_types::fault::FaultPlan`]).
    pub fn revalidate(&self) -> io::Result<()> {
        let Some(file) = &self.file else {
            return Ok(());
        };
        if dsm_types::fault::active().is_some_and(|p| p.site == dsm_types::FaultSite::MmapTruncate)
        {
            return Err(io::Error::other(
                "injected fault: mapped trace file reported truncated (mmap-truncate)",
            ));
        }
        let now = file.metadata()?.len();
        if now < self.len as u64 {
            return Err(io::Error::other(format!(
                "mapped trace file shrank to {now} bytes ({} were mapped); \
                 refusing to replay a truncated mapping",
                self.len
            )));
        }
        Ok(())
    }

    /// The mapped (or owned) bytes.
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        if self.len == 0 {
            return &[];
        }
        // SAFETY: `ptr` points to `len` readable bytes for the life of
        // `self` (see the module docs), and the region is immutable.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }

    /// Length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// `true` when backed by kernel file pages (zero-copy), `false` on
    /// the owned fallback.
    #[must_use]
    pub fn is_kernel_mapped(&self) -> bool {
        matches!(self.backing, Backing::Kernel)
    }
}

impl Drop for Mapping {
    fn drop(&mut self) {
        if let Backing::Kernel = self.backing {
            // SAFETY: `ptr`/`len` are exactly what mmap returned, unmapped
            // once (Drop runs once); failure leaks the region, harmlessly.
            unsafe { sys::munmap(self.ptr, self.len) };
        }
    }
}

impl std::fmt::Debug for Mapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mapping")
            .field("len", &self.len)
            .field("kernel_mapped", &self.is_kernel_mapped())
            .finish()
    }
}

/// Whether `DSM_NO_MMAP=1` (or any non-empty value but `0`) disables the
/// syscall path — useful for A/B-ing storage modes on one platform.
fn no_mmap_override() -> bool {
    matches!(std::env::var("DSM_NO_MMAP"), Ok(v) if !v.is_empty() && v != "0")
}

#[cfg(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod sys {
    use super::{Backing, Mapping};
    use std::arch::asm;
    use std::fs::File;
    use std::io;
    use std::os::fd::AsRawFd;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    /// Raw 6-argument Linux syscall. Returns the kernel's raw result:
    /// values in `-4095..0` (as isize) encode `-errno`.
    ///
    /// SAFETY: caller must pass arguments valid for the syscall number.
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        #[cfg(target_arch = "x86_64")]
        // SAFETY: per the x86-64 Linux ABI, `syscall` clobbers only
        // rcx/r11 (declared) and returns in rax.
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") nr as isize => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        #[cfg(target_arch = "aarch64")]
        // SAFETY: per the AArch64 Linux ABI, `svc 0` takes the number in
        // x8, arguments in x0-x5, and returns in x0.
        unsafe {
            asm!(
                "svc 0",
                in("x8") nr,
                inlateout("x0") a as isize => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                options(nostack),
            );
        }
        ret
    }

    pub(super) fn map_file(file: File, len: usize) -> io::Result<Mapping> {
        let fd = file.as_raw_fd();
        // SAFETY: a NULL hint with PROT_READ|MAP_PRIVATE over an open fd
        // is always sound to *request*; the result is checked below.
        let ret = unsafe {
            syscall6(
                SYS_MMAP,
                0,
                len,
                PROT_READ,
                MAP_PRIVATE,
                usize::try_from(fd).map_err(|_| io::Error::other("negative fd"))?,
                0,
            )
        };
        if (-4095..0).contains(&ret) {
            #[allow(clippy::cast_possible_truncation)] // range-checked above
            return Err(io::Error::from_raw_os_error(-ret as i32));
        }
        Ok(Mapping {
            ptr: ret as usize as *const u8,
            len,
            backing: Backing::Kernel,
            file: Some(file),
        })
    }

    /// SAFETY: `ptr`/`len` must be a live region returned by `map_file`,
    /// not unmapped before, and never used again after this call.
    pub(super) unsafe fn munmap(ptr: *const u8, len: usize) {
        // SAFETY: forwarded from the caller's contract.
        let _ = unsafe { syscall6(SYS_MUNMAP, ptr as usize, len, 0, 0, 0, 0) };
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
)))]
mod sys {
    use super::Mapping;
    use std::fs::File;
    use std::io;
    use std::io::Read;

    /// Portable fallback: read the whole file into an owned buffer. Loses
    /// the page-sharing and instant-start properties, never the bytes.
    pub(super) fn map_file(mut file: File, len: usize) -> io::Result<Mapping> {
        let mut bytes = Vec::with_capacity(len);
        file.read_to_end(&mut bytes)?;
        Ok(Mapping::from_vec(bytes))
    }

    /// SAFETY: never called — the portable build has no kernel mappings.
    pub(super) unsafe fn munmap(_ptr: *const u8, _len: usize) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("dsm-mmap-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = temp_path("exact");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let map = Mapping::open(&path).unwrap();
        assert_eq!(map.bytes(), &payload[..]);
        assert_eq!(map.len(), payload.len());
        assert!(!map.is_empty());
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        assert!(map.is_kernel_mapped());
        drop(map); // munmap must not fault
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let map = Mapping::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), &[] as &[u8]);
        assert!(!map.is_kernel_mapped());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = Mapping::open(Path::new("/nonexistent/dsm-mmap-test")).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn owned_backing_roundtrips() {
        let map = Mapping::from_vec(vec![1, 2, 3]);
        assert_eq!(map.bytes(), &[1, 2, 3]);
        assert!(!map.is_kernel_mapped());
        let dbg = format!("{map:?}");
        assert!(dbg.contains("kernel_mapped"), "{dbg}");
    }

    #[test]
    fn revalidate_detects_truncation_without_faulting() {
        let path = temp_path("revalidate");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&vec![7u8; 8192])
            .unwrap();
        let map = Mapping::open(&path).unwrap();
        map.revalidate().expect("intact file revalidates");
        if map.is_kernel_mapped() {
            // Shrink the file under the live mapping. revalidate only
            // fstats — it must report the hazard, not touch the pages.
            std::fs::OpenOptions::new()
                .write(true)
                .open(&path)
                .unwrap()
                .set_len(100)
                .unwrap();
            let err = map.revalidate().unwrap_err();
            assert!(err.to_string().contains("shrank"), "{err}");
        }
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn owned_backing_always_revalidates() {
        Mapping::from_vec(vec![1, 2, 3]).revalidate().unwrap();
    }

    #[test]
    fn injected_truncation_fault_trips_revalidate() {
        use dsm_types::fault;
        let path = temp_path("fault-reval");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[9u8; 4096])
            .unwrap();
        let map = Mapping::open(&path).unwrap();
        if map.is_kernel_mapped() {
            let _guard = fault::test_lock();
            fault::install(Some(fault::FaultPlan::from_spec("mmap-truncate").unwrap()));
            let err = map.revalidate().unwrap_err();
            fault::install(None);
            assert!(err.to_string().contains("injected"), "{err}");
            map.revalidate().expect("clean once the plan is cleared");
        }
        drop(map);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let path = temp_path("threads");
        let payload = vec![0xABu8; 4096 * 3 + 17];
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let map = std::sync::Arc::new(Mapping::open(&path).unwrap());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let map = std::sync::Arc::clone(&map);
                s.spawn(move || {
                    assert!(map.bytes().iter().all(|&b| b == 0xAB));
                });
            }
        });
        std::fs::remove_file(&path).unwrap();
    }
}
